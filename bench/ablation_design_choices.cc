/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out (not a
 * paper figure; supports the Sec. 3/4 design rationale):
 *
 *  A. sliding-window size 4 / 8 / 16 -- accuracy vs mapping latency;
 *  B. mantissa bits 2 / 3 / 4 -- accuracy vs temporal sweep length;
 *  C. window policy (coverage / max-anchored / min-anchored / fixed)
 *     -- the value-centric choice of Sec. 3.3;
 *  D. buffer minimization -- Mugi vs Carat FIFO area at matched
 *     array sizes (Sec. 4.2's 4.5x claim);
 *  E. Mugi-L -- dedicated-LUT nonlinear vs temporal VLP (Sec. 6.3.1).
 */

#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "serve/engine.h"
#include "vlp/vlp_approximator.h"

using namespace mugi;

namespace {

/** Mean |relative error| of an exp approximator over a test set. */
double
mean_rel_error(const vlp::VlpApproximator& approx)
{
    std::mt19937 rng(811);
    std::uniform_real_distribution<float> dist(-14.0f, -0.02f);
    double sum = 0.0;
    const int n = 20000;
    std::vector<float> in(n), out(n);
    for (float& v : in) v = dist(rng);
    approx.apply_batch(in, out);
    for (int i = 0; i < n; ++i) {
        const double exact = std::exp(static_cast<double>(in[i]));
        sum += std::fabs(out[i] - exact) / exact;
    }
    return sum / n;
}

vlp::VlpConfig
base_config()
{
    vlp::VlpConfig config;
    config.op = nonlinear::NonlinearOp::kExp;
    config.lut_min_exp = -7;
    config.lut_max_exp = 4;
    config.mapping_rows = 128;
    return config;
}

}  // namespace

int
main()
{
    bench::print_title("Ablations of Mugi's design choices");

    bench::print_subtitle(
        "A. sliding-window size (exp, LUT [-7,4], coverage policy)");
    bench::print_header("window", {"mean|rel err|", "map latency"});
    for (const int w : {4, 8, 16}) {
        vlp::VlpConfig config = base_config();
        config.window_size = w;
        const vlp::VlpApproximator approx(config);
        bench::print_row(std::to_string(w),
                         {mean_rel_error(approx),
                          static_cast<double>(
                              approx.mapping_latency_cycles())},
                         "%13.4f");
    }

    bench::print_subtitle(
        "B. mantissa bits (exp; sweep = 2^bits cycles)");
    bench::print_header("bits", {"mean|rel err|", "sweep cyc"});
    for (const int bits : {2, 3, 4}) {
        vlp::VlpConfig config = base_config();
        config.mantissa_bits = bits;
        const vlp::VlpApproximator approx(config);
        bench::print_row(std::to_string(bits),
                         {mean_rel_error(approx),
                          static_cast<double>(1 << bits)},
                         "%13.4f");
    }

    bench::print_subtitle("C. window policy (window 8, LUT [-7,4])");
    bench::print_header("policy", {"mean|rel err|"});
    for (const vlp::WindowPolicy policy :
         {vlp::WindowPolicy::kCoverage, vlp::WindowPolicy::kMaxAnchored,
          vlp::WindowPolicy::kMinAnchored,
          vlp::WindowPolicy::kFixedTop}) {
        vlp::VlpConfig config = base_config();
        config.policy = policy;
        const vlp::VlpApproximator approx(config);
        bench::print_row(vlp::window_policy_name(policy),
                         {mean_rel_error(approx)}, "%13.4f");
    }

    bench::print_subtitle(
        "D. buffer minimization: FIFO area, Mugi vs Carat (mm^2)");
    bench::print_header("H", {"mugi-fifo", "carat-fifo", "ratio"});
    for (const std::size_t h : {64, 128, 256, 512}) {
        const double mugi =
            serve::Engine(sim::make_mugi(h)).area().fifo;
        const double carat =
            serve::Engine(sim::make_carat(h)).area().fifo;
        bench::print_row(std::to_string(h),
                         {mugi, carat, carat / mugi}, "%10.4f");
    }

    bench::print_subtitle(
        "E. Mugi vs Mugi-L: nonlinear hardware area (mm^2)");
    bench::print_header("H", {"mugi-nonlin", "mugi-l-nonlin",
                              "array-total-L/array-total"});
    for (const std::size_t h : {128, 256}) {
        const sim::AreaBreakdown m =
            serve::Engine(sim::make_mugi(h)).area();
        const sim::AreaBreakdown l =
            serve::Engine(sim::make_mugi_l(h)).area();
        bench::print_row(std::to_string(h),
                         {m.nonlinear, l.nonlinear,
                          l.array_total() / m.array_total()},
                         "%10.4f");
    }

    std::printf(
        "\nReading: window 8 + 3-bit mantissa is the knee "
        "(doubling either buys\nlittle accuracy for 2x latency); the "
        "coverage policy dominates anchored\nand fixed windows; "
        "Carat's FIFO area runs ~4x Mugi's and grows with H;\n"
        "Mugi-L pays a multiple of the whole Mugi array in LUT "
        "hardware.\n");
    return 0;
}
