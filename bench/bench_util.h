#ifndef MUGI_BENCH_BENCH_UTIL_H_
#define MUGI_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared formatting helpers for the figure/table harness binaries.
 * Each binary prints the rows/series of one paper figure; the
 * expected shapes are recorded in EXPERIMENTS.md.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace mugi {
namespace bench {

/**
 * Steady-clock stopwatch shared by every bench binary, so no harness
 * grows its own subtly-different wall-clock helper.  Starts at
 * construction; seconds() reads without stopping.
 */
class Timer {
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    void restart() { start_ = std::chrono::steady_clock::now(); }

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Best-of-@p repeats wall time of @p fn, in seconds. */
template <typename Fn>
double
best_of(int repeats, const Fn& fn)
{
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        Timer timer;
        fn();
        const double elapsed = timer.seconds();
        if (elapsed < best) best = elapsed;
    }
    return best;
}

inline void
print_title(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
print_subtitle(const std::string& title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Print one labeled row of numeric cells. */
inline void
print_row(const std::string& label, const std::vector<double>& cells,
          const char* fmt = "%9.3f")
{
    std::printf("%-22s", label.c_str());
    for (const double v : cells) {
        std::printf(" ");
        std::printf(fmt, v);
    }
    std::printf("\n");
}

/** Print a header row of column labels. */
inline void
print_header(const std::string& corner,
             const std::vector<std::string>& columns)
{
    std::printf("%-22s", corner.c_str());
    for (const std::string& c : columns) {
        std::printf(" %9s", c.c_str());
    }
    std::printf("\n");
}

/** Normalize a series to its first element. */
inline std::vector<double>
normalize_to(const std::vector<double>& values, double base)
{
    std::vector<double> out;
    out.reserve(values.size());
    for (const double v : values) {
        out.push_back(base > 0.0 ? v / base : 0.0);
    }
    return out;
}

/**
 * Minimal machine-readable output for CI: an insertion-ordered JSON
 * value builder covering exactly what the bench binaries emit
 * (numbers, strings, bools, nested objects/arrays).  Not a parser;
 * keys and string values must not need escaping beyond quotes and
 * backslashes.
 */
class Json {
  public:
    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::kObject;
        return j;
    }

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::kArray;
        return j;
    }

    static Json
    number(double v)
    {
        Json j;
        std::ostringstream os;
        os.precision(12);
        os << v;
        j.scalar_ = os.str();
        return j;
    }

    static Json
    number(std::uint64_t v)
    {
        Json j;
        j.scalar_ = std::to_string(v);
        return j;
    }

    static Json
    string(const std::string& v)
    {
        Json j;
        std::string escaped;
        for (const char c : v) {
            if (c == '"' || c == '\\') escaped.push_back('\\');
            escaped.push_back(c);
        }
        j.scalar_ = "\"" + escaped + "\"";
        return j;
    }

    static Json
    boolean(bool v)
    {
        Json j;
        j.scalar_ = v ? "true" : "false";
        return j;
    }

    /** Add a key to an object (returns *this for chaining). */
    Json&
    set(const std::string& key, Json value)
    {
        keys_.push_back(key);
        children_.push_back(std::move(value));
        return *this;
    }

    Json& set(const std::string& key, double v) { return set(key, number(v)); }
    Json& set(const std::string& key, const std::string& v) { return set(key, string(v)); }
    Json& set(const std::string& key, const char* v) { return set(key, string(v)); }
    Json& set(const std::string& key, bool v) { return set(key, boolean(v)); }

    /**
     * One overload for every integer type: size_t vs uint64_t vs int
     * would otherwise be ambiguous on platforms where they are
     * distinct types (e.g. macOS: size_t is unsigned long, uint64_t
     * is unsigned long long).
     */
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    Json&
    set(const std::string& key, T v)
    {
        Json j;
        j.scalar_ = std::to_string(v);
        return set(key, std::move(j));
    }

    /** Append an element to an array. */
    Json&
    push(Json value)
    {
        children_.push_back(std::move(value));
        return *this;
    }

    std::string
    str() const
    {
        if (kind_ == Kind::kScalar) {
            return scalar_;
        }
        std::string out(kind_ == Kind::kObject ? "{" : "[");
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (i > 0) out += ",";
            if (kind_ == Kind::kObject) {
                out += string(keys_[i]).str() + ":";
            }
            out += children_[i].str();
        }
        out += kind_ == Kind::kObject ? "}" : "]";
        return out;
    }

    /** Write the JSON (plus trailing newline) to @p path. */
    bool
    write_file(const std::string& path) const
    {
        std::ofstream out(path);
        if (!out) return false;
        out << str() << "\n";
        return static_cast<bool>(out);
    }

  private:
    enum class Kind { kScalar, kObject, kArray };

    Kind kind_ = Kind::kScalar;
    std::string scalar_;
    std::vector<std::string> keys_;
    std::vector<Json> children_;
};

}  // namespace bench
}  // namespace mugi

#endif  // MUGI_BENCH_BENCH_UTIL_H_
