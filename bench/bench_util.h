#ifndef MUGI_BENCH_BENCH_UTIL_H_
#define MUGI_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared formatting helpers for the figure/table harness binaries.
 * Each binary prints the rows/series of one paper figure; the
 * expected shapes are recorded in EXPERIMENTS.md.
 */

#include <cstdio>
#include <string>
#include <vector>

namespace mugi {
namespace bench {

inline void
print_title(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
print_subtitle(const std::string& title)
{
    std::printf("\n-- %s --\n", title.c_str());
}

/** Print one labeled row of numeric cells. */
inline void
print_row(const std::string& label, const std::vector<double>& cells,
          const char* fmt = "%9.3f")
{
    std::printf("%-22s", label.c_str());
    for (const double v : cells) {
        std::printf(" ");
        std::printf(fmt, v);
    }
    std::printf("\n");
}

/** Print a header row of column labels. */
inline void
print_header(const std::string& corner,
             const std::vector<std::string>& columns)
{
    std::printf("%-22s", corner.c_str());
    for (const std::string& c : columns) {
        std::printf(" %9s", c.c_str());
    }
    std::printf("\n");
}

/** Normalize a series to its first element. */
inline std::vector<double>
normalize_to(const std::vector<double>& values, double base)
{
    std::vector<double> out;
    out.reserve(values.size());
    for (const double v : values) {
        out.push_back(base > 0.0 ? v / base : 0.0);
    }
    return out;
}

}  // namespace bench
}  // namespace mugi

#endif  // MUGI_BENCH_BENCH_UTIL_H_
