/**
 * @file
 * Chaos gate for the serving stack: replay a Poisson trace through
 * the full HTTP front-end while a seeded fault schedule fires at the
 * stack's named fault sites (support/fault.h), and hard-gate that the
 * system degrades without corrupting.
 *
 * Per seed (default seeds 1, 2, 3; add more with repeated --seed):
 *
 *  1. arm a FaultPlan over block_pool.allocate, channel.push,
 *     http.write, http.write.short and loop.step_delay;
 *  2. drive every trace request through POST /v1/generate from its
 *     own client thread, bounded by a wall-clock watchdog (a hang is
 *     a failure, not a wait);
 *  3. classify each outcome: completed stream, shed (429 with a
 *     Retry-After header), or broken mid-stream by an injected write
 *     fault;
 *  4. gate: (a) kv_bytes_in_use == 0 after drain, (b)
 *     Server::check_invariants() comes back clean, (c) every request
 *     that completed normally streamed tokens bit-identical to the
 *     fault-free in-process baseline, (d) the plan actually fired
 *     (faults_injected > 0) -- a chaos run that injected nothing
 *     proves nothing.
 *
 * --check additionally runs the negative control: a deliberately
 * broken release path (the block_pool.leak_release site, compiled
 * into BlockPool::release for exactly this bench) must make the gate
 * FAIL -- leaked bytes or a dirty invariant report.  A gate that
 * cannot detect a planted leak is decoration.  (Skipped under
 * MUGI_AUDIT_INVARIANTS builds, where the scheduler's own mid-step
 * audit aborts before the gate can observe the corruption.)
 *
 * Output: BENCH_chaos.json (per-seed outcome counts and gate bits).
 * Exit status reflects every gate across every seed.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "server/frontend.h"
#include "server/http.h"
#include "server/json.h"
#include "support/audit.h"
#include "support/fault.h"

using namespace mugi;

namespace {

/** Wall-clock bound on one chaos round: past this, the run is hung
 *  and the watchdog hard-exits (a join that never returns would
 *  otherwise turn a deadlock bug into a silent CI timeout). */
constexpr double kWatchdogS = 120.0;

struct TraceRequest {
    std::vector<int> prompt;
    std::size_t max_new_tokens = 0;
    double arrival_s = 0.0;
};

/** The seeded Poisson trace every round (and the baseline) replays. */
std::vector<TraceRequest>
make_trace(const model::ModelConfig& config, int n)
{
    std::mt19937_64 rng(7);
    std::exponential_distribution<double> gap(8.0);
    double arrival_s = 0.0;
    std::vector<TraceRequest> trace;
    for (int i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        TraceRequest r;
        r.prompt = model::synthetic_tokens(
            10 + 7 * (i % 4), config.vocab,
            static_cast<std::uint32_t>(2100 + i));
        r.max_new_tokens = 6 + static_cast<std::size_t>(i % 9);
        r.arrival_s = arrival_s;
        trace.push_back(std::move(r));
    }
    return trace;
}

/** Fault-free reference streams, one per trace index, from the
 *  single-threaded in-process scheduler. */
std::vector<std::vector<int>>
baseline_streams(const serve::Engine& engine,
                 const std::vector<TraceRequest>& trace)
{
    serve::SchedulerConfig config;
    config.prefill_chunk_tokens = units::Tokens(16);
    serve::Scheduler scheduler(engine, config);
    std::vector<std::uint64_t> ids;
    for (const TraceRequest& r : trace) {
        serve::Request request;
        request.prompt = r.prompt;
        request.max_new_tokens = units::Tokens(r.max_new_tokens);
        ids.push_back(scheduler.submit(request));
    }
    std::vector<std::vector<int>> expected(trace.size());
    for (const serve::FinishedRequest& f : scheduler.run()) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == f.id) {
                expected[i] = f.tokens;
            }
        }
    }
    return expected;
}

/** What one HTTP client observed for its request. */
struct Outcome {
    enum Kind {
        kCompleted,  ///< 200, stream reached its done line.
        kShed,       ///< 429 (overload surface, not a failure).
        kBroken,     ///< Connection or stream died mid-flight.
    };
    Kind kind = kBroken;
    /** Done-line reason ("max_tokens", ...) when kCompleted. */
    std::string reason;
    std::vector<int> tokens;
    /** 429 responses must carry Retry-After; tracked per client. */
    bool retry_after_present = false;
};

/** Drive one request over HTTP and classify the result. */
Outcome
http_generate(std::uint16_t port, const TraceRequest& request)
{
    Outcome outcome;
    std::ostringstream body;
    body << "{\"prompt\":[";
    for (std::size_t i = 0; i < request.prompt.size(); ++i) {
        if (i > 0) {
            body << ',';
        }
        body << request.prompt[i];
    }
    body << "],\"max_new_tokens\":" << request.max_new_tokens
         << ",\"arrival_time_s\":" << request.arrival_s << "}";

    server::Client client;
    if (!client.connect(port)) {
        return outcome;  // kBroken.
    }
    const std::optional<server::HttpResponse> response =
        client.request("POST", "/v1/generate", body.str());
    if (!response) {
        return outcome;  // Injected write fault killed the stream.
    }
    if (response->status == 429) {
        outcome.kind = Outcome::kShed;
        outcome.retry_after_present =
            response->headers.count("retry-after") > 0;
        return outcome;
    }
    if (response->status != 200) {
        return outcome;
    }
    std::istringstream lines(response->body);
    std::string line;
    bool done = false;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        const std::optional<server::json::Value> value =
            server::json::parse(line);
        if (!value) {
            return outcome;  // Truncated by a mid-stream fault.
        }
        if (value->bool_or("done", false)) {
            done = true;
            if (const server::json::Value* reason =
                    value->find("reason")) {
                outcome.reason = reason->string;
            }
        } else if (value->find("token") != nullptr) {
            outcome.tokens.push_back(
                static_cast<int>(value->number_or("token", -1.0)));
        }
    }
    if (!done) {
        return outcome;  // Stream never finished: kBroken.
    }
    outcome.kind = Outcome::kCompleted;
    return outcome;
}

struct RoundResult {
    std::uint64_t seed = 0;
    std::size_t completed = 0;
    std::size_t shed = 0;
    std::size_t broken = 0;
    std::size_t faults_injected = 0;
    std::size_t fault_evaluations = 0;
    bool leak_free = false;
    bool invariants_clean = false;
    bool streams_identical = false;
    bool faults_fired = false;

    bool
    pass() const
    {
        return leak_free && invariants_clean && streams_identical &&
               faults_fired;
    }
};

/** One chaos round: the trace over HTTP under @p seed's schedule. */
RoundResult
run_round(const serve::Engine& engine,
          const std::vector<TraceRequest>& trace,
          const std::vector<std::vector<int>>& expected,
          std::uint64_t seed)
{
    RoundResult result;
    result.seed = seed;

    support::FaultPlan plan;
    plan.seed = seed;
    plan.sites = {
        {"block_pool.allocate", 0.15, 40},
        {"channel.push", 0.08, 3},
        {"http.write", 0.04, 4},
        {"http.write.short", 0.25, 200},
        {"loop.step_delay", 0.10, 30},
    };
    support::ScopedFaultPlan armed(plan);

    // The queue stays unbounded here: sheds must come from injected
    // channel.push faults, not capacity, so the fault-free baseline
    // and the survivors stay comparable.
    serve::ServerConfig config;
    config.scheduler.prefill_chunk_tokens = units::Tokens(16);
    serve::Server server(engine, config);
    server::Frontend frontend(server);
    if (!frontend.bind(0)) {
        std::printf("FAIL: seed %llu: cannot bind a loopback port\n",
                    static_cast<unsigned long long>(seed));
        return result;
    }
    std::thread accept_thread([&frontend] { frontend.run(); });

    // Watchdog: any hang (lost wakeup, stuck join) ends the process
    // with a distinct status instead of wedging CI.
    std::atomic<bool> round_done{false};
    std::thread watchdog([&round_done] {
        const bench::Timer timer;
        while (!round_done.load()) {
            if (timer.seconds() > kWatchdogS) {
                std::fprintf(stderr,
                             "FAIL: chaos round hung past %.0f s; "
                             "aborting\n",
                             kWatchdogS);
                std::fflush(stderr);
                std::_Exit(3);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    });

    std::vector<Outcome> outcomes(trace.size());
    {
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            clients.emplace_back([&, i] {
                outcomes[i] =
                    http_generate(frontend.port(), trace[i]);
            });
        }
        for (std::thread& t : clients) {
            t.join();
        }
    }

    frontend.stop();
    accept_thread.join();

    // Read the gates while the plan is still armed: stats() folds in
    // FaultInjector::fires(), which disarm resets.
    const serve::ServerStats stats = server.stats();
    const std::string invariants = server.check_invariants();
    result.faults_injected = stats.faults_injected;
    result.fault_evaluations =
        support::FaultInjector::instance().evaluations();

    round_done.store(true);
    watchdog.join();

    result.leak_free = stats.kv_bytes_in_use == units::Bytes(0);
    result.invariants_clean = invariants.empty();
    result.faults_fired = result.faults_injected > 0;
    result.streams_identical = true;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const Outcome& outcome = outcomes[i];
        switch (outcome.kind) {
        case Outcome::kCompleted:
            ++result.completed;
            // A request the faults never touched must be bit-exact;
            // shed/cancel reasons never reach here (429 path).
            if ((outcome.reason == "max_tokens" ||
                 outcome.reason == "stop_token") &&
                outcome.tokens != expected[i]) {
                std::printf(
                    "FAIL: seed %llu: request %zu completed with "
                    "%zu tokens != %zu baseline tokens\n",
                    static_cast<unsigned long long>(seed), i,
                    outcome.tokens.size(), expected[i].size());
                result.streams_identical = false;
            }
            break;
        case Outcome::kShed:
            ++result.shed;
            if (!outcome.retry_after_present) {
                std::printf("FAIL: seed %llu: request %zu got 429 "
                            "without Retry-After\n",
                            static_cast<unsigned long long>(seed),
                            i);
                result.streams_identical = false;
            }
            break;
        case Outcome::kBroken:
            ++result.broken;
            break;
        }
    }

    if (!result.leak_free) {
        std::printf("FAIL: seed %llu: %zu KV bytes in use after "
                    "drain\n",
                    static_cast<unsigned long long>(seed),
                    stats.kv_bytes_in_use.value());
    }
    if (!result.invariants_clean) {
        std::printf("FAIL: seed %llu: invariants: %s\n",
                    static_cast<unsigned long long>(seed),
                    invariants.c_str());
    }
    if (!result.faults_fired) {
        std::printf("FAIL: seed %llu: schedule never fired (%zu "
                    "evaluations)\n",
                    static_cast<unsigned long long>(seed),
                    result.fault_evaluations);
    }
    std::printf("%s: seed %llu: %zu completed / %zu shed / %zu "
                "broken, %zu faults over %zu evaluations, kv=%zu\n",
                result.pass() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(seed),
                result.completed, result.shed, result.broken,
                result.faults_injected, result.fault_evaluations,
                stats.kv_bytes_in_use.value());
    return result;
}

#if !MUGI_AUDIT_INVARIANTS
/**
 * Negative control: force the planted-broken release path (the
 * block_pool.leak_release site skips exactly one BlockPool::release)
 * and require the gate to DETECT it.  Returns true when the leak was
 * caught -- kv bytes left in use or a dirty invariant report.
 */
bool
run_negative_control(const serve::Engine& engine,
                     const model::ModelConfig& config)
{
    bench::print_subtitle(
        "negative control: planted leak must fail the gate");
    support::FaultPlan plan;
    plan.seed = 99;
    plan.sites = {{"block_pool.leak_release", 1.0, 1}};
    support::ScopedFaultPlan armed(plan);

    // Functional requests: analytic serving holds KV as byte
    // reservations, and only real per-block caches travel through
    // BlockPool::release -- the seam the planted leak corrupts.
    serve::SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(16);
    serve::Scheduler scheduler(engine, sched_config);
    for (int i = 0; i < 2; ++i) {
        serve::Request request;
        request.prompt = model::synthetic_tokens(
            12, config.vocab, static_cast<std::uint32_t>(3200 + i));
        request.max_new_tokens = units::Tokens(6);
        scheduler.submit(request);
    }
    scheduler.run();

    const serve::ServerStats stats = scheduler.stats();
    const std::string invariants = scheduler.check_invariants();
    const bool detected =
        stats.kv_bytes_in_use != units::Bytes(0) ||
        !invariants.empty();
    std::printf("%s: planted leak %s (kv=%zu, invariants: %s)\n",
                detected ? "PASS" : "FAIL",
                detected ? "detected" : "NOT detected",
                stats.kv_bytes_in_use.value(),
                invariants.empty() ? "clean" : invariants.c_str());
    return detected;
}
#endif  // !MUGI_AUDIT_INVARIANTS

}  // namespace

int
main(int argc, char** argv)
{
    bool check = false;
    int n = 12;
    const char* json_path = "BENCH_chaos.json";
    std::vector<std::uint64_t> seeds;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            seeds.push_back(static_cast<std::uint64_t>(
                std::atoll(argv[++i])));
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            n = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--check] [--seed N]... "
                         "[--requests N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (seeds.empty()) {
        seeds = {1, 2, 3};
    }

    bench::print_title(
        "chaos_serve: seeded faults through the HTTP stack");
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 128, 512);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 11);
    const serve::Engine engine(sim::make_mugi(256), transformer);
    const std::vector<TraceRequest> trace = make_trace(config, n);
    const std::vector<std::vector<int>> expected =
        baseline_streams(engine, trace);

    bool pass = true;
    bench::Json rounds = bench::Json::array();
    for (const std::uint64_t seed : seeds) {
        const RoundResult r = run_round(engine, trace, expected, seed);
        pass = pass && r.pass();
        rounds.push(bench::Json::object()
                        .set("seed", r.seed)
                        .set("completed", r.completed)
                        .set("shed", r.shed)
                        .set("broken", r.broken)
                        .set("faults_injected", r.faults_injected)
                        .set("fault_evaluations",
                             r.fault_evaluations)
                        .set("leak_free", r.leak_free)
                        .set("invariants_clean", r.invariants_clean)
                        .set("streams_identical",
                             r.streams_identical)
                        .set("pass", r.pass()));
    }

    bool negative_run = false;
    bool negative_pass = true;
    if (check) {
#if MUGI_AUDIT_INVARIANTS
        // The automatic mid-step audit aborts on the planted leak
        // before the gate could observe it -- which is its own kind
        // of detection, but not this bench's to assert.
        std::printf("negative control skipped: "
                    "MUGI_AUDIT_INVARIANTS build\n");
#else
        negative_run = true;
        negative_pass = run_negative_control(engine, config);
        pass = pass && negative_pass;
#endif
    }

    bench::Json out = bench::Json::object();
    out.set("bench", "chaos_serve")
        .set("model", config.name)
        .set("requests", static_cast<std::uint64_t>(n))
        .set("rounds", std::move(rounds))
        .set("negative_control_run", negative_run)
        .set("negative_control_pass", negative_pass)
        .set("pass", pass);
    out.write_file(json_path);
    std::printf("\nwrote %s\n", json_path);
    return pass ? 0 : 1;
}
