/**
 * @file
 * Figure 4: distribution of input values and exponents of nonlinear
 * operations across transformer models.
 *
 * For each Table 1 model family (structurally faithful scaled
 * instances; see DESIGN.md substitutions) we run profiled forward
 * passes, capture the softmax (max-subtracted) and SiLU/GELU inputs
 * per layer, and print per-layer value/exponent histograms plus the
 * dominant 8-exponent window.  The paper's headline observation --
 * values spread widely while exponents cluster in a narrow band
 * (e.g. [-3, 4] for softmax) -- is reproduced as the coverage of the
 * dominant window.
 */

#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "support/rng.h"
#include "model/accuracy.h"
#include "model/profiler.h"
#include "model/transformer.h"

using namespace mugi;

namespace {

void
print_site(const model::SiteProfile& site, const char* label)
{
    const auto window = site.dominant_exponent_window(8);
    std::printf(
        "  %-10s layer %2zu: n=%8zu  zero=%6zu  dominant exp window "
        "[%3d, %3d] covers %5.1f%%  ([-3,4] covers %5.1f%%)\n",
        label, site.layer, site.exponents.total(), site.zero_count,
        window.first, window.second,
        100.0 * site.exponent_coverage(window.first, window.second),
        100.0 * site.exponent_coverage(-3, 4));
}

void
print_value_histogram(const model::SiteProfile& site)
{
    // Coarse 16-bucket view of the value distribution over [-16, 16].
    std::printf("    values  : ");
    for (int b = 0; b < 16; ++b) {
        const double lo = -16.0 + 2.0 * b;
        const double frac = site.values.fraction_in(lo, lo + 2.0);
        std::printf("%4.0f", 1000.0 * frac);
    }
    std::printf("  (per-mille in [-16,16), bucket=2)\n");
    std::printf("    exponents: ");
    for (int e = -8; e <= 7; ++e) {
        std::printf("%4.0f", 1000.0 * site.exponent_coverage(e, e));
    }
    std::printf("  (per-mille for exp -8..7)\n");
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 4: nonlinear input value/exponent distributions");

    for (const model::ModelConfig& full : model::all_models()) {
        const model::ModelConfig config = full.scaled_for_eval(3, 48, 128);
        model::TransformerModel transformer(config, 97);
        model::NonlinearProfiler profiler;
        transformer.set_capture(profiler.capture());

        // Profile over a few sequences (the paper profiles 100
        // inferences at full scale; the distributions stabilize fast).
        for (std::uint32_t s = 0; s < 3; ++s) {
            if (full.family == model::ModelFamily::kLlama ||
                full.family == model::ModelFamily::kWhisper) {
                const auto tokens =
                    model::synthetic_tokens(32, config.vocab, 700 + s);
                transformer.forward_tokens(tokens);
            } else {
                // Vision models consume patch embeddings.
                std::mt19937 rng(800 + s);
                support::MatrixF patches(32, config.d_model);
                support::fill_gaussian(patches, rng, 0.0f, 1.0f);
                transformer.forward_embeddings(patches);
            }
        }

        bench::print_subtitle(full.name + " (" +
                              model::family_name(full.family) + ")");
        for (std::size_t layer = 0; layer < config.num_layers;
             ++layer) {
            if (profiler.has_site(nonlinear::NonlinearOp::kExp,
                                  layer)) {
                print_site(profiler.site(nonlinear::NonlinearOp::kExp,
                                         layer),
                           "softmax");
            }
            const nonlinear::NonlinearOp act = config.activation();
            if (profiler.has_site(act, layer)) {
                print_site(profiler.site(act, layer),
                           nonlinear::op_name(act));
            }
        }
        const model::SiteProfile merged_sm =
            profiler.merged(nonlinear::NonlinearOp::kExp);
        std::printf("  merged softmax across layers:\n");
        print_value_histogram(merged_sm);
        const model::SiteProfile merged_act =
            profiler.merged(config.activation());
        std::printf("  merged %s across layers:\n",
                    nonlinear::op_name(config.activation()));
        print_value_histogram(merged_act);
    }

    std::printf(
        "\nExpected shape (paper): values spread widely; exponents "
        "cluster in a\nnarrow band (softmax ~[-3,4]); the dominant "
        "8-exponent window covers the\nvast majority of inputs for "
        "every model and op.\n");
    return 0;
}
