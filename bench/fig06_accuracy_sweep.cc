/**
 * @file
 * Figure 6: perplexity/loss heat-maps of the nonlinear approximation
 * schemes, swept over their configuration axes:
 *
 *   VLP    : LUT size (rows) x min/max exponent (cols)
 *   PWL    : segments (rows) x segment range (cols)
 *   Taylor : degrees (rows) x degree center (cols), softmax only
 *
 * Each cell is exp(cross-entropy) of the approximated model against
 * the exact model (see model/accuracy.h and the DESIGN.md
 * substitution notes); "Base" is the exact model's own score.  The
 * expected shape: a plateau of near-Base cells once the window /
 * range / degree covers the profiled input distribution, degrading
 * sharply outside it -- with VLP's plateau matching or beating the
 * baselines on concentrated distributions.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "nonlinear/pwl.h"
#include "nonlinear/taylor.h"
#include "serve/kernel_registry.h"
#include "vlp/vlp_approximator.h"

using namespace mugi;

namespace {

/** One sweep-wide kernel cache (paper-default mapping rows). */
const serve::KernelRegistry&
registry()
{
    static const serve::KernelRegistry kRegistry(128);
    return kRegistry;
}

model::EvalOptions
options()
{
    model::EvalOptions opt;
    opt.num_sequences = 2;
    opt.seq_len = 16;
    return opt;
}

double
eval_with(model::TransformerModel& m, const model::NonlinearHooks& h)
{
    return model::evaluate_against_exact(m, h, options()).perplexity;
}

void
sweep_vlp(model::TransformerModel& m, nonlinear::NonlinearOp op)
{
    const std::vector<int> lut_sizes = {8, 9, 10, 11, 12};
    const std::vector<int> max_exps =
        op == nonlinear::NonlinearOp::kExp
            ? std::vector<int>{0, 1, 2, 3, 4}
            : std::vector<int>{-2, -1, 0, 1, 2};
    bench::print_subtitle(std::string("VLP ") + nonlinear::op_name(op) +
                          "  (rows: LUT size, cols: max exp)");
    std::vector<std::string> cols;
    for (const int e : max_exps) cols.push_back(std::to_string(e));
    bench::print_header("lut_size \\ max_exp", cols);
    for (const int size : lut_sizes) {
        std::vector<double> row;
        for (const int max_exp : max_exps) {
            vlp::VlpConfig config;
            config.op = op;
            config.lut_max_exp = max_exp;
            config.lut_min_exp = max_exp - size + 1;
            const auto vlp = registry().get(config);
            model::NonlinearHooks hooks;
            if (op == nonlinear::NonlinearOp::kExp) {
                hooks.softmax_exp = vlp.get();
            } else {
                hooks.activation = vlp.get();
            }
            row.push_back(eval_with(m, hooks));
        }
        bench::print_row(std::to_string(size), row, "%9.4f");
    }
}

void
sweep_pwl(model::TransformerModel& m, nonlinear::NonlinearOp op)
{
    const std::vector<int> segments = {6, 10, 14, 18, 22};
    const std::vector<double> ranges =
        op == nonlinear::NonlinearOp::kExp
            ? std::vector<double>{-24, -20, -16, -12, -8}
            : std::vector<double>{3, 5, 7, 9, 11};
    bench::print_subtitle(std::string("PWL ") + nonlinear::op_name(op) +
                          "  (rows: segments, cols: segment range)");
    std::vector<std::string> cols;
    for (const double r : ranges) {
        cols.push_back(std::to_string(static_cast<int>(r)));
    }
    bench::print_header("segments \\ range", cols);
    for (const int s : segments) {
        std::vector<double> row;
        for (const double r : ranges) {
            nonlinear::PwlConfig config{op, s, r};
            const nonlinear::PwlApproximator pwl(config);
            model::NonlinearHooks hooks;
            if (op == nonlinear::NonlinearOp::kExp) {
                hooks.softmax_exp = &pwl;
            } else {
                hooks.activation = &pwl;
            }
            row.push_back(eval_with(m, hooks));
        }
        bench::print_row(std::to_string(s), row, "%9.4f");
    }
}

void
sweep_taylor(model::TransformerModel& m)
{
    const std::vector<int> degrees = {5, 6, 7, 8, 9};
    const std::vector<double> centers = {-7, -6, -5, -4, -3};
    bench::print_subtitle(
        "Taylor softmax  (rows: degrees, cols: degree center)");
    std::vector<std::string> cols;
    for (const double c : centers) {
        cols.push_back(std::to_string(static_cast<int>(c)));
    }
    bench::print_header("degree \\ center", cols);
    for (const int d : degrees) {
        std::vector<double> row;
        for (const double c : centers) {
            nonlinear::TaylorConfig config{nonlinear::NonlinearOp::kExp,
                                           d, c};
            const nonlinear::TaylorApproximator taylor(config);
            model::NonlinearHooks hooks;
            hooks.softmax_exp = &taylor;
            row.push_back(eval_with(m, hooks));
        }
        bench::print_row(std::to_string(d), row, "%9.4f");
    }
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 6: accuracy heat-maps (PPL vs exact teacher)");

    const std::vector<model::ModelConfig> fulls = {
        model::llama2_7b(), model::llama2_13b(), model::whisper_tiny(),
        model::swinv2_tiny(), model::vivit_base()};
    for (const model::ModelConfig& full : fulls) {
        const model::ModelConfig config =
            full.scaled_for_eval(2, 48, 128);
        model::TransformerModel m(config, 131);
        const double base =
            model::evaluate_base(m, options()).perplexity;
        bench::print_subtitle(full.name);
        std::printf("Base PPL (exact nonlinearities): %.4f\n", base);

        sweep_vlp(m, nonlinear::NonlinearOp::kExp);
        sweep_vlp(m, config.activation());
        sweep_pwl(m, nonlinear::NonlinearOp::kExp);
        sweep_pwl(m, config.activation());
        sweep_taylor(m);
    }

    std::printf(
        "\nExpected shape (paper): VLP plateaus at ~Base once the LUT "
        "window covers\nthe profiled exponents and is competitive with "
        "or better than PWL/Taylor;\nmisplaced windows (low max exp) "
        "degrade sharply; Taylor degrades when the\ncenter drifts from "
        "the input cluster.\n");
    return 0;
}
