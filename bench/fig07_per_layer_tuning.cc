/**
 * @file
 * Figure 7: progressive per-layer LUT-window tuning of Llama 2
 * (7B, 13B): tune the softmax window layer by layer (greedy, earlier
 * layers frozen) and print the PPL trajectory.  Expected shape: PPL
 * decreases (or holds) monotonically as more layers are tuned and
 * ends close to the exact baseline.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"

using namespace mugi;

int
main()
{
    bench::print_title("Figure 7: per-layer softmax window tuning");

    model::EvalOptions options;
    options.num_sequences = 2;
    options.seq_len = 16;

    std::uint32_t seed = 167;
    for (const model::ModelConfig& full :
         {model::llama2_7b(), model::llama2_13b()}) {
        // Keep more layers than the other accuracy benches so the
        // per-layer trajectory is visible; scale the layer count with
        // the model as Table 1 does (32 vs 40 at full scale).
        const std::size_t layers =
            full.num_layers >= 40 ? 8 : 6;
        const model::ModelConfig config =
            full.scaled_for_eval(layers, 48, 128);
        model::TransformerModel m(config, seed += 31);

        const double base =
            model::evaluate_base(m, options).perplexity;
        const std::vector<int> candidates = {-2, 0, 2, 4};
        const model::PerLayerTuningResult tuned =
            model::tune_softmax_per_layer(m, candidates, 8, options);

        bench::print_subtitle(full.name);
        std::printf("Base PPL: %.4f\n", base);
        std::printf("%-8s %-12s %-10s\n", "layer", "chosen max_exp",
                    "PPL");
        for (std::size_t l = 0; l < tuned.ppl_after_layer.size();
             ++l) {
            std::printf("%-8zu %-12d %-10.4f\n", l,
                        tuned.chosen_max_exp[l],
                        tuned.ppl_after_layer[l]);
        }
        std::printf("Final PPL: %.4f (paper: 5.98 for 7B, 5.43 for "
                    "13B at full scale)\n",
                    tuned.final_ppl);
    }

    std::printf(
        "\nExpected shape (paper): the trajectory is non-increasing "
        "and the final\nPPL approaches the exact baseline.\n");
    return 0;
}
