/**
 * @file
 * Figure 8: relative error of each approximation scheme against the
 * software reference, for exp (softmax domain), SiLU and GELU.  The
 * most accurate configurations from the Fig. 6 sweeps are compared:
 * PWL, Taylor (exp only), partial approximation (SiLU only), and the
 * VLP (Mugi) input approximation.
 *
 * Two views are printed per (op, scheme): the wide range (where PWL
 * flushes to -100% outside its segment range) and the zoomed
 * important region around zero, where VLP's value-centric grid is at
 * its densest.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "nonlinear/partial.h"
#include "nonlinear/pwl.h"
#include "nonlinear/taylor.h"
#include "vlp/vlp_approximator.h"

using namespace mugi;

namespace {

/** Signed relative error in percent; 100% = flushed to zero. */
double
rel_error_pct(const nonlinear::NonlinearApproximator& approx, float x)
{
    const double exact = nonlinear::eval_ref(approx.op(), x);
    const double got = approx.apply(x);
    if (exact == 0.0) {
        return 0.0;
    }
    return 100.0 * (got - exact) / std::fabs(exact);
}

void
print_series(const nonlinear::NonlinearApproximator& approx,
             const char* label, double lo, double hi, int points)
{
    std::printf("  %-14s", label);
    double worst = 0.0;
    for (int i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * i / (points - 1);
        const double err = rel_error_pct(approx,
                                         static_cast<float>(x));
        worst = std::max(worst, std::fabs(err));
        std::printf(" %7.1f", err);
    }
    std::printf("   | worst %.1f%%\n", worst);
}

}  // namespace

int
main()
{
    bench::print_title("Figure 8: relative error vs software reference");

    // Best configurations from the Fig. 6 sweeps.
    nonlinear::PwlConfig pwl_exp{nonlinear::NonlinearOp::kExp, 22,
                                 -16.0};
    nonlinear::TaylorConfig taylor_exp{nonlinear::NonlinearOp::kExp, 9,
                                       -4.0};
    const auto vlp_exp =
        vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);

    nonlinear::PwlConfig pwl_silu{nonlinear::NonlinearOp::kSilu, 22,
                                  5.0};
    const auto vlp_silu = [] {
        vlp::VlpConfig c;
        c.op = nonlinear::NonlinearOp::kSilu;
        c.lut_min_exp = -6;
        c.lut_max_exp = 2;
        return std::make_unique<vlp::VlpApproximator>(c);
    }();

    nonlinear::PwlConfig pwl_gelu{nonlinear::NonlinearOp::kGelu, 22,
                                  5.0};
    const auto vlp_gelu = [] {
        vlp::VlpConfig c;
        c.op = nonlinear::NonlinearOp::kGelu;
        c.lut_min_exp = -6;
        c.lut_max_exp = 2;
        return std::make_unique<vlp::VlpApproximator>(c);
    }();

    const int points = 17;

    bench::print_subtitle("exp, wide range x in [-16, 0] (percent)");
    print_series(nonlinear::PwlApproximator(pwl_exp), "PWL", -16, 0,
                 points);
    print_series(nonlinear::TaylorApproximator(taylor_exp), "Taylor",
                 -16, 0, points);
    print_series(*vlp_exp, "Mugi", -16, 0, points);

    bench::print_subtitle("exp, important region x in [-0.5, -0.01]");
    print_series(nonlinear::PwlApproximator(pwl_exp), "PWL", -0.5,
                 -0.01, points);
    print_series(nonlinear::TaylorApproximator(taylor_exp), "Taylor",
                 -0.5, -0.01, points);
    print_series(*vlp_exp, "Mugi", -0.5, -0.01, points);

    bench::print_subtitle("SiLU, wide range x in [-5, 5]");
    print_series(nonlinear::PwlApproximator(pwl_silu), "PWL", -5, 5,
                 points);
    print_series(
        nonlinear::PartialApproximator(nonlinear::NonlinearOp::kSilu),
        "PA", -5, 5, points);
    print_series(*vlp_silu, "Mugi", -5, 5, points);

    bench::print_subtitle("SiLU, important region x in [-0.5, 0.5]");
    print_series(nonlinear::PwlApproximator(pwl_silu), "PWL", -0.5,
                 0.5, points);
    print_series(
        nonlinear::PartialApproximator(nonlinear::NonlinearOp::kSilu),
        "PA", -0.5, 0.5, points);
    print_series(*vlp_silu, "Mugi", -0.5, 0.5, points);

    bench::print_subtitle("GELU, wide range x in [-5, 5]");
    print_series(nonlinear::PwlApproximator(pwl_gelu), "PWL", -5, 5,
                 points);
    print_series(*vlp_gelu, "Mugi", -5, 5, points);

    bench::print_subtitle("GELU, important region x in [-0.5, 0.5]");
    print_series(nonlinear::PwlApproximator(pwl_gelu), "PWL", -0.5,
                 0.5, points);
    print_series(*vlp_gelu, "Mugi", -0.5, 0.5, points);

    std::printf(
        "\nExpected shape (paper): VLP is not uniformly the lowest "
        "error over the\nwide range, but in the important region "
        "(small |x|, where the mass of the\ninputs lives) its error "
        "stays within a few percent while PWL shows large\nsigned "
        "ripples and PA tops 10-20%%.\n");
    return 0;
}
