/**
 * @file
 * Figure 11: iso-area comparison of nonlinear-operation execution
 * (softmax, SiLU) across sequence lengths 128..4096 at batch 8,
 * geometric-mean over the Llama 2 family.  Designs: Mugi(128/256),
 * Carat(128/256), precise vector array VA-FP(16), and approximate
 * vector arrays VA-AP Taylor/PWL(16).  All results normalized to
 * VA-FP(16).  Energy efficiency follows the paper's metric:
 * throughput / energy-per-element (= throughput^2 / power).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

namespace {

model::NonlinearWork
softmax_work(const model::ModelConfig& m, std::size_t batch,
             std::size_t seq)
{
    model::NonlinearWork w;
    w.name = "softmax";
    w.op = nonlinear::NonlinearOp::kExp;
    w.is_softmax = true;
    w.row_length = seq;
    w.elements = m.num_layers * m.num_heads * batch * seq;
    return w;
}

model::NonlinearWork
silu_work(const model::ModelConfig& m, std::size_t batch)
{
    model::NonlinearWork w;
    w.name = "silu";
    w.op = nonlinear::NonlinearOp::kSilu;
    w.elements = m.num_layers * batch * m.d_ff;
    return w;
}

struct Metrics {
    double throughput = 1.0;
    double energy_eff = 1.0;
    double power_eff = 1.0;
};

Metrics
geomean_over_llama(const sim::DesignConfig& d, bool softmax,
                   std::size_t batch, std::size_t seq)
{
    Metrics g;
    double t = 1.0, e = 1.0, p = 1.0;
    const auto family = model::llama_family();
    for (const model::ModelConfig& m : family) {
        const model::NonlinearWork w =
            softmax ? softmax_work(m, batch, seq) : silu_work(m, batch);
        const sim::NonlinearPerf perf =
            serve::Engine(d).evaluate_nonlinear(w);
        t *= perf.elements_per_s;
        e *= perf.energy_efficiency;
        p *= perf.power_efficiency;
    }
    const double inv = 1.0 / static_cast<double>(family.size());
    g.throughput = std::pow(t, inv);
    g.energy_eff = std::pow(e, inv);
    g.power_eff = std::pow(p, inv);
    return g;
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 11: iso-area nonlinear comparison (normalized to "
        "VA-FP(16))");

    struct Entry {
        const char* label;
        sim::DesignConfig design;
        bool softmax;
    };
    const std::vector<Entry> entries = {
        {"Mugi SM (128)", sim::make_mugi(128), true},
        {"Mugi SiLU (128)", sim::make_mugi(128), false},
        {"Mugi SM (256)", sim::make_mugi(256), true},
        {"Mugi SiLU (256)", sim::make_mugi(256), false},
        {"Carat SM (128)", sim::make_carat(128), true},
        {"Carat SiLU (128)", sim::make_carat(128), false},
        {"Carat SM (256)", sim::make_carat(256), true},
        {"Carat SiLU (256)", sim::make_carat(256), false},
        {"VA-FP SM (16)",
         sim::make_vector_array(16, sim::NonlinearScheme::kPrecise),
         true},
        {"VA-FP SiLU (16)",
         sim::make_vector_array(16, sim::NonlinearScheme::kPrecise),
         false},
        {"VA-AP Taylor SM(16)",
         sim::make_vector_array(16, sim::NonlinearScheme::kTaylor),
         true},
        {"VA-AP PWL SM (16)",
         sim::make_vector_array(16, sim::NonlinearScheme::kPwl), true},
        {"VA-AP PWL SiLU(16)",
         sim::make_vector_array(16, sim::NonlinearScheme::kPwl),
         false},
    };

    const std::vector<std::size_t> seq_lens = {128, 256, 512, 1024,
                                               2048, 4096};
    std::vector<std::string> cols;
    for (const std::size_t s : seq_lens) cols.push_back(std::to_string(s));

    for (const char* metric :
         {"throughput", "energy-eff", "power-eff"}) {
        bench::print_subtitle(std::string("normalized ") + metric +
                              " vs sequence length");
        bench::print_header("design", cols);
        for (const Entry& e : entries) {
            std::vector<double> row;
            for (const std::size_t seq : seq_lens) {
                const Metrics base = geomean_over_llama(
                    sim::make_vector_array(
                        16, sim::NonlinearScheme::kPrecise),
                    e.softmax, 8, seq);
                const Metrics m =
                    geomean_over_llama(e.design, e.softmax, 8, seq);
                if (std::string(metric) == "throughput") {
                    row.push_back(m.throughput / base.throughput);
                } else if (std::string(metric) == "energy-eff") {
                    row.push_back(m.energy_eff / base.energy_eff);
                } else {
                    row.push_back(m.power_eff / base.power_eff);
                }
            }
            bench::print_row(e.label, row, "%9.2f");
        }
    }

    std::printf(
        "\nExpected shape (paper): Mugi ~45x throughput, ~481x "
        "(softmax) / ~668x\n(SiLU) energy efficiency and ~10.7x/14.8x "
        "power efficiency vs VA-FP(16);\n~5x throughput vs PWL and "
        "~10x vs Taylor; flat across sequence lengths.\n");
    return 0;
}
