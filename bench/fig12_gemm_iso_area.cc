/**
 * @file
 * Figure 12: iso-area comparison of projection, attention and FFN
 * GEMMs on Llama 2 (7B, 13B, 70B, 70B-GQA), batch 8, sequence 4096.
 * Designs: Mugi(128/256), Carat(128/256), SA(16), SA-F(16), SD(16),
 * SD-F(16); all normalized to the 16x16 systolic array.
 */

#include <cstdio>
#include <vector>

#include "arch/tech_model.h"
#include "bench_util.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

namespace {

struct ClassMetrics {
    double throughput = 0.0;  ///< MACs per second for the class.
    double energy_eff = 0.0;
    double power_eff = 0.0;
};

ClassMetrics
gemm_class_metrics(const sim::DesignConfig& d,
                   const model::ModelConfig& m, model::OpClass cls)
{
    const model::Workload w = model::build_decode_workload(m, 8, 4096);
    const serve::Engine engine(d);
    double cycles = 0.0;
    double energy_pj = 0.0;
    double macs = 0.0;
    for (const model::GemmOp& g : w.gemms) {
        if (g.cls != cls) continue;
        const sim::OpCost cost = engine.gemm_cost(g);
        cycles += cost.cycles;
        energy_pj += cost.dynamic_energy_pj;
        macs += static_cast<double>(g.macs());
    }
    const double runtime_s = cycles * arch::kCycleNs * 1e-9;
    const double leak_j =
        sim::node_leakage_mw(d) * 1e-3 * runtime_s;
    ClassMetrics metrics;
    metrics.throughput = macs / runtime_s;
    const double power = (energy_pj * 1e-12 + leak_j) / runtime_s;
    metrics.power_eff = metrics.throughput / power;
    metrics.energy_eff = metrics.throughput * metrics.power_eff;
    return metrics;
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 12: iso-area GEMM comparison (normalized to SA(16))");

    struct ModelEntry {
        const char* label;
        model::ModelConfig config;
    };
    std::vector<ModelEntry> models = {
        {"7B", model::llama2_7b()},
        {"13B", model::llama2_13b()},
        {"70B-GQA", model::llama2_70b()},
    };
    // "70B" without GQA: same shapes, KV heads = heads.
    model::ModelConfig mha70 = model::llama2_70b();
    mha70.num_kv_heads = mha70.num_heads;
    mha70.name = "llama2-70b-mha";
    models.insert(models.begin() + 2, {"70B", mha70});

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"Mugi(128)", sim::make_mugi(128)},
            {"Mugi(256)", sim::make_mugi(256)},
            {"Carat(128)", sim::make_carat(128)},
            {"Carat(256)", sim::make_carat(256)},
            {"SA(16)", sim::make_systolic(16)},
            {"SA-F(16)", sim::make_systolic(16, true)},
            {"SD(16)", sim::make_simd(16)},
            {"SD-F(16)", sim::make_simd(16, true)},
        };

    for (const auto& [cls, cls_label] :
         std::vector<std::pair<model::OpClass, const char*>>{
             {model::OpClass::kProjection, "Projection"},
             {model::OpClass::kAttention, "Attention"},
             {model::OpClass::kFfn, "FFN"}}) {
        for (const char* metric :
             {"throughput", "energy-eff", "power-eff"}) {
            bench::print_subtitle(std::string(cls_label) + " " +
                                  metric + " (normalized to SA(16))");
            std::vector<std::string> cols;
            for (const ModelEntry& m : models) cols.push_back(m.label);
            bench::print_header("design", cols);
            for (const auto& [dlabel, design] : designs) {
                std::vector<double> row;
                for (const ModelEntry& m : models) {
                    const ClassMetrics base = gemm_class_metrics(
                        sim::make_systolic(16), m.config, cls);
                    const ClassMetrics got =
                        gemm_class_metrics(design, m.config, cls);
                    double v = 0.0;
                    if (std::string(metric) == "throughput") {
                        v = got.throughput / base.throughput;
                    } else if (std::string(metric) == "energy-eff") {
                        v = got.energy_eff / base.energy_eff;
                    } else {
                        v = got.power_eff / base.power_eff;
                    }
                    row.push_back(v);
                }
                bench::print_row(dlabel, row, "%9.2f");
            }
        }
    }

    std::printf(
        "\nExpected shape (paper): Mugi consistently above SA/SD on "
        "throughput and\nefficiency for projection/FFN (~2x at 256 "
        "rows); attention gains are\nlargest with GQA (70B-GQA "
        "column), where grouped queries fill Mugi's 8\ncolumns; Carat "
        "tracks Mugi's throughput with lower efficiency.\n");
    return 0;
}
