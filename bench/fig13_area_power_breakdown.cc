/**
 * @file
 * Figure 13: array- and NoC-level area and power breakdown of
 * Mugi(128/256), Mugi-L(128/256), Carat(128/256), SA-F(8/16) and
 * SD-F(8/16).  Array-level categories: Acc / FIFO / PE / Nonlinear /
 * Vector / TC / control; node level adds SRAM; the NoC (4x4) level
 * adds router area.  Power uses the Llama 2 70B decode workload
 * (batch 8, seq 4096).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

int
main()
{
    bench::print_title("Figure 13: area and power breakdown");
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"Mugi(128)", sim::make_mugi(128)},
            {"Mugi(256)", sim::make_mugi(256)},
            {"Mugi-L(128)", sim::make_mugi_l(128)},
            {"Mugi-L(256)", sim::make_mugi_l(256)},
            {"Carat(128)", sim::make_carat(128)},
            {"Carat(256)", sim::make_carat(256)},
            {"SA-F(8)", sim::make_systolic(8, true)},
            {"SA-F(16)", sim::make_systolic(16, true)},
            {"SD-F(8)", sim::make_simd(8, true)},
            {"SD-F(16)", sim::make_simd(16, true)},
        };

    bench::print_subtitle("array-level area breakdown (mm^2)");
    bench::print_header("design", {"acc", "fifo", "pe", "nonlin",
                                   "vector", "tc", "ctrl", "array"});
    for (const auto& [label, d] : designs) {
        const sim::AreaBreakdown a = serve::Engine(d).area();
        bench::print_row(label,
                         {a.acc, a.fifo, a.pe, a.nonlinear, a.vector,
                          a.tc, a.control, a.array_total()},
                         "%9.4f");
    }

    bench::print_subtitle("node-level area (mm^2) and power (mW)");
    bench::print_header("design",
                        {"array", "sram", "total", "power_mW"});
    for (const auto& [label, d] : designs) {
        const serve::Engine engine(d);
        const sim::AreaBreakdown a = engine.area();
        const sim::PerfReport r = engine.perf(w);
        bench::print_row(label, {a.array_total(), a.sram, a.total(),
                                 r.power_w * 1000.0},
                         "%9.3f");
    }

    bench::print_subtitle("NoC (4x4) level area (mm^2) / power (W)");
    bench::print_header("design", {"array", "sram", "noc", "total",
                                   "power_W"});
    for (const auto& [label, d] : designs) {
        const sim::DesignConfig mesh = d.with_noc(4, 4);
        const serve::Engine engine(mesh);
        const sim::AreaBreakdown a = engine.area();
        const sim::PerfReport r = engine.perf(w);
        bench::print_row(label,
                         {16.0 * a.array_total(), 16.0 * a.sram,
                          16.0 * a.noc, sim::total_area_mm2(mesh),
                          r.power_w},
                         "%9.3f");
    }

    std::printf(
        "\nExpected shape (paper): Mugi(128) array ~0.5 mm^2 / "
        "~117 mW node power;\nCarat's FIFO bar dominates its array "
        "(the 4.5x buffer-minimization\nablation); Mugi-L adds a "
        "large nonlinear (LUT) bar; SA-F/SD-F arrays are\nMAC-"
        "dominated and scale quadratically.\n");
    return 0;
}
