/**
 * @file
 * Figure 14: iso-throughput batch-size study.  Batch 1..32 across
 * sequence lengths 128..4096, geometric mean over the Llama 2 family;
 * normalized throughput and energy-per-token against an 8x8 systolic
 * array at batch 1.  Designs: Mugi(64/256), Carat(64/256),
 * SA/SA-F/SD/SD-F (8/16).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

namespace {

struct Point {
    double throughput = 0.0;
    double energy_per_token = 0.0;
};

Point
geomean(const sim::DesignConfig& d, std::size_t batch, std::size_t seq)
{
    double t = 1.0, e = 1.0;
    const auto family = model::llama_family();
    for (const model::ModelConfig& m : family) {
        const model::Workload w =
            model::build_decode_workload(m, batch, seq);
        const sim::PerfReport r = serve::Engine(d).perf(w);
        t *= r.throughput_tokens_per_s;
        e *= r.energy_per_token_j;
    }
    const double inv = 1.0 / static_cast<double>(family.size());
    return {std::pow(t, inv), std::pow(e, inv)};
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 14: batch-size sweep (normalized to SA(8) at batch 1)");

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"Mugi(64)", sim::make_mugi(64)},
            {"Mugi(256)", sim::make_mugi(256)},
            {"Carat(64)", sim::make_carat(64)},
            {"Carat(256)", sim::make_carat(256)},
            {"SA(8)", sim::make_systolic(8)},
            {"SA(16)", sim::make_systolic(16)},
            {"SA-F(8)", sim::make_systolic(8, true)},
            {"SA-F(16)", sim::make_systolic(16, true)},
            {"SD(8)", sim::make_simd(8)},
            {"SD(16)", sim::make_simd(16)},
            {"SD-F(8)", sim::make_simd(8, true)},
            {"SD-F(16)", sim::make_simd(16, true)},
        };
    const std::vector<std::size_t> batches = {1, 2, 4, 8, 16, 32};
    const std::vector<std::size_t> seqs = {128, 512, 4096};

    std::vector<std::string> cols;
    for (const std::size_t b : batches) cols.push_back(std::to_string(b));

    for (const std::size_t seq : seqs) {
        const Point base = geomean(sim::make_systolic(8), 1, seq);
        bench::print_subtitle("seq " + std::to_string(seq) +
                              ": normalized throughput vs batch");
        bench::print_header("design \\ batch", cols);
        for (const auto& [label, d] : designs) {
            std::vector<double> row;
            for (const std::size_t b : batches) {
                row.push_back(geomean(d, b, seq).throughput /
                              base.throughput);
            }
            bench::print_row(label, row, "%9.2f");
        }
        bench::print_subtitle("seq " + std::to_string(seq) +
                              ": normalized energy/token vs batch");
        bench::print_header("design \\ batch", cols);
        for (const auto& [label, d] : designs) {
            std::vector<double> row;
            for (const std::size_t b : batches) {
                row.push_back(geomean(d, b, seq).energy_per_token /
                              base.energy_per_token);
            }
            bench::print_row(label, row, "%9.3f");
        }
    }

    std::printf(
        "\nExpected shape (paper): Mugi reaches its best throughput "
        "already at\nbatch 8 (columns full; mapping the batch across "
        "columns), while SA/SD\nneed batch >= array dim; energy/token "
        "falls with batch for all designs\nas weight traffic "
        "amortizes, with Mugi lowest.\n");
    return 0;
}
