/**
 * @file
 * Figure 14: iso-throughput batch-size study.  Batch 1..32 across
 * sequence lengths 128..4096, geometric mean over the Llama 2 family;
 * normalized throughput and energy-per-token against an 8x8 systolic
 * array at batch 1.  Designs: Mugi(64/256), Carat(64/256),
 * SA/SA-F/SD/SD-F (8/16).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "serve/batch_policy.h"

using namespace mugi;

namespace {

// The sweep primitive lives in serve::BatchPolicy now -- the same
// numbers this figure prints drive the Scheduler's batch target.
serve::BatchSweepPoint
geomean(const sim::DesignConfig& d, std::size_t batch, std::size_t seq)
{
    const auto family = model::llama_family();
    return serve::BatchPolicy::evaluate(d, family, batch, seq);
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 14: batch-size sweep (normalized to SA(8) at batch 1)");

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"Mugi(64)", sim::make_mugi(64)},
            {"Mugi(256)", sim::make_mugi(256)},
            {"Carat(64)", sim::make_carat(64)},
            {"Carat(256)", sim::make_carat(256)},
            {"SA(8)", sim::make_systolic(8)},
            {"SA(16)", sim::make_systolic(16)},
            {"SA-F(8)", sim::make_systolic(8, true)},
            {"SA-F(16)", sim::make_systolic(16, true)},
            {"SD(8)", sim::make_simd(8)},
            {"SD(16)", sim::make_simd(16)},
            {"SD-F(8)", sim::make_simd(8, true)},
            {"SD-F(16)", sim::make_simd(16, true)},
        };
    const std::vector<std::size_t> batches = {1, 2, 4, 8, 16, 32};
    const std::vector<std::size_t> seqs = {128, 512, 4096};

    std::vector<std::string> cols;
    for (const std::size_t b : batches) cols.push_back(std::to_string(b));

    for (const std::size_t seq : seqs) {
        const serve::BatchSweepPoint base =
            geomean(sim::make_systolic(8), 1, seq);
        bench::print_subtitle("seq " + std::to_string(seq) +
                              ": normalized throughput vs batch");
        bench::print_header("design \\ batch", cols);
        for (const auto& [label, d] : designs) {
            std::vector<double> row;
            for (const std::size_t b : batches) {
                row.push_back(geomean(d, b, seq)
                                  .throughput_tokens_per_s /
                              base.throughput_tokens_per_s);
            }
            bench::print_row(label, row, "%9.2f");
        }
        bench::print_subtitle("seq " + std::to_string(seq) +
                              ": normalized energy/token vs batch");
        bench::print_header("design \\ batch", cols);
        for (const auto& [label, d] : designs) {
            std::vector<double> row;
            for (const std::size_t b : batches) {
                row.push_back(geomean(d, b, seq).energy_per_token_j /
                              base.energy_per_token_j);
            }
            bench::print_row(label, row, "%9.3f");
        }
    }

    bench::print_subtitle(
        "derived serving batch targets (serve::BatchPolicy knee)");
    for (const auto& [label, d] : designs) {
        const serve::BatchPolicy policy = serve::BatchPolicy::derive(
            d, model::llama2_70b(), /*context=*/512, /*max_batch=*/32);
        std::printf("  %-10s -> batch %zu\n", label,
                    policy.target_batch());
    }

    std::printf(
        "\nExpected shape (paper): Mugi reaches its best throughput "
        "already at\nbatch 8 (columns full; mapping the batch across "
        "columns), while SA/SD\nneed batch >= array dim; energy/token "
        "falls with batch for all designs\nas weight traffic "
        "amortizes, with Mugi lowest.\n");
    return 0;
}
