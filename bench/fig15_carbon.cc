/**
 * @file
 * Figure 15: normalized on-chip operational and embodied carbon
 * across Llama 2 model sizes (7B, 13B, 70B, 70B-GQA), batch 8,
 * sequence 4096.  Designs M/C/S/D/T/P: Mugi(256), Carat(256),
 * Systolic(16), SIMD(16), and systolic arrays paired with Taylor (T)
 * and PWL (P) nonlinear units.  Operational carbon splits per op
 * class; embodied carbon is area-proportional (Eq. 6/7).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "carbon/carbon_model.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

namespace {

sim::DesignConfig
systolic_with(sim::NonlinearScheme scheme, const char* name)
{
    sim::DesignConfig d = sim::make_systolic(16);
    d.nonlinear = scheme;
    d.name = name;
    return d;
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 15: normalized operational + embodied carbon");

    std::vector<std::pair<const char*, model::ModelConfig>> models = {
        {"7B", model::llama2_7b()},
        {"13B", model::llama2_13b()},
        {"70B-GQA", model::llama2_70b()},
    };
    model::ModelConfig mha70 = model::llama2_70b();
    mha70.num_kv_heads = mha70.num_heads;
    mha70.name = "llama2-70b-mha";
    models.insert(models.begin() + 2, {"70B", mha70});

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"M (Mugi 256)", sim::make_mugi(256)},
            {"C (Carat 256)", sim::make_carat(256)},
            {"S (SA 16)", sim::make_systolic(16)},
            {"D (SD 16)", sim::make_simd(16)},
            {"T (SA16+Taylor)",
             systolic_with(sim::NonlinearScheme::kTaylor,
                           "SA16-Taylor")},
            {"P (SA16+PWL)",
             systolic_with(sim::NonlinearScheme::kPwl, "SA16-PWL")},
        };

    for (const auto& [mlabel, mconfig] : models) {
        bench::print_subtitle(std::string("Llama 2 ") + mlabel +
                              " (normalized to Mugi total)");
        const model::Workload w =
            model::build_decode_workload(mconfig, 8, 4096);

        // Normalize to Mugi's total carbon per token.
        const sim::PerfReport mugi_perf =
            serve::Engine(sim::make_mugi(256)).perf(w);
        const carbon::CarbonReport mugi_carbon =
            carbon::assess(sim::make_mugi(256), mugi_perf);
        const double norm = mugi_carbon.total_g_per_token();

        bench::print_header("design", {"proj", "attn", "ffn",
                                       "nonlin", "embodied", "total"});
        for (const auto& [dlabel, d] : designs) {
            const sim::PerfReport perf = serve::Engine(d).perf(w);
            const carbon::CarbonReport c = carbon::assess(d, perf);
            // Split the operational share by per-class dynamic
            // energy (leakage follows the same split).
            double energy_total = 0.0;
            for (const auto& [cls, e] : perf.energy_by_class) {
                energy_total += e;
            }
            std::vector<double> row;
            for (const model::OpClass cls :
                 {model::OpClass::kProjection,
                  model::OpClass::kAttention, model::OpClass::kFfn,
                  model::OpClass::kNonlinear}) {
                const double share =
                    perf.energy_by_class.count(cls)
                        ? perf.energy_by_class.at(cls) / energy_total
                        : 0.0;
                row.push_back(share * c.operational_g_per_token /
                              norm);
            }
            row.push_back(c.embodied_g_per_token / norm);
            row.push_back(c.total_g_per_token() / norm);
            bench::print_row(dlabel, row, "%9.3f");
        }
    }

    std::printf(
        "\nExpected shape (paper): Mugi lowers operational carbon "
        "~1.45x and\nembodied carbon ~1.48x vs the baselines; "
        "operational dominates at 45 nm;\nthe nonlinear share is "
        "negligible for Mugi but visible for T/P designs.\n");
    return 0;
}
