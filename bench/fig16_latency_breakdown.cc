/**
 * @file
 * Figure 16: normalized end-to-end latency breakdown
 * (projection / attention / FFN / nonlinear) across Llama 2 sizes,
 * batch 8, sequence 4096.  Designs M/C/S/T/P as in Fig. 15 (S covers
 * systolic/SIMD).  Latencies normalized per model to Mugi's total.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/workload.h"
#include "sim/event_sim.h"
#include "serve/engine.h"

using namespace mugi;

int
main()
{
    bench::print_title("Figure 16: end-to-end latency breakdown");

    std::vector<std::pair<const char*, model::ModelConfig>> models = {
        {"7B", model::llama2_7b()},
        {"13B", model::llama2_13b()},
        {"70B-GQA", model::llama2_70b()},
    };
    model::ModelConfig mha70 = model::llama2_70b();
    mha70.num_kv_heads = mha70.num_heads;
    mha70.name = "llama2-70b-mha";
    models.insert(models.begin() + 2, {"70B", mha70});

    auto systolic_taylor = sim::make_systolic(16);
    systolic_taylor.nonlinear = sim::NonlinearScheme::kTaylor;
    systolic_taylor.name = "SA16-Taylor";
    auto systolic_pwl = sim::make_systolic(16);
    systolic_pwl.nonlinear = sim::NonlinearScheme::kPwl;
    systolic_pwl.name = "SA16-PWL";

    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"M (Mugi 256)", sim::make_mugi(256)},
            {"C (Carat 256)", sim::make_carat(256)},
            {"S (SA 16)", sim::make_systolic(16)},
            {"T (SA16+Taylor)", systolic_taylor},
            {"P (SA16+PWL)", systolic_pwl},
        };

    for (const auto& [mlabel, mconfig] : models) {
        const model::Workload w =
            model::build_decode_workload(mconfig, 8, 4096);
        const double norm =
            serve::Engine(sim::make_mugi(256)).perf(w).total_cycles;

        bench::print_subtitle(std::string("Llama 2 ") + mlabel +
                              " (cycles normalized to Mugi total)");
        bench::print_header("design", {"proj", "attn", "ffn",
                                       "nonlin", "total", "ev-sim"});
        for (const auto& [dlabel, d] : designs) {
            const serve::SystemReport report =
                serve::Engine(d).evaluate(w);
            const sim::PerfReport& r = report.perf;
            const sim::EventSimResult& ev = report.event_sim;
            std::vector<double> row;
            for (const model::OpClass cls :
                 {model::OpClass::kProjection,
                  model::OpClass::kAttention, model::OpClass::kFfn,
                  model::OpClass::kNonlinear}) {
                row.push_back(r.cycles_by_class.count(cls)
                                  ? r.cycles_by_class.at(cls) / norm
                                  : 0.0);
            }
            row.push_back(r.total_cycles / norm);
            row.push_back(ev.makespan_cycles / norm);
            bench::print_row(dlabel, row, "%9.3f");
        }
    }

    std::printf(
        "\nExpected shape (paper): Mugi nearly halves projection/FFN "
        "latency vs the\nbaselines and keeps a slight edge on "
        "attention; its nonlinear latency is\nalmost invisible, while "
        "Carat's is ~3x Mugi's and the precise/Taylor/PWL\nbars are "
        "clearly visible.  The event-sim column cross-checks the\n"
        "analytic totals.\n");
    return 0;
}
