/**
 * @file
 * Figure 17: NoC-level normalized throughput, energy efficiency and
 * power efficiency for 4x4 and 8x8 meshes (tensor core: single node,
 * 2x1 and 2x2), geometric mean over the Llama 2 family, batch 8,
 * sequence 4096.  Normalized to the 4x4 SA(16) mesh.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/workload.h"
#include "serve/engine.h"

using namespace mugi;

namespace {

struct Metrics {
    double throughput = 0.0;
    double energy_eff = 0.0;
    double power_eff = 0.0;
};

Metrics
geomean(const sim::DesignConfig& d)
{
    double t = 1.0, e = 1.0, p = 1.0;
    const auto family = model::llama_family();
    for (const model::ModelConfig& m : family) {
        const model::Workload w =
            model::build_decode_workload(m, 8, 4096);
        const sim::PerfReport r = serve::Engine(d).perf(w);
        t *= r.throughput_tokens_per_s;
        e *= r.energy_efficiency;
        p *= r.power_efficiency;
    }
    const double inv = 1.0 / static_cast<double>(family.size());
    return {std::pow(t, inv), std::pow(e, inv), std::pow(p, inv)};
}

}  // namespace

int
main()
{
    bench::print_title(
        "Figure 17: NoC-level comparison (normalized to 4x4 SA(16))");

    const Metrics base = geomean(sim::make_systolic(16).with_noc(4, 4));

    struct Entry {
        const char* group;
        sim::DesignConfig design;
    };
    const std::vector<Entry> entries = {
        // Group 1: single-node / scaled-up anchors (64/8/S column).
        {"SN", sim::make_mugi(64)},
        {"SN", sim::make_carat(64)},
        {"SN", sim::make_systolic(8)},
        {"SN", sim::make_simd(8)},
        {"SN", sim::make_tensor()},
        // Group 2: 4x4 meshes (128/16/2 column; tensor 2x1).
        {"4x4", sim::make_mugi(128).with_noc(4, 4)},
        {"4x4", sim::make_carat(128).with_noc(4, 4)},
        {"4x4", sim::make_systolic(16).with_noc(4, 4)},
        {"4x4", sim::make_systolic(16, true).with_noc(4, 4)},
        {"4x4", sim::make_simd(16).with_noc(4, 4)},
        {"4x4", sim::make_simd(16, true).with_noc(4, 4)},
        {"4x4", sim::make_tensor().with_noc(2, 1)},
        // Group 3: 8x8 meshes (256/SU/4 column; tensor 2x2,
        // scaled-up SA/SD 64).
        {"8x8", sim::make_mugi(256).with_noc(8, 8)},
        {"8x8", sim::make_carat(256).with_noc(8, 8)},
        {"8x8", sim::make_systolic(64)},
        {"8x8", sim::make_simd(64)},
        {"8x8", sim::make_tensor().with_noc(2, 2)},
    };

    bench::print_header("design", {"norm-thr", "norm-Eeff",
                                   "norm-Peff"});
    for (const Entry& e : entries) {
        const Metrics m = geomean(e.design);
        bench::print_row(std::string(e.group) + " " + e.design.name,
                         {m.throughput / base.throughput,
                          m.energy_eff / base.energy_eff,
                          m.power_eff / base.power_eff},
                         "%9.2f");
    }

    std::printf(
        "\nExpected shape (paper): Mugi meshes lead every group "
        "(~2x the SA mesh\nat equal NoC shape); NoC scaling is "
        "near-linear for all designs; the\nscaled-up SA/SD(64) in the "
        "8x8 group fall far behind the meshes due to\nsmall-batch "
        "under-utilization; tensor cores trade throughput for power\n"
        "efficiency.\n");
    return 0;
}
