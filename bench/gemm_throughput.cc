/**
 * @file
 * Functional GEMM execution throughput (library-quality check; not a
 * paper figure): wall-clock of the sweep-accumulator kernel vs the
 * literal cycle-by-row baseline, and end-to-end decode tokens/s of
 * the fused batched Engine::step vs the sequential path at batch
 * 1/4/16 for float and INT4 KV caches, with the simulated cycle
 * counts StepResult charges for each.
 *
 * With --json PATH the same numbers are written machine-readable
 * (BENCH_gemm.json in CI, uploaded as an artifact).  With --check
 * the binary exits nonzero if the fused path is slower than the
 * sequential path at any batch size, or if the kernel speedup falls
 * below the 10x floor -- the CI regression gate for this path.
 */

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/engine.h"
#include "support/rng.h"
#include "vlp/vlp_gemm.h"

using namespace mugi;

namespace {

struct KernelResult {
    double baseline_s = 0.0;
    double sweep_s = 0.0;
    double speedup = 0.0;
    bool bit_identical = false;
};

KernelResult
run_kernel_microbench()
{
    // Serving-shaped GEMM: H=256 Mugi node, d_model-sized reduction,
    // one batch tile of activations.
    const std::size_t n = 512, k = 256, b = 8;
    const int array_rows = 256, array_cols = 8;
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> wdist(-7, 7);
    vlp::Int4Matrix w(n, k);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
            w.at(r, c) = numerics::Int4::from_int(wdist(rng));
        }
    }
    support::MatrixF x(k, b);
    support::fill_gaussian(x, rng, 0.0f, 1.0f);

    KernelResult result;
    const vlp::VlpGemmResult golden =
        vlp::vlp_gemm_mugi_baseline(w, x, array_rows, array_cols);
    const vlp::VlpGemmResult fast =
        vlp::vlp_gemm_mugi(w, x, array_rows, array_cols);
    result.bit_identical = golden.out == fast.out &&
                           golden.cycles == fast.cycles &&
                           golden.sweeps == fast.sweeps &&
                           golden.subscriptions == fast.subscriptions;

    // Interleave the two kernels' reps so drifting background load
    // degrades both best-of measurements alike.
    result.baseline_s = 1e300;
    result.sweep_s = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
        result.baseline_s =
            std::min(result.baseline_s, bench::best_of(1, [&] {
                const vlp::VlpGemmResult r =
                    vlp::vlp_gemm_mugi_baseline(w, x, array_rows,
                                                array_cols);
                if (r.out.size() == 0) std::abort();
            }));
        result.sweep_s =
            std::min(result.sweep_s, bench::best_of(1, [&] {
                const vlp::VlpGemmResult r = vlp::vlp_gemm_mugi(
                    w, x, array_rows, array_cols);
                if (r.out.size() == 0) std::abort();
            }));
    }
    result.speedup = result.baseline_s / result.sweep_s;
    return result;
}

struct DecodeResult {
    std::size_t batch = 0;
    std::string kv;
    double sequential_tok_s = 0.0;
    double fused_tok_s = 0.0;
    double speedup = 0.0;
    std::uint64_t sequential_cycles = 0;
    std::uint64_t fused_cycles = 0;
    bool tokens_identical = false;
};

DecodeResult
run_decode_bench(const serve::Engine& engine,
                 const model::ModelConfig& config, std::size_t batch,
                 quant::KvPrecision precision, int decode_steps)
{
    DecodeResult result;
    result.batch = batch;
    result.kv = precision == quant::KvPrecision::kInt4 ? "int4"
                                                       : "float";

    // One warm context per lane, shared setup for both paths.
    const auto make_sessions = [&] {
        std::vector<serve::Session> sessions;
        sessions.reserve(batch);
        for (std::size_t i = 0; i < batch; ++i) {
            serve::SessionOptions options;
            options.kv_precision = precision;
            sessions.push_back(engine.create_session(options));
            const auto prompt = model::synthetic_tokens(
                4 + i % 3, config.vocab,
                static_cast<std::uint32_t>(1000 + i));
            engine.prefill(sessions.back(), prompt);
        }
        return sessions;
    };

    const auto run_path = [&](bool fused, double& wall_s,
                              std::uint64_t& cycles) {
        std::vector<int> produced;
        // Best-of-3: a fresh session set per repeat (the decode is
        // deterministic, so tokens and cycles agree across repeats).
        wall_s = 1e300;
        for (int repeat = 0; repeat < 3; ++repeat) {
            std::vector<serve::Session> sessions = make_sessions();
            serve::StepPlan plan;
            plan.fused_decode = fused;
            for (serve::Session& s : sessions) {
                plan.decode_sessions.push_back(&s);
            }
            plan.decode_tokens.assign(batch, 0);
            for (std::size_t i = 0; i < batch; ++i) {
                plan.decode_tokens[i] = static_cast<int>(
                    (7 * i + 3) % config.vocab);
            }
            produced.clear();
            cycles = 0;
            const bench::Timer timer;
            for (int step = 0; step < decode_steps; ++step) {
                const serve::StepResult r = engine.step(plan);
                cycles += r.gemm.cycles;
                for (std::size_t i = 0; i < batch; ++i) {
                    produced.push_back(r.outputs[i].next_token);
                    plan.decode_tokens[i] = r.outputs[i].next_token;
                }
            }
            wall_s = std::min(wall_s, timer.seconds());
        }
        return produced;
    };

    double seq_s = 0.0, fused_s = 0.0;
    const std::vector<int> seq_tokens =
        run_path(false, seq_s, result.sequential_cycles);
    const std::vector<int> fused_tokens =
        run_path(true, fused_s, result.fused_cycles);
    result.tokens_identical = seq_tokens == fused_tokens;
    const double tokens =
        static_cast<double>(batch) * decode_steps;
    result.sequential_tok_s = tokens / seq_s;
    result.fused_tok_s = tokens / fused_s;
    result.speedup = result.fused_tok_s / result.sequential_tok_s;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        }
    }

    bench::print_title("Functional GEMM throughput");

    bench::print_subtitle(
        "Kernel: sweep-accumulator vs cycle-by-row baseline "
        "(512x256x8, H=256)");
    const KernelResult kernel = run_kernel_microbench();
    bench::print_header("", {"base ms", "sweep ms", "speedup"});
    bench::print_row("vlp_gemm_mugi",
                     {kernel.baseline_s * 1e3, kernel.sweep_s * 1e3,
                      kernel.speedup});
    std::printf("bit-identical: %s\n",
                kernel.bit_identical ? "yes" : "NO");

    bench::print_subtitle(
        "Decode: fused batched Engine::step vs sequential "
        "(llama2-7b eval scale, d=256)");
    // Large enough that the projection GEMMs dominate the step (the
    // per-step analytic workload evaluation is path-independent and
    // would otherwise dilute the comparison toward 1.0).
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 256, 1024);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 7);
    const serve::Engine engine(sim::make_mugi(256), transformer);

    bench::print_header("batch/kv", {"seq tok/s", "fused tok/s",
                                     "speedup", "seq Mcyc", "fus Mcyc"});
    std::vector<DecodeResult> rows;
    for (const quant::KvPrecision precision :
         {quant::KvPrecision::kFloat, quant::KvPrecision::kInt4}) {
        for (const std::size_t batch : {1u, 4u, 16u}) {
            const DecodeResult row = run_decode_bench(
                engine, config, batch, precision, 8);
            bench::print_row(
                std::to_string(batch) + "/" + row.kv,
                {row.sequential_tok_s, row.fused_tok_s, row.speedup,
                 static_cast<double>(row.sequential_cycles) / 1e6,
                 static_cast<double>(row.fused_cycles) / 1e6},
                "%9.2f");
            rows.push_back(row);
        }
    }

    bool ok = kernel.bit_identical;
    bool fused_never_slower = true;
    bool tokens_all_identical = true;
    for (const DecodeResult& row : rows) {
        // Batch 1 runs the identical sequential code under both
        // flags (Engine::step's batch-of-one fallback), so its two
        // timings differ only by noise; the perf gate covers the
        // real batches.
        if (row.batch > 1) {
            fused_never_slower &=
                row.fused_tok_s >= row.sequential_tok_s;
        }
        tokens_all_identical &= row.tokens_identical;
    }
    std::printf("\nfused >= sequential at every batch > 1: %s\n",
                fused_never_slower ? "yes" : "NO");
    std::printf("fused tokens bit-identical: %s\n",
                tokens_all_identical ? "yes" : "NO");

    if (!json_path.empty()) {
        bench::Json decode = bench::Json::array();
        for (const DecodeResult& row : rows) {
            decode.push(
                bench::Json::object()
                    .set("batch", row.batch)
                    .set("kv", row.kv)
                    .set("sequential_tokens_per_s",
                         row.sequential_tok_s)
                    .set("fused_tokens_per_s", row.fused_tok_s)
                    .set("speedup", row.speedup)
                    .set("sequential_gemm_cycles",
                         row.sequential_cycles)
                    .set("fused_gemm_cycles", row.fused_cycles)
                    .set("tokens_identical", row.tokens_identical));
        }
        const bench::Json doc =
            bench::Json::object()
                .set("kernel",
                     bench::Json::object()
                         .set("shape", "512x256x8")
                         .set("baseline_ms", kernel.baseline_s * 1e3)
                         .set("sweep_ms", kernel.sweep_s * 1e3)
                         .set("speedup", kernel.speedup)
                         .set("bit_identical", kernel.bit_identical))
                .set("decode", std::move(decode));
        if (!doc.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (check) {
        if (!ok || !tokens_all_identical) {
            std::fprintf(stderr,
                         "CHECK FAILED: bit-identity violated\n");
            return 1;
        }
        if (!fused_never_slower) {
            std::fprintf(
                stderr,
                "CHECK FAILED: fused decode slower than sequential\n");
            return 1;
        }
        if (kernel.speedup < 10.0) {
            std::fprintf(stderr,
                         "CHECK FAILED: kernel speedup %.1fx < 10x\n",
                         kernel.speedup);
            return 1;
        }
    }
    return 0;
}
