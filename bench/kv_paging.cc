/**
 * @file
 * KV paging study: sessions admitted and pool utilization at a fixed
 * KV budget, contiguous full-length projection vs paged block
 * reservation (serve::AdmissionMode), for the Mugi INT4 KVQ cache
 * and the float baseline.
 *
 * The budget is sized to hold two *float* requests at full projected
 * length, so the four rows decompose the two memory wins the serving
 * stack stacks up:
 *  - KVQ (Sec. 2.3.3) shrinks every block ~8x vs float storage;
 *  - paged reservation admits against prompt blocks + a watermark
 *    instead of prompt + max_new_tokens, reclaiming blocks by
 *    preemption when decode growth outruns the pool.
 * Paged admission must keep strictly more sessions resident than
 * projection at the same budget (enforced by the trailing check and
 * by tests/serve/scheduler_test.cc).
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "serve/scheduler.h"

using namespace mugi;

namespace {

struct TraceResult {
    std::size_t max_active = 0;
    serve::ServerStats stats;
};

TraceResult
serve_trace(const serve::Engine& engine, quant::KvPrecision precision,
            serve::AdmissionMode mode, units::Bytes budget_bytes)
{
    serve::SchedulerConfig config;
    config.admission = mode;
    config.kv_budget_bytes = budget_bytes;
    config.prefill_chunk_tokens = units::Tokens(64);
    config.max_batch = 24;
    serve::Scheduler scheduler(engine, config);
    for (int i = 0; i < 24; ++i) {
        serve::Request request;
        request.analytic_prompt_tokens = units::Tokens(32);
        request.max_new_tokens = units::Tokens(160);
        request.session.kv_precision = precision;
        scheduler.submit(std::move(request));
    }
    TraceResult result;
    while (scheduler.step()) {
        result.max_active =
            std::max(result.max_active, scheduler.active());
    }
    result.stats = scheduler.stats();
    return result;
}

}  // namespace

int
main()
{
    bench::print_title(
        "KV paging: admission discipline at a fixed KV budget");

    const model::ModelConfig model = model::llama2_7b();
    const serve::Engine engine(sim::make_mugi(256), model);

    // Two float requests at full projected length (prompt 32 + 160
    // new tokens), in whole default-size blocks.
    const units::Bytes budget =
        sim::kv_footprint(model, units::Positions(32 + 160),
                          quant::KvPrecision::kFloat)
            .paged_bytes *
        2;
    std::printf("model %s, 24 requests (prompt 32, gen 160), budget "
                "%.1f MiB\n",
                model.name.c_str(),
                static_cast<double>(budget.value()) / (1 << 20));

    const std::vector<
        std::pair<const char*, quant::KvPrecision>>
        precisions = {
            {"float", quant::KvPrecision::kFloat},
            {"int4-kvq", quant::KvPrecision::kInt4},
        };
    const std::vector<std::pair<const char*, serve::AdmissionMode>>
        modes = {
            {"projection", serve::AdmissionMode::kFullProjection},
            {"paged", serve::AdmissionMode::kPagedReservation},
        };

    bench::print_header("precision/admission",
                        {"sessions", "preempts", "peak-util",
                         "tokens/s", "horizon-s"});
    bool paged_wins = true;
    for (const auto& [pname, precision] : precisions) {
        std::size_t projection_active = 0;
        for (const auto& [mname, mode] : modes) {
            const TraceResult r =
                serve_trace(engine, precision, mode, budget);
            bench::print_row(
                std::string(pname) + "/" + mname,
                {static_cast<double>(r.max_active),
                 static_cast<double>(r.stats.preemptions),
                 r.stats.peak_pool_utilization,
                 r.stats.horizon.throughput_tokens_per_s,
                 r.stats.horizon.runtime_s},
                "%9.3g");
            if (mode == serve::AdmissionMode::kFullProjection) {
                projection_active = r.max_active;
            } else {
                paged_wins &= r.max_active > projection_active;
            }
        }
    }
    std::printf("\npaged reservation admitted strictly more "
                "concurrent sessions than full projection at every "
                "precision: %s\n",
                paged_wins ? "yes" : "NO (regression!)");
    return paged_wins ? 0 : 1;
}
