/**
 * @file
 * Google-Benchmark micro-kernels (library-quality check; not a paper
 * figure): host-side speed of the functional kernels this library
 * ships -- the VLP approximator vs the reference nonlinearities, the
 * temporal GEMM simulation, group quantization, and the transformer
 * forward pass.  These guard against performance regressions in the
 * simulation substrate itself.
 */

#include <algorithm>
#include <random>
#include <vector>

#include <benchmark/benchmark.h>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "nonlinear/pwl.h"
#include "nonlinear/taylor.h"
#include "quant/group_quant.h"
#include "serve/prepared_weights.h"
#include "support/rng.h"
#include "vlp/vlp_approximator.h"
#include "vlp/vlp_gemm.h"

using namespace mugi;

namespace {

std::vector<float>
random_values(std::size_t n, float lo, float hi, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> v(n);
    for (float& x : v) x = dist(rng);
    return v;
}

void
BM_ExactExp(benchmark::State& state)
{
    const auto exact = nonlinear::make_exact(nonlinear::NonlinearOp::kExp);
    const auto in = random_values(4096, -16.0f, 0.0f, 1);
    std::vector<float> out(in.size());
    for (auto _ : state) {
        exact->apply_batch(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_ExactExp);

void
BM_VlpExp(benchmark::State& state)
{
    const auto vlp = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    const auto in = random_values(4096, -16.0f, 0.0f, 2);
    std::vector<float> out(in.size());
    for (auto _ : state) {
        vlp->apply_batch(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_VlpExp);

void
BM_PwlExp(benchmark::State& state)
{
    const nonlinear::PwlApproximator pwl(
        {nonlinear::NonlinearOp::kExp, 22, -16.0});
    const auto in = random_values(4096, -16.0f, 0.0f, 3);
    std::vector<float> out(in.size());
    for (auto _ : state) {
        pwl.apply_batch(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_PwlExp);

void
BM_TaylorExp(benchmark::State& state)
{
    const nonlinear::TaylorApproximator taylor(
        {nonlinear::NonlinearOp::kExp, 9, -4.0});
    const auto in = random_values(4096, -16.0f, 0.0f, 4);
    std::vector<float> out(in.size());
    for (auto _ : state) {
        taylor.apply_batch(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_TaylorExp);

void
BM_TemporalGemm(benchmark::State& state)
{
    const std::size_t n = state.range(0);
    std::mt19937 rng(5);
    std::uniform_int_distribution<int> wdist(-7, 7);
    vlp::Int4Matrix w(n, 32);
    support::MatrixF x(32, 8);
    for (std::size_t i = 0; i < w.rows(); ++i) {
        for (std::size_t j = 0; j < w.cols(); ++j) {
            w.at(i, j) = numerics::Int4::from_int(wdist(rng));
        }
    }
    support::fill_gaussian(x, rng, 0.0f, 1.0f);
    for (auto _ : state) {
        const vlp::VlpGemmResult r = vlp::vlp_gemm_mugi(w, x, 64, 8);
        benchmark::DoNotOptimize(r.out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * 32 * 8);
}
BENCHMARK(BM_TemporalGemm)->Arg(64)->Arg(256);

void
BM_TemporalGemmBaseline(benchmark::State& state)
{
    // The literal cycle-by-row simulation the sweep-accumulator
    // kernel replaced; the gap between this and BM_TemporalGemm is
    // the kernel win bench/gemm_throughput gates on.
    const std::size_t n = state.range(0);
    std::mt19937 rng(5);
    std::uniform_int_distribution<int> wdist(-7, 7);
    vlp::Int4Matrix w(n, 32);
    support::MatrixF x(32, 8);
    for (std::size_t i = 0; i < w.rows(); ++i) {
        for (std::size_t j = 0; j < w.cols(); ++j) {
            w.at(i, j) = numerics::Int4::from_int(wdist(rng));
        }
    }
    support::fill_gaussian(x, rng, 0.0f, 1.0f);
    for (auto _ : state) {
        const vlp::VlpGemmResult r =
            vlp::vlp_gemm_mugi_baseline(w, x, 64, 8);
        benchmark::DoNotOptimize(r.out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * 32 * 8);
}
BENCHMARK(BM_TemporalGemmBaseline)->Arg(64)->Arg(256);

/** Shared setup for the subscription-sweep executor A/B pair. */
struct SubscribedSetup {
    vlp::SubscriptionLists subs;
    support::MatrixF acts;
    support::MatrixF out;

    explicit SubscribedSetup(std::size_t n)
    {
        std::mt19937 rng(5);
        std::uniform_int_distribution<int> wdist(-7, 7);
        vlp::Int4Matrix w(n, 32);
        for (std::size_t i = 0; i < w.rows(); ++i) {
            for (std::size_t j = 0; j < w.cols(); ++j) {
                w.at(i, j) = numerics::Int4::from_int(wdist(rng));
            }
        }
        subs = vlp::SubscriptionLists(w);
        acts = support::MatrixF(32, 8);
        support::fill_gaussian(acts, rng, 0.0f, 1.0f);
        out = support::MatrixF(n, 8, 0.0f);
    }
};

void
BM_SubscribedSweep(benchmark::State& state)
{
    // The u32 cycle-major executor the packed form replaced; the gap
    // to BM_SubscribedSweepPacked is the u16 tile-packing win.
    SubscribedSetup setup(state.range(0));
    for (auto _ : state) {
        std::fill(setup.out.data().begin(), setup.out.data().end(),
                  0.0f);
        vlp::vlp_gemm_subscribed(setup.subs, setup.acts, 0,
                                 setup.subs.cols(), setup.out);
        benchmark::DoNotOptimize(setup.out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 32 *
                            8);
}
BENCHMARK(BM_SubscribedSweep)->Arg(64)->Arg(256)->Arg(4096);

void
BM_SubscribedSweepPacked(benchmark::State& state)
{
    // The shipped tile-local u16 executor: half-width entries, zero
    // bucket pre-dropped, bit-identical output to BM_SubscribedSweep.
    SubscribedSetup setup(state.range(0));
    for (auto _ : state) {
        std::fill(setup.out.data().begin(), setup.out.data().end(),
                  0.0f);
        vlp::vlp_gemm_subscribed_packed(setup.subs, setup.acts, 0,
                                        setup.subs.cols(), setup.out);
        benchmark::DoNotOptimize(setup.out.data().data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 32 *
                            8);
}
BENCHMARK(BM_SubscribedSweepPacked)->Arg(64)->Arg(256)->Arg(4096);

void
BM_PreparedGemm(benchmark::State& state)
{
    // The serving WOQ path: quantize once, GEMM many times over the
    // cached subscription schedule.  Counters surface the simulated
    // work a single run charges (GemmRun carries all three).
    std::mt19937 rng(9);
    support::MatrixF weights(256, 256);
    support::MatrixF acts(256, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);
    const serve::PreparedWeights prepared(weights, 128);
    serve::GemmRun last;
    for (auto _ : state) {
        last = serve::run_prepared_gemm(prepared, acts, 256, 8);
        benchmark::DoNotOptimize(last.out.data().data());
    }
    state.counters["sim_cycles"] =
        static_cast<double>(last.cycles);
    state.counters["sim_sweeps"] =
        static_cast<double>(last.sweeps);
    state.counters["sim_subscriptions"] =
        static_cast<double>(last.subscriptions);
    state.SetItemsProcessed(state.iterations() * weights.size() *
                            acts.cols());
}
BENCHMARK(BM_PreparedGemm);

void
BM_GroupQuantize(benchmark::State& state)
{
    std::mt19937 rng(6);
    support::MatrixF w(128, 1024);
    support::fill_gaussian(w, rng, 0.0f, 0.5f);
    for (auto _ : state) {
        const quant::QuantizedMatrix q = quant::quantize_int4(w, 128);
        benchmark::DoNotOptimize(q.values.data().data());
    }
    state.SetItemsProcessed(state.iterations() * w.size());
}
BENCHMARK(BM_GroupQuantize);

void
BM_TransformerForward(benchmark::State& state)
{
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(2, 64, 128);
    const model::TransformerModel m(config, 7);
    const auto tokens = model::synthetic_tokens(32, config.vocab, 8);
    for (auto _ : state) {
        const support::MatrixF logits = m.forward_tokens(tokens);
        benchmark::DoNotOptimize(logits.data().data());
    }
    state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_TransformerForward);

}  // namespace

BENCHMARK_MAIN();
