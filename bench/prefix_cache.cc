/**
 * @file
 * Prefix-cache study: a trace of requests sharing a long common
 * system prompt, served with cross-request KV block sharing on vs
 * off (serve::SchedulerConfig::prefix_caching), for the float
 * baseline and the Mugi INT4-KVQ cache.
 *
 * With sharing on, admission maps each later request's shared prompt
 * blocks onto the first request's resident (refcounted) blocks:
 * their prefill chunks are skipped -- under KVQ that saves the
 * quantization pass too -- admission charges only the unshared tail,
 * and the pool counts every shared block once.  The acceptance bar
 * (enforced by the exit code, and mirrored in
 * tests/serve/scheduler_test.cc):
 *
 *  - prefix-cache hits > 0 with sharing on, 0 off;
 *  - prefill_tokens strictly lower and mean TTFT strictly better
 *    with sharing on;
 *  - bit-identical generated tokens on vs off for both precisions;
 *  - peak pool bytes strictly lower with sharing on (shared blocks
 *    counted exactly once).
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "serve/scheduler.h"

using namespace mugi;

namespace {

constexpr std::size_t kRequests = 6;
constexpr std::size_t kSystemPromptTokens = 40;  // 5 blocks at B=8.
constexpr std::size_t kSuffixTokens = 6;
constexpr std::size_t kMaxNew = 8;
constexpr std::size_t kBlockTokens = 8;

struct TraceResult {
    serve::ServerStats stats;
    /** Generated tokens per request, in submission order. */
    std::vector<std::vector<int>> tokens;
};

TraceResult
serve_trace(const serve::Engine& engine,
            const std::vector<std::vector<int>>& prompts,
            quant::KvPrecision precision, bool sharing)
{
    serve::SchedulerConfig config;
    config.kv_block_tokens = units::Tokens(kBlockTokens);
    config.prefill_chunk_tokens = units::Tokens(64);
    config.max_batch = kRequests;
    config.prefix_caching = sharing;
    serve::Scheduler scheduler(engine, config);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < prompts.size(); ++i) {
        serve::Request request;
        request.prompt = prompts[i];
        request.max_new_tokens = units::Tokens(kMaxNew);
        request.session.kv_precision = precision;
        // The donor arrives first; everyone else one modeled instant
        // later, once its prefill has made the system prompt
        // resident.
        request.arrival_time_s = i == 0 ? 0.0 : 1e-12;
        ids.push_back(scheduler.submit(std::move(request)));
    }
    std::vector<serve::FinishedRequest> finished = scheduler.run();

    TraceResult result;
    result.stats = scheduler.stats();
    result.tokens.resize(prompts.size());
    for (serve::FinishedRequest& f : finished) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == f.id) {
                result.tokens[i] = std::move(f.tokens);
                break;
            }
        }
    }
    return result;
}

}  // namespace

int
main()
{
    bench::print_title(
        "Prefix caching: shared-system-prompt trace, sharing on vs "
        "off");

    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    const auto transformer =
        std::make_shared<model::TransformerModel>(config, 4242);
    const serve::Engine engine(sim::make_mugi(64), transformer);

    const std::vector<int> system_prompt = model::synthetic_tokens(
        kSystemPromptTokens, config.vocab, 1001);
    std::vector<std::vector<int>> prompts;
    for (std::size_t i = 0; i < kRequests; ++i) {
        std::vector<int> prompt = system_prompt;
        const std::vector<int> suffix = model::synthetic_tokens(
            kSuffixTokens, config.vocab,
            static_cast<std::uint32_t>(2000 + i));
        prompt.insert(prompt.end(), suffix.begin(), suffix.end());
        prompts.push_back(std::move(prompt));
    }
    const std::size_t prompt_len =
        kSystemPromptTokens + kSuffixTokens;
    std::printf("%zu requests, prompt %zu tokens (%zu shared), gen "
                "%zu, block %zu tokens\n",
                kRequests, prompt_len, kSystemPromptTokens, kMaxNew,
                kBlockTokens);

    // The modeled admission discount of a full prefix hit.
    for (const auto& [name, precision] :
         {std::pair{"float", quant::KvPrecision::kFloat},
          std::pair{"int4-kvq", quant::KvPrecision::kInt4}}) {
        const sim::KvFootprint full = sim::kv_footprint(
            config, units::Positions(prompt_len + 1), precision,
            units::Tokens(kBlockTokens));
        const sim::KvFootprint tail = sim::kv_footprint(
            config, units::Positions(prompt_len + 1), precision,
            units::Tokens(kBlockTokens),
            units::Positions(kSystemPromptTokens));
        std::printf("  %-9s admission: %zu -> %zu blocks/layer "
                    "(%.1f -> %.1f KiB)\n",
                    name, full.blocks.value(),
                    tail.blocks.value(),
                    static_cast<double>(full.paged_bytes.value()) /
                        1024.0,
                    static_cast<double>(tail.paged_bytes.value()) /
                        1024.0);
    }

    bench::print_header("precision/sharing",
                        {"hits", "shr-blk", "saved-tok", "prefill",
                         "ttft-ms", "peak-KiB"});
    bool ok = true;
    for (const auto& [pname, precision] :
         {std::pair{"float", quant::KvPrecision::kFloat},
          std::pair{"int4-kvq", quant::KvPrecision::kInt4}}) {
        const TraceResult off =
            serve_trace(engine, prompts, precision, false);
        const TraceResult on =
            serve_trace(engine, prompts, precision, true);
        for (const auto& [mname, r] :
             {std::pair{"off", &off}, std::pair{"on", &on}}) {
            bench::print_row(
                std::string(pname) + "/" + mname,
                {static_cast<double>(r->stats.prefix_hits),
                 static_cast<double>(r->stats.shared_blocks.value()),
                 static_cast<double>(
                     r->stats.saved_prefill_tokens.value()),
                 static_cast<double>(
                     r->stats.prefill_tokens.value()),
                 r->stats.mean_ttft_s * 1e3,
                 static_cast<double>(r->stats.peak_kv_bytes.value()) /
                     1024.0},
                "%9.4g");
        }
        ok &= off.stats.prefix_hits == 0;
        ok &= on.stats.prefix_hits > 0;
        ok &= on.stats.prefill_tokens < off.stats.prefill_tokens;
        ok &= on.stats.mean_ttft_s < off.stats.mean_ttft_s;
        ok &= on.stats.peak_kv_bytes < off.stats.peak_kv_bytes;
        ok &= on.tokens == off.tokens;  // Bit-identical generations.
    }

    std::printf("\nprefix hits > 0, prefill and TTFT strictly "
                "better, shared blocks counted once, and generations "
                "bit-identical at both precisions: %s\n",
                ok ? "yes" : "NO (regression!)");
    return ok ? 0 : 1;
}
