/**
 * @file
 * Closed-loop serving load generator over the push-based
 * serve::Server: sweep arrival rates into tail-latency curves, and
 * (--check) gate the HTTP front-end against the in-process scheduler.
 *
 * Rate sweep (always): N analytic Llama-2 70B requests arrive as a
 * Poisson process (seeded, deterministic) at each offered load --
 * fractions of the engine's estimated decode capacity -- through a
 * serve::Server.  Latencies are on the *modeled* clock (the same
 * clock ServerStats reports), so the curves are reproducible across
 * machines: what moves them is scheduling, not host noise.  Output:
 * a p50/p95/p99 TTFT/TPOT table across >= 3 rates, written to
 * BENCH_serve.json for CI.
 *
 * The overload gate (always): the same bounded admission queue at 1x
 * and 2x offered load.  2x must shed (requests_shed > 0) and the p99
 * TTFT of the requests it did admit must stay within 2x of the 1x
 * value -- the bounded queue converts unbounded queueing delay into
 * rejection.
 *
 * --check additionally runs the end-to-end smoke gates:
 *  1. a *functional* eval-scale engine behind server::Frontend on an
 *     ephemeral loopback port; concurrent HTTP clients stream
 *     /v1/generate token deltas;
 *  2. the same request set through a plain single-threaded Scheduler
 *     in process;
 *  3. PASS iff every request's HTTP token stream is bit-identical to
 *     the in-process stream, DELETE semantics hold, and the server's
 *     pool reports zero KV bytes in use after drain (no leaked
 *     blocks);
 *  4. the 429 gate: one batch slot + one queue slot + two concurrent
 *     clients -- exactly one is shed with 429 + Retry-After, the
 *     other completes.  Exit status reflects every gate.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "server/frontend.h"
#include "server/http.h"
#include "server/json.h"

using namespace mugi;

namespace {

struct RatePoint {
    double offered_load = 0.0;  ///< Fraction of estimated capacity.
    double rate_req_s = 0.0;    ///< Modeled arrivals per second.
    serve::ServerStats stats;
};

/**
 * One sweep point: @p n requests with exponential inter-arrivals at
 * @p rate_req_s on the modeled clock, run through a threaded Server.
 * @p max_queued bounds the admission queue (0 = unbounded, the
 * plain sweep; the overload gate passes a bound so excess arrivals
 * shed instead of queueing without limit).
 */
serve::ServerStats
run_rate(const serve::Engine& engine, double rate_req_s, int n,
         std::size_t max_queued = 0)
{
    serve::ServerConfig config;
    config.scheduler.kv_budget_bytes = units::Bytes(1ull << 30);
    config.scheduler.prefill_chunk_tokens = units::Tokens(256);
    config.scheduler.max_queued_requests = max_queued;
    serve::Server server(engine, config);

    // Seeded arrivals: the sweep is deterministic run to run.
    std::mt19937_64 rng(42);
    std::exponential_distribution<double> gap(rate_req_s);
    double arrival_s = 0.0;
    std::vector<serve::RequestHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        serve::Request request;
        request.analytic_prompt_tokens =
            units::Tokens(256 + 256 * (i % 7));
        request.max_new_tokens = units::Tokens(16 + 4 * (i % 9));
        request.arrival_time_s = arrival_s;
        handles.push_back(server.submit(std::move(request)));
    }
    for (serve::RequestHandle& handle : handles) {
        handle.wait();
    }
    server.shutdown(serve::ShutdownMode::kDrain);
    return server.stats();
}

/**
 * Capacity estimate: modeled service time of the mean request -- its
 * prefill plus its share of a continuous decode batch.  Prefill
 * dominates at these prompt lengths; ignoring it would put every
 * sweep point past saturation.
 */
double
capacity_req_s(const serve::Engine& engine,
               const model::ModelConfig& model)
{
    const double prefill_s =
        engine.evaluate_prefill(model, 1, 1024).perf.runtime_s;
    const double step_s =
        engine.evaluate_decode(model, 8, 1024).perf.runtime_s;
    const double mean_gen = 32.0;
    const double service_s = prefill_s + mean_gen * step_s / 8.0;
    return 1.0 / service_s;
}

/** The sweep: offered loads across the knee, >= 3 rates. */
std::vector<RatePoint>
run_sweep(const serve::Engine& engine,
          const model::ModelConfig& model, int n)
{
    const double capacity = capacity_req_s(engine, model);
    std::vector<RatePoint> points;
    for (const double load : {0.25, 0.5, 1.0, 2.0}) {
        RatePoint point;
        point.offered_load = load;
        point.rate_req_s = load * capacity;
        point.stats = run_rate(engine, point.rate_req_s, n);
        points.push_back(point);
    }
    return points;
}

/**
 * Overload-protection gate: the same bounded admission queue at 1x
 * and 2x offered load.  At 2x the server must shed (the queue bound
 * is doing its job) and the p99 TTFT of *admitted* requests -- shed
 * requests never emit a token, so the percentiles exclude them --
 * must stay within 2x of the 1x value: shedding converts unbounded
 * queueing delay into bounded rejection.
 */
struct OverloadGate {
    double p99_ttft_1x_s = 0.0;
    double p99_ttft_2x_s = 0.0;
    std::size_t shed_2x = 0;
    bool pass = false;
};

OverloadGate
run_overload_gate(const serve::Engine& engine,
                  const model::ModelConfig& model, int n)
{
    bench::print_subtitle(
        "overload gate: bounded queue at 1x vs 2x capacity");
    const double capacity = capacity_req_s(engine, model);
    constexpr std::size_t kMaxQueued = 8;
    const serve::ServerStats base =
        run_rate(engine, capacity, n, kMaxQueued);
    const serve::ServerStats overload =
        run_rate(engine, 2.0 * capacity, n, kMaxQueued);

    OverloadGate gate;
    gate.p99_ttft_1x_s = base.p99_ttft_s;
    gate.p99_ttft_2x_s = overload.p99_ttft_s;
    gate.shed_2x = overload.requests_shed;
    const bool tail_bounded =
        overload.p99_ttft_s <= 2.0 * base.p99_ttft_s;
    gate.pass = gate.shed_2x > 0 && tail_bounded;
    if (gate.shed_2x == 0) {
        std::printf(
            "FAIL: 2x offered load shed nothing (queue bound %zu)\n",
            kMaxQueued);
    }
    if (!tail_bounded) {
        std::printf("FAIL: admitted p99 TTFT %.2f s at 2x exceeds "
                    "2x the 1x value %.2f s\n",
                    overload.p99_ttft_s, base.p99_ttft_s);
    }
    std::printf("%s: p99 TTFT %.2f s (1x) -> %.2f s (2x, %zu of %d "
                "shed)\n",
                gate.pass ? "PASS" : "FAIL", gate.p99_ttft_1x_s,
                gate.p99_ttft_2x_s, gate.shed_2x, n);
    return gate;
}

// ---- --check: HTTP front-end vs in-process scheduler -------------

struct CheckRequest {
    std::vector<int> prompt;
    std::size_t max_new_tokens = 0;
};

/** The functional smoke trace both paths run. */
std::vector<CheckRequest>
check_trace(const model::ModelConfig& config)
{
    std::vector<CheckRequest> trace;
    for (int i = 0; i < 6; ++i) {
        CheckRequest r;
        r.prompt = model::synthetic_tokens(
            12 + 5 * (i % 3), config.vocab,
            static_cast<std::uint32_t>(1300 + i));
        r.max_new_tokens = 8 + static_cast<std::size_t>(i);
        trace.push_back(std::move(r));
    }
    return trace;
}

/** Tokens streamed back for one request over HTTP; nullopt on any
 *  protocol failure. */
std::optional<std::vector<int>>
http_generate(std::uint16_t port, const CheckRequest& request)
{
    std::ostringstream body;
    body << "{\"prompt\":[";
    for (std::size_t i = 0; i < request.prompt.size(); ++i) {
        if (i > 0) {
            body << ',';
        }
        body << request.prompt[i];
    }
    body << "],\"max_new_tokens\":" << request.max_new_tokens << "}";

    server::Client client;
    if (!client.connect(port)) {
        return std::nullopt;
    }
    const std::optional<server::HttpResponse> response =
        client.request("POST", "/v1/generate", body.str());
    if (!response || response->status != 200) {
        return std::nullopt;
    }
    // NDJSON: {"id"...}, per-token {"index","token"}, final
    // {"done":true,...}.
    std::vector<int> tokens;
    bool done = false;
    std::istringstream lines(response->body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        const std::optional<server::json::Value> value =
            server::json::parse(line);
        if (!value) {
            return std::nullopt;
        }
        if (value->bool_or("done", false)) {
            done = true;
        } else if (value->find("token") != nullptr) {
            tokens.push_back(
                static_cast<int>(value->number_or("token", -1.0)));
        }
    }
    if (!done) {
        return std::nullopt;  // Stream never finished.
    }
    return tokens;
}

/**
 * 429-over-HTTP gate: one batch slot, one queue slot, an in-process
 * blocker pinning the batch, and two concurrent HTTP clients.
 * Exactly one client must be shed with 429 + Retry-After; the other
 * must complete 200 once the blocker is cancelled.
 */
bool
run_http_429_check(const serve::Engine& engine,
                   const model::ModelConfig& config)
{
    bench::print_subtitle("429 gate: bounded queue over HTTP");
    serve::ServerConfig server_config;
    server_config.scheduler.prefill_chunk_tokens = units::Tokens(16);
    server_config.scheduler.max_batch = 1;
    server_config.scheduler.max_queued_requests = 1;
    serve::Server server(engine, server_config);
    server::Frontend frontend(server);
    if (!frontend.bind(0)) {
        std::printf("FAIL: cannot bind a loopback port\n");
        return false;
    }
    std::thread accept_thread([&frontend] { frontend.run(); });

    // The blocker owns the single batch slot; its first delta is the
    // admission barrier the clients race behind.
    serve::Request blocker;
    blocker.prompt = model::synthetic_tokens(12, config.vocab, 4100);
    blocker.max_new_tokens = units::Tokens(512);
    serve::RequestHandle handle = server.submit(std::move(blocker));
    bool pass = handle.next().has_value();
    if (!pass) {
        std::printf("FAIL: blocker produced no first token\n");
    }

    int statuses[2] = {-1, -1};
    bool retry_after[2] = {false, false};
    {
        std::vector<std::thread> clients;
        for (int i = 0; i < 2; ++i) {
            clients.emplace_back([&, i] {
                server::Client client;
                if (!client.connect(frontend.port())) {
                    return;
                }
                std::ostringstream body;
                body << "{\"prompt\":[";
                const std::vector<int> prompt =
                    model::synthetic_tokens(
                        8, config.vocab,
                        static_cast<std::uint32_t>(4200 + i));
                for (std::size_t t = 0; t < prompt.size(); ++t) {
                    if (t > 0) {
                        body << ',';
                    }
                    body << prompt[t];
                }
                body << "],\"max_new_tokens\":4}";
                const std::optional<server::HttpResponse> response =
                    client.request("POST", "/v1/generate",
                                   body.str());
                if (response) {
                    statuses[i] = response->status;
                    retry_after[i] =
                        response->headers.count("retry-after") > 0;
                }
            });
        }
        // The survivor stays queued behind the blocker; release it
        // once the shed is visible in stats (bounded wait -- if the
        // shed never happens the status counts fail the gate below).
        const bench::Timer timer;
        while (server.stats().requests_shed == 0 &&
               timer.seconds() < 30.0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        handle.cancel();
        handle.wait();
        for (std::thread& t : clients) {
            t.join();
        }
    }
    frontend.stop();
    accept_thread.join();
    const serve::ServerStats stats = server.stats();

    int ok = 0;
    int shed = 0;
    bool shed_has_retry_after = true;
    for (int i = 0; i < 2; ++i) {
        if (statuses[i] == 200) {
            ++ok;
        } else if (statuses[i] == 429) {
            ++shed;
            shed_has_retry_after =
                shed_has_retry_after && retry_after[i];
        }
    }
    if (ok != 1 || shed != 1) {
        std::printf("FAIL: expected one 200 and one 429, got %d and "
                    "%d (statuses %d, %d)\n",
                    ok, shed, statuses[0], statuses[1]);
        pass = false;
    }
    if (!shed_has_retry_after) {
        std::printf("FAIL: the 429 carried no Retry-After header\n");
        pass = false;
    }
    if (stats.kv_bytes_in_use != units::Bytes(0)) {
        std::printf("FAIL: %zu KV bytes still in use after drain\n",
                    stats.kv_bytes_in_use.value());
        pass = false;
    }
    std::printf("%s: one admitted (200), %zu shed over HTTP (429%s), "
                "kv_bytes_in_use=%zu\n",
                pass ? "PASS" : "FAIL", stats.requests_shed,
                shed_has_retry_after ? " + Retry-After" : "",
                stats.kv_bytes_in_use.value());
    return pass;
}

/** The --check gate; returns true on PASS. */
bool
run_check()
{
    bench::print_title(
        "serve_load --check: HTTP vs in-process bit-identity");
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 128, 512);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 11);
    const serve::Engine engine(sim::make_mugi(256), transformer);
    const std::vector<CheckRequest> trace = check_trace(config);

    // Reference: the single-threaded in-process scheduler.
    serve::SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(16);
    serve::Scheduler reference(engine, sched_config);
    std::vector<std::uint64_t> ids;
    for (const CheckRequest& r : trace) {
        serve::Request request;
        request.prompt = r.prompt;
        request.max_new_tokens = units::Tokens(r.max_new_tokens);
        ids.push_back(reference.submit(request));
    }
    std::vector<std::vector<int>> expected(trace.size());
    for (const serve::FinishedRequest& f : reference.run()) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == f.id) {
                expected[i] = f.tokens;
            }
        }
    }

    // Device under test: the threaded server behind HTTP.
    serve::ServerConfig server_config;
    server_config.scheduler = sched_config;
    serve::Server server(engine, server_config);
    server::Frontend frontend(server);
    if (!frontend.bind(0)) {
        std::printf("FAIL: cannot bind a loopback port\n");
        return false;
    }
    std::thread accept_thread([&frontend] { frontend.run(); });

    std::vector<std::optional<std::vector<int>>> streamed(
        trace.size());
    {
        // Concurrent clients: submission order races, token streams
        // must not care.
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            clients.emplace_back([&, i] {
                streamed[i] =
                    http_generate(frontend.port(), trace[i]);
            });
        }
        for (std::thread& t : clients) {
            t.join();
        }
    }

    // DELETE on an unknown id must 404 (cancel routing sanity).
    bool delete_404 = false;
    {
        server::Client client;
        if (client.connect(frontend.port())) {
            const auto response = client.request(
                "DELETE", "/v1/generate/not-a-request");
            delete_404 = response && response->status == 404;
        }
    }

    frontend.stop();
    accept_thread.join();
    const serve::ServerStats stats = server.stats();

    bool pass = true;
    std::size_t checked_tokens = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!streamed[i]) {
            std::printf("FAIL: request %zu: HTTP stream failed\n", i);
            pass = false;
            continue;
        }
        if (*streamed[i] != expected[i]) {
            std::printf(
                "FAIL: request %zu: %zu streamed tokens != %zu "
                "reference tokens\n",
                i, streamed[i]->size(), expected[i].size());
            pass = false;
        }
        checked_tokens += expected[i].size();
    }
    if (!delete_404) {
        std::printf("FAIL: DELETE of an unknown id did not 404\n");
        pass = false;
    }
    if (stats.kv_bytes_in_use != units::Bytes(0)) {
        std::printf("FAIL: %zu KV bytes still in use after drain\n",
                    stats.kv_bytes_in_use.value());
        pass = false;
    }
    if (stats.finished != trace.size()) {
        std::printf("FAIL: server finished %zu of %zu requests\n",
                    stats.finished, trace.size());
        pass = false;
    }
    std::printf(
        "%s: %zu requests over HTTP, %zu tokens bit-identical to "
        "in-process, kv_bytes_in_use=%zu\n",
        pass ? "PASS" : "FAIL", trace.size(), checked_tokens,
        stats.kv_bytes_in_use.value());
    return run_http_429_check(engine, config) && pass;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool check = false;
    int n = 48;
    const char* json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            n = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    bench::print_title(
        "serve_load: arrival-rate sweep (modeled clock)");
    const model::ModelConfig model = model::llama2_70b();
    const serve::Engine engine(sim::make_mugi(256), model);
    const std::vector<RatePoint> points =
        run_sweep(engine, model, n);

    bench::print_header("load (x capacity)",
                        {"req/s", "p50ttft", "p99ttft", "p50tpot",
                         "p99tpot", "preempt"});
    bench::Json series = bench::Json::array();
    bool leak_free = true;
    for (const RatePoint& point : points) {
        const serve::ServerStats& s = point.stats;
        std::ostringstream label;
        label.precision(2);
        label << std::fixed << point.offered_load << "x";
        bench::print_row(label.str(),
                         {point.rate_req_s, s.p50_ttft_s,
                          s.p99_ttft_s, s.p50_tpot_s, s.p99_tpot_s,
                          static_cast<double>(s.preemptions)},
                         "%9.3g");
        leak_free =
            leak_free && s.kv_bytes_in_use == units::Bytes(0);
        series.push(
            bench::Json::object()
                .set("offered_load", point.offered_load)
                .set("rate_req_s", point.rate_req_s)
                .set("requests", s.finished)
                .set("p50_ttft_s", s.p50_ttft_s)
                .set("p95_ttft_s", s.p95_ttft_s)
                .set("p99_ttft_s", s.p99_ttft_s)
                .set("mean_ttft_s", s.mean_ttft_s)
                .set("p50_tpot_s", s.p50_tpot_s)
                .set("p95_tpot_s", s.p95_tpot_s)
                .set("p99_tpot_s", s.p99_tpot_s)
                .set("mean_tpot_s", s.mean_tpot_s)
                .set("mean_queue_s", s.mean_queue_s)
                .set("preemptions", s.preemptions)
                .set("kv_bytes_in_use", s.kv_bytes_in_use.value()));
    }
    if (!leak_free) {
        std::printf(
            "FAIL: a sweep point left KV bytes in use after drain\n");
    }

    const OverloadGate gate = run_overload_gate(engine, model, n);

    bool check_pass = true;
    if (check) {
        check_pass = run_check();
    }

    bench::Json out = bench::Json::object();
    out.set("bench", "serve_load")
        .set("model", model.name)
        .set("requests_per_rate", n)
        .set("rates", std::move(series))
        .set("leak_free", leak_free)
        .set("overload_gate",
             bench::Json::object()
                 .set("p99_ttft_1x_s", gate.p99_ttft_1x_s)
                 .set("p99_ttft_2x_s", gate.p99_ttft_2x_s)
                 .set("shed_2x", gate.shed_2x)
                 .set("pass", gate.pass))
        .set("check_run", check)
        .set("check_pass", check_pass);
    out.write_file(json_path);
    std::printf("\nwrote %s\n", json_path);
    return leak_free && gate.pass && check_pass ? 0 : 1;
}
