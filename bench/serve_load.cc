/**
 * @file
 * Closed-loop serving load generator over the push-based
 * serve::Server: sweep arrival rates into tail-latency curves, and
 * (--check) gate the HTTP front-end against the in-process scheduler.
 *
 * Rate sweep (always): N analytic Llama-2 70B requests arrive as a
 * Poisson process (seeded, deterministic) at each offered load --
 * fractions of the engine's estimated decode capacity -- through a
 * serve::Server.  Latencies are on the *modeled* clock (the same
 * clock ServerStats reports), so the curves are reproducible across
 * machines: what moves them is scheduling, not host noise.  Output:
 * a p50/p95/p99 TTFT/TPOT table across >= 3 rates, written to
 * BENCH_serve.json for CI.
 *
 * --check additionally runs the end-to-end smoke gate:
 *  1. a *functional* eval-scale engine behind server::Frontend on an
 *     ephemeral loopback port; concurrent HTTP clients stream
 *     /v1/generate token deltas;
 *  2. the same request set through a plain single-threaded Scheduler
 *     in process;
 *  3. PASS iff every request's HTTP token stream is bit-identical to
 *     the in-process stream, DELETE semantics hold, and the server's
 *     pool reports zero KV bytes in use after drain (no leaked
 *     blocks).  Exit status reflects the gate.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "server/frontend.h"
#include "server/http.h"
#include "server/json.h"

using namespace mugi;

namespace {

struct RatePoint {
    double offered_load = 0.0;  ///< Fraction of estimated capacity.
    double rate_req_s = 0.0;    ///< Modeled arrivals per second.
    serve::ServerStats stats;
};

/**
 * One sweep point: @p n requests with exponential inter-arrivals at
 * @p rate_req_s on the modeled clock, run through a threaded Server.
 */
serve::ServerStats
run_rate(const serve::Engine& engine, double rate_req_s, int n)
{
    serve::ServerConfig config;
    config.scheduler.kv_budget_bytes = units::Bytes(1ull << 30);
    config.scheduler.prefill_chunk_tokens = units::Tokens(256);
    serve::Server server(engine, config);

    // Seeded arrivals: the sweep is deterministic run to run.
    std::mt19937_64 rng(42);
    std::exponential_distribution<double> gap(rate_req_s);
    double arrival_s = 0.0;
    std::vector<serve::RequestHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        arrival_s += gap(rng);
        serve::Request request;
        request.analytic_prompt_tokens =
            units::Tokens(256 + 256 * (i % 7));
        request.max_new_tokens = units::Tokens(16 + 4 * (i % 9));
        request.arrival_time_s = arrival_s;
        handles.push_back(server.submit(std::move(request)));
    }
    for (serve::RequestHandle& handle : handles) {
        handle.wait();
    }
    server.shutdown(serve::ShutdownMode::kDrain);
    return server.stats();
}

/** The sweep: offered loads across the knee, >= 3 rates. */
std::vector<RatePoint>
run_sweep(const serve::Engine& engine,
          const model::ModelConfig& model, int n)
{
    // Capacity estimate: modeled service time of the mean request --
    // its prefill plus its share of a continuous decode batch.
    // Prefill dominates at these prompt lengths; ignoring it would
    // put every sweep point past saturation.
    const double prefill_s =
        engine.evaluate_prefill(model, 1, 1024).perf.runtime_s;
    const double step_s =
        engine.evaluate_decode(model, 8, 1024).perf.runtime_s;
    const double mean_gen = 32.0;
    const double service_s = prefill_s + mean_gen * step_s / 8.0;
    const double capacity_req_s = 1.0 / service_s;

    std::vector<RatePoint> points;
    for (const double load : {0.25, 0.5, 1.0, 2.0}) {
        RatePoint point;
        point.offered_load = load;
        point.rate_req_s = load * capacity_req_s;
        point.stats = run_rate(engine, point.rate_req_s, n);
        points.push_back(point);
    }
    return points;
}

// ---- --check: HTTP front-end vs in-process scheduler -------------

struct CheckRequest {
    std::vector<int> prompt;
    std::size_t max_new_tokens = 0;
};

/** The functional smoke trace both paths run. */
std::vector<CheckRequest>
check_trace(const model::ModelConfig& config)
{
    std::vector<CheckRequest> trace;
    for (int i = 0; i < 6; ++i) {
        CheckRequest r;
        r.prompt = model::synthetic_tokens(
            12 + 5 * (i % 3), config.vocab,
            static_cast<std::uint32_t>(1300 + i));
        r.max_new_tokens = 8 + static_cast<std::size_t>(i);
        trace.push_back(std::move(r));
    }
    return trace;
}

/** Tokens streamed back for one request over HTTP; nullopt on any
 *  protocol failure. */
std::optional<std::vector<int>>
http_generate(std::uint16_t port, const CheckRequest& request)
{
    std::ostringstream body;
    body << "{\"prompt\":[";
    for (std::size_t i = 0; i < request.prompt.size(); ++i) {
        if (i > 0) {
            body << ',';
        }
        body << request.prompt[i];
    }
    body << "],\"max_new_tokens\":" << request.max_new_tokens << "}";

    server::Client client;
    if (!client.connect(port)) {
        return std::nullopt;
    }
    const std::optional<server::HttpResponse> response =
        client.request("POST", "/v1/generate", body.str());
    if (!response || response->status != 200) {
        return std::nullopt;
    }
    // NDJSON: {"id"...}, per-token {"index","token"}, final
    // {"done":true,...}.
    std::vector<int> tokens;
    bool done = false;
    std::istringstream lines(response->body);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        const std::optional<server::json::Value> value =
            server::json::parse(line);
        if (!value) {
            return std::nullopt;
        }
        if (value->bool_or("done", false)) {
            done = true;
        } else if (value->find("token") != nullptr) {
            tokens.push_back(
                static_cast<int>(value->number_or("token", -1.0)));
        }
    }
    if (!done) {
        return std::nullopt;  // Stream never finished.
    }
    return tokens;
}

/** The --check gate; returns true on PASS. */
bool
run_check()
{
    bench::print_title(
        "serve_load --check: HTTP vs in-process bit-identity");
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 128, 512);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 11);
    const serve::Engine engine(sim::make_mugi(256), transformer);
    const std::vector<CheckRequest> trace = check_trace(config);

    // Reference: the single-threaded in-process scheduler.
    serve::SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(16);
    serve::Scheduler reference(engine, sched_config);
    std::vector<std::uint64_t> ids;
    for (const CheckRequest& r : trace) {
        serve::Request request;
        request.prompt = r.prompt;
        request.max_new_tokens = units::Tokens(r.max_new_tokens);
        ids.push_back(reference.submit(request));
    }
    std::vector<std::vector<int>> expected(trace.size());
    for (const serve::FinishedRequest& f : reference.run()) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == f.id) {
                expected[i] = f.tokens;
            }
        }
    }

    // Device under test: the threaded server behind HTTP.
    serve::ServerConfig server_config;
    server_config.scheduler = sched_config;
    serve::Server server(engine, server_config);
    server::Frontend frontend(server);
    if (!frontend.bind(0)) {
        std::printf("FAIL: cannot bind a loopback port\n");
        return false;
    }
    std::thread accept_thread([&frontend] { frontend.run(); });

    std::vector<std::optional<std::vector<int>>> streamed(
        trace.size());
    {
        // Concurrent clients: submission order races, token streams
        // must not care.
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            clients.emplace_back([&, i] {
                streamed[i] =
                    http_generate(frontend.port(), trace[i]);
            });
        }
        for (std::thread& t : clients) {
            t.join();
        }
    }

    // DELETE on an unknown id must 404 (cancel routing sanity).
    bool delete_404 = false;
    {
        server::Client client;
        if (client.connect(frontend.port())) {
            const auto response = client.request(
                "DELETE", "/v1/generate/not-a-request");
            delete_404 = response && response->status == 404;
        }
    }

    frontend.stop();
    accept_thread.join();
    const serve::ServerStats stats = server.stats();

    bool pass = true;
    std::size_t checked_tokens = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!streamed[i]) {
            std::printf("FAIL: request %zu: HTTP stream failed\n", i);
            pass = false;
            continue;
        }
        if (*streamed[i] != expected[i]) {
            std::printf(
                "FAIL: request %zu: %zu streamed tokens != %zu "
                "reference tokens\n",
                i, streamed[i]->size(), expected[i].size());
            pass = false;
        }
        checked_tokens += expected[i].size();
    }
    if (!delete_404) {
        std::printf("FAIL: DELETE of an unknown id did not 404\n");
        pass = false;
    }
    if (stats.kv_bytes_in_use != units::Bytes(0)) {
        std::printf("FAIL: %zu KV bytes still in use after drain\n",
                    stats.kv_bytes_in_use.value());
        pass = false;
    }
    if (stats.finished != trace.size()) {
        std::printf("FAIL: server finished %zu of %zu requests\n",
                    stats.finished, trace.size());
        pass = false;
    }
    std::printf(
        "%s: %zu requests over HTTP, %zu tokens bit-identical to "
        "in-process, kv_bytes_in_use=%zu\n",
        pass ? "PASS" : "FAIL", trace.size(), checked_tokens,
        stats.kv_bytes_in_use.value());
    return pass;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool check = false;
    int n = 48;
    const char* json_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            n = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    bench::print_title(
        "serve_load: arrival-rate sweep (modeled clock)");
    const model::ModelConfig model = model::llama2_70b();
    const serve::Engine engine(sim::make_mugi(256), model);
    const std::vector<RatePoint> points =
        run_sweep(engine, model, n);

    bench::print_header("load (x capacity)",
                        {"req/s", "p50ttft", "p99ttft", "p50tpot",
                         "p99tpot", "preempt"});
    bench::Json series = bench::Json::array();
    bool leak_free = true;
    for (const RatePoint& point : points) {
        const serve::ServerStats& s = point.stats;
        std::ostringstream label;
        label.precision(2);
        label << std::fixed << point.offered_load << "x";
        bench::print_row(label.str(),
                         {point.rate_req_s, s.p50_ttft_s,
                          s.p99_ttft_s, s.p50_tpot_s, s.p99_tpot_s,
                          static_cast<double>(s.preemptions)},
                         "%9.3g");
        leak_free =
            leak_free && s.kv_bytes_in_use == units::Bytes(0);
        series.push(
            bench::Json::object()
                .set("offered_load", point.offered_load)
                .set("rate_req_s", point.rate_req_s)
                .set("requests", s.finished)
                .set("p50_ttft_s", s.p50_ttft_s)
                .set("p95_ttft_s", s.p95_ttft_s)
                .set("p99_ttft_s", s.p99_ttft_s)
                .set("mean_ttft_s", s.mean_ttft_s)
                .set("p50_tpot_s", s.p50_tpot_s)
                .set("p95_tpot_s", s.p95_tpot_s)
                .set("p99_tpot_s", s.p99_tpot_s)
                .set("mean_tpot_s", s.mean_tpot_s)
                .set("mean_queue_s", s.mean_queue_s)
                .set("preemptions", s.preemptions)
                .set("kv_bytes_in_use", s.kv_bytes_in_use.value()));
    }
    if (!leak_free) {
        std::printf(
            "FAIL: a sweep point left KV bytes in use after drain\n");
    }

    bool check_pass = true;
    if (check) {
        check_pass = run_check();
    }

    bench::Json out = bench::Json::object();
    out.set("bench", "serve_load")
        .set("model", model.name)
        .set("requests_per_rate", n)
        .set("rates", std::move(series))
        .set("leak_free", leak_free)
        .set("check_run", check)
        .set("check_pass", check_pass);
    out.write_file(json_path);
    std::printf("\nwrote %s\n", json_path);
    return leak_free && check_pass ? 0 : 1;
}
