/**
 * @file
 * Pooled Engine::step throughput (library-quality check; not a paper
 * figure): end-to-end decode tokens/s of the fused batched step run
 * serially (StepPlan::threads == 0) vs fanned across a worker pool
 * with 1/2/4 threads, at batch 4 and 16, plus a mixed
 * prefill-and-decode iteration at each thread count.
 *
 * With --json PATH the same numbers are written machine-readable
 * (BENCH_step.json in CI, uploaded as an artifact).  With --check the
 * binary exits nonzero if any pooled run's token stream differs from
 * the serial stream (the bit-identity contract pooled partitioning is
 * built on) -- that gate is machine-independent and always enforced.
 * The throughput comparison (best pooled >= 0.9x serial at every
 * batch, a regression tripwire with noise headroom) is enforced only
 * when the host exposes at least four hardware threads: on a one- or
 * two-core box pooled execution has no parallel hardware to win on,
 * so the comparison is recorded in the JSON but cannot gate.  The
 * headline >= 1.3x at 4 threads / batch 16 is likewise JSON-only.
 */

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/engine.h"
#include "serve/scheduler.h"

using namespace mugi;

namespace {

constexpr int kDecodeSteps = 8;

/**
 * Serving-trace latency percentiles: a 12-request functional trace
 * through serve::Scheduler, reported as the p50/p95/p99 TTFT/TPOT
 * the scheduler aggregates (the same numbers /metrics exports).
 */
serve::ServerStats
serving_trace_stats(const serve::Engine& engine,
                    const model::ModelConfig& config)
{
    serve::SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(32);
    serve::Scheduler scheduler(engine, sched_config);
    for (int i = 0; i < 12; ++i) {
        serve::Request request;
        request.prompt = model::synthetic_tokens(
            24 + 8 * (i % 4), config.vocab,
            static_cast<std::uint32_t>(500 + i));
        request.max_new_tokens = units::Tokens(6 + i % 5);
        scheduler.submit(std::move(request));
    }
    scheduler.run();
    return scheduler.stats();
}

struct ThreadResult {
    std::size_t threads = 0;  ///< 0 = serial.
    double tok_s = 0.0;
    double speedup = 0.0;       ///< vs the serial row.
    double worker_busy = 0.0;   ///< Mean pooled busy fraction.
    bool tokens_identical = true;  ///< vs the serial stream.
};

struct BatchResult {
    std::size_t batch = 0;
    std::string kv;
    std::vector<ThreadResult> rows;  ///< Serial first.
};

std::vector<serve::Session>
make_sessions(const serve::Engine& engine,
              const model::ModelConfig& config, std::size_t batch,
              quant::KvPrecision precision)
{
    std::vector<serve::Session> sessions;
    sessions.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        serve::SessionOptions options;
        options.kv_precision = precision;
        sessions.push_back(engine.create_session(options));
        engine.prefill(sessions.back(),
                       model::synthetic_tokens(
                           4 + i % 3, config.vocab,
                           static_cast<std::uint32_t>(1000 + i)));
    }
    return sessions;
}

/** Best-of-3 decode run at @p threads; fills tokens + busy mean. */
double
run_decode(const serve::Engine& engine,
           const model::ModelConfig& config, std::size_t batch,
           quant::KvPrecision precision, std::size_t threads,
           std::vector<int>& tokens, double& worker_busy)
{
    double wall_s = 1e300;
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::vector<serve::Session> sessions =
            make_sessions(engine, config, batch, precision);
        serve::StepPlan plan;
        plan.fused_decode = true;
        plan.threads = threads;
        for (serve::Session& s : sessions) {
            plan.decode_sessions.push_back(&s);
        }
        plan.decode_tokens.assign(batch, 0);
        for (std::size_t i = 0; i < batch; ++i) {
            plan.decode_tokens[i] =
                static_cast<int>((7 * i + 3) % config.vocab);
        }
        tokens.clear();
        double busy_sum = 0.0;
        const bench::Timer timer;
        for (int step = 0; step < kDecodeSteps; ++step) {
            const serve::StepResult r = engine.step(plan);
            busy_sum += r.workers.busy_fraction;
            for (std::size_t i = 0; i < batch; ++i) {
                tokens.push_back(r.outputs[i].next_token);
                plan.decode_tokens[i] = r.outputs[i].next_token;
            }
        }
        wall_s = std::min(wall_s, timer.seconds());
        worker_busy = busy_sum / kDecodeSteps;
    }
    return wall_s;
}

BatchResult
run_batch(const serve::Engine& engine,
          const model::ModelConfig& config, std::size_t batch,
          quant::KvPrecision precision)
{
    BatchResult result;
    result.batch = batch;
    result.kv = precision == quant::KvPrecision::kInt4 ? "int4"
                                                       : "float";

    std::vector<int> serial_tokens;
    double serial_busy = 0.0;
    const double serial_s =
        run_decode(engine, config, batch, precision, 0,
                   serial_tokens, serial_busy);
    const double total_tokens =
        static_cast<double>(batch) * kDecodeSteps;

    ThreadResult serial_row;
    serial_row.threads = 0;
    serial_row.tok_s = total_tokens / serial_s;
    serial_row.speedup = 1.0;
    result.rows.push_back(serial_row);

    for (const std::size_t threads : {1u, 2u, 4u}) {
        std::vector<int> pooled_tokens;
        ThreadResult row;
        row.threads = threads;
        const double pooled_s =
            run_decode(engine, config, batch, precision, threads,
                       pooled_tokens, row.worker_busy);
        row.tok_s = total_tokens / pooled_s;
        row.speedup = row.tok_s / serial_row.tok_s;
        row.tokens_identical = pooled_tokens == serial_tokens;
        result.rows.push_back(row);
    }
    return result;
}

/**
 * One mixed prefill + decode iteration per thread count: the pooled
 * prefill fan-out (per-session chunks) must reproduce the serial
 * plan's logits-derived tokens exactly.
 */
bool
mixed_step_identical(const serve::Engine& engine,
                     const model::ModelConfig& config,
                     std::size_t threads)
{
    const auto run = [&](std::size_t t) {
        std::vector<serve::Session> decoders = make_sessions(
            engine, config, 4, quant::KvPrecision::kInt4);
        std::vector<serve::Session> prefillers;
        std::vector<std::vector<int>> prompts;
        for (std::size_t i = 0; i < 3; ++i) {
            serve::SessionOptions options;
            options.kv_precision = i % 2 == 0
                                       ? quant::KvPrecision::kFloat
                                       : quant::KvPrecision::kInt4;
            prefillers.push_back(engine.create_session(options));
            prompts.push_back(model::synthetic_tokens(
                5 + 2 * i, config.vocab,
                static_cast<std::uint32_t>(2000 + i)));
        }
        serve::StepPlan plan;
        plan.fused_decode = true;
        plan.threads = t;
        for (serve::Session& s : decoders) {
            plan.decode_sessions.push_back(&s);
            plan.decode_tokens.push_back(static_cast<int>(
                plan.decode_tokens.size() + 1));
        }
        for (std::size_t i = 0; i < prefillers.size(); ++i) {
            serve::StepPlan::PrefillEntry entry;
            entry.session = &prefillers[i];
            entry.tokens = prompts[i];
            plan.prefills.push_back(entry);
        }
        const serve::StepResult r = engine.step(plan);
        std::vector<int> out;
        for (const serve::StepResult::SessionOutput& o : r.outputs) {
            out.push_back(o.next_token);
        }
        for (const serve::StepResult::SessionOutput& o :
             r.prefill_outputs) {
            out.push_back(o.next_token);
        }
        return out;
    };
    return run(threads) == run(0);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string json_path;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        }
    }

    bench::print_title("Pooled Engine::step throughput");

    // Large enough that the projection GEMMs dominate the step, same
    // eval scale as gemm_throughput so the serial rows line up.
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 256, 1024);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 7);
    const serve::Engine engine(sim::make_mugi(256), transformer);

    std::vector<BatchResult> batches;
    bench::print_header("batch/kv/threads",
                        {"tok/s", "speedup", "busy"});
    for (const quant::KvPrecision precision :
         {quant::KvPrecision::kFloat, quant::KvPrecision::kInt4}) {
        for (const std::size_t batch : {4u, 16u}) {
            const BatchResult result =
                run_batch(engine, config, batch, precision);
            for (const ThreadResult& row : result.rows) {
                bench::print_row(
                    std::to_string(batch) + "/" + result.kv + "/" +
                        (row.threads == 0
                             ? std::string("serial")
                             : std::to_string(row.threads)),
                    {row.tok_s, row.speedup, row.worker_busy},
                    "%9.2f");
            }
            batches.push_back(result);
        }
    }

    bool tokens_all_identical = true;
    bool pooled_competitive = true;
    for (const BatchResult& batch : batches) {
        double best_pooled = 0.0;
        for (const ThreadResult& row : batch.rows) {
            tokens_all_identical &= row.tokens_identical;
            if (row.threads > 0) {
                best_pooled = std::max(best_pooled, row.tok_s);
            }
        }
        // 0.9x: a regression tripwire, not a marketing claim -- the
        // headroom absorbs shared-runner noise without letting a
        // genuinely serialized pool through.
        pooled_competitive &= best_pooled >= 0.9 * batch.rows[0].tok_s;
    }
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const bool perf_gated = hw_threads >= 4;

    bool mixed_identical = true;
    for (const std::size_t threads : {1u, 2u, 4u}) {
        mixed_identical &=
            mixed_step_identical(engine, config, threads);
    }

    const serve::ServerStats serving =
        serving_trace_stats(engine, config);
    bench::print_subtitle("Serving-trace latency (modeled clock)");
    bench::print_header("percentile", {"ttft_s", "tpot_s"});
    bench::print_row("p50", {serving.p50_ttft_s, serving.p50_tpot_s},
                     "%9.3f");
    bench::print_row("p95", {serving.p95_ttft_s, serving.p95_tpot_s},
                     "%9.3f");
    bench::print_row("p99", {serving.p99_ttft_s, serving.p99_tpot_s},
                     "%9.3f");

    std::printf("\npooled tokens bit-identical: %s\n",
                tokens_all_identical ? "yes" : "NO");
    std::printf("mixed prefill+decode bit-identical: %s\n",
                mixed_identical ? "yes" : "NO");
    std::printf("best pooled >= 0.9x serial at every batch: %s%s\n",
                pooled_competitive ? "yes" : "NO",
                perf_gated ? "" : " (not gated: too few cores)");

    if (!json_path.empty()) {
        bench::Json rows = bench::Json::array();
        for (const BatchResult& batch : batches) {
            for (const ThreadResult& row : batch.rows) {
                rows.push(
                    bench::Json::object()
                        .set("batch", batch.batch)
                        .set("kv", batch.kv)
                        .set("threads", row.threads)
                        .set("tokens_per_s", row.tok_s)
                        .set("speedup_vs_serial", row.speedup)
                        .set("worker_busy", row.worker_busy)
                        .set("tokens_identical",
                             row.tokens_identical));
            }
        }
        const bench::Json doc =
            bench::Json::object()
                .set("model", config.name)
                .set("decode_steps",
                     static_cast<std::size_t>(kDecodeSteps))
                .set("hardware_threads",
                     static_cast<std::size_t>(hw_threads))
                .set("perf_gate",
                     !perf_gated ? std::string("skipped")
                     : pooled_competitive ? std::string("pass")
                                          : std::string("fail"))
                .set("rows", std::move(rows))
                .set("mixed_step_identical", mixed_identical)
                .set("serving",
                     bench::Json::object()
                         .set("requests", serving.finished)
                         .set("p50_ttft_s", serving.p50_ttft_s)
                         .set("p95_ttft_s", serving.p95_ttft_s)
                         .set("p99_ttft_s", serving.p99_ttft_s)
                         .set("p50_tpot_s", serving.p50_tpot_s)
                         .set("p95_tpot_s", serving.p95_tpot_s)
                         .set("p99_tpot_s", serving.p99_tpot_s));
        if (!doc.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (check) {
        if (!tokens_all_identical || !mixed_identical) {
            std::fprintf(stderr,
                         "CHECK FAILED: pooled step not "
                         "bit-identical to serial\n");
            return 1;
        }
        if (perf_gated && !pooled_competitive) {
            std::fprintf(stderr,
                         "CHECK FAILED: best pooled config slower "
                         "than 0.9x serial\n");
            return 1;
        }
        if (!perf_gated) {
            std::printf("throughput gate skipped: %u hardware "
                        "thread(s)\n",
                        hw_threads);
        }
    }
    return 0;
}
