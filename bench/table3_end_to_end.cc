/**
 * @file
 * Table 3: end-to-end throughput, on-chip area, energy efficiency and
 * power efficiency on Llama 2 70B with GQA (batch 8, sequence 4096),
 * for single nodes (SN), scaled-up single nodes (SN-S) and NoC
 * configurations.  Energy efficiency follows the paper's metric:
 * throughput / energy-per-token.
 *
 * --threads N|auto appends a functional footer: wall-clock tokens/s
 * of an eval-scale batch-8 decode with Engine::step serial vs fanned
 * across an N-worker pool ("auto" sizes the pool from the hardware;
 * the table itself is analytic and unaffected).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "model/accuracy.h"
#include "model/transformer.h"
#include "model/workload.h"
#include "serve/engine.h"
#include "serve/scheduler.h"

using namespace mugi;

namespace {

void
print_design(const sim::DesignConfig& d, const model::Workload& w)
{
    const serve::Engine engine(d);
    const sim::PerfReport r = engine.perf(w);
    std::printf("%-18s %10.2f %9.2f %12.2f %12.2f\n", d.name.c_str(),
                r.throughput_tokens_per_s, sim::total_area_mm2(d),
                r.energy_efficiency, r.power_efficiency);
}

/** Wall-clock tokens/s of @p steps fused decode steps at batch 8. */
double
functional_decode_tok_s(const serve::Engine& engine,
                        const model::ModelConfig& config,
                        std::size_t threads, int steps)
{
    const std::size_t batch = 8;
    std::vector<serve::Session> sessions;
    sessions.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        sessions.push_back(engine.create_session());
        engine.prefill(sessions.back(),
                       model::synthetic_tokens(
                           4 + i % 3, config.vocab,
                           static_cast<std::uint32_t>(400 + i)));
    }
    serve::StepPlan plan;
    plan.threads = threads;
    for (serve::Session& s : sessions) {
        plan.decode_sessions.push_back(&s);
    }
    plan.decode_tokens.assign(batch, 0);
    for (std::size_t i = 0; i < batch; ++i) {
        plan.decode_tokens[i] =
            static_cast<int>((5 * i + 2) % config.vocab);
    }
    const bench::Timer timer;
    for (int step = 0; step < steps; ++step) {
        const serve::StepResult r = engine.step(plan);
        for (std::size_t i = 0; i < batch; ++i) {
            plan.decode_tokens[i] = r.outputs[i].next_token;
        }
    }
    return static_cast<double>(batch) * steps / timer.seconds();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::size_t threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = serve::resolve_step_threads(
                serve::threads_flag(argv[++i]));
        }
    }
    bench::print_title(
        "Table 3: LLaMA-2 70B (GQA), batch 8, seq 4096");
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);

    std::printf("%-18s %10s %9s %12s %12s\n", "Design", "Tokens/s",
                "Area mm2", "EnergyEff", "Tokens/s/W");

    std::printf("--- single node (SN) ---\n");
    for (const sim::DesignConfig& d :
         {sim::make_mugi(128), sim::make_mugi(256),
          sim::make_carat(128), sim::make_carat(256),
          sim::make_systolic(16), sim::make_systolic(16, true),
          sim::make_simd(16), sim::make_simd(16, true)}) {
        print_design(d, w);
    }

    std::printf("--- scaled-up single node (SN-S) ---\n");
    for (const sim::DesignConfig& d :
         {sim::make_systolic(64), sim::make_systolic(64, true),
          sim::make_simd(64), sim::make_simd(64, true),
          sim::make_tensor()}) {
        print_design(d, w);
    }

    std::printf("--- NoC ---\n");
    for (const sim::DesignConfig& d :
         {sim::make_mugi(256).with_noc(4, 4),
          sim::make_carat(256).with_noc(4, 4),
          sim::make_systolic(16).with_noc(4, 4),
          sim::make_systolic(16, true).with_noc(4, 4),
          sim::make_simd(16).with_noc(4, 4),
          sim::make_simd(16, true).with_noc(4, 4),
          sim::make_tensor().with_noc(2, 1)}) {
        print_design(d, w);
    }

    // Headline ratios of Sec. 6.3.1.
    const sim::PerfReport mugi256 =
        serve::Engine(sim::make_mugi(256)).perf(w);
    const sim::PerfReport sa16 =
        serve::Engine(sim::make_systolic(16)).perf(w);
    std::printf(
        "\nHeadline Mugi(256) vs SA(16): throughput %.2fx (paper "
        "2.07x), energy\nefficiency %.2fx (paper 3.11x), power "
        "efficiency %.2fx (paper 1.50x)\n",
        mugi256.throughput_tokens_per_s /
            sa16.throughput_tokens_per_s,
        mugi256.energy_efficiency / sa16.energy_efficiency,
        mugi256.power_efficiency / sa16.power_efficiency);

    if (threads > 0) {
        const model::ModelConfig config =
            model::llama2_7b().scaled_for_eval(4, 256, 1024);
        auto transformer =
            std::make_shared<model::TransformerModel>(config, 7);
        const serve::Engine engine(sim::make_mugi(256), transformer);
        const double serial_tok_s =
            functional_decode_tok_s(engine, config, 0, 8);
        const double pooled_tok_s =
            functional_decode_tok_s(engine, config, threads, 8);
        std::printf(
            "\nFunctional batch-8 decode (%s): %.2f tokens/s serial, "
            "%.2f tokens/s on %zu threads (%.2fx)\n",
            config.name.c_str(), serial_tok_s, pooled_tok_s, threads,
            pooled_tok_s / serial_tok_s);
    }
    return 0;
}
