/**
 * @file
 * Sustainability report (Sec. 2.4, 6.3.2): operational vs embodied
 * carbon of serving Llama-2 models on Mugi and the baselines, under
 * the ACT-style model of Eq. 6/7, including a sensitivity sweep over
 * grid carbon intensity.  Each design is evaluated through its
 * serve::Engine.
 *
 * Build & run:  ./build/examples/carbon_report
 */

#include <cstdio>
#include <vector>

#include "carbon/carbon_model.h"
#include "serve/engine.h"

using namespace mugi;

int
main()
{
    const std::vector<std::pair<const char*, sim::DesignConfig>>
        designs = {
            {"Mugi(256)", sim::make_mugi(256)},
            {"Carat(256)", sim::make_carat(256)},
            {"SA(16)", sim::make_systolic(16)},
            {"SD(16)", sim::make_simd(16)},
        };

    for (const model::ModelConfig& m :
         {model::llama2_7b(), model::llama2_70b()}) {
        std::printf("\n%s decode, batch 8, context 4096 "
                    "(gCO2e per million tokens)\n",
                    m.name.c_str());
        std::printf("%-12s %12s %12s %12s %10s\n", "design",
                    "operational", "embodied", "total",
                    "vs Mugi");
        double mugi_total = 0.0;
        for (const auto& [label, d] : designs) {
            const serve::Engine engine(d);
            const serve::SystemReport report =
                engine.evaluate_decode(m, 8, 4096);
            const carbon::CarbonReport& c = report.carbon;
            if (mugi_total == 0.0) {
                mugi_total = c.total_g_per_token();
            }
            std::printf("%-12s %12.2f %12.2f %12.2f %9.2fx\n", label,
                        c.operational_g_per_token * 1e6,
                        c.embodied_g_per_token * 1e6,
                        c.total_g_per_token() * 1e6,
                        c.total_g_per_token() / mugi_total);
        }
    }

    // Sensitivity: a cleaner grid shifts the operational/embodied
    // balance toward embodied (Sec. 2.4: "embodied carbon is taking
    // over"), which favours area-lean designs like Mugi even more.
    std::printf("\nGrid-intensity sensitivity (Llama-2 70B, "
                "Mugi(256)):\n");
    std::printf("%-18s %12s %12s %10s\n", "grid gCO2e/kWh",
                "operational", "embodied", "embodied%%");
    const serve::Engine mugi(sim::make_mugi(256));
    const sim::PerfReport perf = mugi.perf(
        model::build_decode_workload(model::llama2_70b(), 8, 4096));
    for (const double ci : {700.0, 475.0, 200.0, 50.0}) {
        carbon::CarbonParams params;
        params.carbon_intensity_g_per_kwh = ci;
        const carbon::CarbonReport c =
            carbon::assess(mugi.design(), perf, params);
        std::printf("%-18.0f %12.2f %12.2f %9.1f%%\n", ci,
                    c.operational_g_per_token * 1e6,
                    c.embodied_g_per_token * 1e6,
                    100.0 * c.embodied_g_per_token /
                        c.total_g_per_token());
    }
    return 0;
}
