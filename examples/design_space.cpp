/**
 * @file
 * Design-space exploration with the Mugi architecture models: sweep
 * array heights and NoC shapes for a deployment target (Llama-2 70B
 * decode, batch 8, seq 4096) and print the throughput / area / power
 * trade-off, flagging the Pareto-efficient points.  One serve::Engine
 * per candidate design.
 *
 * Build & run:  ./build/examples/design_space
 */

#include <cstdio>
#include <vector>

#include "serve/engine.h"

using namespace mugi;

namespace {

struct Candidate {
    sim::DesignConfig design;
    double throughput = 0.0;
    double area = 0.0;
    double power = 0.0;
};

}  // namespace

int
main()
{
    const model::ModelConfig target = model::llama2_70b();
    std::printf("Target: %s decode, batch 8, context 4096\n\n",
                target.name.c_str());

    std::vector<Candidate> candidates;
    for (const std::size_t rows : {64, 128, 256, 512}) {
        candidates.push_back({sim::make_mugi(rows)});
    }
    for (const auto& [r, c] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 2}, {4, 4}, {8, 8}}) {
        candidates.push_back({sim::make_mugi(256).with_noc(r, c)});
    }
    candidates.push_back({sim::make_systolic(16)});
    candidates.push_back({sim::make_tensor()});

    for (Candidate& c : candidates) {
        const serve::Engine engine(c.design);
        const serve::SystemReport report =
            engine.evaluate_decode(target, 8, 4096);
        c.throughput = report.perf.throughput_tokens_per_s;
        c.area = sim::total_area_mm2(c.design);
        c.power = report.perf.power_w;
    }

    std::printf("%-20s %10s %10s %9s %12s %7s\n", "design", "tokens/s",
                "area mm2", "power W", "tokens/s/mm2", "pareto");
    for (const Candidate& c : candidates) {
        // Pareto: no other candidate is at least as good on both
        // throughput and area (and strictly better on one).
        bool dominated = false;
        for (const Candidate& other : candidates) {
            if (&other == &c) continue;
            if (other.throughput >= c.throughput &&
                other.area <= c.area &&
                (other.throughput > c.throughput ||
                 other.area < c.area)) {
                dominated = true;
            }
        }
        std::printf("%-20s %10.2f %10.2f %9.3f %12.4f %7s\n",
                    c.design.name.c_str(), c.throughput, c.area,
                    c.power, c.throughput / c.area,
                    dominated ? "" : "yes");
    }

    std::printf(
        "\nReading: Mugi nodes scale tokens/s/mm2 ahead of the MAC "
        "baselines;\nmeshes scale throughput near-linearly at "
        "constant per-node efficiency.\n");
    return 0;
}
