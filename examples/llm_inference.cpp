/**
 * @file
 * End-to-end LLM inference through the Mugi serving stack: a
 * Llama-style transformer with
 *   - VLP-approximated softmax and SiLU (Sec. 3),
 *   - WOQ INT4 weights (Sec. 2.3.2),
 *   - KVQ INT4 KV cache on the decode path (Sec. 2.3.3),
 * compared against the exact FP32 model.  The decode runs through
 * serve::Engine with two concurrent sessions -- one float-cache, one
 * KVQ -- stepped as a single batch, demonstrating that batched
 * serving reproduces the per-request numerics.
 *
 * Build & run:  ./build/examples/llm_inference
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "model/accuracy.h"
#include "serve/engine.h"
#include "vlp/vlp_approximator.h"

using namespace mugi;

int
main()
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(/*max_layers=*/4,
                                            /*d_model_eval=*/64,
                                            /*vocab_eval=*/256);
    std::printf("Model: %s (%zu layers, d=%zu, GQA group %zu)\n",
                config.name.c_str(), config.num_layers, config.d_model,
                config.gqa_group());
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 2024);
    const serve::Engine engine(sim::make_mugi(256), transformer);

    // --- Accuracy with the full Mugi numerical stack. ---
    model::EvalOptions options;
    options.num_sequences = 3;
    options.seq_len = 24;
    const double base_ppl =
        model::evaluate_base(*transformer, options).perplexity;

    // The same kernels every session deploys by default, shared from
    // the engine's registry (softmax exp over [-3, 4], SiLU over
    // [-6, 1]).
    const model::NonlinearHooks hooks = engine.default_hooks();
    const double vlp_ppl =
        model::evaluate_against_exact(*transformer, hooks, options)
            .perplexity;

    transformer->apply_woq(32);  // INT4 weights from here on.
    const double woq_ppl =
        model::evaluate_against_exact(*transformer, hooks, options)
            .perplexity;

    std::printf("PPL vs exact teacher: base %.4f | +VLP nonlinear "
                "%.4f | +WOQ INT4 %.4f\n",
                base_ppl, vlp_ppl, woq_ppl);

    // --- Greedy decode: one engine, two sessions batched per step. ---
    serve::SessionOptions fp_opts;
    fp_opts.kv_precision = quant::KvPrecision::kFloat;
    serve::Session fp = engine.create_session(fp_opts);
    serve::Session q4 = engine.create_session();  // KVQ INT4 default.

    const std::vector<int> prompt =
        model::synthetic_tokens(12, config.vocab, 77);

    std::printf("greedy decode   :");
    int tok_fp = prompt[0], tok_q4 = prompt[0];
    int agree = 0;
    const int steps = 24;
    serve::Session* batch[2] = {&fp, &q4};
    for (int t = 0; t < steps; ++t) {
        const bool in_prompt =
            t + 1 < static_cast<int>(prompt.size());
        const int tokens[2] = {tok_fp, tok_q4};
        const serve::StepResult result = engine.step(batch, tokens);
        const int next_fp = in_prompt ? prompt[t + 1]
                                      : result.outputs[0].next_token;
        const int next_q4 = in_prompt ? prompt[t + 1]
                                      : result.outputs[1].next_token;
        if (!in_prompt) {
            std::printf(" %d%s", next_fp,
                        next_fp == next_q4 ? "" : "*");
            agree += (next_fp == next_q4);
        }
        tok_fp = next_fp;
        tok_q4 = next_q4;
    }
    const int generated = steps - static_cast<int>(prompt.size()) + 1;
    std::printf("\nKVQ agreement with float cache: %d/%d tokens "
                "(* = divergence)\n",
                agree, generated);
    std::printf("KV cache bytes: float %zu vs KVQ INT4 %zu (%.2fx "
                "smaller)\n",
                fp.kv_bytes().value(), q4.kv_bytes().value(),
                static_cast<double>(fp.kv_bytes().value()) /
                    static_cast<double>(q4.kv_bytes().value()));
    return 0;
}
