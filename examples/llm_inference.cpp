/**
 * @file
 * End-to-end LLM inference through the Mugi numerical stack: a
 * Llama-style transformer with
 *   - VLP-approximated softmax and SiLU (Sec. 3),
 *   - WOQ INT4 weights (Sec. 2.3.2),
 *   - KVQ INT4 KV cache on the decode path (Sec. 2.3.3),
 * compared against the exact FP32 model, with the greedy decode
 * continuation both produce and the KV-cache memory savings.
 *
 * Build & run:  ./build/examples/llm_inference
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "vlp/vlp_approximator.h"

using namespace mugi;

namespace {

int
argmax(const std::vector<float>& v)
{
    return static_cast<int>(std::distance(
        v.begin(), std::max_element(v.begin(), v.end())));
}

}  // namespace

int
main()
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(/*max_layers=*/4,
                                            /*d_model_eval=*/64,
                                            /*vocab_eval=*/256);
    std::printf("Model: %s (%zu layers, d=%zu, GQA group %zu)\n",
                config.name.c_str(), config.num_layers, config.d_model,
                config.gqa_group());
    model::TransformerModel transformer(config, 2024);

    // --- Accuracy with the full Mugi numerical stack. ---
    model::EvalOptions options;
    options.num_sequences = 3;
    options.seq_len = 24;
    const double base_ppl =
        model::evaluate_base(transformer, options).perplexity;

    const auto vlp_exp =
        vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    vlp::VlpConfig silu_cfg;
    silu_cfg.op = nonlinear::NonlinearOp::kSilu;
    silu_cfg.lut_min_exp = -6;
    silu_cfg.lut_max_exp = 1;
    const vlp::VlpApproximator vlp_silu(silu_cfg);
    model::NonlinearHooks hooks;
    hooks.softmax_exp = vlp_exp.get();
    hooks.activation = &vlp_silu;
    const double vlp_ppl =
        model::evaluate_against_exact(transformer, hooks, options)
            .perplexity;

    transformer.apply_woq(32);  // INT4 weights from here on.
    const double woq_ppl =
        model::evaluate_against_exact(transformer, hooks, options)
            .perplexity;

    std::printf("PPL vs exact teacher: base %.4f | +VLP nonlinear "
                "%.4f | +WOQ INT4 %.4f\n",
                base_ppl, vlp_ppl, woq_ppl);

    // --- Greedy decode with FP16-class vs KVQ INT4 cache. ---
    transformer.set_hooks(hooks);
    const std::vector<int> prompt =
        model::synthetic_tokens(12, config.vocab, 77);
    model::DecodeSession fp(transformer, quant::KvPrecision::kFloat);
    model::DecodeSession q4(transformer, quant::KvPrecision::kInt4);

    std::printf("greedy decode   :");
    int tok_fp = prompt[0], tok_q4 = prompt[0];
    int agree = 0;
    const int steps = 24;
    for (int t = 0; t < steps; ++t) {
        const bool in_prompt =
            t + 1 < static_cast<int>(prompt.size());
        const auto logits_fp = fp.step(tok_fp);
        const auto logits_q4 = q4.step(tok_q4);
        const int next_fp =
            in_prompt ? prompt[t + 1] : argmax(logits_fp);
        const int next_q4 =
            in_prompt ? prompt[t + 1] : argmax(logits_q4);
        if (!in_prompt) {
            std::printf(" %d%s", next_fp,
                        next_fp == next_q4 ? "" : "*");
            agree += (next_fp == next_q4);
        }
        tok_fp = next_fp;
        tok_q4 = next_q4;
    }
    const int generated = steps - static_cast<int>(prompt.size()) + 1;
    std::printf("\nKVQ agreement with float cache: %d/%d tokens "
                "(* = divergence)\n",
                agree, generated);
    std::printf("KV cache bytes: float %zu vs KVQ INT4 %zu (%.2fx "
                "smaller)\n",
                fp.kv_bytes(), q4.kv_bytes(),
                static_cast<double>(fp.kv_bytes()) /
                    static_cast<double>(q4.kv_bytes()));
    return 0;
}
