/**
 * @file
 * Quickstart: the three things Mugi does, through the serving API.
 *
 *  1. VLP nonlinear approximation: softmax through the temporal-coded
 *     LUT path, compared against the exact reference.
 *  2. Asymmetric BF16-INT4 GEMM: weights prepared (quantized) once at
 *     load time, then reused by the multiplier-free temporal array.
 *  3. Architecture evaluation: throughput / area / power / carbon of
 *     a Mugi node running Llama-2 decode.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>
#include <random>

#include "serve/engine.h"
#include "support/rng.h"

using namespace mugi;

int
main()
{
    const std::unique_ptr<serve::Engine> engine =
        serve::Engine::default_mugi();

    // --- 1. VLP softmax. ---
    std::mt19937 rng(42);
    std::normal_distribution<float> dist(0.0f, 2.0f);
    std::vector<float> logits(16);
    for (float& v : logits) v = dist(rng);
    const std::vector<float> approx = engine->run_softmax(logits);
    const std::vector<float> exact = nonlinear::softmax_ref(logits);
    double l1 = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        l1 += std::fabs(approx[i] - exact[i]);
    }
    std::printf("VLP softmax: L1 distance to exact = %.4f over %zu "
                "entries\n",
                l1, logits.size());

    // --- 2. BF16-INT4 WOQ GEMM: prepare once, run many. ---
    support::MatrixF weights(64, 128);
    support::MatrixF activations(128, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(activations, rng, 0.0f, 1.0f);
    const serve::PreparedWeights prepared =
        engine->prepare_weights(weights, /*group_size=*/32);
    const serve::GemmRun gemm =
        engine->run_woq_gemm(prepared, activations);
    const support::MatrixF reference =
        support::matmul(weights, activations);
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double d = gemm.out.data()[i] - reference.data()[i];
        err += d * d;
        norm += reference.data()[i] * reference.data()[i];
    }
    std::printf("WOQ GEMM (64x128x8, group 32): relative error %.3f, "
                "%llu array cycles, %zu-byte prepared handle\n",
                std::sqrt(err / norm),
                static_cast<unsigned long long>(gemm.cycles),
                prepared.byte_size());

    // --- 3. Accelerator evaluation. ---
    const serve::SystemReport report =
        engine->evaluate_decode(model::llama2_70b(), /*batch=*/8,
                                /*context=*/4096);
    std::printf(
        "Llama-2 70B decode on %s: %.2f tokens/s, %.2f mm^2, %.2f "
        "tokens/s/W,\n  %.2f gCO2e/Mtoken operational + %.2f "
        "embodied\n",
        engine->design().name.c_str(),
        report.perf.throughput_tokens_per_s, report.area.total(),
        report.perf.power_efficiency,
        report.carbon.operational_g_per_token * 1e6,
        report.carbon.embodied_g_per_token * 1e6);
    return 0;
}
