/**
 * @file
 * Continuous-batch serving with the Engine / Session API: admit a
 * pool of Llama-2 70B requests with heterogeneous context lengths,
 * step them as one batch per iteration (requests join and leave
 * mid-flight), and accumulate the per-step reports into a serving-
 * horizon summary with sim::PerfAccumulator.
 *
 * The point: the engine is built once (kernel registry, design), and
 * a step's cost is evaluated over the *mixed* workload -- projection
 * and FFN weights stream from DRAM once per step regardless of how
 * many requests share it, which is where batched decode throughput
 * comes from.
 *
 * Build & run:  ./build/examples/serving
 */

#include <cstdio>
#include <vector>

#include "serve/engine.h"

using namespace mugi;

int
main()
{
    const model::ModelConfig model = model::llama2_70b();
    const serve::Engine engine(sim::make_mugi(256), model);

    // Admit eight requests mid-conversation, contexts 256..4096.
    std::vector<serve::Session> pool;
    for (const std::size_t context :
         {256u, 512u, 1024u, 1536u, 2048u, 3072u, 3584u, 4096u}) {
        serve::SessionOptions options;
        options.initial_context = context;
        pool.push_back(engine.create_session(options));
    }

    std::printf("Serving %s on %s: %zu sessions, contexts 256..4096\n",
                model.name.c_str(), engine.design().name.c_str(),
                pool.size());

    sim::PerfAccumulator horizon;
    const int kSteps = 16;
    for (int t = 0; t < kSteps; ++t) {
        // Continuous batching: after step 8, the two shortest
        // requests finish and leave the batch.
        std::vector<serve::Session*> batch;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (t >= 8 && i < 2) continue;
            batch.push_back(&pool[i]);
        }
        const serve::StepResult result = engine.step(batch);
        horizon.add(result.report.perf);
        if (t == 0 || t == 8) {
            std::printf(
                "  step %2d: %zu sessions, %.2f tokens/s, %.3f W, "
                "event-sim util %.0f%%\n",
                t, batch.size(),
                result.report.perf.throughput_tokens_per_s,
                result.report.perf.power_w,
                100.0 * result.report.event_sim.compute_utilization());
        }
    }

    const sim::PerfReport total = horizon.total();
    std::printf("Horizon (%zu steps): %.0f tokens, %.2f tokens/s, "
                "%.2f tokens/s/W, %.2e J/token\n",
                horizon.steps(), total.tokens,
                total.throughput_tokens_per_s, total.power_efficiency,
                total.energy_per_token_j);

    // Contrast with one-request-at-a-time decode at the mean context.
    sim::PerfAccumulator serial;
    for (const std::size_t context :
         {256u, 512u, 1024u, 1536u, 2048u, 3072u, 3584u, 4096u}) {
        serial.add(engine.evaluate_decode(model, 1, context).perf);
    }
    std::printf("Per-request decode of the same 8 contexts: %.2f "
                "tokens/s (batched step: %.2fx)\n",
                serial.total().throughput_tokens_per_s,
                horizon.total().throughput_tokens_per_s /
                    serial.total().throughput_tokens_per_s);
    return 0;
}
