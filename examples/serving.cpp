/**
 * @file
 * Request-lifecycle serving with serve::Scheduler: submit a trace of
 * Llama-2 70B requests with staggered arrivals, let the scheduler
 * admit them under a KV-memory budget, chunk their prefills into the
 * decode batch, and continuously batch Engine::step until the trace
 * drains -- then report per-request TTFT/TPOT and the serving-horizon
 * ServerStats.
 *
 * The points on display:
 *  - admission control: the INT4-KV block pool caps how many
 *    requests hold cache concurrently; admission reserves only each
 *    prompt's blocks (not the full projected generation), later
 *    arrivals queue (their queue wait shows up in TTFT), and any
 *    mid-decode pool pressure is resolved by preempting the
 *    lowest-priority request;
 *  - chunked prefill: prompts are fed <= 256 tokens per iteration
 *    *inside* the decode batch's weight stream, so long prompts never
 *    stall decode latency the way a monolithic prefill would;
 *  - continuous batching: the batch is steered toward the Fig. 14
 *    knee (BatchPolicy), requests leave mid-flight and queued ones
 *    take their place the same iteration;
 *  - prefix caching: every request opens with the same 256-token
 *    system prompt (declared via Request::prefix_group for this
 *    analytic trace), so arrivals that find it resident skip those
 *    prefill chunks and share one refcounted KV reservation.
 *
 * Build & run:  ./build/examples/serving [--threads N|auto]
 *
 * --threads N additionally runs a small *functional* trace (real
 * tokens through the eval-scale transformer) with every mixed step
 * fanned across an N-worker pool, and reports the pool's measured
 * busy/idle fractions from ServerStats -- the pooled step is
 * bit-identical to serial, so N changes wall-clock only.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/scheduler.h"

using namespace mugi;

namespace {

/**
 * Functional serving on the worker pool: a 6-request eval-scale
 * trace, real tokens, INT4 KV, step_threads workers per mixed step.
 */
void
run_functional_pooled(std::size_t threads)
{
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(4, 128, 512);
    auto transformer =
        std::make_shared<model::TransformerModel>(config, 11);
    const serve::Engine engine(sim::make_mugi(256), transformer);

    serve::SchedulerConfig sched_config;
    sched_config.prefill_chunk_tokens = units::Tokens(16);
    sched_config.step_threads = threads;
    serve::Scheduler scheduler(engine, sched_config);

    for (int i = 0; i < 6; ++i) {
        serve::Request request;
        request.prompt = model::synthetic_tokens(
            12 + 5 * (i % 3), config.vocab,
            static_cast<std::uint32_t>(900 + i));
        request.max_new_tokens = units::Tokens(8 + i);
        scheduler.submit(request);
    }
    const std::vector<serve::FinishedRequest> finished =
        scheduler.run();

    std::size_t tokens = 0;
    for (const serve::FinishedRequest& f : finished) {
        tokens += f.generated.value();
    }
    const serve::ServerStats stats = scheduler.stats();
    std::printf(
        "\nFunctional pooled serving (%s, %zu worker thread%s): %zu "
        "requests, %zu tokens\n",
        config.name.c_str(), threads, threads == 1 ? "" : "s",
        finished.size(), tokens);
    std::printf(
        "  %zu of %zu steps pooled, mean worker busy %.0f%% / idle "
        "%.0f%%\n",
        stats.pooled_steps, stats.steps,
        100.0 * stats.mean_worker_busy,
        100.0 * stats.mean_worker_idle);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::size_t threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            // "auto" sizes the pool from the hardware.
            threads = serve::resolve_step_threads(
                serve::threads_flag(argv[++i]));
        }
    }

    const model::ModelConfig model = model::llama2_70b();
    const serve::Engine engine(sim::make_mugi(256), model);

    serve::SchedulerConfig config;
    // ~1 GiB of KVQ INT4 cache: enough for ~10 of the requests below
    // to be resident at once, so the trace exercises the queue.
    config.kv_budget_bytes = units::Bytes(1ull << 30);
    config.prefill_chunk_tokens = units::Tokens(256);
    serve::Scheduler scheduler(engine, config);

    std::printf("Serving %s on %s (Fig. 14 batch target %zu, KV "
                "budget %.0f MiB)\n",
                model.name.c_str(), engine.design().name.c_str(),
                scheduler.policy().target_batch(),
                static_cast<double>(config.kv_budget_bytes.value()) /
                    (1 << 20));

    // A 12-request trace: the first 8 arrive together (>= 8
    // concurrent in flight), four more trickle in later; prompts
    // 256..3072 tokens, generations 24..46 tokens.
    std::size_t streamed = 0;
    const double stagger_s =
        4.0 * engine.evaluate_decode(model, 8, 1024).perf.runtime_s;
    for (int i = 0; i < 12; ++i) {
        serve::Request request;
        request.analytic_prompt_tokens = units::Tokens(
            256 + 256 * (i % 8) + (i >= 8 ? 1024 : 0));
        // Common 256-token system prompt: arrivals that find it
        // resident adopt its blocks instead of re-prefilling.
        request.prefix_group = 1;
        request.prefix_tokens = units::Tokens(256);
        request.max_new_tokens = units::Tokens(24 + 2 * i);
        request.arrival_time_s =
            i < 8 ? 0.0 : static_cast<double>(i - 7) * stagger_s;
        request.on_token = [&streamed](std::uint64_t, std::size_t,
                                       int) { ++streamed; };
        scheduler.submit(request);
    }

    const std::vector<serve::FinishedRequest> finished =
        scheduler.run();

    std::printf("\n%-4s %7s %6s %10s %10s %10s %s\n", "req",
                "prompt", "gen", "queue(s)", "ttft(s)", "tpot(s)",
                "reason");
    for (const serve::FinishedRequest& f : finished) {
        std::printf("#%-3llu %7zu %6zu %10.2f %10.2f %10.3f %s\n",
                    static_cast<unsigned long long>(f.id),
                    f.prompt_tokens.value(), f.generated.value(), f.queue_s(),
                    f.ttft_s(), f.tpot_s(),
                    serve::finish_reason_name(f.reason));
    }

    const serve::ServerStats stats = scheduler.stats();
    std::printf(
        "\nHorizon: %zu iterations, %zu prompt + %zu decode tokens "
        "(%zu streamed to callers)\n",
        stats.steps, stats.prefill_tokens.value(),
        stats.decode_tokens.value(),
        streamed);
    std::printf(
        "  throughput %.2f tokens/s, %.2f tokens/s/W, %.3e J/token\n",
        stats.horizon.throughput_tokens_per_s,
        stats.horizon.power_efficiency,
        stats.horizon.energy_per_token_j);
    std::printf(
        "  latency: mean queue %.2f s, mean TTFT %.2f s (max %.2f), "
        "mean TPOT %.3f s\n",
        stats.mean_queue_s, stats.mean_ttft_s, stats.max_ttft_s,
        stats.mean_tpot_s);
    // Tail latency: the serving number a mean hides.
    std::printf(
        "  TTFT p50/p95/p99 %.2f/%.2f/%.2f s, TPOT p50/p95/p99 "
        "%.3f/%.3f/%.3f s\n",
        stats.p50_ttft_s, stats.p95_ttft_s, stats.p99_ttft_s,
        stats.p50_tpot_s, stats.p95_tpot_s, stats.p99_tpot_s);
    std::printf("  peak KV %.1f MiB of %.0f MiB budget (%.0f%% pool "
                "utilization, %zu preemption%s)\n",
                static_cast<double>(stats.peak_kv_bytes.value()) /
                    (1 << 20),
                static_cast<double>(stats.kv_budget_bytes.value()) /
                    (1 << 20),
                100.0 * stats.peak_pool_utilization,
                stats.preemptions,
                stats.preemptions == 1 ? "" : "s");
    std::printf("  prefix cache: %zu hit%s, %zu shared block "
                "group%s, %zu prefill tokens saved\n",
                stats.prefix_hits, stats.prefix_hits == 1 ? "" : "s",
                stats.shared_blocks.value(),
                stats.shared_blocks == units::Blocks(1) ? "" : "s",
                stats.saved_prefill_tokens.value());
    std::printf("  overload: %zu shed, %zu admission timeouts, "
                "%zu slow-client cancels, %zu faults injected\n",
                stats.requests_shed, stats.admission_timeouts,
                stats.slow_client_cancels, stats.faults_injected);

    // Contrast with serving the same trace one request at a time:
    // every request would pay its own WOQ weight stream per token.
    sim::PerfAccumulator serial;
    for (const serve::FinishedRequest& f : finished) {
        for (std::size_t t = 0; t < f.generated.value(); ++t) {
            serial.add(engine
                           .evaluate_decode(model, 1,
                                            f.prompt_tokens.value() + t + 1)
                           .perf);
        }
    }
    std::printf(
        "\nOne-request-at-a-time decode of the same trace: %.2f "
        "tokens/s (scheduler: %.2fx)\n",
        serial.total().throughput_tokens_per_s,
        stats.horizon.throughput_tokens_per_s /
            serial.total().throughput_tokens_per_s);

    if (threads > 0) {
        run_functional_pooled(threads);
    }
    return 0;
}
