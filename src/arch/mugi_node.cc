#include "arch/mugi_node.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"
#include "numerics/rounding.h"
#include "vlp/temporal.h"

namespace mugi {
namespace arch {

MugiNode::MugiNode(const vlp::VlpConfig& config, std::size_t array_rows)
    : config_(config), array_rows_(array_rows), reference_([&] {
          vlp::VlpConfig ref = config;
          ref.mapping_rows = array_rows;
          return ref;
      }())
{
    assert(array_rows_ >= 1);
}

MugiNonlinearRun
MugiNode::run_nonlinear(std::span<const float> inputs) const
{
    using nonlinear::NonlinearOp;
    MugiNonlinearRun run;
    run.outputs.resize(inputs.size());

    const vlp::NonlinearLut& lut = reference_.lut();
    const int mantissas = 1 << config_.mantissa_bits;
    const int window = config_.window_size;

    for (std::size_t start = 0; start < inputs.size();
         start += array_rows_) {
        const std::size_t rows =
            std::min(array_rows_, inputs.size() - start);
        const std::span<const float> mapping =
            inputs.subspan(start, rows);

        // E-proc chooses the sliding window for this mapping.
        const vlp::WindowChoice win = vlp::choose_window(
            mapping, lut.config(), window, config_.policy);

        // --- Phase 1: input field split per row (M-proc / E-proc).
        struct RowState {
            bool special = false;   // Routed through PP directly.
            float pp_value = 0.0f;  // PP output when special.
            bool sign = false;
            std::uint32_t mantissa = 0;
            int exponent = 0;       // Clamped into the window.
            std::vector<float> latched;  // Captured LUT row.
            bool row_latched = false;
        };
        std::vector<RowState> state(rows);
        for (std::size_t r = 0; r < rows; ++r) {
            const float x = mapping[r];
            RowState& row = state[r];
            // The PP block handles specials and window clamping
            // outcomes; reuse the functional reference for the
            // special-value outputs so the datapath below only sees
            // LUT-subscribing rows.
            if (std::isnan(x) || std::isinf(x)) {
                row.special = true;
                row.pp_value = reference_.apply_with_window(x, win);
                continue;
            }
            const numerics::RoundedValue v = numerics::round_mantissa(
                numerics::bf16_round(x), config_.mantissa_bits);
            if (v.is_zero ||
                (config_.op == NonlinearOp::kExp && !v.sign) ||
                v.exponent < win.lo ||
                (v.exponent > win.hi &&
                 config_.op != NonlinearOp::kExp)) {
                row.special = true;
                row.pp_value = reference_.apply_with_window(x, win);
                continue;
            }
            row.sign = v.sign;
            if (v.exponent > win.hi) {
                // Softmax overflow: PP selects the deepest entry.
                row.mantissa = static_cast<std::uint32_t>(mantissas - 1);
                row.exponent = win.hi;
            } else {
                row.mantissa = v.mantissa;
                row.exponent = v.exponent;
            }
        }

        // --- Phase 2+3: stream LUT rows in mantissa-ascending order;
        // each row's TC fires when the counter equals its mantissa
        // and latches the sliding-window slice of the LUT row.
        for (int cycle = 0; cycle < mantissas; ++cycle) {
            // For a signed LUT both sign rows are streamed; the sign
            // selects which broadcast lane a row listens to.
            ++run.lut_row_reads;
            for (std::size_t r = 0; r < rows; ++r) {
                RowState& row = state[r];
                if (row.special || row.row_latched) {
                    continue;
                }
                const vlp::TemporalConverter tc(row.mantissa);
                if (!tc.spikes_at(static_cast<std::uint32_t>(cycle))) {
                    continue;
                }
                const std::span<const float> lut_row =
                    lut.row(row.sign, row.mantissa);
                row.latched.assign(window, 0.0f);
                for (int e = win.lo; e <= win.hi; ++e) {
                    row.latched[e - win.lo] =
                        lut_row[e - lut.config().min_exp];
                }
                row.row_latched = true;
            }
        }
        run.cycles += static_cast<std::uint64_t>(mantissas);

        // --- Phase 4: exponent temporal subscription through PP.
        for (int cycle = 0; cycle < window; ++cycle) {
            for (std::size_t r = 0; r < rows; ++r) {
                RowState& row = state[r];
                const std::size_t out_idx = start + r;
                if (row.special) {
                    if (cycle == 0) {
                        run.outputs[out_idx] = row.pp_value;
                    }
                    continue;
                }
                const vlp::TemporalConverter tc(
                    static_cast<std::uint32_t>(row.exponent - win.lo));
                if (tc.spikes_at(static_cast<std::uint32_t>(cycle))) {
                    run.outputs[out_idx] = row.latched[cycle];
                }
            }
        }
        // Mappings pipeline: the exponent subscription of this load
        // overlaps the mantissa sweep of the next, so only the final
        // drain adds latency (accounted once below).
        ++run.mappings;

        // oAcc accumulates exp results for the softmax sum.
        if (config_.op == NonlinearOp::kExp) {
            for (std::size_t r = 0; r < rows; ++r) {
                run.softmax_sum +=
                    static_cast<double>(run.outputs[start + r]);
            }
        }
    }
    run.cycles += static_cast<std::uint64_t>(config_.window_size);
    return run;
}

}  // namespace arch
}  // namespace mugi
