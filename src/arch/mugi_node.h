#ifndef MUGI_ARCH_MUGI_NODE_H_
#define MUGI_ARCH_MUGI_NODE_H_

/**
 * @file
 * Cycle-accurate functional model of one Mugi node's nonlinear path
 * (Fig. 9/10): M-proc/E-proc input field split, iSRAM LUT-row
 * streaming (value reuse), per-row mantissa temporal subscription,
 * and PP exponent temporal subscription, with the oAcc accumulating
 * softmax sums on the fly (Sec. 4.1).
 *
 * The model executes the four phases cycle by cycle and must produce
 * *bit-identical* outputs to the functional vlp::VlpApproximator --
 * the integration tests enforce this equivalence, which is the
 * repository's stand-in for RTL-vs-model co-simulation.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "vlp/vlp_approximator.h"

namespace mugi {
namespace arch {

/** Outcome of running one batch through the node's nonlinear path. */
struct MugiNonlinearRun {
    std::vector<float> outputs;
    double softmax_sum = 0.0;   ///< oAcc accumulation (exp only).
    std::uint64_t cycles = 0;   ///< Simulated cycles.
    std::uint64_t mappings = 0; ///< Array loads executed.
    std::uint64_t lut_row_reads = 0;  ///< iSRAM row reads.
};

/** One Mugi node driving the VLP nonlinear path. */
class MugiNode {
  public:
    /**
     * @param config VLP configuration (op, LUT window, policy).
     * @param array_rows Array height H; each mapping processes up to
     *        H inputs.
     */
    MugiNode(const vlp::VlpConfig& config, std::size_t array_rows);

    /**
     * Run @p inputs through the nonlinear path, mapping_rows = H per
     * array load, simulating each temporal phase cycle by cycle.
     */
    MugiNonlinearRun run_nonlinear(std::span<const float> inputs) const;

    std::size_t array_rows() const { return array_rows_; }
    const vlp::VlpApproximator& reference() const { return reference_; }

  private:
    vlp::VlpConfig config_;
    std::size_t array_rows_;
    vlp::VlpApproximator reference_;
};

}  // namespace arch
}  // namespace mugi

#endif  // MUGI_ARCH_MUGI_NODE_H_
