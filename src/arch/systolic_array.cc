#include "arch/systolic_array.h"

#include <cassert>
#include <vector>

namespace mugi {
namespace arch {

SystolicResult
systolic_gemm(const support::MatrixF& a, const support::MatrixF& b,
              std::size_t array_dim)
{
    assert(a.cols() == b.rows());
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    const std::size_t A = array_dim;

    SystolicResult result;
    result.out = support::MatrixF(m, n, 0.0f);

    for (std::size_t m0 = 0; m0 < m; m0 += A) {
        const std::size_t mh = std::min(A, m - m0);
        for (std::size_t n0 = 0; n0 < n; n0 += A) {
            const std::size_t nw = std::min(A, n - n0);
            // One output-stationary tile: PE (r, c) accumulates
            // C[m0+r, n0+c].  Operands are skewed: A[m0+r, :] enters
            // the west edge delayed by r cycles, B[:, n0+c] enters
            // the north edge delayed by c cycles; PE (r, c) sees
            // A[m0+r, t - r - c] meet B[t - r - c, n0+c] at cycle t.
            const std::uint64_t tile_cycles =
                static_cast<std::uint64_t>(k) + 2 * A - 1;
            for (std::uint64_t t = 0; t < tile_cycles; ++t) {
                for (std::size_t r = 0; r < mh; ++r) {
                    for (std::size_t c = 0; c < nw; ++c) {
                        const std::int64_t kk =
                            static_cast<std::int64_t>(t) -
                            static_cast<std::int64_t>(r) -
                            static_cast<std::int64_t>(c);
                        if (kk < 0 ||
                            kk >= static_cast<std::int64_t>(k)) {
                            continue;
                        }
                        result.out.at(m0 + r, n0 + c) +=
                            a.at(m0 + r, static_cast<std::size_t>(kk)) *
                            b.at(static_cast<std::size_t>(kk), n0 + c);
                        ++result.macs;
                    }
                }
            }
            result.cycles += tile_cycles;
        }
    }
    result.utilization =
        static_cast<double>(result.macs) /
        (static_cast<double>(result.cycles) * A * A);
    return result;
}

std::uint64_t
systolic_cycles(std::size_t m, std::size_t n, std::size_t k,
                std::size_t array_dim)
{
    const std::uint64_t m_tiles = (m + array_dim - 1) / array_dim;
    const std::uint64_t n_tiles = (n + array_dim - 1) / array_dim;
    return m_tiles * n_tiles *
           (static_cast<std::uint64_t>(k) + 2 * array_dim - 1);
}

}  // namespace arch
}  // namespace mugi
