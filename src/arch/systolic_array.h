#ifndef MUGI_ARCH_SYSTOLIC_ARRAY_H_
#define MUGI_ARCH_SYSTOLIC_ARRAY_H_

/**
 * @file
 * Cycle-accurate functional model of the output-stationary systolic
 * array baseline (Sec. 5.2.2/5.2.3).  Activations enter from the west
 * edge, weights from the north edge, both skewed by one cycle per
 * row/column; each PE multiply-accumulates into its stationary output
 * register.  This is the ground truth the analytic SA cycle formula
 * is validated against, and a functional reference for the baseline
 * GEMM results.
 */

#include <cstdint>

#include "support/matrix.h"

namespace mugi {
namespace arch {

/** Result of a simulated systolic GEMM. */
struct SystolicResult {
    support::MatrixF out;      ///< C = A * B.
    std::uint64_t cycles = 0;  ///< Simulated cycle count.
    std::uint64_t macs = 0;    ///< MAC operations performed.
    double utilization = 0.0;  ///< macs / (cycles * rows * cols).
};

/**
 * Output-stationary systolic GEMM C[m,n] = A[m,k] * B[k,n] on an
 * @p array_dim x @p array_dim grid.  Tiles of C map onto the PE grid;
 * for each tile, k streams through with the standard input skew.
 */
SystolicResult systolic_gemm(const support::MatrixF& a,
                             const support::MatrixF& b,
                             std::size_t array_dim);

/**
 * Analytic cycle count of the same mapping:
 *   ceil(m/A) * ceil(n/A) * (k + 2A - 1)
 * (k streaming plus the skew fill/drain per tile).
 */
std::uint64_t systolic_cycles(std::size_t m, std::size_t n,
                              std::size_t k, std::size_t array_dim);

}  // namespace arch
}  // namespace mugi

#endif  // MUGI_ARCH_SYSTOLIC_ARRAY_H_
