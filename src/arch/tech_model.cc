#include "arch/tech_model.h"

#include <cmath>

namespace mugi {
namespace arch {

double
component_area(Component c)
{
    // Anchors: Horowitz ISSCC'14 45 nm datapath table (FP16 add
    // 1360 um^2 / mult 1640 um^2, INT8 add 36 um^2, INT32 add
    // 137 um^2), composed with registers and muxing; VLP components
    // sized so an 8x8 Mugi node totals ~0.056 mm^2 (Sec. 5.4 P&R).
    switch (c) {
      case Component::kVlpPe:
        return 150.0;   // T reg + AND + OR tap + latch.
      case Component::kTemporalConverter:
        return 220.0;   // Equality over 3-4 bits + control.
      case Component::kCounter:
        return 180.0;
      case Component::kBf16Adder:
        return 1400.0;  // ~FP16 adder + register.
      case Component::kFp32Adder:
        return 3100.0;
      case Component::kBf16Mac:
        return 3600.0;  // FP16 mult + add + pipeline regs.
      case Component::kFignaMac:
        return 4100.0;  // FP-INT integer-unit PE (FIGNA).
      case Component::kInt4Mult:
        return 120.0;
      case Component::kFifoByte:
        return 55.0;    // 8 flops + mux per byte.
      case Component::kLutByte:
        return 70.0;    // FIFO-built programmable LUT (Mugi-L).
      case Component::kComparator:
        return 240.0;
      case Component::kPostProc:
        return 600.0;   // Special-value mux network.
      case Component::kSignConvert:
        return 90.0;
      case Component::kWindowSelect:
        return 400.0;
      case Component::kRouter:
        return 90000.0; // 3-channel mesh router.
    }
    return 0.0;
}

double
component_energy(Component c)
{
    switch (c) {
      case Component::kVlpPe:
        return 0.055;  // Subscription: one latch + gate toggle.
      case Component::kTemporalConverter:
        return 0.025;
      case Component::kCounter:
        return 0.02;
      case Component::kBf16Adder:
        return 0.40;   // Horowitz FP16 add.
      case Component::kFp32Adder:
        return 0.90;
      case Component::kBf16Mac:
        return 1.50;   // FP16 mult (1.1) + add (0.4).
      case Component::kFignaMac:
        return 1.45;   // Integer-unit FP-INT MAC.
      case Component::kInt4Mult:
        return 0.10;
      case Component::kFifoByte:
        return 0.11;   // Shift one byte.
      case Component::kLutByte:
        return 0.12;
      case Component::kComparator:
        return 0.06;
      case Component::kPostProc:
        return 0.10;
      case Component::kSignConvert:
        return 0.02;
      case Component::kWindowSelect:
        return 0.08;
      case Component::kRouter:
        return 12.0;   // Per flit-byte switched handled separately.
    }
    return 0.0;
}

double
SramMacro::area_um2() const
{
    // CACTI-class 45 nm density: ~4.3 um^2 per byte for small
    // (64-256 KB) macros including periphery, with a mild size
    // penalty for very small macros.
    const double bytes_d = static_cast<double>(bytes);
    const double density = 3.9 * (1.0 + 8192.0 / (bytes_d + 16384.0));
    const double banks = double_buffered ? 2.0 : 1.0;
    return bytes_d * density * banks;
}

double
SramMacro::access_energy_per_byte() const
{
    // ~0.09 pJ/bit for 64 KB-class macros at 45 nm.
    return 0.72;
}

double
SramMacro::leakage_mw() const
{
    // SRAM leaks less per area than logic: ~6 mW per mm^2.
    return area_um2() * 1e-6 * 6.0;
}

}  // namespace arch
}  // namespace mugi
