#ifndef MUGI_ARCH_TECH_MODEL_H_
#define MUGI_ARCH_TECH_MODEL_H_

/**
 * @file
 * 45 nm, 400 MHz technology component library (Sec. 5.4).
 *
 * The paper's area/energy numbers come from RTL synthesis at 45 nm
 * plus CACTI 7 for SRAM.  This reproduction substitutes a component
 * table anchored to published 45 nm datapoints (the classic Horowitz
 * ISSCC'14 energy table for arithmetic, CACTI-class scaling for SRAM)
 * and calibrated against the paper's absolute anchors: the 8x8 Mugi
 * node at 0.056 mm^2 and the Table 3 / Fig. 13 breakdowns.  All
 * designs are costed from the *same* table, so relative comparisons
 * inherit only the well-established component ratios.
 *
 * Units: area um^2, energy pJ, power mW, time ns.
 */

#include <cstddef>
#include <cstdint>

namespace mugi {
namespace arch {

/** Clock frequency used throughout the evaluation (Sec. 5.2.3). */
inline constexpr double kClockMhz = 400.0;

/** ns per cycle at 400 MHz. */
inline constexpr double kCycleNs = 1000.0 / kClockMhz;

/** Datapath components with per-instance area and per-op energy. */
enum class Component {
    kVlpPe,        ///< Mugi PE: AND subscription + T reg + OR tap.
    kTemporalConverter,  ///< TC: equality + counter tap.
    kCounter,      ///< Shared per-column counter.
    kBf16Adder,    ///< BF16 accumulator (iAcc / oAcc).
    kFp32Adder,    ///< FP32 accumulator (tensor core / SA top).
    kBf16Mac,      ///< BF16 multiply-accumulate PE (SA/SD/VA).
    kFignaMac,     ///< FIGNA FP-INT PE (integer-unit based).
    kInt4Mult,     ///< Slim INT4 multiplier.
    kFifoByte,     ///< One byte of FIFO storage (regs + mux).
    kLutByte,      ///< One byte of programmable LUT (Mugi-L, FIFO-built).
    kComparator,   ///< PWL segment comparator.
    kPostProc,     ///< PP block: special-value mux + select.
    kSignConvert,  ///< SC: XOR sign network per row.
    kWindowSelect, ///< SW block per column.
    kRouter,       ///< NoC router (3 channels, Sec. 5.2.3).
};

/** Area of one component instance in um^2. */
double component_area(Component c);

/** Switching energy of one component operation in pJ. */
double component_energy(Component c);

/** CACTI-like SRAM macro model. */
struct SramMacro {
    std::size_t bytes = 0;
    bool double_buffered = true;  ///< Mugi double buffers everything.

    /** Total macro area in um^2. */
    double area_um2() const;
    /** Energy of one byte accessed, pJ. */
    double access_energy_per_byte() const;
    /** Leakage power in mW. */
    double leakage_mw() const;
};

/** Off-chip memory (HBM, 256 GB/s, Sec. 5.2.3). */
struct OffChipMemory {
    double bandwidth_gbps = 256.0;

    /** Bytes deliverable per core cycle at 400 MHz. */
    double
    bytes_per_cycle() const
    {
        return bandwidth_gbps * 1e9 / (kClockMhz * 1e6);
    }
    /** pJ per byte moved from DRAM (HBM core + PHY, ~7 pJ/bit). */
    double energy_per_byte() const { return 56.0; }
};

/** Logic leakage density, mW per mm^2 (45 nm high-performance). */
inline constexpr double kLogicLeakageMwPerMm2 = 18.0;

/** NoC link energy per byte per hop, pJ. */
inline constexpr double kNocHopEnergyPerByte = 0.8;

}  // namespace arch
}  // namespace mugi

#endif  // MUGI_ARCH_TECH_MODEL_H_
