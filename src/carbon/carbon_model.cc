#include "carbon/carbon_model.h"

namespace mugi {
namespace carbon {

double
carbon_per_area_g_per_mm2(const CarbonParams& params)
{
    return params.manufacturing_kwh_per_mm2 *
           params.carbon_intensity_g_per_kwh;
}

CarbonReport
assess(const sim::DesignConfig& design, const sim::PerfReport& perf,
       const CarbonParams& params)
{
    CarbonReport report;

    // Operational: E * CI (Eq. 6), with E the energy per token.
    const double kwh_per_token =
        perf.energy_per_token_j / 3.6e6;  // J -> kWh.
    report.operational_g_per_token =
        kwh_per_token * params.carbon_intensity_g_per_kwh;

    // Embodied: Area * CPA (Eq. 7), amortized over the tokens the
    // design processes across its lifetime.
    const double area = sim::total_area_mm2(design);
    const double embodied_total_g =
        area * carbon_per_area_g_per_mm2(params);
    const double lifetime_tokens =
        perf.throughput_tokens_per_s * params.lifetime_s;
    report.embodied_g_per_token = embodied_total_g / lifetime_tokens;
    return report;
}

}  // namespace carbon
}  // namespace mugi
