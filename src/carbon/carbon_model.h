#ifndef MUGI_CARBON_CARBON_MODEL_H_
#define MUGI_CARBON_CARBON_MODEL_H_

/**
 * @file
 * Carbon model (Sec. 2.4, 5.3, Eq. 6/7):
 *
 *   Operational CO2eq = E * CI
 *   Embodied   CO2eq = Area * CPA
 *
 * CI is the world-average grid carbon intensity from the ACT
 * methodology; CPA is derived from the per-mm^2 manufacturing energy
 * of the Dark-Silicon analysis at 45 nm, converted with the same CI.
 * The normalized comparisons (Fig. 15) only depend on these constants
 * as a common scale between designs.
 */

#include "sim/performance_model.h"

namespace mugi {
namespace carbon {

/** Carbon accounting parameters. */
struct CarbonParams {
    /** World grid carbon intensity, gCO2eq per kWh (ACT). */
    double carbon_intensity_g_per_kwh = 475.0;
    /** Manufacturing energy per mm^2 at 45 nm, kWh/mm^2. */
    double manufacturing_kwh_per_mm2 = 0.45;
    /** Amortization window of the hardware, seconds (3 years). */
    double lifetime_s = 3.0 * 365.0 * 24.0 * 3600.0;
};

/** Carbon footprint of running one workload steadily over a lifetime. */
struct CarbonReport {
    /** Operational gCO2eq per processed token. */
    double operational_g_per_token = 0.0;
    /** Embodied gCO2eq per processed token (area amortized). */
    double embodied_g_per_token = 0.0;

    double
    total_g_per_token() const
    {
        return operational_g_per_token + embodied_g_per_token;
    }
};

/** gCO2eq per mm^2 of silicon (CPA of Eq. 7). */
double carbon_per_area_g_per_mm2(const CarbonParams& params);

/**
 * Carbon of running @p perf's workload continuously on @p design for
 * the amortization lifetime, expressed per token.
 */
CarbonReport assess(const sim::DesignConfig& design,
                    const sim::PerfReport& perf,
                    const CarbonParams& params = {});

}  // namespace carbon
}  // namespace mugi

#endif  // MUGI_CARBON_CARBON_MODEL_H_
