// This file *implements* the deprecated shim; building it must stay
// warning-free while every new call site still gets the deprecation.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/mugi_system.h"

namespace mugi {
namespace core {

MugiSystem::MugiSystem(const sim::DesignConfig& design)
    : engine_(std::make_shared<const serve::Engine>(design))
{
}

MugiSystem
MugiSystem::default_mugi()
{
    return MugiSystem(sim::make_mugi(256));
}

SystemReport
MugiSystem::evaluate(const model::Workload& workload) const
{
    return engine_->evaluate(workload);
}

SystemReport
MugiSystem::evaluate_decode(const model::ModelConfig& model,
                            std::size_t batch,
                            std::size_t context) const
{
    return engine_->evaluate_decode(model, batch, context);
}

SystemReport
MugiSystem::evaluate_prefill(const model::ModelConfig& model,
                             std::size_t batch,
                             std::size_t seq_len) const
{
    return engine_->evaluate_prefill(model, batch, seq_len);
}

MugiSystem::GemmRun
MugiSystem::run_woq_gemm(const support::MatrixF& weights,
                         const support::MatrixF& activations,
                         std::size_t group_size) const
{
    return engine_->run_woq_gemm(weights, activations, group_size);
}

std::vector<float>
MugiSystem::run_softmax(std::span<const float> logits) const
{
    return engine_->run_softmax(logits);
}

std::vector<float>
MugiSystem::run_activation(nonlinear::NonlinearOp op,
                           std::span<const float> values) const
{
    return engine_->run_activation(op, values);
}

}  // namespace core
}  // namespace mugi
