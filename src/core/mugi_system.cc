#include "core/mugi_system.h"

#include <cassert>

namespace mugi {
namespace core {

namespace {

vlp::VlpConfig
default_vlp_config(nonlinear::NonlinearOp op, std::size_t mapping_rows)
{
    vlp::VlpConfig config;
    config.op = op;
    if (op == nonlinear::NonlinearOp::kExp) {
        // Softmax window covering the profiled [-3, 4] exponent band.
        config.lut_min_exp = -3;
        config.lut_max_exp = 4;
    } else {
        // SiLU/GELU cluster around zero (Fig. 4).
        config.lut_min_exp = -6;
        config.lut_max_exp = 1;
    }
    config.mapping_rows = mapping_rows;
    return config;
}

}  // namespace

MugiSystem::MugiSystem(const sim::DesignConfig& design) : design_(design)
{
    const std::size_t rows = design.array_rows;
    softmax_exp_ = std::make_unique<vlp::VlpApproximator>(
        default_vlp_config(nonlinear::NonlinearOp::kExp, rows));
    silu_ = std::make_unique<vlp::VlpApproximator>(
        default_vlp_config(nonlinear::NonlinearOp::kSilu, rows));
    gelu_ = std::make_unique<vlp::VlpApproximator>(
        default_vlp_config(nonlinear::NonlinearOp::kGelu, rows));
}

MugiSystem
MugiSystem::default_mugi()
{
    return MugiSystem(sim::make_mugi(256));
}

SystemReport
MugiSystem::evaluate(const model::Workload& workload) const
{
    SystemReport report;
    report.perf = sim::run_workload(design_, workload);
    report.area = sim::node_area(design_);
    report.carbon = carbon::assess(design_, report.perf);
    report.event_sim = sim::simulate(design_, workload);
    return report;
}

SystemReport
MugiSystem::evaluate_decode(const model::ModelConfig& model,
                            std::size_t batch,
                            std::size_t context) const
{
    return evaluate(model::build_decode_workload(model, batch, context));
}

SystemReport
MugiSystem::evaluate_prefill(const model::ModelConfig& model,
                             std::size_t batch,
                             std::size_t seq_len) const
{
    return evaluate(
        model::build_prefill_workload(model, batch, seq_len));
}

MugiSystem::GemmRun
MugiSystem::run_woq_gemm(const support::MatrixF& weights,
                         const support::MatrixF& activations,
                         std::size_t group_size) const
{
    // WOQ: quantize weights to INT4 groups along the reduction dim.
    const quant::QuantizedMatrix q =
        quant::quantize_int4(weights, group_size);

    GemmRun run;
    run.out = support::MatrixF(weights.rows(), activations.cols(), 0.0f);

    // The temporal array computes per-group partial sums in INT4 x
    // BF16; the vector array applies the per-group scale during
    // dequantization (Sec. 4.2).
    const std::size_t groups =
        (weights.cols() + group_size - 1) / group_size;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t begin = g * group_size;
        const std::size_t end =
            std::min(begin + group_size, weights.cols());
        vlp::Int4Matrix wg(weights.rows(), end - begin);
        support::MatrixF ag(end - begin, activations.cols());
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            for (std::size_t c = begin; c < end; ++c) {
                wg.at(r, c - begin) = q.values.at(r, c);
            }
        }
        for (std::size_t c = begin; c < end; ++c) {
            for (std::size_t b = 0; b < activations.cols(); ++b) {
                ag.at(c - begin, b) = activations.at(c, b);
            }
        }
        const vlp::VlpGemmResult partial = vlp::vlp_gemm_mugi(
            wg, ag, static_cast<int>(design_.array_rows),
            static_cast<int>(design_.array_cols));
        run.cycles += partial.cycles;
        for (std::size_t r = 0; r < run.out.rows(); ++r) {
            const float scale = q.scales.at(r, g);
            for (std::size_t b = 0; b < run.out.cols(); ++b) {
                run.out.at(r, b) += partial.out.at(r, b) * scale;
            }
        }
    }
    return run;
}

std::vector<float>
MugiSystem::run_softmax(std::span<const float> logits) const
{
    std::vector<float> out(logits.size());
    nonlinear::softmax_with(*softmax_exp_, logits, out);
    return out;
}

std::vector<float>
MugiSystem::run_activation(nonlinear::NonlinearOp op,
                           std::span<const float> values) const
{
    assert(op != nonlinear::NonlinearOp::kExp);
    const vlp::VlpApproximator& approx =
        op == nonlinear::NonlinearOp::kSilu ? *silu_ : *gelu_;
    std::vector<float> out(values.size());
    approx.apply_batch(values, out);
    return out;
}

}  // namespace core
}  // namespace mugi
