#ifndef MUGI_CORE_MUGI_SYSTEM_H_
#define MUGI_CORE_MUGI_SYSTEM_H_

/**
 * @file
 * The top-level Mugi public API: configure an accelerator, run LLM
 * workloads through the performance / cost / carbon models, and run
 * functional BF16-INT4 GEMM and VLP nonlinear kernels.
 *
 * This facade is what the examples and the benchmark harness consume;
 * it composes the subsystems the rest of the repository implements
 * (see DESIGN.md's inventory).
 */

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "carbon/carbon_model.h"
#include "model/workload.h"
#include "quant/group_quant.h"
#include "sim/event_sim.h"
#include "sim/performance_model.h"
#include "vlp/vlp_approximator.h"
#include "vlp/vlp_gemm.h"

namespace mugi {
namespace core {

/** Combined evaluation of one workload on one design. */
struct SystemReport {
    sim::PerfReport perf;
    sim::AreaBreakdown area;
    carbon::CarbonReport carbon;
    sim::EventSimResult event_sim;
};

/**
 * A configured Mugi (or baseline) accelerator system.
 *
 * Functional kernels (quantized GEMM, nonlinear approximation) run
 * through the same VLP machinery the architecture models simulate, so
 * numerical results and modeled performance come from one place.
 */
class MugiSystem {
  public:
    /** Wrap a design configuration (see sim/design.h factories). */
    explicit MugiSystem(const sim::DesignConfig& design);

    /** Paper-default Mugi node: H=256, window 8, coverage policy. */
    static MugiSystem default_mugi();

    const sim::DesignConfig& design() const { return design_; }

    /** Full model evaluation of one decode step. */
    SystemReport evaluate_decode(const model::ModelConfig& model,
                                 std::size_t batch,
                                 std::size_t context) const;

    /** Full model evaluation of a prefill pass. */
    SystemReport evaluate_prefill(const model::ModelConfig& model,
                                  std::size_t batch,
                                  std::size_t seq_len) const;

    /** Evaluate an arbitrary workload. */
    SystemReport evaluate(const model::Workload& workload) const;

    /**
     * Functional WOQ GEMM: quantize @p weights to INT4 groups, run
     * the temporal VLP GEMM against BF16 activations, dequantize via
     * the vector array (per-group scales).  Returns the output and
     * the simulated cycle count.
     */
    struct GemmRun {
        support::MatrixF out;
        std::uint64_t cycles = 0;
    };
    GemmRun run_woq_gemm(const support::MatrixF& weights,
                         const support::MatrixF& activations,
                         std::size_t group_size) const;

    /** Functional VLP softmax over @p logits (one row). */
    std::vector<float> run_softmax(std::span<const float> logits) const;

    /** Functional VLP activation (SiLU or GELU) over @p values. */
    std::vector<float> run_activation(nonlinear::NonlinearOp op,
                                      std::span<const float> values)
        const;

  private:
    sim::DesignConfig design_;
    std::unique_ptr<vlp::VlpApproximator> softmax_exp_;
    std::unique_ptr<vlp::VlpApproximator> silu_;
    std::unique_ptr<vlp::VlpApproximator> gelu_;
};

}  // namespace core
}  // namespace mugi

#endif  // MUGI_CORE_MUGI_SYSTEM_H_
