#ifndef MUGI_CORE_MUGI_SYSTEM_H_
#define MUGI_CORE_MUGI_SYSTEM_H_

/**
 * @file
 * Backwards-compatibility shim over the serving API.
 *
 * MugiSystem was the original one-shot facade: configure an
 * accelerator, run LLM workloads through the performance / cost /
 * carbon models, and run functional BF16-INT4 GEMM and VLP nonlinear
 * kernels.  The public API is now the serve::Engine / serve::Session
 * pair (src/serve/engine.h, see DESIGN.md); MugiSystem survives only
 * as a thin delegating wrapper so existing callers keep compiling.
 * New code should construct a serve::Engine directly -- it adds
 * prepared weights (quantize-once), a shared kernel registry, and
 * batched multi-session decode, none of which this shim exposes.
 */

#include <memory>
#include <span>
#include <vector>

#include "serve/engine.h"

namespace mugi {
namespace core {

/** Combined evaluation of one workload on one design. */
using SystemReport = serve::SystemReport;

/**
 * A configured Mugi (or baseline) accelerator system.
 * @deprecated Thin shim over serve::Engine; use that instead.  New
 * call sites get a compiler warning; the shim's own implementation
 * and tests suppress it with
 * `#pragma GCC diagnostic ignored "-Wdeprecated-declarations"`.
 */
class [[deprecated(
    "use serve::Engine / serve::Session (see DESIGN.md)")]] MugiSystem
{
  public:
    /** Wrap a design configuration (see sim/design.h factories). */
    explicit MugiSystem(const sim::DesignConfig& design);

    /** Paper-default Mugi node: H=256, window 8, coverage policy. */
    static MugiSystem default_mugi();

    const sim::DesignConfig& design() const { return engine_->design(); }

    /** The engine this shim delegates to. */
    const serve::Engine& engine() const { return *engine_; }

    /** Full model evaluation of one decode step. */
    SystemReport evaluate_decode(const model::ModelConfig& model,
                                 std::size_t batch,
                                 std::size_t context) const;

    /** Full model evaluation of a prefill pass. */
    SystemReport evaluate_prefill(const model::ModelConfig& model,
                                  std::size_t batch,
                                  std::size_t seq_len) const;

    /** Evaluate an arbitrary workload. */
    SystemReport evaluate(const model::Workload& workload) const;

    /**
     * Functional WOQ GEMM, one-shot: quantize @p weights to INT4
     * groups, run the temporal VLP GEMM, dequantize via the vector
     * array.  Serving code should prepare weights once through
     * serve::Engine::prepare_weights instead.
     */
    using GemmRun = serve::GemmRun;
    GemmRun run_woq_gemm(const support::MatrixF& weights,
                         const support::MatrixF& activations,
                         std::size_t group_size) const;

    /** Functional VLP softmax over @p logits (one row). */
    std::vector<float> run_softmax(std::span<const float> logits) const;

    /** Functional VLP activation (SiLU or GELU) over @p values. */
    std::vector<float> run_activation(nonlinear::NonlinearOp op,
                                      std::span<const float> values)
        const;

  private:
    std::shared_ptr<const serve::Engine> engine_;
};

}  // namespace core
}  // namespace mugi

#endif  // MUGI_CORE_MUGI_SYSTEM_H_
