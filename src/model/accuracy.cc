#include "model/accuracy.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>
#include <random>

#include "vlp/vlp_approximator.h"

namespace mugi {
namespace model {
namespace {

/** Log-softmax of a logits row, numerically stable. */
std::vector<double>
log_softmax(const float* logits, std::size_t n)
{
    const float max = *std::max_element(logits, logits + n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += std::exp(static_cast<double>(logits[i]) - max);
    }
    const double log_sum = std::log(sum) + max;
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<double>(logits[i]) - log_sum;
    }
    return out;
}

}  // namespace

std::vector<int>
synthetic_tokens(std::size_t count, std::size_t vocab,
                 std::uint32_t seed)
{
    std::mt19937 rng(seed);
    // Zipfian unigram weights.
    std::vector<double> weights(vocab);
    for (std::size_t i = 0; i < vocab; ++i) {
        weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    std::discrete_distribution<int> unigram(weights.begin(),
                                            weights.end());
    // Sparse 2-gram structure: each token prefers a few successors.
    std::uniform_int_distribution<int> any(0,
                                           static_cast<int>(vocab) - 1);
    std::vector<std::array<int, 4>> successors(vocab);
    for (auto& s : successors) {
        for (int& t : s) {
            t = any(rng);
        }
    }
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<int> pick(0, 3);
    std::vector<int> tokens;
    tokens.reserve(count);
    int prev = unigram(rng);
    tokens.push_back(prev);
    while (tokens.size() < count) {
        const int next = (coin(rng) < 0.7)
                             ? successors[prev][pick(rng)]
                             : unigram(rng);
        tokens.push_back(next);
        prev = next;
    }
    return tokens;
}

EvalResult
evaluate_against_exact(TransformerModel& model,
                       const NonlinearHooks& hooks,
                       const EvalOptions& options)
{
    const ModelConfig& config = model.config();
    EvalResult result;
    double ce_sum = 0.0;
    double kl_sum = 0.0;
    std::size_t positions = 0;

    for (std::size_t s = 0; s < options.num_sequences; ++s) {
        const std::vector<int> tokens = synthetic_tokens(
            options.seq_len, config.vocab,
            options.data_seed + static_cast<std::uint32_t>(s));

        // Teacher pass: force exact nonlinearities everywhere (also
        // overriding any per-layer tuning state).
        model.set_hooks_enabled(false);
        const support::MatrixF exact_logits =
            model.forward_tokens(tokens);
        model.set_hooks_enabled(true);
        model.set_hooks(hooks);
        const support::MatrixF approx_logits =
            model.forward_tokens(tokens);
        model.set_hooks(NonlinearHooks{});

        for (std::size_t t = 0; t < tokens.size(); ++t) {
            const auto log_p =
                log_softmax(exact_logits.row_data(t), config.vocab);
            const auto log_q =
                log_softmax(approx_logits.row_data(t), config.vocab);
            double ce = 0.0;
            double kl = 0.0;
            for (std::size_t i = 0; i < config.vocab; ++i) {
                const double p = std::exp(log_p[i]);
                ce -= p * log_q[i];
                kl += p * (log_p[i] - log_q[i]);
            }
            ce_sum += ce;
            kl_sum += kl;
            ++positions;
        }
    }
    result.positions = positions;
    result.cross_entropy = ce_sum / static_cast<double>(positions);
    result.kl = kl_sum / static_cast<double>(positions);
    result.perplexity = std::exp(result.cross_entropy);
    return result;
}

EvalResult
evaluate_base(TransformerModel& model, const EvalOptions& options)
{
    return evaluate_against_exact(model, NonlinearHooks{}, options);
}

PerLayerTuningResult
tune_softmax_per_layer(TransformerModel& model,
                       const std::vector<int>& candidate_max_exps,
                       int lut_size, const EvalOptions& options)
{
    assert(!candidate_max_exps.empty());
    PerLayerTuningResult result;
    const std::size_t layers = model.num_layers();

    // Owning store of per-layer approximators (hooks keep pointers).
    std::vector<std::unique_ptr<vlp::VlpApproximator>> chosen(layers);

    // Start from a single global configuration on every layer (the
    // first candidate); tuning then improves layers one at a time, so
    // the PPL trajectory is non-increasing -- the Fig. 7 shape.
    for (std::size_t layer = 0; layer < layers; ++layer) {
        chosen[layer] = vlp::make_vlp(nonlinear::NonlinearOp::kExp,
                                      lut_size,
                                      candidate_max_exps.front());
        NonlinearHooks hooks;
        hooks.softmax_exp = chosen[layer].get();
        model.set_layer_hooks(layer, hooks);
    }

    const auto evaluate_current = [&]() {
        // Per-layer hooks carry the current tuning state; global
        // hooks stay exact.
        return evaluate_against_exact(model, NonlinearHooks{}, options)
            .perplexity;
    };

    for (std::size_t layer = 0; layer < layers; ++layer) {
        double best_ppl = std::numeric_limits<double>::infinity();
        int best_exp = candidate_max_exps.front();
        std::unique_ptr<vlp::VlpApproximator> best_approx;
        for (const int max_exp : candidate_max_exps) {
            auto approx = vlp::make_vlp(nonlinear::NonlinearOp::kExp,
                                        lut_size, max_exp);
            NonlinearHooks hooks;
            hooks.softmax_exp = approx.get();
            model.set_layer_hooks(layer, hooks);
            const double ppl = evaluate_current();
            if (ppl < best_ppl) {
                best_ppl = ppl;
                best_exp = max_exp;
                best_approx = std::move(approx);
            }
        }
        chosen[layer] = std::move(best_approx);
        NonlinearHooks hooks;
        hooks.softmax_exp = chosen[layer].get();
        model.set_layer_hooks(layer, hooks);
        result.ppl_after_layer.push_back(best_ppl);
        result.chosen_max_exp.push_back(best_exp);
    }
    result.final_ppl = result.ppl_after_layer.back();

    // Restore the model to its un-tuned state.
    for (std::size_t layer = 0; layer < layers; ++layer) {
        model.set_layer_hooks(layer, std::nullopt);
    }
    return result;
}

}  // namespace model
}  // namespace mugi
