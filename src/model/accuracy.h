#ifndef MUGI_MODEL_ACCURACY_H_
#define MUGI_MODEL_ACCURACY_H_

/**
 * @file
 * The accuracy harness behind Fig. 6/7: perplexity (language models)
 * and loss (vision models) of a transformer whose nonlinear operations
 * run through an approximator, measured against the same model running
 * exact nonlinearities.
 *
 * Without pretrained checkpoints (see DESIGN.md substitutions) the
 * data distribution is the *exact model's own predictive
 * distribution*: for each position we compute the exact model's
 * probabilities p and score the approximated model's log-probs q with
 * the cross-entropy  H(p, q) = -sum_i p_i log q_i.  For the exact
 * model this reduces to the predictive entropy (the "Base" column of
 * Fig. 6); every approximation error strictly increases it.  PPL =
 * exp(H).
 */

#include <cstdint>
#include <vector>

#include "model/transformer.h"

namespace mugi {
namespace model {

/** Quality metrics of one evaluation run. */
struct EvalResult {
    double cross_entropy = 0.0;  ///< Mean H(p_exact, q_approx), nats.
    double perplexity = 0.0;     ///< exp(cross_entropy).
    double kl = 0.0;             ///< Mean KL(p_exact || q_approx).
    std::size_t positions = 0;   ///< Scored positions.
};

/** Options for an evaluation run. */
struct EvalOptions {
    std::size_t num_sequences = 4;
    std::size_t seq_len = 32;
    std::uint32_t data_seed = 1234;
};

/**
 * Deterministic synthetic token stream: a seeded Zipfian 2-gram
 * source, the stand-in for the paper's evaluation corpora.
 */
std::vector<int> synthetic_tokens(std::size_t count, std::size_t vocab,
                                  std::uint32_t seed);

/**
 * Evaluate @p model with its currently installed hooks against the
 * exact-nonlinearity teacher (same weights, hooks removed).
 *
 * The hook configuration of @p model is restored before returning.
 */
EvalResult evaluate_against_exact(TransformerModel& model,
                                  const NonlinearHooks& hooks,
                                  const EvalOptions& options);

/**
 * Convenience: the exact model's own score (hooks = none), i.e. the
 * "Base" perplexity of Fig. 6.
 */
EvalResult evaluate_base(TransformerModel& model,
                         const EvalOptions& options);

/**
 * Greedy per-layer tuning (Fig. 7): for each layer in order, try
 * every candidate window anchor and keep the one minimizing PPL with
 * all earlier layers already tuned.  Returns the PPL after each
 * layer's tuning step.
 */
struct PerLayerTuningResult {
    std::vector<double> ppl_after_layer;
    std::vector<int> chosen_max_exp;
    double final_ppl = 0.0;
};

PerLayerTuningResult tune_softmax_per_layer(
    TransformerModel& model, const std::vector<int>& candidate_max_exps,
    int lut_size, const EvalOptions& options);

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_ACCURACY_H_
