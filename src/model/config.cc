#include "model/config.h"

#include <algorithm>

namespace mugi {
namespace model {

const char*
family_name(ModelFamily family)
{
    switch (family) {
      case ModelFamily::kLlama:
        return "llama";
      case ModelFamily::kWhisper:
        return "whisper";
      case ModelFamily::kSwin:
        return "swin";
      case ModelFamily::kVivit:
        return "vivit";
    }
    return "?";
}

std::size_t
ModelConfig::weight_params() const
{
    const std::size_t kv_dim = num_kv_heads * head_dim();
    // Q + O projections, K + V projections, FFN matrices.
    const std::size_t attn =
        2 * d_model * d_model + 2 * d_model * kv_dim;
    const std::size_t ffn =
        (gated_ffn() ? 3 : 2) * d_model * d_ff;
    return num_layers * (attn + ffn);
}

ModelConfig
ModelConfig::scaled_for_eval(std::size_t max_layers,
                             std::size_t d_model_eval,
                             std::size_t vocab_eval) const
{
    ModelConfig eval = *this;
    eval.name = name + "-eval";
    eval.num_layers = std::min(num_layers, max_layers);
    eval.d_model = d_model_eval;
    eval.num_heads = 4;
    eval.num_kv_heads = std::max<std::size_t>(
        1, 4 / std::max<std::size_t>(1, gqa_group()));
    eval.d_ff = gated_ffn() ? d_model_eval * 8 / 3 : d_model_eval * 4;
    eval.vocab = vocab_eval;
    eval.max_seq_len = 128;
    return eval;
}

ModelConfig
llama2_7b()
{
    ModelConfig c;
    c.name = "llama2-7b";
    c.family = ModelFamily::kLlama;
    c.num_layers = 32;
    c.num_heads = 32;
    c.num_kv_heads = 32;
    c.d_model = 4096;
    c.d_ff = 11008;
    c.vocab = 32000;
    c.max_seq_len = 4096;
    return c;
}

ModelConfig
llama2_13b()
{
    ModelConfig c = llama2_7b();
    c.name = "llama2-13b";
    c.num_layers = 40;
    c.num_heads = 40;
    c.num_kv_heads = 40;
    c.d_model = 5120;
    c.d_ff = 13824;
    return c;
}

ModelConfig
llama2_70b()
{
    ModelConfig c = llama2_7b();
    c.name = "llama2-70b";
    c.num_layers = 80;
    c.num_heads = 64;
    c.num_kv_heads = 8;  // GQA group size 8.
    c.d_model = 8192;
    c.d_ff = 28672;
    return c;
}

ModelConfig
whisper_tiny()
{
    ModelConfig c;
    c.name = "whisper-tiny";
    c.family = ModelFamily::kWhisper;
    c.num_layers = 4;
    c.num_heads = 6;
    c.num_kv_heads = 6;
    c.d_model = 384;
    c.d_ff = 1536;
    c.vocab = 51865;
    c.max_seq_len = 1500;
    return c;
}

ModelConfig
whisper_large()
{
    ModelConfig c = whisper_tiny();
    c.name = "whisper-large";
    c.num_layers = 32;
    c.num_heads = 20;
    c.num_kv_heads = 20;
    c.d_model = 1280;
    c.d_ff = 5120;
    return c;
}

ModelConfig
swinv2_tiny()
{
    ModelConfig c;
    c.name = "swinv2-tiny";
    c.family = ModelFamily::kSwin;
    c.num_layers = 12;
    // Table 1 lists stage-dependent dims (96-768); use the mid-stage
    // geometry for the flat approximation of the pyramid.
    c.num_heads = 12;
    c.num_kv_heads = 12;
    c.d_model = 384;
    c.d_ff = 1536;
    c.vocab = 1000;
    c.max_seq_len = 4096;
    return c;
}

ModelConfig
swinv2_large()
{
    ModelConfig c = swinv2_tiny();
    c.name = "swinv2-large";
    c.num_layers = 24;
    c.num_heads = 24;
    c.num_kv_heads = 24;
    c.d_model = 768;
    c.d_ff = 3072;
    return c;
}

ModelConfig
vivit_base()
{
    ModelConfig c;
    c.name = "vivit-base";
    c.family = ModelFamily::kVivit;
    c.num_layers = 12;
    c.num_heads = 12;
    c.num_kv_heads = 12;
    c.d_model = 768;
    c.d_ff = 3072;
    c.vocab = 400;
    c.max_seq_len = 3136;
    return c;
}

std::vector<ModelConfig>
all_models()
{
    return {llama2_7b(),     llama2_13b(),    llama2_70b(),
            whisper_tiny(),  whisper_large(), swinv2_tiny(),
            swinv2_large(),  vivit_base()};
}

std::vector<ModelConfig>
llama_family()
{
    return {llama2_7b(), llama2_13b(), llama2_70b()};
}

}  // namespace model
}  // namespace mugi
