#ifndef MUGI_MODEL_CONFIG_H_
#define MUGI_MODEL_CONFIG_H_

/**
 * @file
 * Model configurations of Table 1: the Llama-2 family (7B/13B/70B),
 * Whisper (tiny/large), SwinV2 (tiny/large) and ViViT (base).
 *
 * Full-scale configs drive the performance/cost simulator (shapes
 * only).  For the accuracy and profiling studies (Fig. 4/6/7/8) --
 * which the paper ran on pretrained HuggingFace checkpoints -- we use
 * structurally faithful scaled-down instances (see
 * ModelConfig::scaled_for_eval and DESIGN.md's substitution notes).
 */

#include <cstddef>
#include <string>
#include <vector>

#include "nonlinear/reference.h"

namespace mugi {
namespace model {

/** Transformer architectural family. */
enum class ModelFamily {
    kLlama,    ///< Decoder-only: causal, RoPE, RMSNorm, SwiGLU (SiLU).
    kWhisper,  ///< Encoder-style: bidirectional, LayerNorm, GELU.
    kSwin,     ///< Vision encoder: bidirectional, LayerNorm, GELU.
    kVivit,    ///< Video encoder: bidirectional, LayerNorm, GELU.
};

const char* family_name(ModelFamily family);

/** A transformer configuration (one column of Table 1). */
struct ModelConfig {
    std::string name;
    ModelFamily family = ModelFamily::kLlama;
    std::size_t num_layers = 0;
    std::size_t num_heads = 0;
    std::size_t num_kv_heads = 0;  ///< < num_heads enables GQA.
    std::size_t d_model = 0;       ///< Attention hidden dim.
    std::size_t d_ff = 0;          ///< FFN hidden dim.
    std::size_t vocab = 32000;     ///< Vocabulary / class count.
    std::size_t max_seq_len = 4096;

    /** GQA group size: query heads sharing one KV head. */
    std::size_t
    gqa_group() const
    {
        return num_heads / num_kv_heads;
    }

    std::size_t head_dim() const { return d_model / num_heads; }

    bool causal() const { return family == ModelFamily::kLlama; }

    /** SwiGLU (gated) FFN for Llama; plain 2-matrix FFN otherwise. */
    bool gated_ffn() const { return family == ModelFamily::kLlama; }

    /** FFN activation: SiLU for Llama, GELU for the rest. */
    nonlinear::NonlinearOp
    activation() const
    {
        return family == ModelFamily::kLlama
                   ? nonlinear::NonlinearOp::kSilu
                   : nonlinear::NonlinearOp::kGelu;
    }

    bool uses_rope() const { return family == ModelFamily::kLlama; }
    bool uses_rmsnorm() const { return family == ModelFamily::kLlama; }

    /** Total weight parameter count (embeddings excluded). */
    std::size_t weight_params() const;

    /**
     * A structurally identical, laptop-sized instance for accuracy /
     * profiling runs: same family, same layer count (capped), same
     * GQA ratio, small dims.
     */
    ModelConfig scaled_for_eval(std::size_t max_layers = 4,
                                std::size_t d_model_eval = 64,
                                std::size_t vocab_eval = 256) const;
};

/** Table 1 presets. */
ModelConfig llama2_7b();
ModelConfig llama2_13b();
ModelConfig llama2_70b();      ///< GQA with group size 8.
ModelConfig whisper_tiny();
ModelConfig whisper_large();
ModelConfig swinv2_tiny();
ModelConfig swinv2_large();
ModelConfig vivit_base();

/** All Table 1 models, in paper order. */
std::vector<ModelConfig> all_models();

/** The Llama family used by the architecture studies (Sec. 6). */
std::vector<ModelConfig> llama_family();

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_CONFIG_H_
