#include "model/moe.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <random>

#include "support/rng.h"

namespace mugi {
namespace model {

MoeFfn::MoeFfn(const MoeConfig& config, std::uint32_t seed)
    : config_(config), selection_counts_(config.num_experts, 0)
{
    assert(config_.top_k >= 1 && config_.top_k <= config_.num_experts);
    std::mt19937 rng(seed);
    const float inv_sqrt_d =
        1.0f / std::sqrt(static_cast<float>(config_.d_model));
    const float inv_sqrt_ff =
        1.0f / std::sqrt(static_cast<float>(config_.d_ff));

    router_ = support::MatrixF(config_.d_model, config_.num_experts);
    support::fill_gaussian(router_, rng, 0.0f, 2.0f * inv_sqrt_d);

    experts_.reserve(config_.num_experts);
    for (std::size_t e = 0; e < config_.num_experts; ++e) {
        Expert expert;
        expert.w_gate =
            support::MatrixF(config_.d_model, config_.d_ff);
        expert.w_up = support::MatrixF(config_.d_model, config_.d_ff);
        expert.w_down =
            support::MatrixF(config_.d_ff, config_.d_model);
        support::fill_gaussian(expert.w_gate, rng, 0.0f,
                               2.0f * inv_sqrt_d);
        support::fill_gaussian(expert.w_up, rng, 0.0f,
                               2.0f * inv_sqrt_d);
        support::fill_gaussian(expert.w_down, rng, 0.0f, inv_sqrt_ff);
        experts_.push_back(std::move(expert));
    }
}

support::MatrixF
MoeFfn::expert_forward(
    const Expert& expert, const support::MatrixF& x_row,
    const nonlinear::NonlinearApproximator* activation) const
{
    support::MatrixF gate = linear(x_row, expert.w_gate);
    const support::MatrixF up = linear(x_row, expert.w_up);
    apply_activation(gate, config_.activation, activation);
    for (std::size_t i = 0; i < gate.size(); ++i) {
        gate.data()[i] *= up.data()[i];
    }
    return linear(gate, expert.w_down);
}

support::MatrixF
MoeFfn::forward(const support::MatrixF& x,
                const nonlinear::NonlinearApproximator* gate_exp,
                const nonlinear::NonlinearApproximator* activation) const
{
    assert(x.cols() == config_.d_model);
    selection_counts_.assign(config_.num_experts, 0);

    // Router: gate logits then (possibly approximate) softmax.
    support::MatrixF gates = linear(x, router_);
    softmax_rows(gates, gate_exp);

    support::MatrixF out(x.rows(), config_.d_model, 0.0f);
    std::vector<std::size_t> order(config_.num_experts);
    support::MatrixF x_row(1, config_.d_model);
    for (std::size_t t = 0; t < x.rows(); ++t) {
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(
            order.begin(), order.begin() + config_.top_k, order.end(),
            [&](std::size_t a, std::size_t b) {
                return gates.at(t, a) > gates.at(t, b);
            });
        double weight_sum = 0.0;
        for (std::size_t k = 0; k < config_.top_k; ++k) {
            weight_sum += gates.at(t, order[k]);
        }
        if (weight_sum <= 0.0) {
            weight_sum = 1.0;
        }
        std::copy(x.row_data(t), x.row_data(t) + config_.d_model,
                  x_row.row_data(0));
        for (std::size_t k = 0; k < config_.top_k; ++k) {
            const std::size_t e = order[k];
            ++selection_counts_[e];
            const float weight = static_cast<float>(
                gates.at(t, e) / weight_sum);
            const support::MatrixF y =
                expert_forward(experts_[e], x_row, activation);
            for (std::size_t c = 0; c < config_.d_model; ++c) {
                out.at(t, c) += weight * y.at(0, c);
            }
        }
    }
    return out;
}

}  // namespace model
}  // namespace mugi
