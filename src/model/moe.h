#ifndef MUGI_MODEL_MOE_H_
#define MUGI_MODEL_MOE_H_

/**
 * @file
 * Mixture-of-Experts FFN (paper Sec. 7.1, "MoE and Multi-Modal
 * Models"): selective FFN experts chosen by a softmax-based gating
 * network.  The gating softmax is one more VLP consumer -- the same
 * approximator hook used for attention softmax plugs in here -- and
 * each selected expert is a standard (SwiGLU or plain) FFN whose
 * GEMMs run through the same BF16-INT4 path.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "model/config.h"
#include "model/ops.h"
#include "nonlinear/approximator.h"
#include "support/matrix.h"

namespace mugi {
namespace model {

/** Configuration of one MoE FFN layer. */
struct MoeConfig {
    std::size_t d_model = 64;
    std::size_t d_ff = 128;      ///< Hidden dim of each expert.
    std::size_t num_experts = 8;
    std::size_t top_k = 2;       ///< Experts activated per token.
    nonlinear::NonlinearOp activation = nonlinear::NonlinearOp::kSilu;
};

/** A softmax-gated top-k mixture-of-experts FFN. */
class MoeFfn {
  public:
    MoeFfn(const MoeConfig& config, std::uint32_t seed);

    const MoeConfig& config() const { return config_; }

    /**
     * Forward pass: per token, the router computes gate logits
     * [num_experts], softmaxes them (through @p gate_exp when
     * non-null -- the VLP hook), keeps the top-k, renormalizes their
     * weights, and mixes the selected experts' outputs.
     *
     * @param x [T, d_model] input.
     * @param gate_exp Optional approximate exp for the gating softmax.
     * @param activation Optional approximate FFN activation.
     * @return [T, d_model] output.
     */
    support::MatrixF forward(
        const support::MatrixF& x,
        const nonlinear::NonlinearApproximator* gate_exp = nullptr,
        const nonlinear::NonlinearApproximator* activation =
            nullptr) const;

    /**
     * Expert-selection counts of the most recent forward pass, one
     * per expert (for load-balance inspection).
     */
    const std::vector<std::size_t>& last_selection_counts() const
    {
        return selection_counts_;
    }

    /** FLOP ratio vs a dense pass over all experts: top_k / experts. */
    double
    active_fraction() const
    {
        return static_cast<double>(config_.top_k) /
               static_cast<double>(config_.num_experts);
    }

  private:
    struct Expert {
        support::MatrixF w_gate;  ///< [d, ff] (SiLU/SwiGLU path).
        support::MatrixF w_up;    ///< [d, ff]
        support::MatrixF w_down;  ///< [ff, d]
    };

    support::MatrixF expert_forward(
        const Expert& expert, const support::MatrixF& x_row,
        const nonlinear::NonlinearApproximator* activation) const;

    MoeConfig config_;
    support::MatrixF router_;  ///< [d, num_experts] gate projection.
    std::vector<Expert> experts_;
    mutable std::vector<std::size_t> selection_counts_;
};

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_MOE_H_
