#include "model/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace mugi {
namespace model {

void
rmsnorm(const support::MatrixF& in, std::span<const float> gain,
        support::MatrixF& out, float eps)
{
    assert(gain.size() == in.cols());
    out = support::MatrixF(in.rows(), in.cols());
    for (std::size_t r = 0; r < in.rows(); ++r) {
        double sum_sq = 0.0;
        const float* row = in.row_data(r);
        for (std::size_t c = 0; c < in.cols(); ++c) {
            sum_sq += static_cast<double>(row[c]) * row[c];
        }
        const float inv_rms = 1.0f / std::sqrt(static_cast<float>(
                                         sum_sq / in.cols()) +
                                     eps);
        float* dst = out.row_data(r);
        for (std::size_t c = 0; c < in.cols(); ++c) {
            dst[c] = row[c] * inv_rms * gain[c];
        }
    }
}

void
layernorm(const support::MatrixF& in, std::span<const float> gain,
          std::span<const float> bias, support::MatrixF& out, float eps)
{
    assert(gain.size() == in.cols() && bias.size() == in.cols());
    out = support::MatrixF(in.rows(), in.cols());
    for (std::size_t r = 0; r < in.rows(); ++r) {
        const float* row = in.row_data(r);
        double mean = 0.0;
        for (std::size_t c = 0; c < in.cols(); ++c) {
            mean += row[c];
        }
        mean /= in.cols();
        double var = 0.0;
        for (std::size_t c = 0; c < in.cols(); ++c) {
            const double d = row[c] - mean;
            var += d * d;
        }
        var /= in.cols();
        const float inv_std =
            1.0f / std::sqrt(static_cast<float>(var) + eps);
        float* dst = out.row_data(r);
        for (std::size_t c = 0; c < in.cols(); ++c) {
            dst[c] = (row[c] - static_cast<float>(mean)) * inv_std *
                         gain[c] +
                     bias[c];
        }
    }
}

void
rope_rotate_row(float* row, std::size_t num_heads,
                std::size_t head_dim, std::size_t pos)
{
    assert(head_dim % 2 == 0);
    const double p = static_cast<double>(pos);
    for (std::size_t h = 0; h < num_heads; ++h) {
        float* head = row + h * head_dim;
        for (std::size_t i = 0; i < head_dim / 2; ++i) {
            const double theta =
                p * std::pow(10000.0,
                             -2.0 * static_cast<double>(i) /
                                 static_cast<double>(head_dim));
            const float cos_t = static_cast<float>(std::cos(theta));
            const float sin_t = static_cast<float>(std::sin(theta));
            const float a = head[2 * i];
            const float b = head[2 * i + 1];
            head[2 * i] = a * cos_t - b * sin_t;
            head[2 * i + 1] = a * sin_t + b * cos_t;
        }
    }
}

void
apply_rope(support::MatrixF& x, std::size_t num_heads,
           std::size_t head_dim, std::size_t start_pos)
{
    assert(x.cols() == num_heads * head_dim);
    for (std::size_t t = 0; t < x.rows(); ++t) {
        rope_rotate_row(x.row_data(t), num_heads, head_dim,
                        start_pos + t);
    }
}

void
softmax_rows(support::MatrixF& scores,
             const nonlinear::NonlinearApproximator* exp_approx,
             const std::function<void(std::span<const float>)>& capture)
{
    std::vector<float> shifted(scores.cols());
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        float* row = scores.row_data(r);
        const std::span<float> row_span(row, scores.cols());
        if (!capture && !exp_approx) {
            nonlinear::softmax_ref(row_span, row_span);
            continue;
        }
        const float max =
            *std::max_element(row, row + scores.cols());
        for (std::size_t c = 0; c < scores.cols(); ++c) {
            shifted[c] = row[c] - max;
        }
        if (capture) {
            capture(shifted);
        }
        if (exp_approx) {
            nonlinear::softmax_with(*exp_approx, row_span, row_span);
        } else {
            nonlinear::softmax_ref(row_span, row_span);
        }
    }
}

void
apply_activation_span(
    std::span<float> values, nonlinear::NonlinearOp op,
    const nonlinear::NonlinearApproximator* activation,
    const std::function<void(std::span<const float>)>& capture)
{
    if (capture) {
        capture(std::span<const float>(values.data(), values.size()));
    }
    if (activation) {
        assert(activation->op() == op);
        activation->apply_batch(values, values);
        return;
    }
    for (float& v : values) {
        v = static_cast<float>(nonlinear::eval_ref(op, v));
    }
}

void
apply_activation(
    support::MatrixF& x, nonlinear::NonlinearOp op,
    const nonlinear::NonlinearApproximator* activation,
    const std::function<void(std::span<const float>)>& capture)
{
    apply_activation_span(std::span<float>(x.data().data(), x.size()),
                          op, activation, capture);
}

support::MatrixF
linear(const support::MatrixF& x, const support::MatrixF& w)
{
    return support::matmul(x, w);
}

support::MatrixF
linear_batched(const support::MatrixF& x, const support::MatrixF& w)
{
    assert(x.cols() == w.rows());
    support::MatrixF c(x.rows(), w.cols(), 0.0f);
    linear_batched_range(x, w, 0, x.rows(), c);
    return c;
}

void
linear_batched_range(const support::MatrixF& x,
                     const support::MatrixF& w, std::size_t row_begin,
                     std::size_t row_end, support::MatrixF& out)
{
    assert(x.cols() == w.rows());
    assert(out.rows() == x.rows() && out.cols() == w.cols());
    assert(row_begin <= row_end && row_end <= x.rows());
    for (std::size_t k = 0; k < x.cols(); ++k) {
        const float* brow = w.row_data(k);
        for (std::size_t i = row_begin; i < row_end; ++i) {
            const float aik = x.at(i, k);
            if (aik == 0.0f) continue;
            float* crow = out.row_data(i);
            for (std::size_t j = 0; j < w.cols(); ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
}

}  // namespace model
}  // namespace mugi
