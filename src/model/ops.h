#ifndef MUGI_MODEL_OPS_H_
#define MUGI_MODEL_OPS_H_

/**
 * @file
 * Tensor-level building blocks of the transformer substrate: RMSNorm,
 * LayerNorm, rotary position embeddings (RoPE), row-wise softmax with
 * a pluggable exp, and the pluggable FFN activation.
 */

#include <functional>
#include <span>

#include "nonlinear/approximator.h"
#include "support/matrix.h"

namespace mugi {
namespace model {

/** RMSNorm: x / rms(x) * gain, per row. */
void rmsnorm(const support::MatrixF& in, std::span<const float> gain,
             support::MatrixF& out, float eps = 1e-5f);

/** LayerNorm: (x - mean) / std * gain + bias, per row. */
void layernorm(const support::MatrixF& in, std::span<const float> gain,
               std::span<const float> bias, support::MatrixF& out,
               float eps = 1e-5f);

/**
 * Rotary position embeddings applied in place to a [T, H*hd] matrix:
 * rotate each consecutive pair of dims in each head by position-
 * dependent angles (theta = 10000^{-2i/hd}).
 *
 * @param x In/out activations, row t is position start_pos + t.
 */
void apply_rope(support::MatrixF& x, std::size_t num_heads,
                std::size_t head_dim, std::size_t start_pos);

/**
 * RoPE rotation of a single [H*hd] row at position @p pos -- the
 * per-row body of apply_rope, exposed so the fused batched decode
 * path can rotate each batch row at its own session's position with
 * the exact float-op sequence of the sequential path.
 */
void rope_rotate_row(float* row, std::size_t num_heads,
                     std::size_t head_dim, std::size_t pos);

/**
 * Row-wise softmax where exp comes from @p exp_approx (nullptr =
 * exact).  An optional @p capture receives each row's max-subtracted
 * inputs before exponentiation (profiling hook for Fig. 4).
 */
void softmax_rows(
    support::MatrixF& scores,
    const nonlinear::NonlinearApproximator* exp_approx,
    const std::function<void(std::span<const float>)>& capture = {});

/**
 * Apply @p activation element-wise (nullptr = exact @p op).  The
 * optional @p capture receives the raw pre-activation values.
 */
void apply_activation(
    support::MatrixF& x, nonlinear::NonlinearOp op,
    const nonlinear::NonlinearApproximator* activation,
    const std::function<void(std::span<const float>)>& capture = {});

/**
 * Span form of apply_activation: one capture + one apply_batch over
 * @p values.  The batched decode path calls this per batch row so a
 * windowed approximator (whose sliding window is re-chosen per group
 * of mapping_rows inputs) sees exactly the per-request input stream
 * the sequential path feeds it.
 */
void apply_activation_span(
    std::span<float> values, nonlinear::NonlinearOp op,
    const nonlinear::NonlinearApproximator* activation,
    const std::function<void(std::span<const float>)>& capture = {});

/** y = x * w, where w has shape [in, out]. */
support::MatrixF linear(const support::MatrixF& x,
                        const support::MatrixF& w);

/**
 * y = x * w like linear(), but with the reduction loop outermost, so
 * each weight row streams through the cache once per call instead of
 * once per batch row -- the batched-decode projection kernel.
 * Bit-identical to linear(): every output cell still accumulates its
 * k-products in ascending-k order (enforced by tests/model/ops_test).
 */
support::MatrixF linear_batched(const support::MatrixF& x,
                                const support::MatrixF& w);

/**
 * Row-range slice of linear_batched: accumulate x[row_begin, row_end)
 * times w into the same rows of @p out (which must be pre-sized
 * [x.rows(), w.cols()] and zeroed in that range).  Each output cell
 * runs the identical ascending-k accumulation as linear_batched, so
 * partitioning the batch rows across threads and joining reproduces
 * linear_batched's result bit for bit -- the decode-projection task
 * body of the pooled step path.
 */
void linear_batched_range(const support::MatrixF& x,
                          const support::MatrixF& w,
                          std::size_t row_begin, std::size_t row_end,
                          support::MatrixF& out);

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_OPS_H_
