#include "model/profiler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "numerics/float_bits.h"

namespace mugi {
namespace model {
namespace {

constexpr double kExponentLo = -32.5;
constexpr double kExponentHi = 31.5;
constexpr std::size_t kExponentBins = 64;
constexpr double kValueLo = -32.0;
constexpr double kValueHi = 32.0;
constexpr std::size_t kValueBins = 256;

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < lo_) {
        ++underflow_;
        return;
    }
    if (value >= hi_) {
        ++overflow_;
        return;
    }
    const std::size_t bin = static_cast<std::size_t>(
        (value - lo_) / (hi_ - lo_) * static_cast<double>(bins_.size()));
    ++bins_[std::min(bin, bins_.size() - 1)];
}

double
Histogram::bin_center(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::fraction_in(double a, double b) const
{
    if (total_ == 0) {
        return 0.0;
    }
    std::size_t count = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double c = bin_center(i);
        if (c >= a && c <= b) {
            count += bins_[i];
        }
    }
    return static_cast<double>(count) / static_cast<double>(total_);
}

std::pair<int, int>
SiteProfile::dominant_exponent_window(int size) const
{
    int best_lo = 0;
    double best = -1.0;
    for (int lo = -32; lo + size - 1 <= 31; ++lo) {
        const double f = exponent_coverage(lo, lo + size - 1);
        if (f > best) {
            best = f;
            best_lo = lo;
        }
    }
    return {best_lo, best_lo + size - 1};
}

double
SiteProfile::exponent_coverage(int lo, int hi) const
{
    return exponents.fraction_in(lo - 0.25, hi + 0.25);
}

NonlinearProfiler::NonlinearProfiler() = default;

CaptureFn
NonlinearProfiler::capture()
{
    return [this](nonlinear::NonlinearOp op, std::size_t layer,
                  std::span<const float> inputs) {
        record(op, layer, inputs);
    };
}

void
NonlinearProfiler::record(nonlinear::NonlinearOp op, std::size_t layer,
                          std::span<const float> inputs)
{
    const std::pair<int, std::size_t> key{static_cast<int>(op), layer};
    auto it = sites_.find(key);
    if (it == sites_.end()) {
        SiteProfile profile;
        profile.op = op;
        profile.layer = layer;
        profile.values = Histogram(kValueLo, kValueHi, kValueBins);
        profile.exponents =
            Histogram(kExponentLo, kExponentHi, kExponentBins);
        it = sites_.emplace(key, std::move(profile)).first;
    }
    SiteProfile& site = it->second;
    for (const float x : inputs) {
        if (!std::isfinite(x)) {
            continue;
        }
        site.values.add(x);
        const numerics::FloatFields f = numerics::decompose(x);
        if (f.is_zero) {
            ++site.zero_count;
            continue;
        }
        site.exponents.add(static_cast<double>(f.exponent));
    }
}

const SiteProfile&
NonlinearProfiler::site(nonlinear::NonlinearOp op,
                        std::size_t layer) const
{
    const auto it = sites_.find({static_cast<int>(op), layer});
    if (it == sites_.end()) {
        throw std::out_of_range("no profile for requested site");
    }
    return it->second;
}

bool
NonlinearProfiler::has_site(nonlinear::NonlinearOp op,
                            std::size_t layer) const
{
    return sites_.count({static_cast<int>(op), layer}) != 0;
}

SiteProfile
NonlinearProfiler::merged(nonlinear::NonlinearOp op) const
{
    SiteProfile merged;
    merged.op = op;
    merged.values = Histogram(kValueLo, kValueHi, kValueBins);
    merged.exponents = Histogram(kExponentLo, kExponentHi, kExponentBins);
    for (const auto& [key, site] : sites_) {
        if (key.first != static_cast<int>(op)) {
            continue;
        }
        for (std::size_t i = 0; i < site.values.bins().size(); ++i) {
            for (std::size_t n = 0; n < site.values.bins()[i]; ++n) {
                merged.values.add(site.values.bin_center(i));
            }
        }
        for (std::size_t i = 0; i < site.exponents.bins().size(); ++i) {
            for (std::size_t n = 0; n < site.exponents.bins()[i]; ++n) {
                merged.exponents.add(site.exponents.bin_center(i));
            }
        }
        merged.zero_count += site.zero_count;
    }
    return merged;
}

}  // namespace model
}  // namespace mugi
