#ifndef MUGI_MODEL_PROFILER_H_
#define MUGI_MODEL_PROFILER_H_

/**
 * @file
 * Runtime profiling of nonlinear-operation inputs (Sec. 3.3, Fig. 4):
 * per (op, layer) histograms of input *values* and of input
 * *exponents*.  The exponent histogram is the evidence behind the
 * value-centric LUT window: exponents cluster in a narrow band even
 * when values spread widely.
 */

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "model/transformer.h"
#include "nonlinear/reference.h"

namespace mugi {
namespace model {

/** A fixed-bin 1-D histogram. */
class Histogram {
  public:
    Histogram() = default;
    Histogram(double lo, double hi, std::size_t bins);

    void add(double value);

    std::size_t total() const { return total_; }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    const std::vector<std::size_t>& bins() const { return bins_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Center of bin @p i. */
    double bin_center(std::size_t i) const;

    /** Fraction of samples inside [a, b]. */
    double fraction_in(double a, double b) const;

  private:
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<std::size_t> bins_;
    std::size_t total_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
};

/** Distribution snapshot for one (op, layer). */
struct SiteProfile {
    nonlinear::NonlinearOp op;
    std::size_t layer = 0;
    Histogram values;     ///< Raw input values.
    Histogram exponents;  ///< Unbiased input exponents.
    std::size_t zero_count = 0;

    /**
     * Smallest window of @p size exponents covering the largest
     * fraction of inputs -- the profiler's suggestion for the LUT
     * window (Fig. 4 / Fig. 5 connection).
     */
    std::pair<int, int> dominant_exponent_window(int size) const;

    /** Fraction of (non-zero) inputs inside exponent window [lo,hi]. */
    double exponent_coverage(int lo, int hi) const;
};

/** Collects SiteProfiles through the transformer capture hook. */
class NonlinearProfiler {
  public:
    NonlinearProfiler();

    /** The CaptureFn to install with TransformerModel::set_capture. */
    CaptureFn capture();

    /** All profiled sites, keyed by (op, layer). */
    const std::map<std::pair<int, std::size_t>, SiteProfile>&
    sites() const
    {
        return sites_;
    }

    /** Profile of one (op, layer); throws if absent. */
    const SiteProfile& site(nonlinear::NonlinearOp op,
                            std::size_t layer) const;

    bool has_site(nonlinear::NonlinearOp op, std::size_t layer) const;

    /** Merge values/exponents across layers for one op. */
    SiteProfile merged(nonlinear::NonlinearOp op) const;

  private:
    void record(nonlinear::NonlinearOp op, std::size_t layer,
                std::span<const float> inputs);

    std::map<std::pair<int, std::size_t>, SiteProfile> sites_;
};

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_PROFILER_H_
