#include "model/transformer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <utility>

#include "quant/group_quant.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace mugi {
namespace model {
namespace {

support::MatrixF
gaussian_matrix(std::size_t rows, std::size_t cols, std::mt19937& rng,
                float stddev)
{
    support::MatrixF m(rows, cols);
    support::fill_gaussian(m, rng, 0.0f, stddev);
    return m;
}

}  // namespace

TransformerModel::TransformerModel(const ModelConfig& config,
                                   std::uint32_t seed)
    : config_(config), layer_hooks_(config.num_layers)
{
    std::mt19937 rng(seed);
    const std::size_t d = config_.d_model;
    const std::size_t kv_dim = config_.num_kv_heads * config_.head_dim();
    // Variance-aware init: the pre-norm input is ~unit RMS, so a
    // weight std of a/sqrt(fan_in) yields outputs ~ N(0, a^2).  The
    // chosen gains land the nonlinear input distributions in the
    // ranges Fig. 4 reports: attention scores with std ~2.2 (softmax
    // inputs spreading to ~-16 with exponents clustered in [-3, 4])
    // and FFN pre-activations with std ~2.
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));
    const float inv_sqrt_ff =
        1.0f / std::sqrt(static_cast<float>(config_.d_ff));
    const float resid_gain =
        1.0f / std::sqrt(2.0f * config_.num_layers);

    embedding_ = gaussian_matrix(config_.vocab, d, rng, 1.0f);
    lm_head_ = gaussian_matrix(d, config_.vocab, rng, inv_sqrt_d);
    final_norm_gain_.assign(d, 1.0f);
    final_norm_bias_.assign(d, 0.0f);

    layers_.reserve(config_.num_layers);
    for (std::size_t l = 0; l < config_.num_layers; ++l) {
        LayerWeights w;
        const float qk_std = 1.5f * inv_sqrt_d;
        w.wq = gaussian_matrix(d, d, rng, qk_std);
        w.wk = gaussian_matrix(d, kv_dim, rng, qk_std);
        w.wv = gaussian_matrix(d, kv_dim, rng, inv_sqrt_d);
        w.wo = gaussian_matrix(d, d, rng, inv_sqrt_d * resid_gain);
        if (config_.gated_ffn()) {
            w.w_gate =
                gaussian_matrix(d, config_.d_ff, rng, 2.0f * inv_sqrt_d);
        }
        w.w_up = gaussian_matrix(d, config_.d_ff, rng,
                                 2.0f * inv_sqrt_d);
        w.w_down = gaussian_matrix(config_.d_ff, d, rng,
                                   inv_sqrt_ff * resid_gain);
        w.norm1_gain.assign(d, 1.0f);
        w.norm1_bias.assign(d, 0.0f);
        w.norm2_gain.assign(d, 1.0f);
        w.norm2_bias.assign(d, 0.0f);
        layers_.push_back(std::move(w));
    }
}

void
TransformerModel::set_layer_hooks(std::size_t layer,
                                  std::optional<NonlinearHooks> hooks)
{
    assert(layer < layer_hooks_.size());
    layer_hooks_[layer] = hooks;
}

const NonlinearHooks&
TransformerModel::hooks_for(std::size_t layer) const
{
    static const NonlinearHooks kExactHooks{};
    if (!hooks_enabled_) {
        return kExactHooks;
    }
    if (layer < layer_hooks_.size() && layer_hooks_[layer].has_value()) {
        return *layer_hooks_[layer];
    }
    return global_hooks_;
}

void
TransformerModel::apply_woq(std::size_t group_size)
{
    const auto fake_quant = [&](support::MatrixF& w) {
        if (w.size() == 0) return;
        // Quantize along the reduction (input) dimension: transpose
        // view not needed because groups run along columns of each
        // row, matching a [in, out] layout grouped per output row
        // after transposition; for the error model the orientation is
        // immaterial.
        const quant::QuantizedMatrix q =
            quant::quantize_int4(w, group_size);
        w = quant::dequantize(q);
    };
    for (LayerWeights& layer : layers_) {
        fake_quant(layer.wq);
        fake_quant(layer.wk);
        fake_quant(layer.wv);
        fake_quant(layer.wo);
        fake_quant(layer.w_gate);
        fake_quant(layer.w_up);
        fake_quant(layer.w_down);
    }
}

void
TransformerModel::norm(const support::MatrixF& in,
                       std::span<const float> gain,
                       std::span<const float> bias,
                       support::MatrixF& out) const
{
    if (config_.uses_rmsnorm()) {
        rmsnorm(in, gain, out);
    } else {
        layernorm(in, gain, bias, out);
    }
}

support::MatrixF
TransformerModel::attention(std::size_t layer_idx,
                            const support::MatrixF& x_norm) const
{
    const LayerWeights& w = layers_[layer_idx];
    const NonlinearHooks& hooks = hooks_for(layer_idx);
    const std::size_t T = x_norm.rows();
    const std::size_t heads = config_.num_heads;
    const std::size_t kv_heads = config_.num_kv_heads;
    const std::size_t hd = config_.head_dim();
    const std::size_t group = config_.gqa_group();

    support::MatrixF q = linear(x_norm, w.wq);
    support::MatrixF k = linear(x_norm, w.wk);
    support::MatrixF v = linear(x_norm, w.wv);
    if (config_.uses_rope()) {
        apply_rope(q, heads, hd, 0);
        apply_rope(k, kv_heads, hd, 0);
    }

    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    support::MatrixF out(T, config_.d_model, 0.0f);

    for (std::size_t h = 0; h < heads; ++h) {
        const std::size_t kv_h = h / group;
        // scores[t, s] = q_t . k_s * scale  (+ causal mask).
        support::MatrixF scores(T, T, 0.0f);
        for (std::size_t t = 0; t < T; ++t) {
            const float* qrow = q.row_data(t) + h * hd;
            for (std::size_t s = 0; s < T; ++s) {
                if (config_.causal() && s > t) {
                    scores.at(t, s) = -INFINITY;
                    continue;
                }
                const float* krow = k.row_data(s) + kv_h * hd;
                float dot = 0.0f;
                for (std::size_t i = 0; i < hd; ++i) {
                    dot += qrow[i] * krow[i];
                }
                scores.at(t, s) = dot * scale;
            }
        }
        const auto capture_row = [&](std::span<const float> shifted) {
            if (capture_) {
                capture_(nonlinear::NonlinearOp::kExp, layer_idx,
                         shifted);
            }
        };
        softmax_rows(scores, hooks.softmax_exp,
                     capture_ ? capture_row
                              : std::function<void(
                                    std::span<const float>)>{});
        // out_t += probs . v
        for (std::size_t t = 0; t < T; ++t) {
            float* orow = out.row_data(t) + h * hd;
            for (std::size_t s = 0; s < T; ++s) {
                const float p = scores.at(t, s);
                if (p == 0.0f) continue;
                const float* vrow = v.row_data(s) + kv_h * hd;
                for (std::size_t i = 0; i < hd; ++i) {
                    orow[i] += p * vrow[i];
                }
            }
        }
    }
    return linear(out, w.wo);
}

std::function<void(std::span<const float>)>
TransformerModel::activation_capture(std::size_t layer_idx) const
{
    if (!capture_) {
        return {};
    }
    return [this, layer_idx](std::span<const float> values) {
        capture_(config_.activation(), layer_idx, values);
    };
}

support::MatrixF
TransformerModel::ffn(std::size_t layer_idx,
                      const support::MatrixF& x_norm,
                      const NonlinearHooks& hooks) const
{
    const LayerWeights& w = layers_[layer_idx];
    const auto capture = activation_capture(layer_idx);

    if (config_.gated_ffn()) {
        support::MatrixF gate = linear(x_norm, w.w_gate);
        const support::MatrixF up = linear(x_norm, w.w_up);
        apply_activation(gate, config_.activation(), hooks.activation,
                         capture);
        for (std::size_t i = 0; i < gate.size(); ++i) {
            gate.data()[i] *= up.data()[i];
        }
        return linear(gate, w.w_down);
    }
    support::MatrixF hidden = linear(x_norm, w.w_up);
    apply_activation(hidden, config_.activation(), hooks.activation,
                     capture);
    return linear(hidden, w.w_down);
}

support::MatrixF
TransformerModel::run_layers(support::MatrixF x) const
{
    support::MatrixF x_norm;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const LayerWeights& w = layers_[l];
        norm(x, w.norm1_gain, w.norm1_bias, x_norm);
        const support::MatrixF attn = attention(l, x_norm);
        for (std::size_t i = 0; i < x.size(); ++i) {
            x.data()[i] += attn.data()[i];
        }
        norm(x, w.norm2_gain, w.norm2_bias, x_norm);
        const support::MatrixF f = ffn(l, x_norm, hooks_for(l));
        for (std::size_t i = 0; i < x.size(); ++i) {
            x.data()[i] += f.data()[i];
        }
    }
    norm(x, final_norm_gain_, final_norm_bias_, x_norm);
    return linear(x_norm, lm_head_);
}

support::MatrixF
TransformerModel::forward_tokens(std::span<const int> tokens) const
{
    support::MatrixF x(tokens.size(), config_.d_model);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
        const std::span<const float> e = embedding(tokens[t]);
        std::copy(e.begin(), e.end(), x.row_data(t));
    }
    return run_layers(std::move(x));
}

support::MatrixF
TransformerModel::forward_embeddings(
    const support::MatrixF& embeddings) const
{
    assert(embeddings.cols() == config_.d_model);
    return run_layers(embeddings);
}

std::span<const float>
TransformerModel::embedding(int token) const
{
    assert(token >= 0 &&
           static_cast<std::size_t>(token) < config_.vocab);
    return {embedding_.row_data(static_cast<std::size_t>(token)),
            config_.d_model};
}

support::MatrixF
TransformerModel::decode_layer(std::size_t layer_idx,
                               const support::MatrixF& x,
                               quant::KvCache& cache) const
{
    return decode_layer(layer_idx, x, cache, hooks_for(layer_idx));
}

void
TransformerModel::attend_one(const float* q_row, const float* k_row,
                             const float* v_row, quant::KvCache& cache,
                             const NonlinearHooks& hooks,
                             float* out_row) const
{
    const std::size_t kv_heads = config_.num_kv_heads;
    const std::size_t hd = config_.head_dim();
    const std::size_t group = config_.gqa_group();

    // Reshape the new K/V row into per-head matrices and append.
    support::MatrixF k_heads(kv_heads, hd);
    support::MatrixF v_heads(kv_heads, hd);
    for (std::size_t h = 0; h < kv_heads; ++h) {
        for (std::size_t i = 0; i < hd; ++i) {
            k_heads.at(h, i) = k_row[h * hd + i];
            v_heads.at(h, i) = v_row[h * hd + i];
        }
    }
    cache.append(k_heads, v_heads);
    const std::size_t S = cache.length().value();

    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    // Batched KV gather: decode kv head kv_h's whole resident
    // sequence into contiguous [S, hd] scratch once, and let every
    // query head of its GQA group read it -- one block-table walk per
    // kv head instead of one cache read per (head, position).  The
    // per-vector decode is the arithmetic read_key/read_value ran, and
    // a GQA group's query heads are consecutive, so the kv_h-outer
    // order visits heads in the same ascending order as before and
    // every score and output byte matches the per-position walk.
    assert(config_.num_heads == kv_heads * group);
    support::MatrixF k_scratch(S, hd);
    support::MatrixF v_scratch(S, hd);
    for (std::size_t kv_h = 0; kv_h < kv_heads; ++kv_h) {
        cache.read_keys(kv_h, units::Positions(0), units::Positions(S),
                        k_scratch.row_data(0));
        cache.read_values(kv_h, units::Positions(0),
                          units::Positions(S), v_scratch.row_data(0));
        for (std::size_t g = 0; g < group; ++g) {
            const std::size_t h = kv_h * group + g;
            support::MatrixF scores(1, S, 0.0f);
            const float* qrow = q_row + h * hd;
            for (std::size_t s = 0; s < S; ++s) {
                const float* krow = k_scratch.row_data(s);
                float dot = 0.0f;
                for (std::size_t i = 0; i < hd; ++i) {
                    dot += qrow[i] * krow[i];
                }
                scores.at(0, s) = dot * scale;
            }
            softmax_rows(scores, hooks.softmax_exp);
            float* orow = out_row + h * hd;
            for (std::size_t s = 0; s < S; ++s) {
                const float p = scores.at(0, s);
                if (p == 0.0f) continue;
                const float* vrow = v_scratch.row_data(s);
                for (std::size_t i = 0; i < hd; ++i) {
                    orow[i] += p * vrow[i];
                }
            }
        }
    }
}

support::MatrixF
TransformerModel::decode_layer(std::size_t layer_idx,
                               const support::MatrixF& x,
                               quant::KvCache& cache,
                               const NonlinearHooks& hooks) const
{
    assert(x.rows() == 1);
    const LayerWeights& w = layers_[layer_idx];
    const std::size_t heads = config_.num_heads;
    const std::size_t kv_heads = config_.num_kv_heads;
    const std::size_t hd = config_.head_dim();
    const std::size_t pos = cache.length().value();

    support::MatrixF x_norm;
    norm(x, w.norm1_gain, w.norm1_bias, x_norm);

    support::MatrixF q = linear(x_norm, w.wq);
    support::MatrixF k = linear(x_norm, w.wk);
    support::MatrixF v = linear(x_norm, w.wv);
    if (config_.uses_rope()) {
        apply_rope(q, heads, hd, pos);
        apply_rope(k, kv_heads, hd, pos);
    }
    support::MatrixF attn_out(1, config_.d_model, 0.0f);
    attend_one(q.row_data(0), k.row_data(0), v.row_data(0), cache,
               hooks, attn_out.row_data(0));

    support::MatrixF out = linear(attn_out, w.wo);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.data()[i] += x.data()[i];
    }

    norm(out, w.norm2_gain, w.norm2_bias, x_norm);
    const support::MatrixF f = ffn(layer_idx, x_norm, hooks);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.data()[i] += f.data()[i];
    }
    return out;
}

support::MatrixF
TransformerModel::decode_layer_batch(
    std::size_t layer_idx, const support::MatrixF& x,
    std::span<quant::KvCache* const> caches,
    std::span<const NonlinearHooks* const> hooks,
    support::ThreadPool* pool) const
{
    const std::size_t batch = x.rows();
    assert(caches.size() == batch && hooks.size() == batch);
    const LayerWeights& w = layers_[layer_idx];
    const std::size_t d = config_.d_model;
    const std::size_t heads = config_.num_heads;
    const std::size_t kv_heads = config_.num_kv_heads;
    const std::size_t hd = config_.head_dim();
    // The profiling capture appends every row's nonlinear-input
    // stream to caller state in batch-row order; keep that ordering
    // by running captured layers serially.
    if (capture_) {
        pool = nullptr;
    }
    // Pooled stage helpers.  Every task writes a disjoint row range
    // of a pre-zeroed output and runs the identical per-cell float-op
    // sequence as the serial loop, so the parallel_for join (the
    // stage barrier) reproduces the serial bytes exactly.
    const auto for_row_ranges =
        [&](const std::function<void(std::size_t, std::size_t)>& body) {
            if (pool != nullptr && batch > 1) {
                const auto ranges =
                    support::split_ranges(batch, pool->num_threads());
                pool->parallel_for(ranges.size(), [&](std::size_t t) {
                    body(ranges[t].first, ranges[t].second);
                });
            } else {
                body(0, batch);
            }
        };
    const auto gemm = [&](const support::MatrixF& a,
                          const support::MatrixF& b) {
        support::MatrixF c(a.rows(), b.cols(), 0.0f);
        if (pool != nullptr && a.rows() > 1) {
            const auto ranges =
                support::split_ranges(a.rows(), pool->num_threads());
            pool->parallel_for(ranges.size(), [&](std::size_t t) {
                linear_batched_range(a, b, ranges[t].first,
                                     ranges[t].second, c);
            });
        } else {
            linear_batched_range(a, b, 0, a.rows(), c);
        }
        return c;
    };

    support::MatrixF x_norm;
    norm(x, w.norm1_gain, w.norm1_bias, x_norm);

    // One batched [B, d] x [d, out] GEMM per projection covers the
    // whole stack; row r keeps its own q / k / v.  Pooled, the three
    // projections fan out together as (projection x row-range) tasks.
    support::MatrixF q(batch, w.wq.cols(), 0.0f);
    support::MatrixF k(batch, w.wk.cols(), 0.0f);
    support::MatrixF v(batch, w.wv.cols(), 0.0f);
    {
        support::MatrixF* const outs[3] = {&q, &k, &v};
        const support::MatrixF* const weights[3] = {&w.wq, &w.wk,
                                                    &w.wv};
        if (pool != nullptr && batch > 1) {
            const auto ranges = support::split_ranges(batch, pool->num_threads());
            pool->parallel_for(3 * ranges.size(), [&](std::size_t t) {
                const auto& range = ranges[t % ranges.size()];
                const std::size_t proj = t / ranges.size();
                linear_batched_range(x_norm, *weights[proj],
                                     range.first, range.second,
                                     *outs[proj]);
            });
        } else {
            for (std::size_t proj = 0; proj < 3; ++proj) {
                linear_batched_range(x_norm, *weights[proj], 0, batch,
                                     *outs[proj]);
            }
        }
    }
    support::MatrixF attn_out(batch, d, 0.0f);
    for_row_ranges([&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
            if (config_.uses_rope()) {
                const std::size_t pos = caches[r]->length().value();
                rope_rotate_row(q.row_data(r), heads, hd, pos);
                rope_rotate_row(k.row_data(r), kv_heads, hd, pos);
            }
            attend_one(q.row_data(r), k.row_data(r), v.row_data(r),
                       *caches[r], *hooks[r], attn_out.row_data(r));
        }
    });
    support::MatrixF out = gemm(attn_out, w.wo);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.data()[i] += x.data()[i];
    }

    norm(out, w.norm2_gain, w.norm2_bias, x_norm);
    // FFN: fused batched projections, per-row activation (each row
    // must feed its own hooks exactly the per-request input stream
    // the sequential path would -- see apply_activation_span).
    const auto capture = activation_capture(layer_idx);
    const std::size_t ff = config_.d_ff;
    support::MatrixF f;
    if (config_.gated_ffn()) {
        support::MatrixF gate = gemm(x_norm, w.w_gate);
        const support::MatrixF up = gemm(x_norm, w.w_up);
        for_row_ranges([&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                float* grow = gate.row_data(r);
                apply_activation_span(std::span<float>(grow, ff),
                                      config_.activation(),
                                      hooks[r]->activation, capture);
                const float* urow = up.row_data(r);
                for (std::size_t i = 0; i < ff; ++i) {
                    grow[i] *= urow[i];
                }
            }
        });
        f = gemm(gate, w.w_down);
    } else {
        support::MatrixF hidden = gemm(x_norm, w.w_up);
        for_row_ranges([&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
                apply_activation_span(
                    std::span<float>(hidden.row_data(r), ff),
                    config_.activation(), hooks[r]->activation,
                    capture);
            }
        });
        f = gemm(hidden, w.w_down);
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.data()[i] += f.data()[i];
    }
    return out;
}

DecodeSession::DecodeSession(const TransformerModel& model,
                             quant::KvPrecision kv_precision)
    : model_(model)
{
    const ModelConfig& config = model.config();
    caches_.reserve(config.num_layers);
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        caches_.emplace_back(config.num_kv_heads, config.head_dim(),
                             kv_precision);
    }
}

std::vector<float>
DecodeSession::step(int token)
{
    const ModelConfig& config = model_.config();
    support::MatrixF x(1, config.d_model);
    const std::span<const float> e = model_.embedding(token);
    std::copy(e.begin(), e.end(), x.row_data(0));
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        x = model_.decode_layer(l, x, caches_[l]);
    }
    support::MatrixF x_norm;
    if (config.uses_rmsnorm()) {
        rmsnorm(x, model_.final_norm_gain(), x_norm);
    } else {
        std::vector<float> bias(config.d_model, 0.0f);
        layernorm(x, model_.final_norm_gain(), bias, x_norm);
    }
    const support::MatrixF logits = linear(x_norm, model_.lm_head());
    ++position_;
    return logits.data();
}

std::size_t
DecodeSession::kv_bytes() const
{
    std::size_t total = 0;
    for (const quant::KvCache& cache : caches_) {
        total += cache.memory_bytes().value();
    }
    return total;
}

}  // namespace model
}  // namespace mugi
