#ifndef MUGI_MODEL_TRANSFORMER_H_
#define MUGI_MODEL_TRANSFORMER_H_

/**
 * @file
 * The from-scratch transformer substrate used for the accuracy and
 * profiling studies (Sec. 3, 5.1): a faithful pre-norm transformer
 * with GQA, RoPE, SwiGLU/GELU FFN, causal or bidirectional attention,
 * pluggable nonlinear implementations (global or per layer, the hook
 * the Fig. 6/7 sweeps use), a profiling capture hook (Fig. 4), WOQ
 * fake-quantization of the weights, and a KV-cached decode path with
 * optional KVQ.
 */

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "model/config.h"
#include "model/ops.h"
#include "nonlinear/approximator.h"
#include "quant/kv_cache.h"
#include "support/matrix.h"

namespace mugi {
namespace support {
class ThreadPool;
}  // namespace support

namespace model {

/** Which nonlinear implementations a forward pass should use. */
struct NonlinearHooks {
    /** exp used inside attention softmax; nullptr = exact. */
    const nonlinear::NonlinearApproximator* softmax_exp = nullptr;
    /** FFN activation (SiLU/GELU); nullptr = exact. */
    const nonlinear::NonlinearApproximator* activation = nullptr;
};

/** Profiling callback: (op, layer, raw nonlinear inputs). */
using CaptureFn = std::function<void(nonlinear::NonlinearOp, std::size_t,
                                     std::span<const float>)>;

/** Weights of one transformer layer. */
struct LayerWeights {
    support::MatrixF wq;      ///< [d, d]
    support::MatrixF wk;      ///< [d, kv_dim]
    support::MatrixF wv;      ///< [d, kv_dim]
    support::MatrixF wo;      ///< [d, d]
    support::MatrixF w_gate;  ///< [d, ff] (gated FFN only)
    support::MatrixF w_up;    ///< [d, ff]
    support::MatrixF w_down;  ///< [ff, d]
    std::vector<float> norm1_gain, norm1_bias;
    std::vector<float> norm2_gain, norm2_bias;
};

/** A complete transformer model with synthetic weights. */
class TransformerModel {
  public:
    /**
     * Build a model with seeded Gaussian weights (std 0.02, residual
     * projections scaled by 1/sqrt(2 * layers) as in GPT-2-style
     * init, which keeps activations in a realistic range).
     */
    TransformerModel(const ModelConfig& config, std::uint32_t seed);

    const ModelConfig& config() const { return config_; }

    /** Set the hooks used for every layer. */
    void set_hooks(const NonlinearHooks& hooks) { global_hooks_ = hooks; }

    /** Per-layer override (Fig. 7 per-layer tuning); nullopt = global. */
    void set_layer_hooks(std::size_t layer,
                         std::optional<NonlinearHooks> hooks);

    /**
     * Master switch: when disabled, every layer runs exact
     * nonlinearities regardless of installed hooks.  The accuracy
     * harness uses this for the teacher pass so per-layer tuning
     * state cannot leak into the reference.
     */
    void set_hooks_enabled(bool enabled) { hooks_enabled_ = enabled; }
    bool hooks_enabled() const { return hooks_enabled_; }

    /** Install a profiling capture (Fig. 4); empty disables. */
    void set_capture(CaptureFn capture) { capture_ = std::move(capture); }

    /**
     * Fake-quantize every weight matrix through INT4 group
     * quantization (WOQ, Sec. 2.3.2): weights are replaced by their
     * dequantized values, so the forward pass sees exactly the
     * precision the INT4 datapath would.
     */
    void apply_woq(std::size_t group_size);

    /**
     * Full-sequence forward pass over token ids; returns next-token
     * logits per position, shape [T, vocab].
     */
    support::MatrixF forward_tokens(std::span<const int> tokens) const;

    /**
     * Forward pass over raw embeddings (vision-style input), shape
     * [T, d_model]; returns logits per position.
     */
    support::MatrixF forward_embeddings(
        const support::MatrixF& embeddings) const;

    /** Embedding row for a token (used by the decode path). */
    std::span<const float> embedding(int token) const;

    std::size_t num_layers() const { return layers_.size(); }
    const LayerWeights& layer(std::size_t i) const { return layers_[i]; }
    LayerWeights& mutable_layer(std::size_t i) { return layers_[i]; }

    /**
     * One decode layer step against a KV cache holding the context.
     * Exposed for DecodeSession; @p x is the [1, d] layer input.
     */
    support::MatrixF decode_layer(std::size_t layer_idx,
                                  const support::MatrixF& x,
                                  quant::KvCache& cache) const;

    /**
     * Same, with the nonlinear hooks supplied by the caller instead
     * of the model's installed hooks.  This is the serving path
     * (serve/session.h): each request carries its own per-layer
     * window tuning, so the shared model stays immutable.
     */
    support::MatrixF decode_layer(std::size_t layer_idx,
                                  const support::MatrixF& x,
                                  quant::KvCache& cache,
                                  const NonlinearHooks& hooks) const;

    /**
     * Fused batched decode layer: @p x stacks one token per batch
     * row ([B, d]); each projection (Q/K/V, output, FFN) runs as one
     * batched GEMM over the whole stack (linear_batched streams each
     * weight row once per step instead of once per session), while
     * RoPE, KV append, attention, softmax and the FFN activation run
     * per row against row i's own cache (@p caches[i]) and nonlinear
     * hooks (@p hooks[i]).  Weights are read live from the layer, so
     * mutation between steps (apply_woq, mutable_layer) behaves
     * exactly as in the sequential path.  Row i's output is
     * bit-identical to decode_layer(layer_idx, x.row(i), *caches[i],
     * *hooks[i]) -- the fused-step contract serve::Engine::step
     * relies on (enforced by tests/serve/engine_test.cc).  Distinct
     * sessions only: a session stepped twice in one batch must go
     * through the sequential path so its second token sees the
     * first.
     *
     * With a non-null @p pool the layer's stages fan out across its
     * workers -- per-projection row-range tasks for the batched GEMMs,
     * per-row-range tasks for RoPE + attention and the FFN activation
     * -- joining at each stage boundary.  Every task writes a disjoint
     * row range and runs the identical per-cell float-op sequence, so
     * the pooled result is bit-identical to pool == nullptr (pinned by
     * tests/concurrency/pooled_step_test.cc).  When a profiling
     * capture is installed the layer runs serially regardless (the
     * capture stream is ordered by batch row).
     */
    support::MatrixF decode_layer_batch(
        std::size_t layer_idx, const support::MatrixF& x,
        std::span<quant::KvCache* const> caches,
        std::span<const NonlinearHooks* const> hooks,
        support::ThreadPool* pool = nullptr) const;

    const std::vector<float>& final_norm_gain() const
    {
        return final_norm_gain_;
    }
    const support::MatrixF& lm_head() const { return lm_head_; }

    /** Hooks in effect for @p layer. */
    const NonlinearHooks& hooks_for(std::size_t layer) const;

  private:
    support::MatrixF run_layers(support::MatrixF x) const;
    support::MatrixF attention(std::size_t layer_idx,
                               const support::MatrixF& x_norm) const;
    support::MatrixF ffn(std::size_t layer_idx,
                         const support::MatrixF& x_norm,
                         const NonlinearHooks& hooks) const;
    void norm(const support::MatrixF& in, std::span<const float> gain,
              std::span<const float> bias, support::MatrixF& out) const;
    /** Profiling capture for layer @p layer_idx's FFN activation
        (empty when no capture is installed); shared by ffn() and
        decode_layer_batch so both paths report identically. */
    std::function<void(std::span<const float>)>
    activation_capture(std::size_t layer_idx) const;
    /**
     * One token's cached attention: reshape-and-append the new K/V
     * row, score the query against the cache, softmax with
     * @p hooks.softmax_exp, and accumulate the weighted values into
     * @p out_row (zero-initialized, [d_model]).  Shared by
     * decode_layer and decode_layer_batch so both paths execute the
     * identical float-op sequence.  KV reads are batched: each kv
     * head's resident sequence is gathered into contiguous
     * [positions, head_dim] scratch once (KvCache::read_keys /
     * read_values) and reused by every query head of its GQA group,
     * instead of decoding position-at-a-time per head.
     */
    void attend_one(const float* q_row, const float* k_row,
                    const float* v_row, quant::KvCache& cache,
                    const NonlinearHooks& hooks, float* out_row) const;

    ModelConfig config_;
    std::vector<LayerWeights> layers_;
    std::vector<std::optional<NonlinearHooks>> layer_hooks_;
    NonlinearHooks global_hooks_;
    bool hooks_enabled_ = true;
    CaptureFn capture_;
    support::MatrixF embedding_;       ///< [vocab, d]
    support::MatrixF lm_head_;         ///< [d, vocab]
    std::vector<float> final_norm_gain_, final_norm_bias_;
};

/**
 * Autoregressive decode session: maintains one KV cache per layer
 * (optionally KVQ-quantized) and produces logits token by token.
 */
class DecodeSession {
  public:
    DecodeSession(const TransformerModel& model,
                  quant::KvPrecision kv_precision);

    /** Consume @p token, return logits for the next token. */
    std::vector<float> step(int token);

    /** Context length so far. */
    std::size_t position() const { return position_; }

    /** Total KV-cache footprint across layers, in bytes. */
    std::size_t kv_bytes() const;

  private:
    const TransformerModel& model_;
    std::vector<quant::KvCache> caches_;
    std::size_t position_ = 0;
};

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_TRANSFORMER_H_
