#include "model/workload.h"

#include <algorithm>

namespace mugi {
namespace model {

const char*
op_class_name(OpClass cls)
{
    switch (cls) {
      case OpClass::kProjection:
        return "projection";
      case OpClass::kAttention:
        return "attention";
      case OpClass::kFfn:
        return "ffn";
      case OpClass::kNonlinear:
        return "nonlinear";
    }
    return "?";
}

std::uint64_t
Workload::total_macs() const
{
    std::uint64_t total = 0;
    for (const GemmOp& g : gemms) {
        total += g.macs();
    }
    return total;
}

std::uint64_t
Workload::total_weight_bytes() const
{
    std::uint64_t total = 0;
    for (const GemmOp& g : gemms) {
        if (g.weights_from_dram) {
            total += g.weight_bytes();
        }
    }
    return total;
}

std::uint64_t
Workload::total_nonlinear_elements() const
{
    std::uint64_t total = 0;
    for (const NonlinearWork& n : nonlinears) {
        total += n.elements;
    }
    return total;
}

namespace {

/** Emit the per-layer op stream shared by decode and prefill. */
void
emit_layer_ops(const ModelConfig& c, std::size_t batch,
               std::size_t q_tokens, std::size_t kv_len,
               Workload& w)
{
    const std::size_t d = c.d_model;
    const std::size_t hd = c.head_dim();
    const std::size_t kv_dim = c.num_kv_heads * hd;
    const std::size_t group = c.gqa_group();
    const std::size_t L = c.num_layers;
    const std::size_t m = batch * q_tokens;  // Activation rows.

    // --- Projections (WOQ INT4 weights). ---
    w.gemms.push_back({"q_proj", OpClass::kProjection, m, d, d, L, 4,
                       16, true});
    w.gemms.push_back({"k_proj", OpClass::kProjection, m, kv_dim, d, L,
                       4, 16, true});
    w.gemms.push_back({"v_proj", OpClass::kProjection, m, kv_dim, d, L,
                       4, 16, true});
    w.gemms.push_back({"o_proj", OpClass::kProjection, m, d, d, L, 4,
                       16, true});

    // --- Attention against the (KVQ INT4) cache. ---
    // Per KV head, the GQA group's queries batch together: the Mugi
    // mapping places these group x batch Q tokens on the columns
    // (Sec. 4.2).
    const std::size_t q_rows = batch * group * q_tokens;
    w.gemms.push_back({"attn_qk", OpClass::kAttention, q_rows, kv_len,
                       hd, L * c.num_kv_heads, 4, 16, false});
    w.gemms.push_back({"attn_pv", OpClass::kAttention, q_rows, hd,
                       kv_len, L * c.num_kv_heads, 4, 16, false});

    // --- FFN (WOQ INT4 weights). ---
    if (c.gated_ffn()) {
        w.gemms.push_back({"ffn_gate", OpClass::kFfn, m, c.d_ff, d, L,
                           4, 16, true});
    }
    w.gemms.push_back({"ffn_up", OpClass::kFfn, m, c.d_ff, d, L, 4, 16,
                       true});
    w.gemms.push_back({"ffn_down", OpClass::kFfn, m, d, c.d_ff, L, 4,
                       16, true});

    // --- Nonlinear work. ---
    NonlinearWork softmax;
    softmax.name = "softmax";
    softmax.op = nonlinear::NonlinearOp::kExp;
    softmax.is_softmax = true;
    softmax.row_length = kv_len;
    softmax.elements = L * c.num_heads * batch * q_tokens * kv_len;
    w.nonlinears.push_back(softmax);

    NonlinearWork act;
    act.name = c.activation() == nonlinear::NonlinearOp::kSilu
                   ? "silu"
                   : "gelu";
    act.op = c.activation();
    act.elements = L * m * c.d_ff;
    w.nonlinears.push_back(act);
}

}  // namespace

Workload
build_decode_workload(const ModelConfig& config, std::size_t batch,
                      std::size_t context)
{
    Workload w;
    w.name = config.name + "-decode";
    w.config = config;
    w.batch = batch;
    w.seq_len = context;
    w.decode = true;
    emit_layer_ops(config, batch, /*q_tokens=*/1, /*kv_len=*/context, w);
    return w;
}

Workload
build_mixed_decode_workload(const ModelConfig& c,
                            std::span<const std::size_t> contexts)
{
    Workload w = build_mixed_step_workload(c, contexts, {});
    w.name = c.name + "-decode-mixed" + std::to_string(contexts.size());
    return w;
}

Workload
build_prefill_chunk_workload(const ModelConfig& config,
                             const PrefillChunk& chunk)
{
    const PrefillChunk chunks[] = {chunk};
    Workload w = build_mixed_step_workload(config, {}, chunks);
    w.name = config.name + "-prefill-chunk";
    w.decode = false;
    w.batch = 1;
    w.seq_len = chunk.tokens;
    return w;
}

Workload
build_mixed_step_workload(const ModelConfig& c,
                          std::span<const std::size_t> decode_contexts,
                          std::span<const PrefillChunk> prefill_chunks)
{
    const std::size_t D = decode_contexts.size();
    std::size_t P = 0;  // Total prompt tokens fed this step.
    for (const PrefillChunk& chunk : prefill_chunks) {
        P += chunk.tokens;
    }

    Workload w;
    w.name = c.name + "-step-mixed-d" + std::to_string(D) + "-p" +
             std::to_string(P);
    w.config = c;
    // tokens() == batch for a decode-style step: decode tokens plus
    // prompt tokens processed, the serving notion of work done.
    w.batch = D + P;
    w.seq_len = 0;
    for (const std::size_t context : decode_contexts) {
        w.seq_len = std::max(w.seq_len, context);
    }
    for (const PrefillChunk& chunk : prefill_chunks) {
        w.seq_len = std::max(w.seq_len, chunk.start + chunk.tokens);
    }
    w.decode = true;
    if (w.batch == 0) {
        return w;
    }

    const std::size_t d = c.d_model;
    const std::size_t hd = c.head_dim();
    const std::size_t kv_dim = c.num_kv_heads * hd;
    const std::size_t group = c.gqa_group();
    const std::size_t L = c.num_layers;
    const std::size_t m = D + P;  // Activation rows per projection.

    // --- Projections: every decode token and every chunk token
    // batches into one GEMM, so the WOQ weights stream from DRAM once
    // per step, not once per request -- chunked prefill rides the
    // decode batch's weight stream for free. ---
    w.gemms.push_back({"q_proj", OpClass::kProjection, m, d, d, L, 4,
                       16, true});
    w.gemms.push_back({"k_proj", OpClass::kProjection, m, kv_dim, d, L,
                       4, 16, true});
    w.gemms.push_back({"v_proj", OpClass::kProjection, m, kv_dim, d, L,
                       4, 16, true});
    w.gemms.push_back({"o_proj", OpClass::kProjection, m, d, d, L, 4,
                       16, true});

    // --- Attention: per request, against its own (KVQ INT4) cache
    // length.  Decode entries are shaped exactly like a batch-1
    // decode at the same context; chunk entries fold the ragged
    // causal rows into one op whose reduction volume is the exact
    // attended() sum, so per-request MACs are preserved exactly. ---
    for (std::size_t i = 0; i < D; ++i) {
        const std::size_t kv_len = decode_contexts[i];
        std::string qk_name = "attn_qk#";
        qk_name += std::to_string(i);
        std::string pv_name = "attn_pv#";
        pv_name += std::to_string(i);
        w.gemms.push_back({std::move(qk_name), OpClass::kAttention,
                           group, kv_len, hd, L * c.num_kv_heads, 4,
                           16, false});
        w.gemms.push_back({std::move(pv_name), OpClass::kAttention,
                           group, hd, kv_len, L * c.num_kv_heads, 4,
                           16, false});
    }
    for (std::size_t j = 0; j < prefill_chunks.size(); ++j) {
        const std::size_t attended =
            static_cast<std::size_t>(prefill_chunks[j].attended());
        std::string qk_name = "prefill_qk#";
        qk_name += std::to_string(j);
        std::string pv_name = "prefill_pv#";
        pv_name += std::to_string(j);
        w.gemms.push_back({std::move(qk_name), OpClass::kAttention,
                           group, attended, hd, L * c.num_kv_heads, 4,
                           16, false});
        w.gemms.push_back({std::move(pv_name), OpClass::kAttention,
                           group, hd, attended, L * c.num_kv_heads, 4,
                           16, false});
    }

    // --- FFN: batched like the projections. ---
    if (c.gated_ffn()) {
        w.gemms.push_back({"ffn_gate", OpClass::kFfn, m, c.d_ff, d, L,
                           4, 16, true});
    }
    w.gemms.push_back({"ffn_up", OpClass::kFfn, m, c.d_ff, d, L, 4, 16,
                       true});
    w.gemms.push_back({"ffn_down", OpClass::kFfn, m, d, c.d_ff, L, 4,
                       16, true});

    // --- Nonlinear work: softmax rows are per-request (decode rows
    // at the request's context, chunk rows over the exact causal
    // sum); the FFN activation batches. ---
    for (std::size_t i = 0; i < D; ++i) {
        NonlinearWork softmax;
        softmax.name = "softmax#";
        softmax.name += std::to_string(i);
        softmax.op = nonlinear::NonlinearOp::kExp;
        softmax.is_softmax = true;
        softmax.row_length = decode_contexts[i];
        softmax.elements = L * c.num_heads * decode_contexts[i];
        w.nonlinears.push_back(softmax);
    }
    for (std::size_t j = 0; j < prefill_chunks.size(); ++j) {
        const PrefillChunk& chunk = prefill_chunks[j];
        NonlinearWork softmax;
        softmax.name = "prefill_softmax#";
        softmax.name += std::to_string(j);
        softmax.op = nonlinear::NonlinearOp::kExp;
        softmax.is_softmax = true;
        softmax.row_length = chunk.start + chunk.tokens;
        softmax.elements =
            L * c.num_heads *
            static_cast<std::size_t>(chunk.attended());
        w.nonlinears.push_back(softmax);
    }
    NonlinearWork act;
    act.name = c.activation() == nonlinear::NonlinearOp::kSilu
                   ? "silu"
                   : "gelu";
    act.op = c.activation();
    act.elements = L * m * c.d_ff;
    w.nonlinears.push_back(act);
    return w;
}

Workload
build_prefill_workload(const ModelConfig& config, std::size_t batch,
                       std::size_t seq_len)
{
    Workload w;
    w.name = config.name + "-prefill";
    w.config = config;
    w.batch = batch;
    w.seq_len = seq_len;
    w.decode = false;
    // Prefill attends causally; kv_len averages seq_len/2 per query.
    emit_layer_ops(config, batch, seq_len,
                   std::max<std::size_t>(1, seq_len / 2), w);
    return w;
}

}  // namespace model
}  // namespace mugi
