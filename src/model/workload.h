#ifndef MUGI_MODEL_WORKLOAD_H_
#define MUGI_MODEL_WORKLOAD_H_

/**
 * @file
 * Workload generator: turns a Table 1 model configuration into the
 * stream of GEMM and nonlinear operations one inference step performs.
 * This is the input to the performance / cost simulator (Sec. 5.4) and
 * the basis of every architecture experiment (Fig. 11-17, Table 3).
 */

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/config.h"
#include "nonlinear/reference.h"

namespace mugi {
namespace model {

/** Classification used in the latency/carbon breakdowns (Fig. 15/16). */
enum class OpClass {
    kProjection,  ///< QKVO projections.
    kAttention,   ///< QK^T and PV GEMMs against the KV cache.
    kFfn,         ///< FFN matrices.
    kNonlinear,   ///< softmax / SiLU / GELU work.
};

const char* op_class_name(OpClass cls);

/** One GEMM: out[m, n] += act[m, k] * weight[k, n], repeated count x. */
struct GemmOp {
    std::string name;
    OpClass cls = OpClass::kProjection;
    std::size_t m = 0;  ///< Activation rows (batch-like dim).
    std::size_t n = 0;  ///< Output features (weight rows on Mugi).
    std::size_t k = 0;  ///< Reduction dim.
    std::size_t count = 1;  ///< Repetitions (e.g. per KV head, layer).
    int weight_bits = 4;    ///< INT4 under WOQ/KVQ, 16 for BF16.
    int act_bits = 16;      ///< BF16 activations / Q tokens.
    /** Weights are streamed once per pass (false for KV cache reuse). */
    bool weights_from_dram = true;

    std::uint64_t
    macs() const
    {
        return static_cast<std::uint64_t>(m) * n * k * count;
    }
    /** Bytes of weight traffic for one pass. */
    std::uint64_t
    weight_bytes() const
    {
        return static_cast<std::uint64_t>(n) * k * count * weight_bits /
               8;
    }
    std::uint64_t
    activation_bytes() const
    {
        return static_cast<std::uint64_t>(m) * k * count * act_bits / 8;
    }
    std::uint64_t
    output_bytes() const
    {
        return static_cast<std::uint64_t>(m) * n * count * 4;
    }
};

/** One batch of element-wise nonlinear work. */
struct NonlinearWork {
    std::string name;
    nonlinear::NonlinearOp op = nonlinear::NonlinearOp::kExp;
    std::size_t elements = 0;
    /** True when the op is a softmax (adds the sum + divide pass). */
    bool is_softmax = false;
    /** Softmax row length (elements per normalization group). */
    std::size_t row_length = 0;
};

/** An inference step's full operation stream. */
struct Workload {
    std::string name;
    ModelConfig config;
    std::size_t batch = 1;
    std::size_t seq_len = 1;
    bool decode = true;  ///< Decode step vs prefill pass.
    std::vector<GemmOp> gemms;
    std::vector<NonlinearWork> nonlinears;

    std::uint64_t total_macs() const;
    std::uint64_t total_weight_bytes() const;
    std::uint64_t total_nonlinear_elements() const;

    /** Tokens produced by this step (batch for decode). */
    std::size_t tokens() const { return decode ? batch : batch * seq_len; }
};

/**
 * One decode step (one new token per sequence in the batch) at
 * context length @p context, with WOQ weights and KVQ cache
 * (Sec. 2.3): all weight and KV GEMMs are BF16-INT4.
 */
Workload build_decode_workload(const ModelConfig& config,
                               std::size_t batch, std::size_t context);

/** A full prefill pass over @p seq_len tokens. */
Workload build_prefill_workload(const ModelConfig& config,
                                std::size_t batch, std::size_t seq_len);

/**
 * One continuous-batching decode step over @p contexts.size()
 * concurrent requests, request i attending a KV cache of length
 * contexts[i].  Projection and FFN GEMMs batch every request's token
 * into one op (streaming the WOQ weights from DRAM once for the
 * whole batch -- the serving win over per-request decode);
 * per-request attention and softmax work is emitted per context
 * length.  Total MACs and nonlinear elements equal the sum of the
 * equivalent independent batch-1 decode workloads exactly; only the
 * weight traffic is shared.
 */
Workload build_mixed_decode_workload(
    const ModelConfig& config, std::span<const std::size_t> contexts);

/**
 * One chunk of a chunked prefill: @p tokens new prompt positions
 * appended to a context that already holds @p start positions.  The
 * chunk's queries attend causally, so query t (1-based) sees
 * start + t cached K/V vectors.
 */
struct PrefillChunk {
    std::size_t start = 0;   ///< KV positions cached before the chunk.
    std::size_t tokens = 0;  ///< New prompt tokens this chunk feeds.

    /**
     * Total K/V positions attended across the chunk's causal queries:
     * sum_{t=1..tokens} (start + t).  This is the exact attention
     * volume, so splitting a prompt into chunks never changes the
     * summed attention MACs.
     */
    std::uint64_t
    attended() const
    {
        return static_cast<std::uint64_t>(tokens) * start +
               static_cast<std::uint64_t>(tokens) * (tokens + 1) / 2;
    }
};

/** One prefill chunk as a standalone (batch-1) workload. */
Workload build_prefill_chunk_workload(const ModelConfig& config,
                                      const PrefillChunk& chunk);

/**
 * One continuous-batching serving step mixing decode tokens and
 * prefill chunks (the chunked-prefill schedule of serve::Scheduler):
 * every decode token and every chunk token shares one projection /
 * FFN GEMM -- the WOQ weight stream is paid once for the whole mixed
 * step -- while attention and softmax are emitted per request at its
 * exact (causal) context.  Exact-sum invariant: total MACs and
 * nonlinear elements equal the sum of the equivalent standalone
 * batch-1 decode workloads (build_decode_workload) and standalone
 * prefill-chunk workloads (build_prefill_chunk_workload).
 */
Workload build_mixed_step_workload(
    const ModelConfig& config,
    std::span<const std::size_t> decode_contexts,
    std::span<const PrefillChunk> prefill_chunks);

}  // namespace model
}  // namespace mugi

#endif  // MUGI_MODEL_WORKLOAD_H_
