#include "nonlinear/approximator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mugi {
namespace nonlinear {

void
NonlinearApproximator::apply_batch(std::span<const float> in,
                                   std::span<float> out) const
{
    assert(in.size() == out.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        out[i] = apply(in[i]);
    }
}

void
softmax_with(const NonlinearApproximator& exp_approx,
             std::span<const float> in, std::span<float> out)
{
    assert(exp_approx.op() == NonlinearOp::kExp);
    assert(in.size() == out.size());
    if (in.empty()) {
        return;
    }
    const float max = *std::max_element(in.begin(), in.end());
    std::vector<float> shifted(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        shifted[i] = in[i] - max;
    }
    exp_approx.apply_batch(shifted, out);
    double sum = 0.0;
    for (const float e : out) {
        sum += e;
    }
    // A fully flushed row (all exps approximated to zero) degenerates
    // to uniform attention rather than NaN, matching what the PP block
    // feeding the vector array would produce for a zero sum.
    if (sum <= 0.0) {
        const float uniform = 1.0f / static_cast<float>(out.size());
        std::fill(out.begin(), out.end(), uniform);
        return;
    }
    const double inv = 1.0 / sum;
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<float>(out[i] * inv);
    }
}

namespace {

/** Exact implementation used as the accuracy baseline. */
class ExactApproximator final : public NonlinearApproximator {
  public:
    explicit ExactApproximator(NonlinearOp op) : op_(op) {}

    NonlinearOp op() const override { return op_; }
    std::string name() const override { return "exact"; }

    float
    apply(float x) const override
    {
        return static_cast<float>(eval_ref(op_, x));
    }

    /**
     * An exact software implementation on a MAC-based vector lane
     * takes tens of cycles (Sec. 2.2.1 quotes 44 for the precise
     * vector-array baseline).
     */
    double cycles_per_element() const override { return 44.0; }

  private:
    NonlinearOp op_;
};

}  // namespace

std::unique_ptr<NonlinearApproximator>
make_exact(NonlinearOp op)
{
    return std::make_unique<ExactApproximator>(op);
}

}  // namespace nonlinear
}  // namespace mugi
