#ifndef MUGI_NONLINEAR_APPROXIMATOR_H_
#define MUGI_NONLINEAR_APPROXIMATOR_H_

/**
 * @file
 * Common interface for nonlinear-operation implementations.
 *
 * Every hardware scheme the paper evaluates (precise vector array, PWL,
 * Taylor, partial approximation, and the VLP approximation of Sec. 3)
 * implements this interface, so the accuracy harness (Fig. 6-8) and the
 * transformer substrate can swap them freely.
 */

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nonlinear/reference.h"

namespace mugi {
namespace nonlinear {

/**
 * An element-wise nonlinear operator plus the latency metadata the
 * performance model needs.
 */
class NonlinearApproximator {
  public:
    virtual ~NonlinearApproximator() = default;

    /** The operation being approximated. */
    virtual NonlinearOp op() const = 0;

    /** Scheme name for reports, e.g. "vlp", "pwl", "taylor". */
    virtual std::string name() const = 0;

    /** Apply the operator to one element. */
    virtual float apply(float x) const = 0;

    /**
     * Apply the operator to a batch.  The default loops over apply();
     * schemes with batch-level state (e.g. the VLP sliding window,
     * which is chosen per mapping) override this.
     */
    virtual void apply_batch(std::span<const float> in,
                             std::span<float> out) const;

    /**
     * Pipeline-amortized cycles consumed per element on one lane/row of
     * the corresponding hardware (used by the iso-area studies of
     * Sec. 6.1.2).
     */
    virtual double cycles_per_element() const = 0;
};

/**
 * Numerically stable softmax where exp() is computed by @p exp_approx
 * (Eq. 1 with an approximate exponential).  The max subtraction and
 * the final normalization mirror the Mugi dataflow: oAcc accumulates
 * the exp results and the vector array multiplies by the reciprocal
 * (Sec. 4.1).
 */
void softmax_with(const NonlinearApproximator& exp_approx,
                  std::span<const float> in, std::span<float> out);

/** An exact (software) implementation of @p op behind the interface. */
std::unique_ptr<NonlinearApproximator> make_exact(NonlinearOp op);

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_APPROXIMATOR_H_
