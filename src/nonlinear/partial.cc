#include "nonlinear/partial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mugi {
namespace nonlinear {

PartialApproximator::PartialApproximator(NonlinearOp op) : op_(op)
{
    if (op != NonlinearOp::kSilu) {
        throw std::invalid_argument(
            "partial approximation is defined for SiLU only");
    }
}

float
PartialApproximator::apply(float x) const
{
    if (std::isnan(x)) {
        return x;
    }
    const float relu6 = std::clamp(x + 3.0f, 0.0f, 6.0f);
    return x * relu6 / 6.0f;
}

}  // namespace nonlinear
}  // namespace mugi
