#ifndef MUGI_NONLINEAR_PARTIAL_H_
#define MUGI_NONLINEAR_PARTIAL_H_

/**
 * @file
 * Partial approximation (PA) baseline, the MobileNetV3-style "hard"
 * variant of swish/SiLU (reference [27] of the paper; compared in
 * Fig. 8 "SiLU PA"):
 *
 *   h-swish(x) = x * relu6(x + 3) / 6
 *
 * Only part of the function (the sigmoid factor) is approximated --
 * hence "partial" -- and the approximation is exact outside [-3, 3].
 */

#include <string>

#include "nonlinear/approximator.h"

namespace mugi {
namespace nonlinear {

/** Hard-swish partial approximation of SiLU. */
class PartialApproximator final : public NonlinearApproximator {
  public:
    /** @param op must be kSilu; PA is defined for swish-family ops. */
    explicit PartialApproximator(NonlinearOp op);

    NonlinearOp op() const override { return op_; }
    std::string name() const override { return "pa"; }
    float apply(float x) const override;

    /** relu6 + one multiply + one shift. */
    double cycles_per_element() const override { return 3.0; }

  private:
    NonlinearOp op_;
};

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_PARTIAL_H_
