#include "nonlinear/precise_unit.h"

#include <cmath>

namespace mugi {
namespace nonlinear {
namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kInvLn2 = 1.4426950408889634;

}  // namespace

double
precise_exp(double x)
{
    if (std::isnan(x)) {
        return x;
    }
    if (x < -745.0) {
        return 0.0;
    }
    if (x > 709.0) {
        return INFINITY;
    }
    // Range reduction: x = k ln2 + r, |r| <= ln2 / 2.
    const double k = std::nearbyint(x * kInvLn2);
    const double r = x - k * kLn2;
    // Degree-11 Taylor polynomial of exp on the reduced interval; with
    // |r| <= 0.347 the truncation error is ~1e-15 relative.  Evaluated
    // as a Horner MAC chain.
    double p = 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    return std::ldexp(p, static_cast<int>(k));
}

double
precise_reciprocal(double x)
{
    if (x == 0.0) {
        return INFINITY;
    }
    // Seed from the exponent: y0 = 2^-e approximates 1/x within 2x.
    int e = 0;
    std::frexp(x, &e);
    double y = std::ldexp(x < 0 ? -1.0 : 1.0, -e);
    // Newton-Raphson: y <- y (2 - x y).  Each iteration squares the
    // relative error; five iterations from a 2x seed reach ~1e-9.
    for (int i = 0; i < 5; ++i) {
        y = y * (2.0 - x * y);
    }
    return y;
}

double
precise_sigmoid(double x)
{
    if (x >= 0.0) {
        return precise_reciprocal(1.0 + precise_exp(-x));
    }
    const double e = precise_exp(x);
    return e * precise_reciprocal(1.0 + e);
}

float
PreciseUnit::apply(float x) const
{
    const double xd = static_cast<double>(x);
    switch (op_) {
      case NonlinearOp::kExp:
        return static_cast<float>(precise_exp(xd));
      case NonlinearOp::kSilu:
        return static_cast<float>(xd * precise_sigmoid(xd));
      case NonlinearOp::kGelu: {
        // tanh form via the exp unit: tanh(u) = 1 - 2 / (e^{2u} + 1).
        const double u =
            std::sqrt(2.0 / M_PI) * (xd + 0.044715 * xd * xd * xd);
        const double t =
            1.0 - 2.0 * precise_reciprocal(precise_exp(2.0 * u) + 1.0);
        return static_cast<float>(0.5 * xd * (1.0 + t));
      }
    }
    return 0.0f;
}

}  // namespace nonlinear
}  // namespace mugi
