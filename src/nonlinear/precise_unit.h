#ifndef MUGI_NONLINEAR_PRECISE_UNIT_H_
#define MUGI_NONLINEAR_PRECISE_UNIT_H_

/**
 * @file
 * The precise vector-array baseline (VA-FP in Fig. 11): a MAC-based
 * lane that computes exp/SiLU/GELU with real iterative kernels --
 * range-reduced polynomial exp and Newton-Raphson reciprocal -- taking
 * ~44 cycles per element (Sec. 5.2.2, refs [45, 68]).  Unlike
 * make_exact(), this models the actual arithmetic a MAC lane would
 * run, so it carries (tiny) method error of its own.
 */

#include <string>

#include "nonlinear/approximator.h"

namespace mugi {
namespace nonlinear {

/**
 * Range-reduced polynomial exp:  x = k ln2 + r with r in
 * [-ln2/2, ln2/2], exp(x) = 2^k * P(r).  This is the classic
 * multiply-accumulate sequence a precise vector lane executes.
 */
double precise_exp(double x);

/** Newton-Raphson reciprocal (two refinement iterations from a seed). */
double precise_reciprocal(double x);

/** Precise-lane sigmoid built from precise_exp / precise_reciprocal. */
double precise_sigmoid(double x);

/** Iterative-kernel implementation of exp / SiLU / GELU. */
class PreciseUnit final : public NonlinearApproximator {
  public:
    explicit PreciseUnit(NonlinearOp op) : op_(op) {}

    NonlinearOp op() const override { return op_; }
    std::string name() const override { return "precise"; }
    float apply(float x) const override;

    /** The 44-cycle figure quoted by the paper. */
    double cycles_per_element() const override { return 44.0; }

  private:
    NonlinearOp op_;
};

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_PRECISE_UNIT_H_
