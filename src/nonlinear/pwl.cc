#include "nonlinear/pwl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mugi {
namespace nonlinear {

PwlApproximator::PwlApproximator(const PwlConfig& config) : config_(config)
{
    assert(config.segments >= 1);
    if (config_.op == NonlinearOp::kExp) {
        // Softmax inputs are max-subtracted, hence <= 0: domain [sr, 0].
        lo_ = std::min(config_.segment_range, 0.0);
        hi_ = 0.0;
    } else {
        const double r = std::fabs(config_.segment_range);
        lo_ = -r;
        hi_ = r;
    }
    step_ = (hi_ - lo_) / config_.segments;
    slopes_.resize(config_.segments);
    intercepts_.resize(config_.segments);
    for (int s = 0; s < config_.segments; ++s) {
        const double x0 = lo_ + s * step_;
        const double x1 = x0 + step_;
        const double y0 = eval_ref(config_.op, x0);
        const double y1 = eval_ref(config_.op, x1);
        slopes_[s] = (y1 - y0) / (x1 - x0);
        intercepts_[s] = y0 - slopes_[s] * x0;
    }
}

float
PwlApproximator::apply(float x) const
{
    if (std::isnan(x)) {
        return x;
    }
    if (x < lo_) {
        // Below the covered range the hardware flushes to the
        // asymptote: exp -> 0, SiLU/GELU -> 0 (both vanish at -inf).
        // This is the "-100% error / flushing output to 0" behaviour
        // visible in Fig. 8.
        return 0.0f;
    }
    if (x > hi_) {
        if (config_.op == NonlinearOp::kExp) {
            // Cannot happen for max-subtracted softmax; clamp to
            // exp(0) for robustness.
            return 1.0f;
        }
        return x;  // SiLU/GELU upper asymptote is the identity.
    }
    int segment = static_cast<int>((x - lo_) / step_);
    segment = std::clamp(segment, 0, config_.segments - 1);
    return static_cast<float>(slopes_[segment] * x +
                              intercepts_[segment]);
}

}  // namespace nonlinear
}  // namespace mugi
