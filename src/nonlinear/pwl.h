#ifndef MUGI_NONLINEAR_PWL_H_
#define MUGI_NONLINEAR_PWL_H_

/**
 * @file
 * Piecewise-linear (PWL) hardware approximation baseline (Sec. 2.2.2,
 * Sec. 5.2.2).  The curve is split into uniform segments over an input
 * range; each segment stores a slope/intercept pair and a comparator
 * selects the segment for an input.  The evaluated configuration in the
 * paper uses 22 segments.
 */

#include <string>
#include <vector>

#include "nonlinear/approximator.h"

namespace mugi {
namespace nonlinear {

/** Configuration of a PWL approximator. */
struct PwlConfig {
    NonlinearOp op = NonlinearOp::kExp;
    int segments = 22;  ///< Number of linear segments.
    /**
     * Segment range parameter "sr" as swept in Fig. 6: softmax/exp
     * covers [sr, 0] (sr negative since softmax inputs are
     * max-subtracted); SiLU/GELU cover [-sr, sr].
     */
    double segment_range = -20.0;
};

/** PWL interpolation with out-of-range asymptote handling. */
class PwlApproximator final : public NonlinearApproximator {
  public:
    explicit PwlApproximator(const PwlConfig& config);

    NonlinearOp op() const override { return config_.op; }
    std::string name() const override { return "pwl"; }
    float apply(float x) const override;

    /**
     * Segment compare + one MAC; the comparator tree over ~22 segments
     * plus coefficient fetch costs ~5 cycles per element on the
     * vector-array baseline.
     */
    double cycles_per_element() const override { return 5.0; }

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    PwlConfig config_;
    double lo_ = 0.0;
    double hi_ = 0.0;
    double step_ = 0.0;
    std::vector<double> slopes_;
    std::vector<double> intercepts_;
};

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_PWL_H_
