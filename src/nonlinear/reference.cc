#include "nonlinear/reference.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mugi {
namespace nonlinear {
namespace {

/** Differentiate a polynomial given by ascending coefficients. */
std::vector<double>
poly_derivative(const std::vector<double>& p)
{
    if (p.size() <= 1) {
        return {0.0};
    }
    std::vector<double> result(p.size() - 1);
    for (std::size_t i = 1; i < p.size(); ++i) {
        result[i - 1] = p[i] * static_cast<double>(i);
    }
    return result;
}

double
poly_eval(const std::vector<double>& p, double x)
{
    double acc = 0.0;
    for (std::size_t i = p.size(); i-- > 0;) {
        acc = acc * x + p[i];
    }
    return acc;
}

/**
 * Apply the sigmoid derivative operator to a polynomial in s.
 * With s' = s - s^2, D(sum a_i s^i) = sum a_i * i * (s^i - s^{i+1}).
 */
std::vector<double>
sigmoid_derivative_step(const std::vector<double>& p)
{
    std::vector<double> result(p.size() + 1, 0.0);
    for (std::size_t i = 1; i < p.size(); ++i) {
        const double ai = p[i] * static_cast<double>(i);
        result[i] += ai;
        result[i + 1] -= ai;
    }
    return result;
}

/** All sigmoid derivatives D^0..D^n as polynomials in s. */
std::vector<std::vector<double>>
sigmoid_derivative_polys(int n)
{
    std::vector<std::vector<double>> polys;
    polys.push_back({0.0, 1.0});  // D^0 s = s.
    for (int k = 1; k <= n; ++k) {
        polys.push_back(sigmoid_derivative_step(polys.back()));
    }
    return polys;
}

}  // namespace

const char*
op_name(NonlinearOp op)
{
    switch (op) {
      case NonlinearOp::kExp:
        return "exp";
      case NonlinearOp::kSilu:
        return "silu";
      case NonlinearOp::kGelu:
        return "gelu";
    }
    return "?";
}

double
exp_ref(double x)
{
    return std::exp(x);
}

double
sigmoid_ref(double x)
{
    // Branch on sign for numerical stability at large |x|.
    if (x >= 0.0) {
        return 1.0 / (1.0 + std::exp(-x));
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

double
silu_ref(double x)
{
    return x * sigmoid_ref(x);
}

double
gelu_ref(double x)
{
    return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0)));
}

double
gelu_tanh_ref(double x)
{
    const double inner =
        std::sqrt(2.0 / M_PI) * (x + 0.044715 * x * x * x);
    return 0.5 * x * (1.0 + std::tanh(inner));
}

double
gelu_tanh_fast_ref(double x)
{
    // Eq. 5, constants exactly as printed in the paper.
    return 0.5 * x *
           (1.0 + std::tanh(0.7978845608 * x *
                            (1.0 + 0.004715 * x * x)));
}

double
eval_ref(NonlinearOp op, double x)
{
    switch (op) {
      case NonlinearOp::kExp:
        return exp_ref(x);
      case NonlinearOp::kSilu:
        return silu_ref(x);
      case NonlinearOp::kGelu:
        return gelu_ref(x);
    }
    return 0.0;
}

void
softmax_ref(std::span<const float> in, std::span<float> out)
{
    assert(in.size() == out.size());
    if (in.empty()) {
        return;
    }
    const float max = *std::max_element(in.begin(), in.end());
    double sum = 0.0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const double e = std::exp(static_cast<double>(in[i]) - max);
        out[i] = static_cast<float>(e);
        sum += e;
    }
    const double inv = 1.0 / sum;
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<float>(out[i] * inv);
    }
}

std::vector<float>
softmax_ref(std::span<const float> in)
{
    std::vector<float> out(in.size());
    softmax_ref(in, out);
    return out;
}

std::vector<double>
taylor_coefficients(NonlinearOp op, int degree, double center)
{
    assert(degree >= 0);
    std::vector<double> coeffs(degree + 1, 0.0);
    double factorial = 1.0;

    switch (op) {
      case NonlinearOp::kExp: {
        const double ec = std::exp(center);
        for (int k = 0; k <= degree; ++k) {
            if (k > 0) factorial *= k;
            coeffs[k] = ec / factorial;
        }
        break;
      }
      case NonlinearOp::kSilu: {
        // silu = x * s; D^k(x s) = x D^k s + k D^{k-1} s.
        const auto polys = sigmoid_derivative_polys(degree);
        const double s = sigmoid_ref(center);
        for (int k = 0; k <= degree; ++k) {
            if (k > 0) factorial *= k;
            double dk = center * poly_eval(polys[k], s);
            if (k >= 1) {
                dk += k * poly_eval(polys[k - 1], s);
            }
            coeffs[k] = dk / factorial;
        }
        break;
      }
      case NonlinearOp::kGelu: {
        // gelu = 0.5 x (1 + phi), phi = erf(x / sqrt 2).
        // D^j g for g = exp(-x^2/2): q_{j+1} = q_j' - x q_j.
        const int n = degree;
        std::vector<std::vector<double>> q;
        q.push_back({1.0});
        for (int j = 1; j <= n; ++j) {
            std::vector<double> next = poly_derivative(q.back());
            next.resize(std::max(next.size(), q.back().size() + 1), 0.0);
            for (std::size_t i = 0; i < q.back().size(); ++i) {
                next[i + 1] -= q.back()[i];
            }
            q.push_back(next);
        }
        const double g = std::exp(-0.5 * center * center);
        const double scale = std::sqrt(2.0 / M_PI);
        // phi_derivs[j] = D^j phi at center.
        std::vector<double> phi(n + 1);
        phi[0] = std::erf(center / std::sqrt(2.0));
        for (int j = 1; j <= n; ++j) {
            phi[j] = scale * poly_eval(q[j - 1], center) * g;
        }
        for (int k = 0; k <= degree; ++k) {
            if (k > 0) factorial *= k;
            // D^k [0.5 x]: 0.5*center at k=0, 0.5 at k=1, 0 beyond.
            double dk = (k == 0) ? 0.5 * center : (k == 1 ? 0.5 : 0.0);
            // D^k [0.5 x phi] = 0.5 (x phi^{(k)} + k phi^{(k-1)}).
            double xphi = center * phi[k];
            if (k >= 1) {
                xphi += k * phi[k - 1];
            }
            dk += 0.5 * xphi;
            coeffs[k] = dk / factorial;
        }
        break;
      }
    }
    return coeffs;
}

}  // namespace nonlinear
}  // namespace mugi
