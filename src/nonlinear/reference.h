#ifndef MUGI_NONLINEAR_REFERENCE_H_
#define MUGI_NONLINEAR_REFERENCE_H_

/**
 * @file
 * Exact software reference implementations of the nonlinear operations
 * Mugi approximates (Sec. 2.2.1, Eq. 1-5): exp/softmax, SiLU and GELU
 * (both the erf form and the two tanh approximations the paper quotes).
 * These are the ground truth every approximator is measured against.
 */

#include <span>
#include <vector>

namespace mugi {
namespace nonlinear {

/** The nonlinear operations supported by the Mugi array. */
enum class NonlinearOp {
    kExp,   ///< exp(x); the inner operation of softmax (Eq. 1).
    kSilu,  ///< x * sigmoid(x) (Eq. 2).
    kGelu,  ///< 0.5 x (1 + erf(x / sqrt 2)) (Eq. 3).
};

/** Human-readable name of @p op ("exp", "silu", "gelu"). */
const char* op_name(NonlinearOp op);

/** Exact exp. */
double exp_ref(double x);

/** Exact logistic sigmoid. */
double sigmoid_ref(double x);

/** Exact SiLU (Eq. 2). */
double silu_ref(double x);

/** Exact GELU, erf form (Eq. 3). */
double gelu_ref(double x);

/** GELU tanh approximation (Eq. 4). */
double gelu_tanh_ref(double x);

/** GELU fast tanh approximation as printed in the paper (Eq. 5). */
double gelu_tanh_fast_ref(double x);

/** Dispatch to the exact implementation of @p op. */
double eval_ref(NonlinearOp op, double x);

/**
 * Numerically stable softmax (Eq. 1): inputs are shifted by their
 * maximum before exponentiation, matching both the software convention
 * and the hardware dataflow (Sec. 4.1).
 *
 * @param in Logits.
 * @param out Probabilities; must have the same extent as @p in.
 */
void softmax_ref(std::span<const float> in, std::span<float> out);

/** Convenience overload returning a fresh vector. */
std::vector<float> softmax_ref(std::span<const float> in);

/**
 * Taylor coefficients of @p op around @p center, exact derivatives
 * (not finite differences): coefficient k multiplies (x - center)^k.
 *
 * exp uses the closed form; SiLU uses the sigmoid derivative
 * recurrence s' = s - s^2 carried as a polynomial in s; GELU uses the
 * Gaussian derivative recurrence q_{j+1} = q_j' - x q_j carried as a
 * polynomial in x.  This is the coefficient set the Taylor baseline
 * hardware (Sec. 5.2.2) would precompute.
 */
std::vector<double> taylor_coefficients(NonlinearOp op, int degree,
                                        double center);

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_REFERENCE_H_
