#include "nonlinear/taylor.h"

#include <cmath>

namespace mugi {
namespace nonlinear {

TaylorApproximator::TaylorApproximator(const TaylorConfig& config)
    : config_(config),
      coeffs_(taylor_coefficients(config.op, config.degree, config.center))
{
}

float
TaylorApproximator::apply(float x) const
{
    if (std::isnan(x)) {
        return x;
    }
    const double t = static_cast<double>(x) - config_.center;
    double acc = 0.0;
    for (std::size_t i = coeffs_.size(); i-- > 0;) {
        acc = acc * t + coeffs_[i];  // Horner MAC chain.
    }
    if (config_.op == NonlinearOp::kExp) {
        // exp is positive; the truncated series can cross zero far
        // from the center, which would corrupt the softmax sum sign.
        // Hardware clamps the accumulator at zero.
        acc = std::max(acc, 0.0);
    }
    return static_cast<float>(acc);
}

}  // namespace nonlinear
}  // namespace mugi
