#ifndef MUGI_NONLINEAR_TAYLOR_H_
#define MUGI_NONLINEAR_TAYLOR_H_

/**
 * @file
 * Taylor-series hardware approximation baseline (Sec. 2.2.3,
 * Sec. 5.2.2): the coefficients of each term are precomputed and the
 * polynomial is evaluated with Horner's rule as a chain of MACs.  The
 * evaluated configuration uses up to 9 degrees.  Accuracy degrades as
 * inputs drift from the expansion point (Sec. 7.2).
 */

#include <string>
#include <vector>

#include "nonlinear/approximator.h"

namespace mugi {
namespace nonlinear {

/** Configuration of a Taylor approximator. */
struct TaylorConfig {
    NonlinearOp op = NonlinearOp::kExp;
    int degree = 9;        ///< Polynomial degree ("degrees" in Fig. 6).
    double center = -5.0;  ///< Expansion point ("degree center").
};

/** Horner-evaluated Taylor expansion around a fixed center. */
class TaylorApproximator final : public NonlinearApproximator {
  public:
    explicit TaylorApproximator(const TaylorConfig& config);

    NonlinearOp op() const override { return config_.op; }
    std::string name() const override { return "taylor"; }
    float apply(float x) const override;

    /** One MAC per degree with Horner's rule, plus the shift. */
    double
    cycles_per_element() const override
    {
        return static_cast<double>(config_.degree) + 1.0;
    }

    const std::vector<double>& coefficients() const { return coeffs_; }

  private:
    TaylorConfig config_;
    std::vector<double> coeffs_;
};

}  // namespace nonlinear
}  // namespace mugi

#endif  // MUGI_NONLINEAR_TAYLOR_H_
