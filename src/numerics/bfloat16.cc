#include "numerics/bfloat16.h"

#include <cmath>
#include <ostream>

#include "numerics/float_bits.h"

namespace mugi {
namespace numerics {

std::uint16_t
BFloat16::round_to_bits(float value)
{
    const std::uint32_t bits = float_to_bits(value);
    if (std::isnan(value)) {
        // Quiet the NaN and keep the sign; never round a NaN payload
        // down to infinity.
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }
    // Round-to-nearest-even on the low 16 bits.
    const std::uint32_t rounding_bias = 0x7FFFu + ((bits >> 16) & 1u);
    return static_cast<std::uint16_t>((bits + rounding_bias) >> 16);
}

float
BFloat16::to_float() const
{
    return bits_to_float(static_cast<std::uint32_t>(bits_) << 16);
}

bool
BFloat16::is_nan() const
{
    return ((bits_ >> 7) & 0xFF) == 0xFF && (bits_ & 0x7F) != 0;
}

bool
BFloat16::is_inf() const
{
    return ((bits_ >> 7) & 0xFF) == 0xFF && (bits_ & 0x7F) == 0;
}

bool
BFloat16::is_zero() const
{
    return (bits_ & 0x7FFF) == 0;
}

float
bf16_round(float value)
{
    return BFloat16(value).to_float();
}

std::ostream&
operator<<(std::ostream& os, BFloat16 value)
{
    return os << value.to_float();
}

}  // namespace numerics
}  // namespace mugi
