#ifndef MUGI_NUMERICS_BFLOAT16_H_
#define MUGI_NUMERICS_BFLOAT16_H_

/**
 * @file
 * A software bfloat16 (BF16) implementation.
 *
 * BF16 is the activation / query format that Mugi's asymmetric
 * BF16-INT4 GEMM consumes (Sec. 2.3.2, 4.2): 1 sign bit, 8 exponent
 * bits and 7 fraction bits -- the top half of an IEEE binary32.
 * Conversions from binary32 use round-to-nearest-even, matching the
 * behaviour of mainstream ML frameworks.
 */

#include <cstdint>
#include <iosfwd>

namespace mugi {
namespace numerics {

/** Storage-efficient bfloat16 value with float-backed arithmetic. */
class BFloat16 {
  public:
    /** Zero-initialized BF16. */
    constexpr BFloat16() = default;

    /** Round a binary32 value to BF16 (round-to-nearest-even). */
    explicit BFloat16(float value) : bits_(round_to_bits(value)) {}

    /** Construct from a raw 16-bit pattern. */
    static constexpr BFloat16
    from_bits(std::uint16_t bits)
    {
        BFloat16 result;
        result.bits_ = bits;
        return result;
    }

    /** The raw 16-bit pattern. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Widen to binary32 (exact). */
    float to_float() const;

    /** Implicit widening conversion so BF16 mixes with float math. */
    operator float() const { return to_float(); }

    bool is_nan() const;
    bool is_inf() const;
    bool is_zero() const;

    /** Round-to-nearest-even conversion of a binary32 pattern. */
    static std::uint16_t round_to_bits(float value);

    friend bool
    operator==(BFloat16 a, BFloat16 b)
    {
        return a.bits_ == b.bits_;
    }

  private:
    std::uint16_t bits_ = 0;
};

/** Round a float through BF16 precision and widen back. */
float bf16_round(float value);

std::ostream& operator<<(std::ostream& os, BFloat16 value);

}  // namespace numerics
}  // namespace mugi

#endif  // MUGI_NUMERICS_BFLOAT16_H_
