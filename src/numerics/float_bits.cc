#include "numerics/float_bits.h"

#include <cmath>
#include <cstring>

namespace mugi {
namespace numerics {

std::uint32_t
float_to_bits(float value)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
bits_to_float(std::uint32_t bits)
{
    float value = 0.0f;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

FloatFields
decompose(float value)
{
    const std::uint32_t bits = float_to_bits(value);
    FloatFields fields;
    fields.sign = (bits >> 31) != 0;
    const std::uint32_t raw_exp = (bits >> kFloat32FractionBits) & 0xFF;
    fields.fraction = bits & ((1u << kFloat32FractionBits) - 1);
    fields.fraction_bits = kFloat32FractionBits;

    if (raw_exp == 0xFF) {
        if (fields.fraction == 0) {
            fields.is_inf = true;
        } else {
            fields.is_nan = true;
        }
        return fields;
    }
    if (raw_exp == 0) {
        // Zero or denormal: flush to signed zero (see header).
        fields.is_zero = true;
        fields.fraction = 0;
        return fields;
    }
    fields.exponent = static_cast<int>(raw_exp) - kFloat32ExponentBias;
    return fields;
}

float
compose(const FloatFields& fields)
{
    const std::uint32_t sign_bit = fields.sign ? (1u << 31) : 0u;
    if (fields.is_nan) {
        return bits_to_float(sign_bit | 0x7FC00000u);
    }
    if (fields.is_inf) {
        return bits_to_float(sign_bit | 0x7F800000u);
    }
    if (fields.is_zero) {
        return bits_to_float(sign_bit);
    }
    const int raw_exp = fields.exponent + kFloat32ExponentBias;
    if (raw_exp <= 0) {
        return bits_to_float(sign_bit);  // Underflow: flush to zero.
    }
    if (raw_exp >= 0xFF) {
        return bits_to_float(sign_bit | 0x7F800000u);  // Overflow to inf.
    }
    // Renormalize the fraction to the binary32 width.
    std::uint32_t fraction = fields.fraction;
    int width = fields.fraction_bits;
    if (width < kFloat32FractionBits) {
        fraction <<= (kFloat32FractionBits - width);
    } else if (width > kFloat32FractionBits) {
        fraction >>= (width - kFloat32FractionBits);
    }
    return bits_to_float(sign_bit |
                         (static_cast<std::uint32_t>(raw_exp)
                          << kFloat32FractionBits) |
                         (fraction & ((1u << kFloat32FractionBits) - 1)));
}

int
unbiased_exponent(float value)
{
    const FloatFields fields = decompose(value);
    if (fields.is_zero || fields.is_inf || fields.is_nan) {
        return 0;
    }
    return fields.exponent;
}

}  // namespace numerics
}  // namespace mugi
