#ifndef MUGI_NUMERICS_FLOAT_BITS_H_
#define MUGI_NUMERICS_FLOAT_BITS_H_

/**
 * @file
 * Bit-level utilities for IEEE-754 binary32 values.
 *
 * The VLP formulation of the paper (Sec. 3.1) splits a floating-point
 * input into three fields: sign (S), mantissa (M) and exponent (E).
 * Everything downstream of the input-field-split phase operates on these
 * fields, so this header provides the canonical decomposition used by the
 * rest of the code base.
 */

#include <cstdint>

namespace mugi {
namespace numerics {

/** Bias of the IEEE-754 binary32 (and bfloat16) exponent field. */
inline constexpr int kFloat32ExponentBias = 127;

/** Number of explicit fraction bits in binary32. */
inline constexpr int kFloat32FractionBits = 23;

/** Reinterpret a float as its raw bit pattern. */
std::uint32_t float_to_bits(float value);

/** Reinterpret a 32-bit pattern as a float. */
float bits_to_float(std::uint32_t bits);

/**
 * Decomposed view of a finite, normal floating-point value.
 *
 * The value represented is
 *   (-1)^sign * (1 + fraction / 2^fraction_bits) * 2^exponent
 * where @c exponent is the unbiased exponent.  Zeros, denormals and
 * non-finite values are flagged through the classification fields so that
 * the post-processing (PP) block of the architecture can special-case
 * them, exactly as Fig. 9 does with its Zero / INF / NaN multiplexer.
 */
struct FloatFields {
    bool sign = false;        ///< True for negative values.
    int exponent = 0;         ///< Unbiased exponent of a normal value.
    std::uint32_t fraction = 0;  ///< Fraction bits (without hidden one).
    int fraction_bits = kFloat32FractionBits;  ///< Width of @c fraction.
    bool is_zero = false;     ///< True for +/-0 and flushed denormals.
    bool is_inf = false;      ///< True for +/-infinity.
    bool is_nan = false;      ///< True for NaN payloads.
};

/**
 * Split a binary32 value into sign / exponent / fraction fields.
 *
 * Denormal inputs are flushed to (signed) zero; this mirrors the
 * flush-to-zero behaviour of the E-proc exponent clamp ("underflowing to
 * 0", Sec. 4) and keeps the temporal-coding hardware model free of
 * gradual-underflow corner cases.
 */
FloatFields decompose(float value);

/** Reassemble a FloatFields view into a binary32 value. */
float compose(const FloatFields& fields);

/**
 * The unbiased exponent of a finite non-zero value, i.e.
 * floor(log2(|value|)).  Returns 0 for zero/non-finite inputs; check
 * classification with decompose() when that distinction matters.
 */
int unbiased_exponent(float value);

}  // namespace numerics
}  // namespace mugi

#endif  // MUGI_NUMERICS_FLOAT_BITS_H_
