#include "numerics/fp8.h"

#include <cmath>

#include "numerics/float_bits.h"

namespace mugi {
namespace numerics {
namespace {

struct Fp8Layout {
    int exp_bits = 0;
    int man_bits = 0;
    int bias = 0;
    bool has_inf = false;
    float max_finite = 0.0f;
};

Fp8Layout
layout_of(Fp8Format format)
{
    if (format == Fp8Format::kE4M3) {
        // E4M3: exponent field 1111 with mantissa 111 is NaN; the rest
        // of the top binade is finite, so max = 1.75 * 2^8 = 448.
        return {4, 3, 7, false, 448.0f};
    }
    // E5M2 follows IEEE conventions: top binade reserved for inf/NaN.
    return {5, 2, 15, true, 57344.0f};
}

}  // namespace

int
Fp8Codec::mantissa_bits() const
{
    return layout_of(format_).man_bits;
}

float
Fp8Codec::max_finite() const
{
    return layout_of(format_).max_finite;
}

std::uint8_t
Fp8Codec::encode(float value) const
{
    const Fp8Layout layout = layout_of(format_);
    const std::uint8_t sign = std::signbit(value) ? 0x80 : 0x00;

    if (std::isnan(value)) {
        // Canonical NaN: all-ones exponent, all-ones mantissa (E4M3) or
        // quiet-bit mantissa (E5M2).
        const std::uint8_t exp_all =
            static_cast<std::uint8_t>(((1 << layout.exp_bits) - 1)
                                      << layout.man_bits);
        const std::uint8_t man =
            layout.has_inf ? (1u << (layout.man_bits - 1))
                           : ((1u << layout.man_bits) - 1);
        return sign | exp_all | man;
    }

    float magnitude = std::fabs(value);
    if (std::isinf(value) || magnitude > layout.max_finite) {
        if (layout.has_inf && std::isinf(value)) {
            return sign | static_cast<std::uint8_t>(
                              ((1 << layout.exp_bits) - 1)
                              << layout.man_bits);
        }
        // Saturate (standard ML behaviour for E4M3 overflow).
        magnitude = layout.max_finite;
    }
    if (magnitude == 0.0f) {
        return sign;
    }

    int exponent = 0;
    float significand = std::frexp(magnitude, &exponent);
    // frexp returns significand in [0.5, 1); normalize to [1, 2).
    significand *= 2.0f;
    exponent -= 1;

    const int min_normal_exp = 1 - layout.bias;
    std::uint32_t man = 0;
    int biased = 0;
    if (exponent < min_normal_exp) {
        // Denormal range: value = man / 2^man_bits * 2^min_normal_exp.
        const float scaled =
            std::ldexp(magnitude, layout.man_bits - min_normal_exp);
        man = static_cast<std::uint32_t>(std::nearbyint(scaled));
        biased = 0;
        if (man >= (1u << layout.man_bits)) {
            // Rounded up into the normal range.
            man = 0;
            biased = 1;
        }
    } else {
        const float frac = (significand - 1.0f) *
                           static_cast<float>(1 << layout.man_bits);
        man = static_cast<std::uint32_t>(std::nearbyint(frac));
        biased = exponent + layout.bias;
        if (man >= (1u << layout.man_bits)) {
            man = 0;
            ++biased;
        }
        const int max_biased = (1 << layout.exp_bits) - 1;
        const bool top_reserved = layout.has_inf;
        if (biased > max_biased - (top_reserved ? 1 : 0) ||
            (biased == max_biased && !top_reserved &&
             man > (1u << layout.man_bits) - 2u)) {
            // Saturate to max finite.
            biased = max_biased - (top_reserved ? 1 : 0);
            man = (1u << layout.man_bits) - 1u;
            if (!top_reserved) {
                biased = max_biased;
                man = (1u << layout.man_bits) - 2u;
            }
        }
    }
    return sign |
           static_cast<std::uint8_t>(biased << layout.man_bits) |
           static_cast<std::uint8_t>(man);
}

float
Fp8Codec::decode(std::uint8_t bits) const
{
    const Fp8Layout layout = layout_of(format_);
    const bool sign = (bits & 0x80) != 0;
    const std::uint32_t exp_mask = (1u << layout.exp_bits) - 1;
    const std::uint32_t exp = (bits >> layout.man_bits) & exp_mask;
    const std::uint32_t man = bits & ((1u << layout.man_bits) - 1);

    float magnitude = 0.0f;
    if (exp == exp_mask) {
        if (layout.has_inf) {
            if (man == 0) {
                magnitude = INFINITY;
            } else {
                return std::nanf("");
            }
        } else if (man == ((1u << layout.man_bits) - 1)) {
            return std::nanf("");  // E4M3 NaN.
        } else {
            magnitude =
                std::ldexp(1.0f + static_cast<float>(man) /
                                      static_cast<float>(1
                                                         << layout.man_bits),
                           static_cast<int>(exp) - layout.bias);
        }
    } else if (exp == 0) {
        magnitude = std::ldexp(static_cast<float>(man),
                               1 - layout.bias - layout.man_bits);
    } else {
        magnitude =
            std::ldexp(1.0f + static_cast<float>(man) /
                                  static_cast<float>(1 << layout.man_bits),
                       static_cast<int>(exp) - layout.bias);
    }
    return sign ? -magnitude : magnitude;
}

}  // namespace numerics
}  // namespace mugi
