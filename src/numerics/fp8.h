#ifndef MUGI_NUMERICS_FP8_H_
#define MUGI_NUMERICS_FP8_H_

/**
 * @file
 * FP8 codecs (E4M3 and E5M2).
 *
 * FP8 is the symmetric activation/weight format prior VLP work (Carat)
 * was designed for (Sec. 1, 2.1).  Mugi's evaluation keeps Carat as a
 * baseline, so the reproduction carries a faithful FP8 implementation:
 * OCP-style E4M3 (no infinities, +-448 max) and IEEE-style E5M2.
 */

#include <cstdint>

namespace mugi {
namespace numerics {

/** The two standard FP8 interchange formats. */
enum class Fp8Format {
    kE4M3,  ///< 1-4-3, bias 7, max finite 448, NaN only (no inf).
    kE5M2,  ///< 1-5-2, bias 15, max finite 57344, has inf and NaN.
};

/**
 * Encoder/decoder for one FP8 format.
 *
 * Encoding uses round-to-nearest-even with saturation to the maximum
 * finite value (the convention used by ML frameworks for E4M3).
 */
class Fp8Codec {
  public:
    explicit Fp8Codec(Fp8Format format) : format_(format) {}

    /** Encode a binary32 value to the 8-bit pattern. */
    std::uint8_t encode(float value) const;

    /** Decode an 8-bit pattern to binary32 (exact). */
    float decode(std::uint8_t bits) const;

    /** Round a float through FP8 precision. */
    float round_trip(float value) const { return decode(encode(value)); }

    Fp8Format format() const { return format_; }

    /** Number of explicit mantissa bits (3 for E4M3, 2 for E5M2). */
    int mantissa_bits() const;

    /** Largest finite representable magnitude. */
    float max_finite() const;

  private:
    Fp8Format format_;
};

}  // namespace numerics
}  // namespace mugi

#endif  // MUGI_NUMERICS_FP8_H_
