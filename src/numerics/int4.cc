#include "numerics/int4.h"

#include <algorithm>
#include <cstdlib>

namespace mugi {
namespace numerics {

Int4
Int4::from_int(int value)
{
    Int4 result;
    result.sign = value < 0;
    result.magnitude = static_cast<std::uint8_t>(
        std::min(std::abs(value), kInt4MaxMagnitude));
    return result;
}

PackedInt4::PackedInt4(std::size_t count)
    : count_(count), bytes_((count + 1) / 2, 0)
{
}

void
PackedInt4::set(std::size_t index, Int4 value)
{
    const std::size_t byte = index / 2;
    const std::uint8_t nibble = value.encode();
    if (index % 2 == 0) {
        bytes_[byte] = (bytes_[byte] & 0xF0) | nibble;
    } else {
        bytes_[byte] =
            (bytes_[byte] & 0x0F) | static_cast<std::uint8_t>(nibble << 4);
    }
}

Int4
PackedInt4::get(std::size_t index) const
{
    const std::uint8_t byte = bytes_[index / 2];
    const std::uint8_t nibble =
        (index % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
    return Int4::decode(nibble);
}

}  // namespace numerics
}  // namespace mugi
