#ifndef MUGI_NUMERICS_INT4_H_
#define MUGI_NUMERICS_INT4_H_

/**
 * @file
 * INT4 codecs and packing.
 *
 * INT4 is the weight / KV-cache format of Mugi's asymmetric BF16-INT4
 * GEMM (Sec. 2.3.2, 2.3.3, 4.2).  The datapath is sign-magnitude: the
 * 3-bit magnitude drives an 8-cycle temporal sweep (2^3 columns /
 * cycles) and the sign is applied at subscription time by the SC block,
 * which is why the paper fixes the array width to 8.
 */

#include <cstdint>
#include <vector>

namespace mugi {
namespace numerics {

/** Number of magnitude bits in a sign-magnitude INT4. */
inline constexpr int kInt4MagnitudeBits = 3;

/** Largest magnitude representable in sign-magnitude INT4. */
inline constexpr int kInt4MaxMagnitude = 7;

/** A sign-magnitude INT4 value in [-7, 7]. */
struct Int4 {
    bool sign = false;       ///< True for negative values.
    std::uint8_t magnitude = 0;  ///< In [0, 7].

    /** The integer value in [-7, 7]. */
    int value() const
    {
        return sign ? -static_cast<int>(magnitude)
                    : static_cast<int>(magnitude);
    }

    /** Clamp-and-convert an integer to sign-magnitude INT4. */
    static Int4 from_int(int value);

    /** The 4-bit sign-magnitude encoding (sign in bit 3). */
    std::uint8_t encode() const
    {
        return static_cast<std::uint8_t>((sign ? 0x8 : 0x0) |
                                         (magnitude & 0x7));
    }

    /** Decode a 4-bit sign-magnitude pattern. */
    static Int4 decode(std::uint8_t nibble)
    {
        Int4 result;
        result.sign = (nibble & 0x8) != 0;
        result.magnitude = nibble & 0x7;
        return result;
    }

    friend bool
    operator==(const Int4& a, const Int4& b)
    {
        return a.value() == b.value();
    }
};

/**
 * Dense nibble-packed INT4 storage (two values per byte, low nibble
 * first), used by the WOQ / KVQ substrates to model the 4x memory
 * footprint reduction of sub-byte quantization.
 */
class PackedInt4 {
  public:
    PackedInt4() = default;

    /** Create storage for @p count INT4 values, zero-initialized. */
    explicit PackedInt4(std::size_t count);

    std::size_t size() const { return count_; }

    /** Bytes of backing storage (ceil(count / 2)). */
    std::size_t byte_size() const { return bytes_.size(); }

    void set(std::size_t index, Int4 value);
    Int4 get(std::size_t index) const;

  private:
    std::size_t count_ = 0;
    std::vector<std::uint8_t> bytes_;
};

}  // namespace numerics
}  // namespace mugi

#endif  // MUGI_NUMERICS_INT4_H_
