#include "numerics/rounding.h"

#include <cassert>

namespace mugi {
namespace numerics {

float
RoundedValue::to_float() const
{
    FloatFields fields;
    fields.sign = sign;
    fields.exponent = exponent;
    fields.fraction = mantissa;
    fields.fraction_bits = mantissa_bits;
    fields.is_zero = is_zero;
    fields.is_inf = is_inf;
    fields.is_nan = is_nan;
    return compose(fields);
}

RoundedValue
round_mantissa(float value, int mantissa_bits)
{
    assert(mantissa_bits >= 0 && mantissa_bits <= kFloat32FractionBits);
    const FloatFields fields = decompose(value);

    RoundedValue result;
    result.sign = fields.sign;
    result.mantissa_bits = mantissa_bits;
    result.is_zero = fields.is_zero;
    result.is_inf = fields.is_inf;
    result.is_nan = fields.is_nan;
    if (fields.is_zero || fields.is_inf || fields.is_nan) {
        return result;
    }

    result.exponent = fields.exponent;
    const int shift = kFloat32FractionBits - mantissa_bits;
    if (shift == 0) {
        result.mantissa = fields.fraction;
        return result;
    }

    const std::uint32_t kept = fields.fraction >> shift;
    const std::uint32_t half = 1u << (shift - 1);
    const std::uint32_t rem = fields.fraction & ((1u << shift) - 1);
    std::uint32_t rounded = kept;
    if (rem > half || (rem == half && (kept & 1u) != 0)) {
        ++rounded;  // Round to nearest, ties to even.
    }
    if (rounded >= (1u << mantissa_bits)) {
        // 1.111... rounded up to 10.000...: carry into the exponent.
        rounded = 0;
        ++result.exponent;
    }
    result.mantissa = rounded;
    return result;
}

}  // namespace numerics
}  // namespace mugi
