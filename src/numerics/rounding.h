#ifndef MUGI_NUMERICS_ROUNDING_H_
#define MUGI_NUMERICS_ROUNDING_H_

/**
 * @file
 * Mantissa rounding for VLP input approximation.
 *
 * Sec. 3.2: "in the input field split phase, we round the input
 * mantissa to fewer bits".  Popular formats carry 7+ mantissa bits; the
 * VLP array wants 3 so that the temporal sweep is 2^3 = 8 cycles.  The
 * functions here round a value's significand to an arbitrary number of
 * bits with round-to-nearest-even, handling the carry into the exponent
 * when 1.111... rounds up to 10.000....
 */

#include "numerics/float_bits.h"

namespace mugi {
namespace numerics {

/**
 * A value whose significand has been rounded to @c mantissa_bits bits.
 *
 * Represents (-1)^sign * (1 + mantissa / 2^mantissa_bits) * 2^exponent.
 * This is the exact domain of the VLP LUT: @c mantissa indexes the LUT
 * row and @c exponent selects the element inside the sliding window.
 */
struct RoundedValue {
    bool sign = false;
    int exponent = 0;
    std::uint32_t mantissa = 0;  ///< In [0, 2^mantissa_bits).
    int mantissa_bits = 0;
    bool is_zero = false;
    bool is_inf = false;
    bool is_nan = false;

    /** Widen back to binary32. */
    float to_float() const;
};

/**
 * Round @p value 's significand to @p mantissa_bits bits
 * (round-to-nearest-even).
 *
 * @param value Input value (interpreted at binary32 precision; round
 *        through BF16 first if modelling a BF16 input path).
 * @param mantissa_bits Target significand width; must be in [0, 23].
 */
RoundedValue round_mantissa(float value, int mantissa_bits);

}  // namespace numerics
}  // namespace mugi

#endif  // MUGI_NUMERICS_ROUNDING_H_
