#include "quant/block_allocator.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

#include "support/audit.h"
#include "support/fault.h"

namespace mugi {
namespace quant {

BlockPool::BlockPool(units::Bytes capacity_bytes,
                     units::Tokens block_tokens)
    : capacity_bytes_(capacity_bytes), block_tokens_(block_tokens)
{
    assert(block_tokens_.value() > 0);
}

units::Bytes
BlockPool::bytes_in_use() const
{
    support::MutexLock lock(mutex_);
    return units::Bytes(block_bytes_in_use_ + reserved_bytes_);
}

units::Bytes
BlockPool::peak_bytes_in_use() const
{
    support::MutexLock lock(mutex_);
    return units::Bytes(peak_bytes_in_use_);
}

units::Blocks
BlockPool::blocks_in_use() const
{
    support::MutexLock lock(mutex_);
    return units::Blocks(blocks_in_use_);
}

units::Blocks
BlockPool::shared_blocks() const
{
    support::MutexLock lock(mutex_);
    return units::Blocks(shared_blocks_);
}

units::Bytes
BlockPool::reserved_bytes() const
{
    support::MutexLock lock(mutex_);
    return units::Bytes(reserved_bytes_);
}

bool
BlockPool::fits_locked(std::size_t bytes) const
{
    return capacity_bytes_.value() == 0 ||
           block_bytes_in_use_ + reserved_bytes_ + bytes <=
               capacity_bytes_.value();
}

bool
BlockPool::fits(units::Bytes bytes) const
{
    support::MutexLock lock(mutex_);
    return fits_locked(bytes.value());
}

double
BlockPool::utilization() const
{
    if (capacity_bytes_.value() == 0) {
        return 0.0;
    }
    return static_cast<double>(bytes_in_use().value()) /
           static_cast<double>(capacity_bytes_.value());
}

double
BlockPool::peak_utilization() const
{
    if (capacity_bytes_.value() == 0) {
        return 0.0;
    }
    return static_cast<double>(peak_bytes_in_use().value()) /
           static_cast<double>(capacity_bytes_.value());
}

void
BlockPool::note_usage_locked()
{
    peak_bytes_in_use_ = std::max(
        peak_bytes_in_use_, block_bytes_in_use_ + reserved_bytes_);
}

BlockId
BlockPool::allocate_locked(std::size_t bytes)
{
    assert(bytes > 0);
    BlockId id = kInvalidBlock;
    const auto it = free_lists_.find(bytes);
    if (it != free_lists_.end() && !it->second.empty()) {
        id = it->second.back();
        it->second.pop_back();
        // Zero-fill the reused slot: the INT4 KV append path ORs
        // nibbles into block bytes and relies on a fresh block
        // reading as all zeros (pinned by block_allocator_test).
        std::fill(slots_[id.value()].storage.begin(),
                  slots_[id.value()].storage.end(), std::byte{0});
    } else {
        id = BlockId(static_cast<BlockId::Rep>(slots_.size()));
        assert(id != kInvalidBlock);
        slots_.push_back(
            Slot{std::vector<std::byte>(bytes), false, 0});
    }
    slots_[id.value()].in_use = true;
    slots_[id.value()].refs = 1;
    block_bytes_in_use_ += bytes;
    ++blocks_in_use_;
    note_usage_locked();
    return id;
}

BlockId
BlockPool::allocate(units::Bytes bytes)
{
    support::MutexLock lock(mutex_);
    return allocate_locked(bytes.value());
}

BlockId
BlockPool::try_allocate(units::Bytes bytes)
{
    // Check and commit under one lock: two concurrent try_allocate
    // calls must not both pass the capacity check.
    if (MUGI_FAULT_POINT("block_pool.allocate")) {
        return kInvalidBlock;  // Simulated pool exhaustion.
    }
    support::MutexLock lock(mutex_);
    if (!fits_locked(bytes.value())) {
        return kInvalidBlock;
    }
    return allocate_locked(bytes.value());
}

void
BlockPool::retain(BlockId id)
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    Slot& slot = slots_[id.value()];
    ++slot.refs;
    if (slot.refs == 2) {
        ++shared_blocks_;
    }
}

std::size_t
BlockPool::ref_count(BlockId id) const
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    return slots_[id.value()].refs;
}

void
BlockPool::release(BlockId id)
{
    // Chaos-bench negative gate only: dropping a release corrupts the
    // refcount accounting, which the leak/invariant gates MUST catch.
    if (MUGI_FAULT_POINT("block_pool.leak_release")) {
        return;
    }
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    Slot& slot = slots_[id.value()];
    assert(slot.refs > 0);
    --slot.refs;
    if (slot.refs == 1) {
        --shared_blocks_;
    }
    if (slot.refs > 0) {
        return;  // Other holders keep the block alive.
    }
    slot.in_use = false;
    block_bytes_in_use_ -= slot.storage.size();
    --blocks_in_use_;
    free_lists_[slot.storage.size()].push_back(id);
}

std::byte*
BlockPool::data(BlockId id)
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    return slots_[id.value()].storage.data();
}

const std::byte*
BlockPool::data(BlockId id) const
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    return slots_[id.value()].storage.data();
}

units::Bytes
BlockPool::block_bytes(BlockId id) const
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    return units::Bytes(slots_[id.value()].storage.size());
}

void
BlockPool::reserve(units::Bytes bytes)
{
    support::MutexLock lock(mutex_);
    reserved_bytes_ += bytes.value();
    note_usage_locked();
}

bool
BlockPool::try_reserve(units::Bytes bytes)
{
    if (MUGI_FAULT_POINT("block_pool.allocate")) {
        return false;  // Simulated pool exhaustion.
    }
    support::MutexLock lock(mutex_);
    if (!fits_locked(bytes.value())) {
        return false;
    }
    reserved_bytes_ += bytes.value();
    note_usage_locked();
    return true;
}

void
BlockPool::unreserve(units::Bytes bytes)
{
    support::MutexLock lock(mutex_);
    assert(bytes.value() <= reserved_bytes_);
    reserved_bytes_ -= bytes.value();
}

std::size_t
BlockPool::ref_total() const
{
    support::MutexLock lock(mutex_);
    std::size_t total = 0;
    for (const Slot& slot : slots_) {
        if (slot.in_use) {
            total += slot.refs;
        }
    }
    return total;
}

std::string
BlockPool::check_invariants() const
{
    support::MutexLock lock(mutex_);
    std::ostringstream out;
    // Recompute every counter from the slot table alone; any drift
    // between the two views is the refcount/accounting corruption
    // this auditor exists to catch.
    std::size_t live = 0, live_bytes = 0, shared = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot& slot = slots_[i];
        if (!slot.in_use) {
            continue;
        }
        ++live;
        live_bytes += slot.storage.size();
        if (slot.refs == 0) {
            out << "live block " << i << " has zero refs";
            return out.str();
        }
        if (slot.refs >= 2) {
            ++shared;
        }
    }
    if (live != blocks_in_use_) {
        out << "blocks_in_use " << blocks_in_use_ << " != " << live
            << " live slots";
        return out.str();
    }
    if (live_bytes != block_bytes_in_use_) {
        out << "block_bytes_in_use " << block_bytes_in_use_
            << " != " << live_bytes << " recomputed live bytes";
        return out.str();
    }
    if (shared != shared_blocks_) {
        out << "shared_blocks " << shared_blocks_ << " != " << shared
            << " slots with refs >= 2";
        return out.str();
    }
    // Free lists partition exactly the non-live slots: every entry
    // names a released slot of the list's byte size, no slot appears
    // twice, and nothing released is missing.
    std::unordered_set<BlockId> seen;
    for (const auto& [bytes, ids] : free_lists_) {
        for (const BlockId id : ids) {
            if (id.value() >= slots_.size()) {
                out << "free list " << bytes
                    << " holds out-of-range id " << id;
                return out.str();
            }
            if (slots_[id.value()].in_use) {
                out << "free list " << bytes << " holds live block "
                    << id;
                return out.str();
            }
            if (slots_[id.value()].storage.size() != bytes) {
                out << "free list " << bytes << " holds block " << id
                    << " of " << slots_[id.value()].storage.size()
                    << " bytes";
                return out.str();
            }
            if (!seen.insert(id).second) {
                out << "block " << id
                    << " appears twice across free lists";
                return out.str();
            }
        }
    }
    if (seen.size() != slots_.size() - live) {
        out << "free lists hold " << seen.size() << " blocks, but "
            << (slots_.size() - live) << " slots are released";
        return out.str();
    }
    if (peak_bytes_in_use_ < block_bytes_in_use_ + reserved_bytes_) {
        out << "peak_bytes_in_use " << peak_bytes_in_use_
            << " below current footprint "
            << (block_bytes_in_use_ + reserved_bytes_);
        return out.str();
    }
    return {};
}

void
BlockPool::audit(const char* where) const
{
    support::audit_or_abort(where, check_invariants());
}

void
BlockPool::corrupt_refs_for_test(BlockId id, std::uint32_t refs)
{
    support::MutexLock lock(mutex_);
    assert(id.value() < slots_.size() && slots_[id.value()].in_use);
    // Deliberately skip the shared_blocks_ bookkeeping: the point is
    // to manufacture drift check_invariants() must report.
    slots_[id.value()].refs = refs;
}

}  // namespace quant
}  // namespace mugi
