#include "quant/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace mugi {
namespace quant {

BlockPool::BlockPool(std::size_t capacity_bytes,
                     std::size_t block_tokens)
    : capacity_bytes_(capacity_bytes), block_tokens_(block_tokens)
{
    assert(block_tokens_ > 0);
}

std::size_t
BlockPool::bytes_in_use() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return block_bytes_in_use_ + reserved_bytes_;
}

std::size_t
BlockPool::peak_bytes_in_use() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_bytes_in_use_;
}

std::size_t
BlockPool::blocks_in_use() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return blocks_in_use_;
}

std::size_t
BlockPool::shared_blocks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shared_blocks_;
}

std::size_t
BlockPool::reserved_bytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reserved_bytes_;
}

bool
BlockPool::fits_locked(std::size_t bytes) const
{
    return capacity_bytes_ == 0 ||
           block_bytes_in_use_ + reserved_bytes_ + bytes <=
               capacity_bytes_;
}

bool
BlockPool::fits(std::size_t bytes) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fits_locked(bytes);
}

double
BlockPool::utilization() const
{
    if (capacity_bytes_ == 0) {
        return 0.0;
    }
    return static_cast<double>(bytes_in_use()) /
           static_cast<double>(capacity_bytes_);
}

double
BlockPool::peak_utilization() const
{
    if (capacity_bytes_ == 0) {
        return 0.0;
    }
    return static_cast<double>(peak_bytes_in_use()) /
           static_cast<double>(capacity_bytes_);
}

void
BlockPool::note_usage_locked()
{
    peak_bytes_in_use_ = std::max(
        peak_bytes_in_use_, block_bytes_in_use_ + reserved_bytes_);
}

BlockId
BlockPool::allocate_locked(std::size_t bytes)
{
    assert(bytes > 0);
    BlockId id;
    const auto it = free_lists_.find(bytes);
    if (it != free_lists_.end() && !it->second.empty()) {
        id = it->second.back();
        it->second.pop_back();
        // Zero-fill the reused slot: the INT4 KV append path ORs
        // nibbles into block bytes and relies on a fresh block
        // reading as all zeros (pinned by block_allocator_test).
        std::fill(slots_[id].storage.begin(),
                  slots_[id].storage.end(), std::byte{0});
    } else {
        id = static_cast<BlockId>(slots_.size());
        assert(id != kInvalidBlock);
        slots_.push_back(
            Slot{std::vector<std::byte>(bytes), false, 0});
    }
    slots_[id].in_use = true;
    slots_[id].refs = 1;
    block_bytes_in_use_ += bytes;
    ++blocks_in_use_;
    note_usage_locked();
    return id;
}

BlockId
BlockPool::allocate(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return allocate_locked(bytes);
}

BlockId
BlockPool::try_allocate(std::size_t bytes)
{
    // Check and commit under one lock: two concurrent try_allocate
    // calls must not both pass the capacity check.
    std::lock_guard<std::mutex> lock(mutex_);
    if (!fits_locked(bytes)) {
        return kInvalidBlock;
    }
    return allocate_locked(bytes);
}

void
BlockPool::retain(BlockId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    Slot& slot = slots_[id];
    ++slot.refs;
    if (slot.refs == 2) {
        ++shared_blocks_;
    }
}

std::size_t
BlockPool::ref_count(BlockId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    return slots_[id].refs;
}

void
BlockPool::release(BlockId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    Slot& slot = slots_[id];
    assert(slot.refs > 0);
    --slot.refs;
    if (slot.refs == 1) {
        --shared_blocks_;
    }
    if (slot.refs > 0) {
        return;  // Other holders keep the block alive.
    }
    slot.in_use = false;
    block_bytes_in_use_ -= slot.storage.size();
    --blocks_in_use_;
    free_lists_[slot.storage.size()].push_back(id);
}

std::byte*
BlockPool::data(BlockId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    return slots_[id].storage.data();
}

const std::byte*
BlockPool::data(BlockId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    return slots_[id].storage.data();
}

std::size_t
BlockPool::block_bytes(BlockId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(id < slots_.size() && slots_[id].in_use);
    return slots_[id].storage.size();
}

void
BlockPool::reserve(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    reserved_bytes_ += bytes;
    note_usage_locked();
}

bool
BlockPool::try_reserve(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!fits_locked(bytes)) {
        return false;
    }
    reserved_bytes_ += bytes;
    note_usage_locked();
    return true;
}

void
BlockPool::unreserve(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(bytes <= reserved_bytes_);
    reserved_bytes_ -= bytes;
}

}  // namespace quant
}  // namespace mugi
