#ifndef MUGI_QUANT_BLOCK_ALLOCATOR_H_
#define MUGI_QUANT_BLOCK_ALLOCATOR_H_

/**
 * @file
 * Fixed-size block pool backing the paged KV cache.
 *
 * Production serving stacks (vLLM / ScaleLLM block managers) replaced
 * per-request contiguous KV storage with fixed-size blocks drawn from
 * one shared pool, so admission can reserve at block granularity
 * instead of projecting every request to its full generation length.
 * This is that pool for the modeled SRAM/HBM budget: every KvCache of
 * a serving engine draws storage-backed blocks from it, and the
 * scheduler mirrors analytic (workload-model-only) sessions through
 * byte reservations, so `bytes_in_use()` is the exact device
 * footprint either way -- packed INT4 nibbles + BF16 scales for KVQ
 * blocks, raw floats for the baseline precision.
 *
 * Quantities are unit-typed (support/units.h): capacities and
 * footprints are units::Bytes, block geometry is units::Tokens,
 * block counts are units::Blocks and handles are the opaque
 * units::BlockId -- so a caller cannot pass a token count where the
 * byte budget goes (the PR 4 watermark bug class) without a compile
 * error.  Internals unwrap with .value() at the arithmetic leaves.
 *
 * Capacity is *advisory*: `allocate`/`reserve` always succeed (a
 * scheduler that admitted an oversized request alone must still be
 * able to run it), while `try_allocate`/`try_reserve`/`fits` enforce
 * the budget.  Policy -- admission watermarks, preemption under
 * pressure -- lives in serve::Scheduler; the pool is accounting plus
 * storage.  Released blocks go on per-size free lists and are reused
 * (most recently freed first) before fresh slots are created; a
 * reused block's storage is zero-filled on allocation, a contract the
 * INT4 KV append path (which ORs nibbles into block bytes) depends
 * on.
 *
 * Blocks are *refcounted* for cross-request prefix sharing
 * (quant::KvCache::share_prefix_from): allocate() hands out a block
 * with one reference, retain() adds one per additional sharer, and
 * release() only frees the slot when the last reference drops.  A
 * shared block's bytes are physical and therefore counted exactly
 * once in bytes_in_use() no matter how many caches reference it.
 *
 * Thread-safety: internally synchronized -- all member functions are
 * locked on one support::Mutex, matching serve::Engine's
 * concurrent-const contract.  The lock discipline is
 * capability-checked: every mutable field is MUGI_GUARDED_BY(mutex_)
 * and the _locked helpers MUGI_REQUIRES(mutex_), so a Clang build
 * with -DMUGI_THREAD_SAFETY_ANALYSIS=ON proves no unlocked access
 * compiles (tests/concurrency/block_pool_stress_test.cc exercises
 * the same contract under TSan).
 */

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/mutex.h"
#include "support/thread_annotations.h"
#include "support/units.h"

namespace mugi {
namespace quant {

/** Handle to one pool block (index into the pool's slot table). */
using BlockId = units::BlockId;

/** Returned by try_allocate when the block would exceed capacity. */
inline constexpr BlockId kInvalidBlock =
    BlockId(std::numeric_limits<BlockId::Rep>::max());

/** A shared pool of fixed-token-count KV blocks. */
class BlockPool {
  public:
    /** Positions per block when callers don't choose one. */
    static constexpr units::Tokens kDefaultBlockTokens{16};

    /**
     * @param capacity_bytes Advisory budget; 0 = unbounded.
     * @param block_tokens KV positions each block covers.  Byte sizes
     *        still vary per (geometry, precision); the pool keys its
     *        free lists by block byte size.
     */
    explicit BlockPool(units::Bytes capacity_bytes = units::Bytes(0),
                       units::Tokens block_tokens = kDefaultBlockTokens);

    BlockPool(const BlockPool&) = delete;
    BlockPool& operator=(const BlockPool&) = delete;

    units::Tokens block_tokens() const { return block_tokens_; }
    units::Bytes capacity_bytes() const { return capacity_bytes_; }

    /** Storage-backed block bytes + analytic reservations. */
    units::Bytes bytes_in_use() const;
    /** Largest bytes_in_use ever observed. */
    units::Bytes peak_bytes_in_use() const;
    /** Storage-backed blocks currently allocated. */
    units::Blocks blocks_in_use() const;
    /** Live blocks currently referenced by more than one holder. */
    units::Blocks shared_blocks() const;
    /** Bytes held by analytic reservations (no storage). */
    units::Bytes reserved_bytes() const;

    /** Would @p bytes more stay within capacity?  Unbounded: yes. */
    [[nodiscard]] bool fits(units::Bytes bytes) const;
    /** bytes_in_use / capacity (0 when unbounded). */
    double utilization() const;
    /** peak_bytes_in_use / capacity (0 when unbounded). */
    double peak_utilization() const;

    /**
     * Allocate a zeroed block of @p bytes.  Always succeeds --
     * capacity may be overcommitted; callers wanting enforcement use
     * try_allocate or check fits() first.  Discarding the id leaks
     * the block until pool destruction, hence [[nodiscard]].
     */
    [[nodiscard]] BlockId allocate(units::Bytes bytes);

    /** allocate(), or kInvalidBlock when it would exceed capacity. */
    [[nodiscard]] BlockId try_allocate(units::Bytes bytes);

    /**
     * Add one reference to a live block -- prefix sharing: a second
     * cache mapping the block into its table retains it so neither
     * owner's release frees the storage under the other.
     */
    void retain(BlockId id);

    /** References currently held on a live block (>= 1). */
    std::size_t ref_count(BlockId id) const;

    /**
     * Drop one reference; the slot is freed (and reused for same-size
     * allocates) only when the last reference drops.
     */
    void release(BlockId id);

    /** Backing storage of a live block. */
    std::byte* data(BlockId id);
    const std::byte* data(BlockId id) const;
    units::Bytes block_bytes(BlockId id) const;

    /**
     * Account @p bytes without storage -- how the scheduler mirrors
     * analytic sessions' modeled caches.  Always succeeds (advisory
     * capacity, as for allocate).
     */
    void reserve(units::Bytes bytes);
    /** reserve(), or false when it would exceed capacity. */
    [[nodiscard]] bool try_reserve(units::Bytes bytes);
    /** Undo reserve(); @p bytes must not exceed reserved_bytes(). */
    void unreserve(units::Bytes bytes);

    /** Sum of refs over every live block (one per referencing cache). */
    std::size_t ref_total() const;

    // ---- Invariant auditing (support/audit.h). ----

    /**
     * Recompute the pool's accounting from scratch -- live-slot bytes
     * vs block_bytes_in_use, live-slot count vs blocks_in_use,
     * refs >= 2 count vs shared_blocks, free-list entries exactly
     * covering the non-live slots with matching byte-size keys and no
     * duplicates, peak >= current -- and return a description of the
     * first violation found.  Empty string: consistent.  Available in
     * every build type (error-return form of the auditor).
     */
    [[nodiscard]] std::string check_invariants() const;

    /** audit_failure() iff check_invariants() reports a violation. */
    void audit(const char* where) const;

    /**
     * Test-only hook: overwrite a live block's refcount *without*
     * touching the shared/accounting counters, manufacturing exactly
     * the drift check_invariants() exists to catch
     * (tests/concurrency/invariant_auditor_test.cc).  Never call
     * outside tests.
     */
    void corrupt_refs_for_test(BlockId id, std::uint32_t refs);

  private:
    struct Slot {
        std::vector<std::byte> storage;
        bool in_use = false;
        /** References held on the block; meaningful while in_use. */
        std::uint32_t refs = 0;
    };

    bool fits_locked(std::size_t bytes) const MUGI_REQUIRES(mutex_);
    BlockId allocate_locked(std::size_t bytes) MUGI_REQUIRES(mutex_);
    void note_usage_locked() MUGI_REQUIRES(mutex_);

    const units::Bytes capacity_bytes_;
    const units::Tokens block_tokens_;

    mutable support::Mutex mutex_;
    std::vector<Slot> slots_ MUGI_GUARDED_BY(mutex_);
    /** Released slot ids per block byte size, most recent last. */
    std::unordered_map<std::size_t, std::vector<BlockId>> free_lists_
        MUGI_GUARDED_BY(mutex_);
    std::size_t block_bytes_in_use_ MUGI_GUARDED_BY(mutex_) = 0;
    std::size_t reserved_bytes_ MUGI_GUARDED_BY(mutex_) = 0;
    std::size_t blocks_in_use_ MUGI_GUARDED_BY(mutex_) = 0;
    std::size_t shared_blocks_ MUGI_GUARDED_BY(mutex_) = 0;
    std::size_t peak_bytes_in_use_ MUGI_GUARDED_BY(mutex_) = 0;
};

}  // namespace quant
}  // namespace mugi

#endif  // MUGI_QUANT_BLOCK_ALLOCATOR_H_
