#include "quant/group_quant.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"

namespace mugi {
namespace quant {

std::size_t
QuantizedMatrix::byte_size() const
{
    const std::size_t nibbles = values.rows() * values.cols();
    return (nibbles + 1) / 2 + scales.rows() * scales.cols() * 2;
}

QuantizedMatrix
quantize_int4(const support::MatrixF& weights, std::size_t group_size)
{
    assert(group_size >= 1);
    QuantizedMatrix q;
    q.group_size = group_size;
    const std::size_t groups =
        (weights.cols() + group_size - 1) / group_size;
    q.values = support::Matrix<numerics::Int4>(weights.rows(),
                                               weights.cols());
    q.scales = support::MatrixF(weights.rows(), groups, 0.0f);

    for (std::size_t r = 0; r < weights.rows(); ++r) {
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t begin = g * group_size;
            const std::size_t end =
                std::min(begin + group_size, weights.cols());
            float max_abs = 0.0f;
            for (std::size_t c = begin; c < end; ++c) {
                max_abs = std::max(max_abs,
                                   std::fabs(weights.at(r, c)));
            }
            const float scale = numerics::bf16_round(
                max_abs / static_cast<float>(numerics::kInt4MaxMagnitude));
            q.scales.at(r, g) = scale;
            for (std::size_t c = begin; c < end; ++c) {
                int code = 0;
                if (scale > 0.0f) {
                    code = static_cast<int>(
                        std::nearbyint(weights.at(r, c) / scale));
                }
                q.values.at(r, c) = numerics::Int4::from_int(code);
            }
        }
    }
    return q;
}

support::MatrixF
dequantize(const QuantizedMatrix& q)
{
    support::MatrixF out(q.rows(), q.cols());
    for (std::size_t r = 0; r < q.rows(); ++r) {
        for (std::size_t c = 0; c < q.cols(); ++c) {
            out.at(r, c) = q.dequantize_at(r, c);
        }
    }
    return out;
}

float
max_abs_error_bound(const QuantizedMatrix& q)
{
    float bound = 0.0f;
    for (const float s : q.scales.data()) {
        bound = std::max(bound, s / 2.0f);
    }
    // BF16 rounding of the scale adds up to 2^-8 relative on top of
    // the half-step quantization error.
    return bound * (1.0f + 1.0f / 128.0f) * 7.0f / 6.9f;
}

double
rms_error(const support::MatrixF& original, const QuantizedMatrix& q)
{
    assert(original.rows() == q.rows() && original.cols() == q.cols());
    double sum = 0.0;
    for (std::size_t r = 0; r < q.rows(); ++r) {
        for (std::size_t c = 0; c < q.cols(); ++c) {
            const double d = original.at(r, c) - q.dequantize_at(r, c);
            sum += d * d;
        }
    }
    return std::sqrt(sum / static_cast<double>(original.size()));
}

}  // namespace quant
}  // namespace mugi
