#ifndef MUGI_QUANT_GROUP_QUANT_H_
#define MUGI_QUANT_GROUP_QUANT_H_

/**
 * @file
 * Weight-only quantization (WOQ) substrate (Sec. 2.3.2): BF16-INT4
 * group quantization in the GPTQ/AWQ style.  Weights are quantized to
 * sign-magnitude INT4 with one BF16 scale per group of consecutive
 * elements along the reduction dimension; activations stay BF16.
 * Dequantization after GEMM is performed by Mugi's vector array
 * (Sec. 4.2).
 *
 * Thread-safety: immutable after construction -- quantize_int4
 * returns a value type nothing mutates afterwards, so a
 * QuantizedMatrix (e.g. inside a shared serve::PreparedWeights) may
 * be read from any number of threads concurrently.
 */

#include <cstddef>

#include "numerics/int4.h"
#include "support/matrix.h"

namespace mugi {
namespace quant {

/** An INT4 group-quantized matrix plus its per-group scales. */
struct QuantizedMatrix {
    /** Sign-magnitude INT4 codes, same logical shape as the source. */
    support::Matrix<numerics::Int4> values;
    /**
     * BF16 scales, one per (row, group): scales(r, g) dequantizes
     * values(r, g*group_size .. (g+1)*group_size-1).
     */
    support::MatrixF scales;
    std::size_t group_size = 0;

    std::size_t rows() const { return values.rows(); }
    std::size_t cols() const { return values.cols(); }

    /** Dequantize a single element. */
    float
    dequantize_at(std::size_t r, std::size_t c) const
    {
        return static_cast<float>(values.at(r, c).value()) *
               scales.at(r, c / group_size);
    }

    /**
     * Storage footprint in bytes: packed nibbles plus BF16 scales.
     * This is the 4x weight-memory compression WOQ exists for.
     */
    std::size_t byte_size() const;
};

/**
 * Symmetric group quantization of @p weights to INT4.
 *
 * Each group's scale is max|w| / 7, so the code range [-7, 7] covers
 * the group exactly.  @p group_size must divide nothing in particular:
 * the final group of a row may be short.
 */
QuantizedMatrix quantize_int4(const support::MatrixF& weights,
                              std::size_t group_size);

/** Full dequantization back to a float matrix. */
support::MatrixF dequantize(const QuantizedMatrix& q);

/** Worst-case absolute error of the quantization: scale / 2 per group. */
float max_abs_error_bound(const QuantizedMatrix& q);

/** Root-mean-square quantization error against the original. */
double rms_error(const support::MatrixF& original,
                 const QuantizedMatrix& q);

}  // namespace quant
}  // namespace mugi

#endif  // MUGI_QUANT_GROUP_QUANT_H_
