#include "quant/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "numerics/bfloat16.h"

namespace mugi {
namespace quant {
namespace {

/** BF16 bit pattern stored little-endian in two block bytes. */
void
store_bf16(std::byte* dst, float value)
{
    const std::uint16_t bits = numerics::BFloat16::round_to_bits(value);
    dst[0] = static_cast<std::byte>(bits & 0xFF);
    dst[1] = static_cast<std::byte>(bits >> 8);
}

float
load_bf16(const std::byte* src)
{
    const std::uint16_t bits = static_cast<std::uint16_t>(
        static_cast<unsigned>(src[0]) |
        (static_cast<unsigned>(src[1]) << 8));
    return numerics::BFloat16::from_bits(bits).to_float();
}

}  // namespace

KvCache::KvCache(std::size_t num_heads, std::size_t head_dim,
                 KvPrecision precision, BlockPool* pool)
    : num_heads_(num_heads), head_dim_(head_dim), precision_(precision)
{
    if (pool == nullptr) {
        owned_pool_ = std::make_unique<BlockPool>(0);
        pool = owned_pool_.get();
    }
    pool_ = pool;
    block_tokens_ = pool_->block_tokens();
    bytes_per_position_ =
        bytes_per_position(num_heads_, head_dim_, precision_);
    block_bytes_ = block_tokens_ * bytes_per_position_;
}

KvCache::~KvCache()
{
    release_blocks();
}

KvCache::KvCache(KvCache&& other) noexcept
    : num_heads_(other.num_heads_), head_dim_(other.head_dim_),
      precision_(other.precision_), length_(other.length_),
      owned_pool_(std::move(other.owned_pool_)), pool_(other.pool_),
      table_(std::move(other.table_)),
      block_data_(std::move(other.block_data_)),
      block_tokens_(other.block_tokens_),
      bytes_per_position_(other.bytes_per_position_),
      block_bytes_(other.block_bytes_)
{
    // Leave the source coherent (drained, not just unspecified): its
    // destructor must release nothing and its length must agree with
    // its empty block table.
    other.length_ = 0;
    other.table_.clear();
    other.block_data_.clear();
}

KvCache&
KvCache::operator=(KvCache&& other) noexcept
{
    if (this != &other) {
        release_blocks();
        num_heads_ = other.num_heads_;
        head_dim_ = other.head_dim_;
        precision_ = other.precision_;
        length_ = other.length_;
        owned_pool_ = std::move(other.owned_pool_);
        pool_ = other.pool_;
        table_ = std::move(other.table_);
        block_data_ = std::move(other.block_data_);
        block_tokens_ = other.block_tokens_;
        bytes_per_position_ = other.bytes_per_position_;
        block_bytes_ = other.block_bytes_;
        other.length_ = 0;
        other.table_.clear();
        other.block_data_.clear();
    }
    return *this;
}

void
KvCache::release_blocks()
{
    for (const BlockId id : table_) {
        pool_->release(id);
    }
    table_.clear();
    block_data_.clear();
    length_ = 0;
}

std::size_t
KvCache::vector_bytes() const
{
    if (precision_ == KvPrecision::kFloat) {
        return head_dim_ * sizeof(float);
    }
    // One BF16 scale (2 bytes) + packed nibbles, two codes per byte.
    return 2 + (head_dim_ + 1) / 2;
}

std::byte*
KvCache::position_data(std::size_t pos)
{
    return block_data_[pos / block_tokens_] +
           (pos % block_tokens_) * bytes_per_position_;
}

const std::byte*
KvCache::position_data(std::size_t pos) const
{
    return block_data_[pos / block_tokens_] +
           (pos % block_tokens_) * bytes_per_position_;
}

KvCache::QuantVector
KvCache::quantize_vector(const float* data) const
{
    QuantVector q;
    q.codes.resize(head_dim_);
    float max_abs = 0.0f;
    for (std::size_t d = 0; d < head_dim_; ++d) {
        max_abs = std::max(max_abs, std::fabs(data[d]));
    }
    q.scale = numerics::bf16_round(
        max_abs / static_cast<float>(numerics::kInt4MaxMagnitude));
    for (std::size_t d = 0; d < head_dim_; ++d) {
        int code = 0;
        if (q.scale > 0.0f) {
            code = static_cast<int>(std::nearbyint(data[d] / q.scale));
        }
        q.codes[d] = numerics::Int4::from_int(code);
    }
    return q;
}

void
KvCache::append(const support::MatrixF& k_heads,
                const support::MatrixF& v_heads)
{
    assert(k_heads.rows() == num_heads_ && k_heads.cols() == head_dim_);
    assert(v_heads.rows() == num_heads_ && v_heads.cols() == head_dim_);
    if (length_ == table_.size() * block_tokens_) {
        const BlockId id = pool_->allocate(block_bytes_);
        table_.push_back(id);
        // Block storage never moves while the block is live, so the
        // data pointer may be cached -- reads skip the pool lock.
        block_data_.push_back(pool_->data(id));
    }
    std::byte* dst = position_data(length_);
    const std::size_t vb = vector_bytes();
    for (std::size_t h = 0; h < num_heads_; ++h) {
        std::byte* kdst = dst + h * vb;
        std::byte* vdst = dst + (num_heads_ + h) * vb;
        if (precision_ == KvPrecision::kFloat) {
            std::memcpy(kdst, k_heads.row_data(h), vb);
            std::memcpy(vdst, v_heads.row_data(h), vb);
            continue;
        }
        const QuantVector kq = quantize_vector(k_heads.row_data(h));
        const QuantVector vq = quantize_vector(v_heads.row_data(h));
        store_bf16(kdst, kq.scale);
        store_bf16(vdst, vq.scale);
        for (std::size_t d = 0; d < head_dim_; ++d) {
            // Low nibble first, matching numerics::PackedInt4.
            const std::size_t byte_index = 2 + d / 2;
            const unsigned shift = (d % 2) * 4;
            kdst[byte_index] |= static_cast<std::byte>(
                kq.codes[d].encode() << shift);
            vdst[byte_index] |= static_cast<std::byte>(
                vq.codes[d].encode() << shift);
        }
    }
    ++length_;
}

void
KvCache::read_key(std::size_t head, std::size_t pos, float* out) const
{
    assert(head < num_heads_ && pos < length_);
    const std::byte* src =
        position_data(pos) + head * vector_bytes();
    if (precision_ == KvPrecision::kFloat) {
        std::memcpy(out, src, head_dim_ * sizeof(float));
        return;
    }
    const float scale = load_bf16(src);
    for (std::size_t d = 0; d < head_dim_; ++d) {
        const unsigned nibble =
            (static_cast<unsigned>(src[2 + d / 2]) >> ((d % 2) * 4)) &
            0xF;
        out[d] = static_cast<float>(
                     numerics::Int4::decode(
                         static_cast<std::uint8_t>(nibble))
                         .value()) *
                 scale;
    }
}

void
KvCache::read_value(std::size_t head, std::size_t pos, float* out) const
{
    assert(head < num_heads_ && pos < length_);
    const std::byte* src =
        position_data(pos) + (num_heads_ + head) * vector_bytes();
    if (precision_ == KvPrecision::kFloat) {
        std::memcpy(out, src, head_dim_ * sizeof(float));
        return;
    }
    const float scale = load_bf16(src);
    for (std::size_t d = 0; d < head_dim_; ++d) {
        const unsigned nibble =
            (static_cast<unsigned>(src[2 + d / 2]) >> ((d % 2) * 4)) &
            0xF;
        out[d] = static_cast<float>(
                     numerics::Int4::decode(
                         static_cast<std::uint8_t>(nibble))
                         .value()) *
                 scale;
    }
}

numerics::Int4
KvCache::key_code(std::size_t head, std::size_t pos, std::size_t d) const
{
    assert(precision_ == KvPrecision::kInt4);
    assert(head < num_heads_ && pos < length_ && d < head_dim_);
    const std::byte* src =
        position_data(pos) + head * vector_bytes();
    const unsigned nibble =
        (static_cast<unsigned>(src[2 + d / 2]) >> ((d % 2) * 4)) & 0xF;
    return numerics::Int4::decode(static_cast<std::uint8_t>(nibble));
}

float
KvCache::key_scale(std::size_t head, std::size_t pos) const
{
    assert(precision_ == KvPrecision::kInt4);
    assert(head < num_heads_ && pos < length_);
    return load_bf16(position_data(pos) + head * vector_bytes());
}

std::size_t
KvCache::bytes_per_position(std::size_t num_heads,
                            std::size_t head_dim,
                            KvPrecision precision)
{
    if (precision == KvPrecision::kFloat) {
        // K and V float vectors per head.
        return 2 * num_heads * head_dim * sizeof(float);
    }
    // K and V per head: packed INT4 nibbles + one BF16 scale.
    return 2 * num_heads * ((head_dim + 1) / 2 + 2);
}

}  // namespace quant
}  // namespace mugi
