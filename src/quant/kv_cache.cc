#include "quant/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "numerics/bfloat16.h"

namespace mugi {
namespace quant {
namespace {

/** BF16 bit pattern stored little-endian in two block bytes. */
void
store_bf16(std::byte* dst, float value)
{
    const std::uint16_t bits = numerics::BFloat16::round_to_bits(value);
    dst[0] = static_cast<std::byte>(bits & 0xFF);
    dst[1] = static_cast<std::byte>(bits >> 8);
}

float
load_bf16(const std::byte* src)
{
    const std::uint16_t bits = static_cast<std::uint16_t>(
        static_cast<unsigned>(src[0]) |
        (static_cast<unsigned>(src[1]) << 8));
    return numerics::BFloat16::from_bits(bits).to_float();
}

}  // namespace

KvCache::KvCache(std::size_t num_heads, std::size_t head_dim,
                 KvPrecision precision, BlockPool* pool)
    : num_heads_(num_heads), head_dim_(head_dim), precision_(precision)
{
    if (pool == nullptr) {
        owned_pool_ = std::make_unique<BlockPool>(units::Bytes(0));
        pool = owned_pool_.get();
    }
    pool_ = pool;
    block_tokens_ = pool_->block_tokens().value();
    bytes_per_position_ =
        bytes_per_position(num_heads_, head_dim_, precision_).value();
    block_bytes_ = block_tokens_ * bytes_per_position_;
}

KvCache::~KvCache()
{
    release_blocks();
}

KvCache::KvCache(KvCache&& other) noexcept
    : num_heads_(other.num_heads_), head_dim_(other.head_dim_),
      precision_(other.precision_), length_(other.length_),
      owned_pool_(std::move(other.owned_pool_)), pool_(other.pool_),
      table_(std::move(other.table_)),
      block_data_(std::move(other.block_data_)),
      block_tokens_(other.block_tokens_),
      bytes_per_position_(other.bytes_per_position_),
      block_bytes_(other.block_bytes_)
{
    // Leave the source coherent (drained, not just unspecified): its
    // destructor must release nothing and its length must agree with
    // its empty block table.  Null the pool and cached geometry too:
    // after owned_pool_ moved away, the source's pool_ would point at
    // storage owned by the destination (or dangle once the
    // destination dies), and an append on the moved-from object would
    // silently allocate from it -- a use-after-move landmine.  append
    // asserts on the null pool instead.
    other.length_ = 0;
    other.table_.clear();
    other.block_data_.clear();
    other.pool_ = nullptr;
    other.block_tokens_ = 0;
    other.bytes_per_position_ = 0;
    other.block_bytes_ = 0;
}

KvCache&
KvCache::operator=(KvCache&& other) noexcept
{
    if (this != &other) {
        release_blocks();
        num_heads_ = other.num_heads_;
        head_dim_ = other.head_dim_;
        precision_ = other.precision_;
        length_ = other.length_;
        owned_pool_ = std::move(other.owned_pool_);
        pool_ = other.pool_;
        table_ = std::move(other.table_);
        block_data_ = std::move(other.block_data_);
        block_tokens_ = other.block_tokens_;
        bytes_per_position_ = other.bytes_per_position_;
        block_bytes_ = other.block_bytes_;
        other.length_ = 0;
        other.table_.clear();
        other.block_data_.clear();
        other.pool_ = nullptr;
        other.block_tokens_ = 0;
        other.bytes_per_position_ = 0;
        other.block_bytes_ = 0;
    }
    return *this;
}

void
KvCache::release_blocks()
{
    if (pool_ == nullptr) {
        // Moved-from: the blocks (and possibly the pool itself) went
        // with the move; there is nothing to release.
        assert(table_.empty());
        return;
    }
    for (const BlockId id : table_) {
        pool_->release(id);
    }
    table_.clear();
    block_data_.clear();
    length_ = 0;
}

void
KvCache::share_prefix_from(const KvCache& src,
                           units::Positions positions_in)
{
    const std::size_t positions = positions_in.value();
    assert(pool_ != nullptr && "moved-from cache cannot share");
    assert(pool_ == src.pool_ &&
           "prefix sharing requires one shared pool");
    assert(length_ == 0 && table_.empty() &&
           "share_prefix_from needs an empty destination");
    assert(num_heads_ == src.num_heads_ &&
           head_dim_ == src.head_dim_ &&
           precision_ == src.precision_ &&
           "prefix sharing requires identical geometry and precision");
    assert(positions <= src.length_);
    if (positions == 0) {
        return;
    }
    const std::size_t blocks =
        (positions + block_tokens_ - 1) / block_tokens_;
    table_.reserve(blocks);
    block_data_.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        const BlockId id = src.table_[b];
        pool_->retain(id);
        table_.push_back(id);
        block_data_.push_back(src.block_data_[b]);
    }
    length_ = positions;
}

units::Blocks
KvCache::shared_blocks() const
{
    std::size_t shared = 0;
    for (const BlockId id : table_) {
        shared += pool_->ref_count(id) > 1 ? 1 : 0;
    }
    return units::Blocks(shared);
}

std::size_t
KvCache::vector_bytes() const
{
    if (precision_ == KvPrecision::kFloat) {
        return head_dim_ * sizeof(float);
    }
    // One BF16 scale (2 bytes) + packed nibbles, two codes per byte.
    return 2 + (head_dim_ + 1) / 2;
}

std::byte*
KvCache::position_data(std::size_t pos)
{
    return block_data_[pos / block_tokens_] +
           (pos % block_tokens_) * bytes_per_position_;
}

const std::byte*
KvCache::position_data(std::size_t pos) const
{
    return block_data_[pos / block_tokens_] +
           (pos % block_tokens_) * bytes_per_position_;
}

KvCache::QuantVector
KvCache::quantize_vector(const float* data) const
{
    QuantVector q;
    q.codes.resize(head_dim_);
    float max_abs = 0.0f;
    for (std::size_t d = 0; d < head_dim_; ++d) {
        max_abs = std::max(max_abs, std::fabs(data[d]));
    }
    q.scale = numerics::bf16_round(
        max_abs / static_cast<float>(numerics::kInt4MaxMagnitude));
    for (std::size_t d = 0; d < head_dim_; ++d) {
        int code = 0;
        if (q.scale > 0.0f) {
            code = static_cast<int>(std::nearbyint(data[d] / q.scale));
        }
        q.codes[d] = numerics::Int4::from_int(code);
    }
    return q;
}

void
KvCache::append(const support::MatrixF& k_heads,
                const support::MatrixF& v_heads)
{
    assert(pool_ != nullptr && "append on a moved-from KvCache");
    assert(k_heads.rows() == num_heads_ && k_heads.cols() == head_dim_);
    assert(v_heads.rows() == num_heads_ && v_heads.cols() == head_dim_);
    if (length_ == table_.size() * block_tokens_) {
        const BlockId id = pool_->allocate(units::Bytes(block_bytes_));
        table_.push_back(id);
        // Block storage never moves while the block is live, so the
        // data pointer may be cached -- reads skip the pool lock.
        block_data_.push_back(pool_->data(id));
    } else {
        // Copy-on-write: never append into a block another cache can
        // read.  Clone only this cache's live prefix of the block;
        // the rest of the fresh block stays zeroed, which the INT4
        // nibble-OR path below depends on.
        const std::size_t tail = length_ / block_tokens_;
        if (pool_->ref_count(table_[tail]) > 1) {
            const BlockId fresh =
                pool_->allocate(units::Bytes(block_bytes_));
            std::byte* fresh_data = pool_->data(fresh);
            const std::size_t live_bytes =
                (length_ % block_tokens_) * bytes_per_position_;
            std::memcpy(fresh_data, block_data_[tail], live_bytes);
            pool_->release(table_[tail]);
            table_[tail] = fresh;
            block_data_[tail] = fresh_data;
        }
    }
    std::byte* dst = position_data(length_);
    const std::size_t vb = vector_bytes();
    for (std::size_t h = 0; h < num_heads_; ++h) {
        std::byte* kdst = dst + h * vb;
        std::byte* vdst = dst + (num_heads_ + h) * vb;
        if (precision_ == KvPrecision::kFloat) {
            std::memcpy(kdst, k_heads.row_data(h), vb);
            std::memcpy(vdst, v_heads.row_data(h), vb);
            continue;
        }
        const QuantVector kq = quantize_vector(k_heads.row_data(h));
        const QuantVector vq = quantize_vector(v_heads.row_data(h));
        store_bf16(kdst, kq.scale);
        store_bf16(vdst, vq.scale);
        for (std::size_t d = 0; d < head_dim_; ++d) {
            // Low nibble first, matching numerics::PackedInt4.
            const std::size_t byte_index = 2 + d / 2;
            const unsigned shift = (d % 2) * 4;
            kdst[byte_index] |= static_cast<std::byte>(
                kq.codes[d].encode() << shift);
            vdst[byte_index] |= static_cast<std::byte>(
                vq.codes[d].encode() << shift);
        }
    }
    ++length_;
}

void
KvCache::decode_vector(const std::byte* src, float* out) const
{
    if (precision_ == KvPrecision::kFloat) {
        std::memcpy(out, src, head_dim_ * sizeof(float));
        return;
    }
    const float scale = load_bf16(src);
    for (std::size_t d = 0; d < head_dim_; ++d) {
        const unsigned nibble =
            (static_cast<unsigned>(src[2 + d / 2]) >> ((d % 2) * 4)) &
            0xF;
        out[d] = static_cast<float>(
                     numerics::Int4::decode(
                         static_cast<std::uint8_t>(nibble))
                         .value()) *
                 scale;
    }
}

void
KvCache::read_key(std::size_t head, units::Positions pos_in,
                  float* out) const
{
    const std::size_t pos = pos_in.value();
    assert(head < num_heads_ && pos < length_);
    decode_vector(position_data(pos) + head * vector_bytes(), out);
}

void
KvCache::read_value(std::size_t head, units::Positions pos_in,
                    float* out) const
{
    const std::size_t pos = pos_in.value();
    assert(head < num_heads_ && pos < length_);
    decode_vector(
        position_data(pos) + (num_heads_ + head) * vector_bytes(), out);
}

void
KvCache::read_range(std::size_t vector_offset, std::size_t begin,
                    std::size_t end, float* out) const
{
    // One block-table lookup per *block*, not per position: decode a
    // whole run of resident positions from the block's storage before
    // advancing to the next block.
    std::size_t pos = begin;
    while (pos < end) {
        const std::size_t in_block = pos % block_tokens_;
        const std::size_t run =
            std::min(end - pos, block_tokens_ - in_block);
        const std::byte* base = block_data_[pos / block_tokens_] +
                                in_block * bytes_per_position_ +
                                vector_offset;
        for (std::size_t i = 0; i < run; ++i) {
            decode_vector(base + i * bytes_per_position_, out);
            out += head_dim_;
        }
        pos += run;
    }
}

void
KvCache::read_keys(std::size_t head, units::Positions begin_in,
                   units::Positions end_in, float* out) const
{
    const std::size_t begin = begin_in.value();
    const std::size_t end = end_in.value();
    assert(head < num_heads_ && begin <= end && end <= length_);
    read_range(head * vector_bytes(), begin, end, out);
}

void
KvCache::read_values(std::size_t head, units::Positions begin_in,
                     units::Positions end_in, float* out) const
{
    const std::size_t begin = begin_in.value();
    const std::size_t end = end_in.value();
    assert(head < num_heads_ && begin <= end && end <= length_);
    read_range((num_heads_ + head) * vector_bytes(), begin, end, out);
}

numerics::Int4
KvCache::key_code(std::size_t head, units::Positions pos_in,
                  std::size_t d) const
{
    const std::size_t pos = pos_in.value();
    assert(precision_ == KvPrecision::kInt4);
    assert(head < num_heads_ && pos < length_ && d < head_dim_);
    const std::byte* src =
        position_data(pos) + head * vector_bytes();
    const unsigned nibble =
        (static_cast<unsigned>(src[2 + d / 2]) >> ((d % 2) * 4)) & 0xF;
    return numerics::Int4::decode(static_cast<std::uint8_t>(nibble));
}

float
KvCache::key_scale(std::size_t head, units::Positions pos_in) const
{
    const std::size_t pos = pos_in.value();
    assert(precision_ == KvPrecision::kInt4);
    assert(head < num_heads_ && pos < length_);
    return load_bf16(position_data(pos) + head * vector_bytes());
}

units::Bytes
KvCache::bytes_per_position(std::size_t num_heads,
                            std::size_t head_dim,
                            KvPrecision precision)
{
    if (precision == KvPrecision::kFloat) {
        // K and V float vectors per head.
        return units::Bytes(2 * num_heads * head_dim * sizeof(float));
    }
    // K and V per head: packed INT4 nibbles + one BF16 scale.
    return units::Bytes(2 * num_heads * ((head_dim + 1) / 2 + 2));
}

}  // namespace quant
}  // namespace mugi
