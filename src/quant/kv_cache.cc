#include "quant/kv_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"

namespace mugi {
namespace quant {

KvCache::KvCache(std::size_t num_heads, std::size_t head_dim,
                 KvPrecision precision)
    : num_heads_(num_heads), head_dim_(head_dim), precision_(precision)
{
    if (precision_ == KvPrecision::kFloat) {
        k_float_.resize(num_heads_);
        v_float_.resize(num_heads_);
    } else {
        k_quant_.resize(num_heads_);
        v_quant_.resize(num_heads_);
    }
}

KvCache::QuantVector
KvCache::quantize_vector(const float* data) const
{
    QuantVector q;
    q.codes.resize(head_dim_);
    float max_abs = 0.0f;
    for (std::size_t d = 0; d < head_dim_; ++d) {
        max_abs = std::max(max_abs, std::fabs(data[d]));
    }
    q.scale = numerics::bf16_round(
        max_abs / static_cast<float>(numerics::kInt4MaxMagnitude));
    for (std::size_t d = 0; d < head_dim_; ++d) {
        int code = 0;
        if (q.scale > 0.0f) {
            code = static_cast<int>(std::nearbyint(data[d] / q.scale));
        }
        q.codes[d] = numerics::Int4::from_int(code);
    }
    return q;
}

void
KvCache::append(const support::MatrixF& k_heads,
                const support::MatrixF& v_heads)
{
    assert(k_heads.rows() == num_heads_ && k_heads.cols() == head_dim_);
    assert(v_heads.rows() == num_heads_ && v_heads.cols() == head_dim_);
    for (std::size_t h = 0; h < num_heads_; ++h) {
        if (precision_ == KvPrecision::kFloat) {
            k_float_[h].insert(k_float_[h].end(), k_heads.row_data(h),
                               k_heads.row_data(h) + head_dim_);
            v_float_[h].insert(v_float_[h].end(), v_heads.row_data(h),
                               v_heads.row_data(h) + head_dim_);
        } else {
            k_quant_[h].push_back(quantize_vector(k_heads.row_data(h)));
            v_quant_[h].push_back(quantize_vector(v_heads.row_data(h)));
        }
    }
    ++length_;
}

void
KvCache::read_key(std::size_t head, std::size_t pos, float* out) const
{
    assert(head < num_heads_ && pos < length_);
    if (precision_ == KvPrecision::kFloat) {
        const float* src = k_float_[head].data() + pos * head_dim_;
        std::copy(src, src + head_dim_, out);
        return;
    }
    const QuantVector& q = k_quant_[head][pos];
    for (std::size_t d = 0; d < head_dim_; ++d) {
        out[d] = static_cast<float>(q.codes[d].value()) * q.scale;
    }
}

void
KvCache::read_value(std::size_t head, std::size_t pos, float* out) const
{
    assert(head < num_heads_ && pos < length_);
    if (precision_ == KvPrecision::kFloat) {
        const float* src = v_float_[head].data() + pos * head_dim_;
        std::copy(src, src + head_dim_, out);
        return;
    }
    const QuantVector& q = v_quant_[head][pos];
    for (std::size_t d = 0; d < head_dim_; ++d) {
        out[d] = static_cast<float>(q.codes[d].value()) * q.scale;
    }
}

numerics::Int4
KvCache::key_code(std::size_t head, std::size_t pos, std::size_t d) const
{
    assert(precision_ == KvPrecision::kInt4);
    return k_quant_[head][pos].codes[d];
}

float
KvCache::key_scale(std::size_t head, std::size_t pos) const
{
    assert(precision_ == KvPrecision::kInt4);
    return k_quant_[head][pos].scale;
}

std::size_t
KvCache::bytes_per_position(std::size_t num_heads,
                            std::size_t head_dim,
                            KvPrecision precision)
{
    if (precision == KvPrecision::kFloat) {
        // K and V float vectors per head.
        return 2 * num_heads * head_dim * sizeof(float);
    }
    // K and V per head: packed INT4 nibbles + one BF16 scale.
    return 2 * num_heads * ((head_dim + 1) / 2 + 2);
}

std::size_t
KvCache::byte_size() const
{
    if (precision_ == KvPrecision::kFloat) {
        // BF16-equivalent storage: 2 bytes per element, K and V.
        return 2 * num_heads_ * length_ * head_dim_ * 2;
    }
    // INT4 nibbles + one BF16 scale per vector.
    const std::size_t per_vector = (head_dim_ + 1) / 2 + 2;
    return 2 * num_heads_ * length_ * per_vector;
}

}  // namespace quant
}  // namespace mugi
