#ifndef MUGI_QUANT_KV_CACHE_H_
#define MUGI_QUANT_KV_CACHE_H_

/**
 * @file
 * Paged KV cache with optional INT4 quantization (KVQ, Sec. 2.3.3).
 *
 * The cache stores one K and one V vector per (kv-head, position).
 * With KVQ enabled, vectors are quantized per token with one BF16
 * scale per vector -- the per-token granularity KVQuant-style schemes
 * use -- cutting the cache footprint ~4x while staying within a
 * bounded error.  Dequantized reads feed the attention GEMMs; the INT4
 * codes are exactly what Mugi's weight rows consume (Sec. 4.2).
 *
 * Storage is *paged*: positions live in fixed-token-count blocks drawn
 * on demand from a quant::BlockPool (block_allocator.h) and released
 * when the cache is destroyed or release_blocks()-ed, so a serving
 * scheduler can reserve, account and reclaim KV memory at block
 * granularity instead of projecting each request to its full
 * generation length.  Blocks hold the exact device layout -- packed
 * INT4 nibbles + raw BF16 scale bits for kInt4, raw floats for
 * kFloat -- so block accounting equals physical bytes, and reads are
 * byte-identical to the former contiguous storage (the INT4
 * sign-magnitude nibble and the BF16 bit pattern both round-trip
 * losslessly).  Callers that don't pass a pool get a private
 * unbounded one; either way the read/append API is unchanged.
 *
 * Blocks can be *shared* across caches drawing from the same pool
 * (prefix caching): share_prefix_from() maps another cache's leading
 * blocks into this one's table under a pool refcount, so two requests
 * with a common prompt prefix read the same physical bytes.  Appends
 * are copy-on-write: writing into a block referenced by another cache
 * first clones the writer's live prefix of that block into a fresh
 * zeroed block, so a sharer's reads are byte-identical forever no
 * matter what its neighbours append.
 *
 * Quantities are unit-typed (support/units.h): cache lengths and read
 * indices are units::Positions, footprints units::Bytes, block
 * geometry units::Tokens/units::Blocks -- so position indices cannot
 * leak into byte accounting without a named conversion.  Internals
 * unwrap at the arithmetic leaves.
 *
 * Thread-safety: externally serialized -- one cache belongs to one
 * session's stream of appends/reads at a time.  The BlockPool it
 * draws from is internally synchronized, and blocks shared across
 * caches are never written in place (copy-on-write), so *distinct*
 * caches -- even ones sharing prefix blocks -- may be used from
 * different threads concurrently; cached block-storage pointers stay
 * valid because a live block's storage never moves.
 */

#include <cstddef>
#include <memory>
#include <vector>

#include "numerics/int4.h"
#include "quant/block_allocator.h"
#include "support/matrix.h"

namespace mugi {
namespace quant {

/** Storage precision of the cache. */
enum class KvPrecision {
    kFloat,  ///< Float storage (baseline).
    kInt4,   ///< KVQ: INT4 codes + per-vector BF16 scale.
};

/** A growable per-head key/value cache over pooled blocks. */
class KvCache {
  public:
    /**
     * @param num_heads Number of KV heads (GQA: may be fewer than the
     *        number of query heads).
     * @param head_dim Dimension of each K/V vector.
     * @param precision Storage precision.
     * @param pool Shared block pool; must outlive the cache.  nullptr
     *        allocates a private unbounded pool.
     */
    KvCache(std::size_t num_heads, std::size_t head_dim,
            KvPrecision precision, BlockPool* pool = nullptr);

    /**
     * The source is left drained *and inert*: length 0, no blocks,
     * and no pool -- its owned pool (if any) moved with the blocks,
     * so the moved-from object must not silently allocate from
     * storage it no longer owns.  Using append() or
     * share_prefix_from() on a moved-from cache asserts; destroying
     * it is safe.
     */
    KvCache(KvCache&&) noexcept;
    /** Releases the target's blocks before adopting the source's. */
    KvCache& operator=(KvCache&&) noexcept;
    KvCache(const KvCache&) = delete;
    KvCache& operator=(const KvCache&) = delete;

    ~KvCache();

    /** Append one position: K and V vectors for every head. */
    void append(const support::MatrixF& k_heads,
                const support::MatrixF& v_heads);

    /** Number of cached positions. */
    units::Positions length() const
    {
        return units::Positions(length_);
    }
    std::size_t num_heads() const { return num_heads_; }
    std::size_t head_dim() const { return head_dim_; }
    KvPrecision precision() const { return precision_; }

    /** Dequantized K vector of (head, position) into @p out. */
    void read_key(std::size_t head, units::Positions pos,
                  float* out) const;
    /** Dequantized V vector of (head, position) into @p out. */
    void read_value(std::size_t head, units::Positions pos,
                    float* out) const;

    /**
     * Batched gather: dequantize K vectors of @p head for every
     * position in [@p begin, @p end) into @p out, laid out as
     * [end - begin, head_dim] row-major.  Walks the block table once
     * per block instead of once per position, so attention can decode
     * a whole resident sequence into contiguous scratch in one call.
     * Bit-identical to end-begin read_key() calls (same per-vector
     * decode arithmetic, pinned by tests/quant/kv_cache_test).
     */
    void read_keys(std::size_t head, units::Positions begin,
                   units::Positions end, float* out) const;
    /** Batched gather of V vectors; see read_keys(). */
    void read_values(std::size_t head, units::Positions begin,
                     units::Positions end, float* out) const;

    /** Raw INT4 key codes (valid only with kInt4 precision). */
    numerics::Int4 key_code(std::size_t head, units::Positions pos,
                            std::size_t d) const;
    /** Per-vector key scale (valid only with kInt4 precision). */
    float key_scale(std::size_t head, units::Positions pos) const;

    /**
     * @deprecated Use memory_bytes() -- the two accountings are now
     * unified on the exact per-precision device footprint.
     */
    [[deprecated("use memory_bytes()")]] units::Bytes
    byte_size() const
    {
        return memory_bytes();
    }

    /**
     * Exact device footprint in bytes of the blocks currently
     * allocated: packed INT4 nibbles + one BF16 scale per vector
     * (kInt4) or full float storage (kFloat), rounded up to whole
     * blocks -- a serving scheduler's KV budget accounts exactly
     * this quantity.
     */
    units::Bytes memory_bytes() const
    {
        return units::Bytes(table_.size() * block_bytes_);
    }

    /** Exact K+V bytes one cached position costs at @p precision. */
    static units::Bytes bytes_per_position(std::size_t num_heads,
                                           std::size_t head_dim,
                                           KvPrecision precision);

    /** Positions each block of this cache covers. */
    units::Tokens block_tokens() const
    {
        return units::Tokens(block_tokens_);
    }
    /** Blocks currently allocated from the pool. */
    units::Blocks blocks_in_use() const
    {
        return units::Blocks(table_.size());
    }
    /** Bytes of one of this cache's blocks. */
    units::Bytes block_bytes() const
    {
        return units::Bytes(block_bytes_);
    }

    /**
     * Map the first @p positions of @p src into this (empty) cache
     * under pool refcounts -- the prefix-caching primitive.  Both
     * caches must draw from the same pool and have identical
     * geometry and precision; @p positions must not exceed
     * src.length().  Shared blocks are read-only in effect: an append
     * that would write into one (by either cache) copy-on-writes it
     * first, so reads of the shared prefix stay byte-identical in
     * both caches for both precisions.  A non-block-aligned
     * @p positions shares the containing (partial) block too; the
     * pool frees a shared block only when the last referencing cache
     * releases it.
     */
    void share_prefix_from(const KvCache& src,
                           units::Positions positions);

    /** Blocks of this cache currently shared with another cache. */
    units::Blocks shared_blocks() const;

    /**
     * Release every block back to the pool and reset to length 0 --
     * the preemption path: an evicted request's KV memory is reclaimed
     * immediately and rebuilt later by recompute-style re-prefill.
     */
    void release_blocks();

  private:
    struct QuantVector {
        std::vector<numerics::Int4> codes;
        float scale = 0.0f;
    };

    QuantVector quantize_vector(const float* data) const;

    /** Dequantize one stored K/V vector at @p src into @p out. */
    void decode_vector(const std::byte* src, float* out) const;
    /** Blockwise gather body shared by read_keys/read_values. */
    void read_range(std::size_t vector_offset, std::size_t begin,
                    std::size_t end, float* out) const;

    /** Writable storage of position @p pos (block-table lookup). */
    std::byte* position_data(std::size_t pos);
    const std::byte* position_data(std::size_t pos) const;
    /** One K or V vector's bytes within a position's storage. */
    std::size_t vector_bytes() const;

    std::size_t num_heads_;
    std::size_t head_dim_;
    KvPrecision precision_;
    std::size_t length_ = 0;

    /** Set iff constructed without a shared pool. */
    std::unique_ptr<BlockPool> owned_pool_;
    BlockPool* pool_ = nullptr;  ///< The pool blocks come from.
    std::vector<BlockId> table_;  ///< Block per block_tokens_ positions.
    /**
     * Cached storage pointer per table_ entry: block storage never
     * moves while the block is live, so reads skip the pool lock.
     */
    std::vector<std::byte*> block_data_;
    std::size_t block_tokens_ = 0;
    std::size_t bytes_per_position_ = 0;
    std::size_t block_bytes_ = 0;
};

}  // namespace quant
}  // namespace mugi

#endif  // MUGI_QUANT_KV_CACHE_H_
