#ifndef MUGI_QUANT_KV_CACHE_H_
#define MUGI_QUANT_KV_CACHE_H_

/**
 * @file
 * KV cache with optional INT4 quantization (KVQ, Sec. 2.3.3).
 *
 * The cache stores one K and one V vector per (kv-head, position).
 * With KVQ enabled, vectors are quantized per token with one BF16
 * scale per vector -- the per-token granularity KVQuant-style schemes
 * use -- cutting the cache footprint ~4x while staying within a
 * bounded error.  Dequantized reads feed the attention GEMMs; the INT4
 * codes are exactly what Mugi's weight rows consume (Sec. 4.2).
 */

#include <cstddef>
#include <vector>

#include "numerics/int4.h"
#include "support/matrix.h"

namespace mugi {
namespace quant {

/** Storage precision of the cache. */
enum class KvPrecision {
    kFloat,  ///< BF16-equivalent float storage (baseline).
    kInt4,   ///< KVQ: INT4 codes + per-vector BF16 scale.
};

/** A growable per-head key/value cache. */
class KvCache {
  public:
    /**
     * @param num_heads Number of KV heads (GQA: may be fewer than the
     *        number of query heads).
     * @param head_dim Dimension of each K/V vector.
     * @param precision Storage precision.
     */
    KvCache(std::size_t num_heads, std::size_t head_dim,
            KvPrecision precision);

    /** Append one position: K and V vectors for every head. */
    void append(const support::MatrixF& k_heads,
                const support::MatrixF& v_heads);

    /** Number of cached positions. */
    std::size_t length() const { return length_; }
    std::size_t num_heads() const { return num_heads_; }
    std::size_t head_dim() const { return head_dim_; }
    KvPrecision precision() const { return precision_; }

    /** Dequantized K vector of (head, position) into @p out. */
    void read_key(std::size_t head, std::size_t pos, float* out) const;
    /** Dequantized V vector of (head, position) into @p out. */
    void read_value(std::size_t head, std::size_t pos, float* out) const;

    /** Raw INT4 key codes (valid only with kInt4 precision). */
    numerics::Int4 key_code(std::size_t head, std::size_t pos,
                            std::size_t d) const;
    /** Per-vector key scale (valid only with kInt4 precision). */
    float key_scale(std::size_t head, std::size_t pos) const;

    /**
     * Modeled storage footprint in bytes (kFloat counts BF16-
     * equivalent 2-byte elements, the precision the datapath
     * assumes).  Kept for the perf-model studies; admission budgets
     * should use memory_bytes().
     */
    std::size_t byte_size() const;

    /**
     * Exact per-precision device footprint in bytes: INT4 codes
     * packed two per byte plus one BF16 scale per vector (kInt4), or
     * full float storage (kFloat).  This is the quantity a serving
     * scheduler's KV-memory budget accounts -- the cache grows
     * without bound otherwise.
     */
    std::size_t memory_bytes() const
    {
        return length_ *
               bytes_per_position(num_heads_, head_dim_, precision_);
    }

    /** Exact K+V bytes one cached position costs at @p precision. */
    static std::size_t bytes_per_position(std::size_t num_heads,
                                          std::size_t head_dim,
                                          KvPrecision precision);

  private:
    struct QuantVector {
        std::vector<numerics::Int4> codes;
        float scale = 0.0f;
    };

    QuantVector quantize_vector(const float* data) const;

    std::size_t num_heads_;
    std::size_t head_dim_;
    KvPrecision precision_;
    std::size_t length_ = 0;

    // Float storage: [head][pos * head_dim + d].
    std::vector<std::vector<float>> k_float_;
    std::vector<std::vector<float>> v_float_;
    // Quantized storage: [head][pos].
    std::vector<std::vector<QuantVector>> k_quant_;
    std::vector<std::vector<QuantVector>> v_quant_;
};

}  // namespace quant
}  // namespace mugi

#endif  // MUGI_QUANT_KV_CACHE_H_
