#include "serve/batch_policy.h"

#include <cmath>

#include "model/workload.h"
#include "sim/performance_model.h"

namespace mugi {
namespace serve {

BatchSweepPoint
BatchPolicy::evaluate(const sim::DesignConfig& design,
                      std::span<const model::ModelConfig> models,
                      std::size_t batch, std::size_t context)
{
    BatchSweepPoint point;
    point.batch = batch;
    double t = 1.0, e = 1.0;
    for (const model::ModelConfig& m : models) {
        const sim::PerfReport r = sim::run_workload(
            design, model::build_decode_workload(m, batch, context));
        t *= r.throughput_tokens_per_s;
        e *= r.energy_per_token_j;
    }
    const double inv = 1.0 / static_cast<double>(models.size());
    point.throughput_tokens_per_s = std::pow(t, inv);
    point.energy_per_token_j = std::pow(e, inv);
    return point;
}

BatchPolicy
BatchPolicy::derive(const sim::DesignConfig& design,
                    const model::ModelConfig& model,
                    std::size_t context, std::size_t max_batch,
                    double tolerance)
{
    BatchPolicy policy;
    const model::ModelConfig models[] = {model};
    double best = 0.0;
    for (std::size_t batch = 1; batch <= max_batch; batch *= 2) {
        policy.sweep_.push_back(
            evaluate(design, models, batch, context));
        best = std::max(
            best, policy.sweep_.back().throughput_tokens_per_s);
        policy.max_ = batch;
    }
    policy.target_ = policy.max_;
    for (const BatchSweepPoint& point : policy.sweep_) {
        if (point.throughput_tokens_per_s >= (1.0 - tolerance) * best) {
            policy.target_ = point.batch;
            break;
        }
    }
    return policy;
}

}  // namespace serve
}  // namespace mugi
