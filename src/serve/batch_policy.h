#ifndef MUGI_SERVE_BATCH_POLICY_H_
#define MUGI_SERVE_BATCH_POLICY_H_

/**
 * @file
 * Batch-size targeting from the Fig. 14 batch sweep.
 *
 * Fig. 14 sweeps decode batch size per design and shows each
 * architecture's throughput knee: Mugi saturates once the batch
 * fills its 8 array columns, while systolic/SIMD baselines need the
 * batch to reach their array dimension.  BatchPolicy runs exactly
 * that sweep (bench/fig14_batch_sweep.cc calls the same primitive)
 * and derives the batch-size target serve::Scheduler steers its
 * continuous batch toward: the smallest batch within a tolerance of
 * the design's best throughput -- larger batches only add latency.
 *
 * Thread-safety: immutable after derive() -- a BatchPolicy is a
 * value type whose fields never change once built, so it may be read
 * from any number of threads concurrently.
 */

#include <cstddef>
#include <span>
#include <vector>

#include "model/config.h"
#include "sim/design.h"

namespace mugi {
namespace serve {

/** One point of a Fig. 14-style decode batch sweep. */
struct BatchSweepPoint {
    std::size_t batch = 0;
    double throughput_tokens_per_s = 0.0;
    double energy_per_token_j = 0.0;
};

/** Batch-size target derived from the Fig. 14 sweep for one design. */
class BatchPolicy {
  public:
    /**
     * The Fig. 14 sweep primitive: geometric-mean decode throughput
     * and energy/token over @p models at (@p batch, @p context).
     */
    static BatchSweepPoint evaluate(
        const sim::DesignConfig& design,
        std::span<const model::ModelConfig> models, std::size_t batch,
        std::size_t context);

    /**
     * Sweep powers of two up to @p max_batch at @p context and pick
     * the smallest batch whose throughput is within @p tolerance of
     * the best (the knee -- batch 8 for Mugi's 8 columns, the array
     * dimension for SA/SD).
     */
    static BatchPolicy derive(const sim::DesignConfig& design,
                              const model::ModelConfig& model,
                              std::size_t context = 512,
                              std::size_t max_batch = 32,
                              double tolerance = 0.1);

    /** The batch size the scheduler steers toward. */
    std::size_t target_batch() const { return target_; }
    /** Largest batch considered by the sweep. */
    std::size_t max_batch() const { return max_; }
    /** The sweep the target was derived from, ascending batch. */
    const std::vector<BatchSweepPoint>& sweep() const { return sweep_; }

  private:
    std::size_t target_ = 1;
    std::size_t max_ = 1;
    std::vector<BatchSweepPoint> sweep_;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_BATCH_POLICY_H_
