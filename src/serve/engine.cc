#include "serve/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>

#include "model/ops.h"
#include "sim/cost_model.h"
#include "vlp/vlp_gemm.h"

namespace mugi {
namespace serve {
namespace {

/** VLP cycle-model charge of one N x K GEMM against B columns. */
vlp::GemmStats
gemm_charge(std::size_t n, std::size_t k, std::size_t b,
            const sim::DesignConfig& design)
{
    vlp::GemmStats stats;
    stats.cycles = vlp::vlp_gemm_mugi_cycles(
        n, b, k, static_cast<int>(design.array_rows),
        static_cast<int>(design.array_cols));
    stats.sweeps =
        stats.cycles >> numerics::kInt4MagnitudeBits;
    stats.subscriptions =
        static_cast<std::uint64_t>(n) * k * b;
    return stats;
}

/**
 * Charge of decoding @p batch tokens' projections (all layers + LM
 * head).  @p fused runs each projection as one GEMM over the whole
 * batch -- the activations share the array's column tiles, so
 * cycles/sweeps amortize to ceil(batch / W) -- while the sequential
 * path pays each token's single-column GEMMs separately.
 * Subscriptions (the MAC-equivalent count) are identical either way.
 */
vlp::GemmStats
projection_charge(const model::ModelConfig& config,
                  const sim::DesignConfig& design, std::size_t batch,
                  bool fused)
{
    const std::size_t d = config.d_model;
    const std::size_t kv = config.num_kv_heads * config.head_dim();
    const std::size_t ff = config.d_ff;
    const std::size_t per_gemm_b = fused ? batch : 1;
    const std::size_t repeats = fused ? 1 : batch;

    vlp::GemmStats layer;
    layer += gemm_charge(d, d, per_gemm_b, design);   // wq
    layer += gemm_charge(kv, d, per_gemm_b, design);  // wk
    layer += gemm_charge(kv, d, per_gemm_b, design);  // wv
    layer += gemm_charge(d, d, per_gemm_b, design);   // wo
    if (config.gated_ffn()) {
        layer += gemm_charge(ff, d, per_gemm_b, design);  // gate
    }
    layer += gemm_charge(ff, d, per_gemm_b, design);  // up
    layer += gemm_charge(d, ff, per_gemm_b, design);  // down

    vlp::GemmStats step;
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        step += layer;
    }
    step += gemm_charge(config.vocab, d, per_gemm_b, design);
    vlp::GemmStats total;
    for (std::size_t r = 0; r < repeats; ++r) {
        total += step;
    }
    return total;
}

}  // namespace

Engine::Engine(const sim::DesignConfig& design)
    : design_(design), registry_(design.array_rows)
{
}

Engine::Engine(const sim::DesignConfig& design,
               const model::ModelConfig& model)
    : design_(design), model_config_(model),
      registry_(design.array_rows)
{
}

Engine::Engine(const sim::DesignConfig& design,
               std::shared_ptr<const model::TransformerModel> model)
    : design_(design), model_config_(model->config()),
      model_(std::move(model)), registry_(design.array_rows)
{
}

std::unique_ptr<Engine>
Engine::default_mugi()
{
    return std::make_unique<Engine>(sim::make_mugi(256));
}

model::NonlinearHooks
Engine::default_hooks() const
{
    model::NonlinearHooks hooks;
    hooks.softmax_exp =
        registry_.get_default(nonlinear::NonlinearOp::kExp).get();
    const nonlinear::NonlinearOp act =
        model_config_ ? model_config_->activation()
                      : nonlinear::NonlinearOp::kSilu;
    hooks.activation = registry_.get_default(act).get();
    return hooks;
}

Session
Engine::create_session(const SessionOptions& options) const
{
    assert(model_config_.has_value() &&
           "session serving needs a model (config) at engine build");
    assert((!model_ || options.initial_context.value() == 0) &&
           "functional sessions build context by prefilling tokens");
    const std::size_t layers = model_config_->num_layers;
    // Relaxed is sufficient (and deliberate): the counter only has to
    // hand every concurrent create_session a distinct id, which the
    // RMW's atomicity alone guarantees.  No other memory is published
    // through it, so no acquire/release ordering is required.
    Session session(
        next_session_id_.fetch_add(1, std::memory_order_relaxed),
        options.kv_precision, options.initial_context.value(), layers);
    if (model_) {
        session.caches_.reserve(layers);
        for (std::size_t l = 0; l < layers; ++l) {
            session.caches_.emplace_back(model_config_->num_kv_heads,
                                         model_config_->head_dim(),
                                         options.kv_precision,
                                         options.kv_pool);
        }
    }
    // Retain the default kernels so the session stays valid even if
    // it outlives this engine (sessions are movable value types).
    const auto exp_kernel =
        registry_.get_default(nonlinear::NonlinearOp::kExp);
    const auto act_kernel =
        registry_.get_default(model_config_->activation());
    model::NonlinearHooks hooks;
    hooks.softmax_exp = exp_kernel.get();
    hooks.activation = act_kernel.get();
    session.set_hooks(hooks);
    session.retain_kernel(exp_kernel);
    session.retain_kernel(act_kernel);
    return session;
}

support::MatrixF
Engine::final_norm_logits(const support::MatrixF& x,
                          support::ThreadPool* pool) const
{
    const model::ModelConfig& config = *model_config_;
    support::MatrixF x_norm;
    if (config.uses_rmsnorm()) {
        model::rmsnorm(x, model_->final_norm_gain(), x_norm);
    } else {
        std::vector<float> bias(config.d_model, 0.0f);
        model::layernorm(x, model_->final_norm_gain(), bias, x_norm);
    }
    // linear and linear_batched are bit-identical; the batched form
    // streams the LM head once for the whole stack.  Pooled, the
    // stack's rows split into disjoint ranges with the identical
    // per-cell accumulation (linear_batched_range), so the bytes
    // match the serial GEMM.
    const support::MatrixF& lm_head = model_->lm_head();
    support::MatrixF logits(x_norm.rows(), lm_head.cols(), 0.0f);
    if (pool != nullptr && x_norm.rows() > 1) {
        const auto ranges =
            support::split_ranges(x_norm.rows(), pool->num_threads());
        pool->parallel_for(ranges.size(), [&](std::size_t t) {
            model::linear_batched_range(x_norm, lm_head,
                                        ranges[t].first,
                                        ranges[t].second, logits);
        });
    } else {
        model::linear_batched_range(x_norm, lm_head, 0, x_norm.rows(),
                                    logits);
    }
    return logits;
}

std::vector<float>
Engine::decode_token(Session& session, int token) const
{
    assert(model_ && "functional decode needs a loaded model");
    const model::ModelConfig& config = *model_config_;
    support::MatrixF x(1, config.d_model);
    const std::span<const float> e = model_->embedding(token);
    std::copy(e.begin(), e.end(), x.row_data(0));
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        x = model_->decode_layer(l, x, session.caches_[l],
                                 session.hooks_for(l));
    }
    return final_norm_logits(x).data();
}

void
Engine::step_decode_fused(const StepPlan& plan, StepResult& result,
                          support::ThreadPool* pool) const
{
    assert(model_);
    const model::ModelConfig& config = *model_config_;
    const std::size_t batch = plan.decode_sessions.size();

    // Stack the batch's token embeddings into one activation matrix.
    support::MatrixF x(batch, config.d_model);
    for (std::size_t i = 0; i < batch; ++i) {
        const std::span<const float> e =
            model_->embedding(plan.decode_tokens[i]);
        std::copy(e.begin(), e.end(), x.row_data(i));
    }
    std::vector<quant::KvCache*> caches(batch);
    std::vector<const model::NonlinearHooks*> hooks(batch);
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        for (std::size_t i = 0; i < batch; ++i) {
            Session& session = *plan.decode_sessions[i];
            caches[i] = &session.caches_[l];
            hooks[i] = &session.hooks_for(l);
        }
        x = model_->decode_layer_batch(l, x, caches, hooks, pool);
    }
    const support::MatrixF logits = final_norm_logits(x, pool);

    for (std::size_t i = 0; i < batch; ++i) {
        Session& session = *plan.decode_sessions[i];
        StepResult::SessionOutput out;
        out.session_id = session.id();
        const float* row = logits.row_data(i);
        out.logits.assign(row, row + logits.cols());
        out.next_token = static_cast<int>(std::distance(
            out.logits.begin(),
            std::max_element(out.logits.begin(), out.logits.end())));
        session.position_ += 1;
        session.tokens_generated_ += 1;
        out.position = units::Positions(session.position_);
        result.outputs.push_back(std::move(out));
    }
}

StepResult
Engine::step(std::span<Session* const> sessions,
             std::span<const int> tokens) const
{
    assert(tokens.empty() || tokens.size() == sessions.size());
    StepPlan plan;
    plan.decode_sessions.assign(sessions.begin(), sessions.end());
    plan.decode_tokens.assign(tokens.begin(), tokens.end());
    return step(plan);
}

StepResult
Engine::step(const StepPlan& plan) const
{
    assert(model_config_.has_value());
    assert(plan.decode_tokens.empty() ||
           plan.decode_tokens.size() == plan.decode_sessions.size());
    assert((plan.decode_tokens.empty() || model_) &&
           "token stepping needs a functional model");
    if (plan.empty()) {
        // A drained continuous batch: nothing ran, so return a zeroed
        // report instead of evaluating a 0-token workload (whose
        // derived rates would be NaN and poison accumulators).
        StepResult result;
        result.report.area = sim::node_area(design_);
        return result;
    }

    // Context each session's new token attends: its cache after the
    // append, i.e. position + 1 (matches build_decode_workload's
    // kv_len semantics).  A session listed twice steps twice, so its
    // second occurrence attends one more position.
    const std::size_t D = plan.decode_sessions.size();
    std::vector<std::size_t> contexts;
    contexts.reserve(D);
    std::unordered_map<const Session*, std::size_t> occurrences;
    bool duplicate_sessions = false;
    for (std::size_t i = 0; i < D; ++i) {
        const std::size_t seen = occurrences[plan.decode_sessions[i]]++;
        duplicate_sessions |= seen > 0;
        contexts.push_back(
            plan.decode_sessions[i]->position().value() + 1 + seen);
    }
    std::vector<model::PrefillChunk> chunks;
    chunks.reserve(plan.prefills.size());
    for (const StepPlan::PrefillEntry& entry : plan.prefills) {
        chunks.push_back(
            {entry.session->position().value(), entry.size().value()});
    }
    const model::Workload workload = model::build_mixed_step_workload(
        *model_config_, contexts, chunks);

    StepResult result;
    result.report = evaluate(workload);
    result.outputs.reserve(D);
    const bool functional_decode = !plan.decode_tokens.empty();

    // Pooled execution: hold the shared worker pool for the whole
    // functional region and meter its busy/task counters around it.
    // The pool only decides *when* disjoint-output tasks run, never
    // what they compute, so every pooled path below is bit-identical
    // to plan.threads == 0.
    std::shared_ptr<support::ThreadPool> pool;
    if (plan.threads > 0 && model_ != nullptr) {
        pool = worker_pool(plan.threads);
    }
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t busy_start = pool ? pool->busy_ns() : 0;
    const std::uint64_t tasks_start = pool ? pool->tasks_completed() : 0;

    // Fused batched decode: one projection GEMM per layer over the
    // stacked batch, bit-identical to per-session stepping.  A
    // duplicated session is a data dependency (its second token must
    // attend the first), so such batches take the sequential path --
    // as does a batch of one, which has nothing to fuse (the charges
    // agree exactly there, so the paths are indistinguishable).
    if (functional_decode && plan.fused_decode && !duplicate_sessions &&
        D > 1) {
        step_decode_fused(plan, result, pool.get());
        result.gemm +=
            projection_charge(*model_config_, design_, D, true);
    } else {
        for (std::size_t i = 0; i < D; ++i) {
            Session& session = *plan.decode_sessions[i];
            StepResult::SessionOutput out;
            out.session_id = session.id();
            if (functional_decode) {
                out.logits =
                    decode_token(session, plan.decode_tokens[i]);
                out.next_token = static_cast<int>(std::distance(
                    out.logits.begin(),
                    std::max_element(out.logits.begin(),
                                     out.logits.end())));
            }
            session.position_ += 1;
            session.tokens_generated_ += 1;
            out.position = units::Positions(session.position_);
            result.outputs.push_back(std::move(out));
        }
        if (functional_decode) {
            result.gemm +=
                projection_charge(*model_config_, design_, D, false);
        }
    }
    const std::size_t P = plan.prefills.size();
    result.prefill_outputs.reserve(P);
    // Per-chunk prefill tasks: each chunk streams its own session's
    // tokens, so chunks over pairwise-distinct sessions that also
    // don't appear among the decode entries are independent and fan
    // out across the pool (outputs and charges are still assembled in
    // plan order below, and each chunk runs the identical serial
    // token loop -- bit-identical to the serial plan walk).
    bool parallel_prefill = pool != nullptr && P > 1;
    if (parallel_prefill) {
        std::unordered_map<const Session*, std::size_t> prefill_seen;
        for (const StepPlan::PrefillEntry& entry : plan.prefills) {
            parallel_prefill &= !entry.tokens.empty();
            parallel_prefill &= prefill_seen[entry.session]++ == 0;
            parallel_prefill &=
                occurrences.find(entry.session) == occurrences.end();
        }
    }
    std::vector<std::vector<float>> chunk_logits(P);
    if (parallel_prefill) {
        pool->parallel_for(P, [&](std::size_t i) {
            const StepPlan::PrefillEntry& entry = plan.prefills[i];
            chunk_logits[i] =
                prefill_chunk(*entry.session, entry.tokens);
        });
    }
    for (std::size_t i = 0; i < P; ++i) {
        const StepPlan::PrefillEntry& entry = plan.prefills[i];
        Session& session = *entry.session;
        StepResult::SessionOutput out;
        out.session_id = session.id();
        if (!entry.tokens.empty()) {
            out.logits = parallel_prefill
                             ? std::move(chunk_logits[i])
                             : prefill_chunk(session, entry.tokens);
            out.next_token = static_cast<int>(std::distance(
                out.logits.begin(),
                std::max_element(out.logits.begin(),
                                 out.logits.end())));
            // Prefill decodes token by token: sequential charges.
            result.gemm += projection_charge(*model_config_, design_,
                                             entry.tokens.size(),
                                             false);
        } else {
            advance_context(session, entry.analytic_tokens);
        }
        out.position = units::Positions(session.position_);
        result.prefill_outputs.push_back(std::move(out));
    }

    if (pool) {
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        const double busy_s =
            static_cast<double>(pool->busy_ns() - busy_start) * 1e-9;
        result.workers.threads = pool->num_threads();
        result.workers.tasks = pool->tasks_completed() - tasks_start;
        if (wall_s > 0.0) {
            result.workers.busy_fraction = std::min(
                1.0, busy_s / (static_cast<double>(
                                   pool->num_threads()) *
                               wall_s));
        }
        result.workers.idle_fraction =
            1.0 - result.workers.busy_fraction;
    }
    return result;
}

std::shared_ptr<support::ThreadPool>
Engine::worker_pool(std::size_t threads) const
{
    support::MutexLock lock(pool_mutex_);
    if (!pool_ || pool_->num_threads() != threads) {
        pool_ = std::make_shared<support::ThreadPool>(threads);
    }
    return pool_;
}

StepResult
Engine::step(Session& session, int token) const
{
    Session* batch[1] = {&session};
    return step(std::span<Session* const>(batch),
                std::span<const int>(&token, 1));
}

std::vector<float>
Engine::prefill(Session& session, std::span<const int> prompt) const
{
    return prefill_chunk(session, prompt);
}

std::vector<float>
Engine::prefill_chunk(Session& session,
                      std::span<const int> tokens) const
{
    assert(model_ && "chunked prefill needs a functional model");
    std::vector<float> logits;
    for (const int token : tokens) {
        logits = decode_token(session, token);
        session.position_ += 1;
    }
    return logits;
}

void
Engine::advance_context(Session& session, units::Tokens tokens) const
{
    assert(!model_ &&
           "functional sessions build context by prefilling tokens");
    session.position_ += tokens.value();
}

SystemReport
Engine::evaluate(const model::Workload& workload) const
{
    SystemReport report;
    report.perf = sim::run_workload(design_, workload);
    report.area = sim::node_area(design_);
    report.carbon = carbon::assess(design_, report.perf);
    report.event_sim = sim::simulate(design_, workload);
    return report;
}

SystemReport
Engine::evaluate_decode(const model::ModelConfig& model,
                        std::size_t batch, std::size_t context) const
{
    return evaluate(model::build_decode_workload(model, batch, context));
}

SystemReport
Engine::evaluate_prefill(const model::ModelConfig& model,
                         std::size_t batch, std::size_t seq_len) const
{
    return evaluate(
        model::build_prefill_workload(model, batch, seq_len));
}

sim::PerfReport
Engine::perf(const model::Workload& workload) const
{
    return sim::run_workload(design_, workload);
}

sim::NonlinearPerf
Engine::evaluate_nonlinear(const model::NonlinearWork& work) const
{
    return sim::run_nonlinear_only(design_, work);
}

sim::OpCost
Engine::gemm_cost(const model::GemmOp& op) const
{
    return sim::gemm_cost(design_, op);
}

sim::OpCost
Engine::nonlinear_cost(const model::NonlinearWork& work) const
{
    return sim::nonlinear_cost(design_, work);
}

sim::AreaBreakdown
Engine::area() const
{
    return sim::node_area(design_);
}

PreparedWeights
Engine::prepare_weights(const support::MatrixF& weights,
                        std::size_t group_size) const
{
    return PreparedWeights(weights, group_size);
}

GemmRun
Engine::run_woq_gemm(const PreparedWeights& weights,
                     const support::MatrixF& activations) const
{
    return run_prepared_gemm(weights, activations, design_.array_rows,
                             design_.array_cols);
}

GemmRun
Engine::run_woq_gemm(const support::MatrixF& weights,
                     const support::MatrixF& activations,
                     std::size_t group_size) const
{
    return run_woq_gemm(prepare_weights(weights, group_size),
                        activations);
}

std::vector<float>
Engine::run_softmax(std::span<const float> logits) const
{
    const auto exp_kernel =
        registry_.get_default(nonlinear::NonlinearOp::kExp);
    std::vector<float> out(logits.size());
    nonlinear::softmax_with(*exp_kernel, logits, out);
    return out;
}

std::vector<float>
Engine::run_activation(nonlinear::NonlinearOp op,
                       std::span<const float> values) const
{
    assert(op != nonlinear::NonlinearOp::kExp);
    const auto kernel = registry_.get_default(op);
    std::vector<float> out(values.size());
    kernel->apply_batch(values, out);
    return out;
}

}  // namespace serve
}  // namespace mugi
