#ifndef MUGI_SERVE_ENGINE_H_
#define MUGI_SERVE_ENGINE_H_

/**
 * @file
 * The serving-oriented Mugi API.
 *
 * The Engine is the immutable half of the request/engine split
 * production LLM servers use: it owns the accelerator design
 * (sim/design.h), a KernelRegistry of lazily-built shared VLP
 * kernels, optionally a functional transformer whose weights are
 * fixed at load time, and PreparedWeights handles that run INT4
 * group quantization exactly once.  Everything mutable belongs to a
 * Session (serve/session.h).
 *
 * Engine::step is the continuous-batching primitive: one call takes
 * a batch of heterogeneous sessions (different context lengths, KV
 * precisions, per-layer window tunings), builds a single mixed
 * Workload, runs the performance / cost / carbon / event-sim models
 * once, and -- when a functional model is loaded -- produces each
 * session's next-token logits through exactly the same numerical
 * path a standalone decode would take, so batched serving reproduces
 * single-request numerics bit-for-bit.
 *
 * Thread-safety: every member function is const and safe to call
 * concurrently, provided no Session appears in two concurrent step()
 * batches (sessions are single-request streams).  The engine's
 * mutable state is the relaxed-atomic session-id counter, the
 * internally-synchronized KernelRegistry, and the lazily-built
 * worker pool behind pool_mutex_ (a support::ThreadPool shared
 * across steps; step() holds a shared_ptr for its duration, so a
 * concurrent step that swaps the pool for a different thread count
 * never destroys one in use); everything else is immutable after
 * construction.
 * tests/concurrency/engine_step_stress_test.cc drives N threads of
 * step() over disjoint sessions through one engine under TSan, and
 * the registry/pool lock discipline is capability-checked by
 * -Wthread-safety (support/thread_annotations.h).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "carbon/carbon_model.h"
#include "model/transformer.h"
#include "model/workload.h"
#include "serve/kernel_registry.h"
#include "serve/prepared_weights.h"
#include "serve/session.h"
#include "sim/event_sim.h"
#include "sim/performance_model.h"
#include "support/mutex.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"

namespace mugi {
namespace serve {

/** Combined evaluation of one workload (or batched step) on a design. */
struct SystemReport {
    sim::PerfReport perf;
    sim::AreaBreakdown area;
    carbon::CarbonReport carbon;
    sim::EventSimResult event_sim;
};

/** What one batched Engine::step produced. */
struct StepResult {
    struct SessionOutput {
        units::SessionId session_id{0};
        /** Context length after the step. */
        units::Positions position{0};
        /** Next-token logits (empty for analytic-only engines). */
        std::vector<float> logits;
        /** Greedy next token (-1 for analytic-only engines). */
        int next_token = -1;
    };
    /** One entry per stepped session, in batch order. */
    std::vector<SessionOutput> outputs;
    /**
     * One entry per StepPlan prefill chunk, in plan order.  logits /
     * next_token are those after the chunk's last token, so a chunk
     * that completes a prompt already carries the request's first
     * generated token.
     */
    std::vector<SessionOutput> prefill_outputs;
    /** Aggregated evaluation of the whole batched step. */
    SystemReport report;
    /**
     * Simulated Mugi-array charge of this step's *functional*
     * projection GEMMs (QKV / output / FFN / LM head for every
     * decoded or prefilled token), per the VLP cycle model
     * (vlp::vlp_gemm_mugi_cycles).  The fused batched decode path
     * runs each projection as one GEMM over the whole batch, so its
     * column tiles -- and therefore cycles and sweeps -- amortize
     * across the batch (ceil(B/W) instead of B tiles), while
     * subscriptions (the MAC-equivalent count) are identical to the
     * sequential charge.  Zero for analytic-only steps.
     */
    vlp::GemmStats gemm;

    /** Worker-pool utilization of one pooled step. */
    struct WorkerStats {
        /** Worker threads the step ran on (0 = serial step). */
        std::size_t threads = 0;
        /** Pool tasks the step executed. */
        std::uint64_t tasks = 0;
        /**
         * Fraction of the workers' capacity (threads x wall time of
         * the step) spent executing tasks; the remainder is
         * idle_fraction -- joins at stage barriers, queue waits, and
         * the step's serial stages.  Approximate when concurrent
         * steps share the pool.
         */
        double busy_fraction = 0.0;
        double idle_fraction = 0.0;
    };
    /** Zeroed unless the step ran with StepPlan::threads > 0. */
    WorkerStats workers;
};

/**
 * One continuous-batching iteration's worth of work: decode steps
 * and chunked-prefill chunks that share a single mixed workload
 * evaluation (one WOQ weight stream for everything -- see
 * model::build_mixed_step_workload).  This is what serve::Scheduler
 * hands Engine::step each iteration.
 */
struct StepPlan {
    /** Sessions taking one decode step. */
    std::vector<Session*> decode_sessions;
    /**
     * Token each decode session consumes; empty for analytic-only
     * stepping, otherwise one per decode session.
     */
    std::vector<int> decode_tokens;

    struct PrefillEntry {
        Session* session = nullptr;
        /** Prompt chunk to feed (functional engines). */
        std::span<const int> tokens;
        /** Chunk length for analytic engines (tokens empty). */
        units::Tokens analytic_tokens{0};

        units::Tokens
        size() const
        {
            return tokens.empty() ? analytic_tokens
                                  : units::Tokens(tokens.size());
        }
    };
    /** Prefill chunks interleaved into this step. */
    std::vector<PrefillEntry> prefills;

    /**
     * Run the batch's functional decode through the fused path: the
     * batch's embeddings stack into one [batch, d_model] activation
     * matrix and each layer's QKV / output / FFN projections run as
     * one batched GEMM (model::TransformerModel::decode_layer_batch),
     * with per-session attention over each session's own KV cache.
     * Bit-identical to the sequential path; StepResult::gemm charges
     * the amortized fused cycle counts.  A batch listing the same
     * session twice falls back to the sequential path (occurrence
     * ordering is a data dependency the fused stack cannot honor),
     * as does a batch of one (nothing to fuse; identical charge).
     */
    bool fused_decode = true;

    /**
     * Worker threads to fan the step's functional work across
     * (0 = serial, the pinned fallback).  Pooled execution partitions
     * fused decode into per-projection row-range tasks and prefill
     * into per-chunk tasks, joining at the existing layer barriers;
     * every partition writes disjoint outputs and runs the identical
     * float-op sequence, so results are bit-identical to threads == 0
     * (pinned by tests/concurrency/pooled_step_test.cc).  Analytic
     * engines ignore this field.
     */
    std::size_t threads = 0;

    bool
    empty() const
    {
        return decode_sessions.empty() && prefills.empty();
    }
};

/** An immutable, shareable Mugi serving engine. */
class Engine {
  public:
    /** Kernels + workload evaluation only (no sessions). */
    explicit Engine(const sim::DesignConfig& design);

    /** + analytic sessions serving @p model-shaped requests. */
    Engine(const sim::DesignConfig& design,
           const model::ModelConfig& model);

    /** + functional sessions decoding through @p model's weights. */
    Engine(const sim::DesignConfig& design,
           std::shared_ptr<const model::TransformerModel> model);

    /** Paper-default Mugi node: H=256, window 8, coverage policy. */
    static std::unique_ptr<Engine> default_mugi();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    const sim::DesignConfig& design() const { return design_; }
    const KernelRegistry& kernels() const { return registry_; }
    bool has_model() const { return model_ != nullptr; }
    /** Set iff constructed with a model config or functional model. */
    const std::optional<model::ModelConfig>&
    model_config() const
    {
        return model_config_;
    }

    // ---- Request lifecycle. ----

    /**
     * Admit a new request.  Sessions start with the engine-default
     * VLP kernels (registry-built, shared) and may retune per layer.
     */
    Session create_session(const SessionOptions& options = {}) const;

    /**
     * Run one decode step over a batch of sessions.  @p tokens[i] is
     * the token session i consumes; pass an empty span for
     * analytic-only stepping (positions still advance).  Sessions
     * may have arbitrary, heterogeneous context lengths.
     */
    StepResult step(std::span<Session* const> sessions,
                    std::span<const int> tokens = {}) const;

    /** Single-session convenience wrapper over the batched step. */
    StepResult step(Session& session, int token) const;

    /**
     * One mixed serving iteration: every decode step and prefill
     * chunk in @p plan shares a single build_mixed_step_workload
     * evaluation, and functional decode/prefill runs the exact
     * single-request numerical path.  A session may appear more than
     * once among the decode entries; occurrences behave as that many
     * sequential steps (positions and modeled contexts advance per
     * occurrence).
     */
    StepResult step(const StepPlan& plan) const;

    /**
     * Feed a prompt through a functional session without per-step
     * reports; returns the logits after the last prompt token.
     */
    std::vector<float> prefill(Session& session,
                               std::span<const int> prompt) const;

    /**
     * Chunk-bounded prefill entry point (functional engines): feed
     * one chunk of a prompt and return the logits after its last
     * token.  Feeding a prompt chunk by chunk is bit-identical to one
     * prefill() call -- both take the token-by-token decode path --
     * which is the invariant that lets serve::Scheduler interleave
     * prefill chunks with decode batches.
     */
    std::vector<float> prefill_chunk(Session& session,
                                     std::span<const int> tokens) const;

    /**
     * Analytic counterpart of prefill_chunk: grow an analytic
     * session's modeled context by @p tokens positions (no functional
     * model required).
     */
    void advance_context(Session& session, units::Tokens tokens) const;

    // ---- Workload evaluation (the architecture-model facade). ----

    SystemReport evaluate(const model::Workload& workload) const;
    SystemReport evaluate_decode(const model::ModelConfig& model,
                                 std::size_t batch,
                                 std::size_t context) const;
    SystemReport evaluate_prefill(const model::ModelConfig& model,
                                  std::size_t batch,
                                  std::size_t seq_len) const;

    /** Performance model only (cheap; for sweeps). */
    sim::PerfReport perf(const model::Workload& workload) const;

    /** Nonlinear-only throughput study (Fig. 11). */
    sim::NonlinearPerf
    evaluate_nonlinear(const model::NonlinearWork& work) const;

    /** Per-op costs (Fig. 12-style class breakdowns). */
    sim::OpCost gemm_cost(const model::GemmOp& op) const;
    sim::OpCost nonlinear_cost(const model::NonlinearWork& work) const;

    sim::AreaBreakdown area() const;

    // ---- Functional kernels. ----

    /** Quantize @p weights once; reuse the handle across requests. */
    PreparedWeights prepare_weights(const support::MatrixF& weights,
                                    std::size_t group_size) const;

    /** WOQ GEMM against a prepared handle (no re-quantization). */
    GemmRun run_woq_gemm(const PreparedWeights& weights,
                         const support::MatrixF& activations) const;

    /** One-shot convenience: prepare + run.  Bit-identical to above. */
    GemmRun run_woq_gemm(const support::MatrixF& weights,
                         const support::MatrixF& activations,
                         std::size_t group_size) const;

    /** Functional VLP softmax over @p logits (one row). */
    std::vector<float> run_softmax(std::span<const float> logits) const;

    /** Functional VLP activation (SiLU or GELU) over @p values. */
    std::vector<float> run_activation(nonlinear::NonlinearOp op,
                                      std::span<const float> values)
        const;

    /**
     * The engine-default nonlinear kernels (VLP softmax-exp plus the
     * model's FFN activation).  Pointers remain valid for the
     * engine's lifetime.
     */
    model::NonlinearHooks default_hooks() const;

  private:
    std::vector<float> decode_token(Session& session, int token) const;
    /** Fused batched decode of @p plan's distinct decode sessions. */
    void step_decode_fused(const StepPlan& plan, StepResult& result,
                           support::ThreadPool* pool) const;
    support::MatrixF final_norm_logits(const support::MatrixF& x,
                                       support::ThreadPool* pool =
                                           nullptr) const;
    /**
     * The shared worker pool sized to @p threads, built lazily and
     * rebuilt when a plan asks for a different size.  Callers hold
     * the returned shared_ptr for the duration of their step, so a
     * rebuild never destroys a pool that still has work in flight.
     */
    std::shared_ptr<support::ThreadPool>
    worker_pool(std::size_t threads) const;

    sim::DesignConfig design_;
    std::optional<model::ModelConfig> model_config_;
    std::shared_ptr<const model::TransformerModel> model_;
    KernelRegistry registry_;
    mutable support::Mutex pool_mutex_;
    mutable std::shared_ptr<support::ThreadPool> pool_
        MUGI_GUARDED_BY(pool_mutex_);
    /**
     * Session-id source; the engine's only mutable state.  Bumped
     * with a relaxed fetch_add: uniqueness needs only RMW atomicity,
     * and nothing is published through the counter (see
     * create_session).
     */
    mutable std::atomic<std::uint64_t> next_session_id_{1};
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_ENGINE_H_
