#include "serve/kernel_registry.h"

namespace mugi {
namespace serve {

vlp::VlpConfig
default_vlp_config(nonlinear::NonlinearOp op, std::size_t mapping_rows)
{
    vlp::VlpConfig config;
    config.op = op;
    if (op == nonlinear::NonlinearOp::kExp) {
        // Softmax window covering the profiled [-3, 4] exponent band.
        config.lut_min_exp = -3;
        config.lut_max_exp = 4;
    } else {
        // SiLU/GELU cluster around zero (Fig. 4).
        config.lut_min_exp = -6;
        config.lut_max_exp = 1;
    }
    config.mapping_rows = mapping_rows;
    return config;
}

KernelRegistry::KernelRegistry(std::size_t mapping_rows)
    : mapping_rows_(mapping_rows)
{
}

KernelRegistry::Key
KernelRegistry::key_of(const vlp::VlpConfig& config)
{
    return Key(static_cast<int>(config.op), config.mantissa_bits,
               config.window_size, config.lut_min_exp,
               config.lut_max_exp, static_cast<int>(config.policy),
               config.mapping_rows, config.round_output);
}

std::shared_ptr<const vlp::VlpApproximator>
KernelRegistry::get(const vlp::VlpConfig& config) const
{
    const Key key = key_of(config);
    support::MutexLock lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_
                 .emplace(key, std::make_shared<vlp::VlpApproximator>(
                                   config))
                 .first;
    }
    return it->second;
}

std::shared_ptr<const vlp::VlpApproximator>
KernelRegistry::get_default(nonlinear::NonlinearOp op) const
{
    return get(default_vlp_config(op, mapping_rows_));
}

std::size_t
KernelRegistry::size() const
{
    support::MutexLock lock(mu_);
    return cache_.size();
}

}  // namespace serve
}  // namespace mugi
