#ifndef MUGI_SERVE_KERNEL_REGISTRY_H_
#define MUGI_SERVE_KERNEL_REGISTRY_H_

/**
 * @file
 * Shared cache of VLP nonlinear kernels.
 *
 * Building a VlpApproximator materializes its LUT (Sec. 3.1) and
 * derives the window machinery of Sec. 3.3; doing that per request --
 * as the removed one-shot MugiSystem facade did per instance --
 * wastes both time and the point of the paper's design: the LUT is
 * static state that every request on the node shares.  The registry
 * builds
 * each (op, VlpConfig) kernel lazily, exactly once, and hands out
 * shared const references.
 *
 * Thread-safety: internally synchronized -- all member functions are
 * safe to call concurrently (the cache is MUGI_GUARDED_BY the
 * registry mutex, checked by -Wthread-safety; two concurrent get()
 * calls with the same key return the same instance, exercised by
 * tests/concurrency/kernel_registry_stress_test.cc under TSan).  The
 * returned approximators are immutable (see the guarantee documented
 * in vlp/vlp_approximator.h) and may be used from any number of
 * threads simultaneously.
 */

#include <cstddef>
#include <map>
#include <memory>

#include "support/mutex.h"
#include "support/thread_annotations.h"
#include "vlp/vlp_approximator.h"

namespace mugi {
namespace serve {

/**
 * The per-op default VLP configuration a Mugi node deploys: the
 * profiled softmax exponent band [-3, 4] for exp and the
 * zero-clustered [-6, 1] band for SiLU/GELU (Fig. 4), with one
 * mapping per @p mapping_rows inputs (one array load, Sec. 3.3).
 */
vlp::VlpConfig default_vlp_config(nonlinear::NonlinearOp op,
                                  std::size_t mapping_rows);

/** Lazily-built, cached, shareable VLP kernels keyed by configuration. */
class KernelRegistry {
  public:
    /** @param mapping_rows Array height H, the default mapping size. */
    explicit KernelRegistry(std::size_t mapping_rows);

    /**
     * The kernel for @p config, built on first use.  Two calls with
     * the same configuration return the same instance.
     */
    [[nodiscard]] std::shared_ptr<const vlp::VlpApproximator>
    get(const vlp::VlpConfig& config) const;

    /** The kernel for the node-default configuration of @p op. */
    [[nodiscard]] std::shared_ptr<const vlp::VlpApproximator>
    get_default(nonlinear::NonlinearOp op) const;

    /** Number of distinct kernels built so far. */
    std::size_t size() const;

    std::size_t mapping_rows() const { return mapping_rows_; }

  private:
    /** Strict-weak-order key over every VlpConfig field. */
    using Key = std::tuple<int, int, int, int, int, int, std::size_t,
                           bool>;
    static Key key_of(const vlp::VlpConfig& config);

    std::size_t mapping_rows_;
    mutable support::Mutex mu_;
    mutable std::map<Key, std::shared_ptr<const vlp::VlpApproximator>>
        cache_ MUGI_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_KERNEL_REGISTRY_H_
