#include "serve/prepared_weights.h"

#include <algorithm>
#include <cassert>

namespace mugi {
namespace serve {

PreparedWeights::PreparedWeights(const support::MatrixF& weights,
                                 std::size_t group_size)
{
    auto impl = std::make_shared<Impl>();
    impl->q = quant::quantize_int4(weights, group_size);
    impl->subs = vlp::SubscriptionLists(impl->q.values);
    impl_ = std::move(impl);
}

GemmRun
run_prepared_gemm(const PreparedWeights& weights,
                  const support::MatrixF& activations,
                  std::size_t array_rows, std::size_t array_cols)
{
    const quant::QuantizedMatrix& q = weights.quantized();
    const vlp::SubscriptionLists& subs = weights.subscriptions();
    const std::size_t group_size = q.group_size;
    const std::size_t rows = q.rows();
    const std::size_t b_total = activations.cols();
    assert(q.cols() == activations.rows());

    GemmRun run;
    run.out = support::MatrixF(rows, b_total, 0.0f);

    // The temporal array computes per-group partial sums in INT4 x
    // BF16; the vector array applies the per-group scale during
    // dequantization (Sec. 4.2).  The sweep-accumulator kernel runs
    // straight over the handle's cached schedule -- each group is a
    // consecutive k-run, so no weight or activation submatrices are
    // materialized -- and the partial buffer is folded into the
    // output with the group's scale in one pass.
    const std::uint64_t tiles =
        ((rows + array_rows - 1) / array_rows) *
        ((b_total + array_cols - 1) / array_cols);
    support::MatrixF partial(rows, b_total);
    const std::size_t groups =
        group_size == 0 ? 0 : (q.cols() + group_size - 1) / group_size;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t begin = g * group_size;
        const std::size_t end =
            std::min(begin + group_size, q.cols());
        std::fill(partial.data().begin(), partial.data().end(), 0.0f);
        vlp::vlp_gemm_subscribed_packed(subs, activations, begin, end,
                                        partial);
        for (std::size_t r = 0; r < rows; ++r) {
            const float scale = q.scales.at(r, g);
            const float* prow = partial.row_data(r);
            float* orow = run.out.row_data(r);
            for (std::size_t b = 0; b < b_total; ++b) {
                orow[b] += prow[b] * scale;
            }
        }
        run.sweeps += tiles * (end - begin);
        run.subscriptions += static_cast<std::uint64_t>(rows) *
                             (end - begin) * b_total;
    }
    run.cycles = run.sweeps * (1ull << numerics::kInt4MagnitudeBits);
    return run;
}

}  // namespace serve
}  // namespace mugi
