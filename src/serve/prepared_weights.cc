#include "serve/prepared_weights.h"

#include <algorithm>

#include "vlp/vlp_gemm.h"

namespace mugi {
namespace serve {

PreparedWeights::PreparedWeights(const support::MatrixF& weights,
                                 std::size_t group_size)
{
    auto impl = std::make_shared<Impl>();
    impl->q = quant::quantize_int4(weights, group_size);
    impl_ = std::move(impl);
}

GemmRun
run_prepared_gemm(const PreparedWeights& weights,
                  const support::MatrixF& activations,
                  std::size_t array_rows, std::size_t array_cols)
{
    const quant::QuantizedMatrix& q = weights.quantized();
    const std::size_t group_size = q.group_size;

    GemmRun run;
    run.out = support::MatrixF(q.rows(), activations.cols(), 0.0f);

    // The temporal array computes per-group partial sums in INT4 x
    // BF16; the vector array applies the per-group scale during
    // dequantization (Sec. 4.2).
    const std::size_t groups =
        (q.cols() + group_size - 1) / group_size;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t begin = g * group_size;
        const std::size_t end =
            std::min(begin + group_size, q.cols());
        vlp::Int4Matrix wg(q.rows(), end - begin);
        support::MatrixF ag(end - begin, activations.cols());
        for (std::size_t r = 0; r < q.rows(); ++r) {
            for (std::size_t c = begin; c < end; ++c) {
                wg.at(r, c - begin) = q.values.at(r, c);
            }
        }
        for (std::size_t c = begin; c < end; ++c) {
            for (std::size_t b = 0; b < activations.cols(); ++b) {
                ag.at(c - begin, b) = activations.at(c, b);
            }
        }
        const vlp::VlpGemmResult partial = vlp::vlp_gemm_mugi(
            wg, ag, static_cast<int>(array_rows),
            static_cast<int>(array_cols));
        run.cycles += partial.cycles;
        for (std::size_t r = 0; r < run.out.rows(); ++r) {
            const float scale = q.scales.at(r, g);
            for (std::size_t b = 0; b < run.out.cols(); ++b) {
                run.out.at(r, b) += partial.out.at(r, b) * scale;
            }
        }
    }
    return run;
}

}  // namespace serve
}  // namespace mugi
