#ifndef MUGI_SERVE_PREPARED_WEIGHTS_H_
#define MUGI_SERVE_PREPARED_WEIGHTS_H_

/**
 * @file
 * Load-time weight preparation for the serving path.
 *
 * The removed MugiSystem facade re-ran quant::quantize_int4 on
 * every call -- a per-request cost for state that never changes.  A
 * PreparedWeights handle performs the INT4 group quantization
 * (Sec. 2.3.2) exactly once at load time; every subsequent GEMM
 * against it reuses the codes and per-group scales.  Handles are
 * cheap to copy (shared immutable storage) and safe to use from any
 * number of threads concurrently.
 */

#include <cstdint>
#include <memory>

#include "quant/group_quant.h"
#include "support/matrix.h"

namespace mugi {
namespace serve {

/** Output + simulated cycle count of one functional GEMM. */
struct GemmRun {
    support::MatrixF out;
    std::uint64_t cycles = 0;
};

/** An immutable, shareable INT4-quantized weight matrix. */
class PreparedWeights {
  public:
    PreparedWeights() = default;

    /** Quantize @p weights once; the handle owns the result. */
    PreparedWeights(const support::MatrixF& weights,
                    std::size_t group_size);

    bool valid() const { return impl_ != nullptr; }
    std::size_t rows() const { return impl_->q.rows(); }
    std::size_t cols() const { return impl_->q.cols(); }
    std::size_t group_size() const { return impl_->q.group_size; }

    /** The INT4 codes + scales shared by every GEMM on this handle. */
    const quant::QuantizedMatrix& quantized() const { return impl_->q; }

    /** Packed INT4 + BF16-scale storage footprint in bytes. */
    std::size_t byte_size() const { return impl_->q.byte_size(); }

  private:
    struct Impl {
        quant::QuantizedMatrix q;
    };
    std::shared_ptr<const Impl> impl_;
};

/**
 * Functional WOQ GEMM against prepared weights: temporal VLP GEMM of
 * the INT4 codes against BF16 activations, per-group dequantization
 * by the vector array (Sec. 4.2).  Bit-identical to quantizing and
 * running in one shot with the same group size.
 *
 * @param array_rows Array height H; @param array_cols array width.
 */
GemmRun run_prepared_gemm(const PreparedWeights& weights,
                          const support::MatrixF& activations,
                          std::size_t array_rows,
                          std::size_t array_cols);

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_PREPARED_WEIGHTS_H_
