#ifndef MUGI_SERVE_PREPARED_WEIGHTS_H_
#define MUGI_SERVE_PREPARED_WEIGHTS_H_

/**
 * @file
 * Load-time weight preparation for the serving path.
 *
 * The removed MugiSystem facade re-ran quant::quantize_int4 on
 * every call -- a per-request cost for state that never changes.  A
 * PreparedWeights handle performs the INT4 group quantization
 * (Sec. 2.3.2) exactly once at load time, and additionally builds the
 * temporal-subscription schedule (vlp::SubscriptionLists) of the
 * codes: per reduction column k, the rows bucketed by their magnitude
 * firing cycle, laid out contiguously with quantization groups as
 * consecutive k-runs (the group-major packed layout).  Every
 * subsequent GEMM against the handle runs the sweep-accumulator
 * kernel directly over that schedule -- no per-group weight or
 * activation copies -- and folds each group's scale into the output
 * in one pass.  Handles are cheap to copy (shared immutable storage).
 *
 * Thread-safety: immutable after construction -- the codes, scales
 * and subscription schedule behind a handle are built once and never
 * mutated, so one PreparedWeights may back GEMMs on any number of
 * threads concurrently
 * (tests/concurrency/engine_step_stress_test.cc races exactly that
 * under TSan).
 */

#include <cstdint>
#include <memory>

#include "quant/group_quant.h"
#include "support/matrix.h"
#include "vlp/vlp_gemm.h"

namespace mugi {
namespace serve {

/** Output + simulated work counters of one functional GEMM. */
struct GemmRun {
    support::MatrixF out;
    std::uint64_t cycles = 0;      ///< Simulated cycle count.
    std::uint64_t sweeps = 0;      ///< Temporal sweeps executed.
    std::uint64_t subscriptions = 0;  ///< Temporal subscriptions fired.

    vlp::GemmStats
    stats() const
    {
        return {cycles, sweeps, subscriptions};
    }
};

/** An immutable, shareable INT4-quantized weight matrix. */
class PreparedWeights {
  public:
    PreparedWeights() = default;

    /** Quantize @p weights once; the handle owns the result. */
    PreparedWeights(const support::MatrixF& weights,
                    std::size_t group_size);

    bool valid() const { return impl_ != nullptr; }
    std::size_t rows() const { return impl_->q.rows(); }
    std::size_t cols() const { return impl_->q.cols(); }
    std::size_t group_size() const { return impl_->q.group_size; }

    /** The INT4 codes + scales shared by every GEMM on this handle. */
    const quant::QuantizedMatrix& quantized() const { return impl_->q; }

    /**
     * The precomputed sweep schedule of the codes (built once at
     * construction, shared by every GEMM on this handle).
     */
    const vlp::SubscriptionLists&
    subscriptions() const
    {
        return impl_->subs;
    }

    /**
     * Packed INT4 + BF16-scale storage footprint in bytes -- the
     * device-resident weight bytes WOQ's 4x compression is about.
     * Deliberately excludes the host-side SubscriptionLists (about
     * 4 bytes per weight): that schedule only exists to accelerate
     * the *simulation*; the temporal array subscribes natively and
     * stores nothing beyond the codes.
     */
    std::size_t byte_size() const { return impl_->q.byte_size(); }

  private:
    struct Impl {
        quant::QuantizedMatrix q;
        vlp::SubscriptionLists subs;
    };
    std::shared_ptr<const Impl> impl_;
};

/**
 * Functional WOQ GEMM against prepared weights: temporal VLP GEMM of
 * the INT4 codes against BF16 activations, per-group dequantization
 * by the vector array (Sec. 4.2).  Bit-identical to quantizing and
 * running in one shot with the same group size, and to the pre-cached
 * execution that copied per-group weight/activation submatrices
 * (tests/serve/prepared_weights_test.cc pins both).
 *
 * @param array_rows Array height H; @param array_cols array width.
 */
GemmRun run_prepared_gemm(const PreparedWeights& weights,
                          const support::MatrixF& activations,
                          std::size_t array_rows,
                          std::size_t array_cols);

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_PREPARED_WEIGHTS_H_
