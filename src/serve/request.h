#ifndef MUGI_SERVE_REQUEST_H_
#define MUGI_SERVE_REQUEST_H_

/**
 * @file
 * The request side of the request-lifecycle serving API.
 *
 * A Request is what callers submit to serve::Scheduler: the prompt
 * (real tokens for functional engines, a token count for analytic
 * Table-1-scale serving), generation limits, and an optional
 * streaming callback.  A FinishedRequest is what comes back: the
 * generated tokens plus the modeled-clock latency milestones every
 * serving paper reports (queue wait, TTFT, TPOT).
 *
 * Thread-safety: externally serialized -- Request and
 * FinishedRequest are plain value types owned by one submitter /
 * one scheduler at a time; the on_token callback is invoked from
 * whichever thread runs Scheduler::step and must synchronize its own
 * captures.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "serve/session.h"

namespace mugi {
namespace serve {

/** Why a request left the scheduler. */
enum class FinishReason {
    kMaxTokens,  ///< Generated max_new_tokens.
    kStopToken,  ///< Emitted the request's stop token.
    /**
     * Retired by Scheduler::cancel (a caller's DELETE / disconnect).
     * Tokens already emitted stand; the KV blocks are released on the
     * spot, exactly as a natural finish releases them.
     */
    kCancelled,
    /** Request::deadline_s passed before generation completed. */
    kDeadline,
    /** Retired by a server shutdown that did not drain. */
    kShutdown,
    /**
     * Load-shed before admission: the bounded admission queue
     * (SchedulerConfig::max_queued_requests) was over its limit and
     * the shed policy picked this request, or the server's command
     * channel refused it.  Never emitted tokens; never held KV.
     */
    kShed,
    /**
     * Waited in the admission queue longer than its admission
     * timeout (Request::admission_timeout_s, falling back to
     * SchedulerConfig::admission_timeout_s).  Distinct from
     * kDeadline: admission timeouts bound *queue wait only* and can
     * never fire once the request is admitted.
     */
    kAdmissionTimeout,
};

const char* finish_reason_name(FinishReason reason);

/**
 * Streaming callback: (request id, 0-based index of the generated
 * token, the token; -1 on analytic engines).  Fired as each token is
 * produced, before the request finishes.
 */
using TokenCallback =
    std::function<void(std::uint64_t, std::size_t, int)>;

/** One generation request submitted to a Scheduler. */
struct Request {
    /** Prompt tokens (functional engines). */
    std::vector<int> prompt;
    /**
     * Prompt length for analytic engines (no real tokens); ignored
     * when @p prompt is non-empty.
     */
    units::Tokens analytic_prompt_tokens{0};

    /** Generation stops after this many new tokens. */
    units::Tokens max_new_tokens{16};
    /**
     * Generation stops early when this token is emitted.  Functional
     * engines only: analytic requests have no real tokens (every
     * emission is -1) and always run to max_new_tokens.
     */
    std::optional<int> stop_token;

    /**
     * Modeled-clock arrival time: the scheduler will not admit the
     * request before its simulated clock reaches this, which is how
     * staggered / bursty arrival traces are replayed.
     */
    double arrival_time_s = 0.0;

    /**
     * Preemption priority: when the KV block pool runs dry
     * mid-decode, the scheduler evicts the running request with the
     * *lowest* priority (ties: the latest-admitted goes first) and
     * re-queues it for recompute-style re-prefill.  Higher values
     * survive longer.
     */
    int priority = 0;

    /**
     * Absolute modeled-clock deadline; 0 = none.  A request still
     * queued or generating when the scheduler's clock reaches this
     * is retired with FinishReason::kDeadline -- tokens already
     * emitted stand, and its KV blocks are released exactly as on a
     * natural finish.  Deadlines are checked at the end of every
     * scheduling iteration, so a deadline passing mid-iteration
     * still delivers that iteration's token.
     */
    double deadline_s = 0.0;

    /**
     * Maximum modeled-clock *queue wait* before the scheduler gives
     * up on admitting this request and retires it with
     * FinishReason::kAdmissionTimeout; 0 = use
     * SchedulerConfig::admission_timeout_s (whose 0 means no limit).
     * Unlike deadline_s (an absolute completion bound that keeps
     * ticking after admission), an admission timeout only covers the
     * arrival -> admission window: once admitted the request runs to
     * its natural finish.  Requests re-queued by preemption were
     * already admitted and are exempt.
     */
    double admission_timeout_s = 0.0;

    /**
     * Analytic prefix caching: requests carrying the same nonzero
     * prefix_group share their first prefix_tokens prompt tokens (a
     * common system prompt in a modeled trace).  The scheduler's
     * prefix index treats those blocks as content-equal, mirrors
     * their KV bytes through *refcounted* pool reservations (charged
     * once however many sharers are resident) and skips their
     * prefill chunks once a resident request has computed them.
     * Functional engines ignore both fields -- sharing is discovered
     * from the real prompt tokens.
     */
    std::uint64_t prefix_group = 0;
    /** Shared-prefix length in tokens (with prefix_group). */
    units::Tokens prefix_tokens{0};

    /** Per-session knobs (KV precision); initial_context must be 0 --
     *  context is built by the scheduler's chunked prefill. */
    SessionOptions session;

    /** Optional per-token streaming hook. */
    TokenCallback on_token;

    units::Tokens
    prompt_tokens() const
    {
        return prompt.empty() ? analytic_prompt_tokens
                              : units::Tokens(prompt.size());
    }
};

/** A completed request with its lifecycle milestones. */
struct FinishedRequest {
    std::uint64_t id = 0;
    FinishReason reason = FinishReason::kMaxTokens;

    /** Generated tokens in order (empty on analytic engines). */
    std::vector<int> tokens;
    units::Tokens prompt_tokens{0};
    /** Tokens generated (counts analytic generations too). */
    units::Tokens generated{0};
    /**
     * Times this request was evicted under KV-memory pressure and
     * re-prefilled.  Preemption changes *when* its tokens were
     * computed, never which tokens came out.
     */
    std::size_t preemptions = 0;

    // Modeled-clock milestones.
    double arrival_s = 0.0;      ///< Request::arrival_time_s.
    double admitted_s = 0.0;     ///< Left the queue, session created.
    /**
     * Prefill done, first token out.  Stays 0 when the request never
     * emitted a token (max_new_tokens == 0): there is no first token
     * to stamp, and such requests are excluded from the scheduler's
     * TTFT aggregates (they still count toward queue stats).
     */
    double first_token_s = 0.0;
    double finished_s = 0.0;     ///< Last token out.

    /** Admission-queue wait. */
    double queue_s() const { return admitted_s - arrival_s; }
    /**
     * Time to first token, from arrival (queue + prefill); 0 when no
     * token was ever emitted.
     */
    double
    ttft_s() const
    {
        return generated > units::Tokens(0)
                   ? first_token_s - arrival_s
                   : 0.0;
    }
    /** Mean time per output token after the first. */
    double
    tpot_s() const
    {
        return generated > units::Tokens(1)
                   ? (finished_s - first_token_s) /
                         static_cast<double>(generated.value() - 1)
                   : 0.0;
    }
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_REQUEST_H_
