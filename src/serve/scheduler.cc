#include "serve/scheduler.h"

#include <algorithm>
#include <cassert>

#include "quant/kv_cache.h"

namespace mugi {
namespace serve {

const char*
finish_reason_name(FinishReason reason)
{
    switch (reason) {
      case FinishReason::kMaxTokens:
        return "max_tokens";
      case FinishReason::kStopToken:
        return "stop_token";
    }
    return "?";
}

Scheduler::Scheduler(const Engine& engine,
                     const SchedulerConfig& config)
    : engine_(engine), config_(config),
      functional_(engine.has_model())
{
    // The assert is the contract, exactly as in
    // Engine::create_session: a model (config) is required.
    assert(engine.model_config().has_value() &&
           "scheduling needs a model (config) at engine build");
    if (config_.max_batch == 0) {
        policy_ = BatchPolicy::derive(engine.design(),
                                      *engine.model_config(),
                                      config_.policy_context);
    }
}

std::uint64_t
Scheduler::submit(Request request)
{
    assert((!functional_ || !request.prompt.empty()) &&
           "functional requests need a non-empty prompt");
    assert(request.session.initial_context == 0 &&
           "context is built by the scheduler's chunked prefill");
    request.session.initial_context = 0;
    const std::uint64_t id = ++submitted_;
    const double arrival =
        std::max(request.arrival_time_s, now_s_);
    if (functional_ && request.prompt.empty()) {
        // There is nothing to decode from: retire the request
        // immediately instead of feeding token -1 into the model
        // (the assert above catches this in debug builds).  All
        // milestones collapse onto the arrival instant, so queue /
        // TTFT / TPOT are zero and the stats() means stay exact.
        FinishedRequest f;
        f.id = id;
        f.reason = FinishReason::kMaxTokens;
        f.arrival_s = arrival;
        f.admitted_s = arrival;
        f.first_token_s = arrival;
        f.finished_s = arrival;
        ++finished_count_;
        finished_.push_back(std::move(f));
        return id;
    }
    QueuedRequest queued;
    queued.id = id;
    queued.arrival_s = arrival;
    queued.request = std::move(request);
    queue_.push_back(std::move(queued));
    return id;
}

std::size_t
Scheduler::projected_kv_bytes(const Request& request) const
{
    const model::ModelConfig& c = *engine_.model_config();
    return c.num_layers *
           quant::KvCache::bytes_per_position(
               c.num_kv_heads, c.head_dim(),
               request.session.kv_precision) *
           (request.prompt_tokens() + request.max_new_tokens);
}

std::size_t
Scheduler::committed_kv_bytes() const
{
    std::size_t total = 0;
    for (const ActiveRequest& a : active_) {
        total += a.projected_kv_bytes;
    }
    return total;
}

std::size_t
Scheduler::kv_bytes_in_use() const
{
    const model::ModelConfig& c = *engine_.model_config();
    std::size_t total = 0;
    for (const ActiveRequest& a : active_) {
        total += a.session.kv_memory_bytes(c.num_layers,
                                           c.num_kv_heads,
                                           c.head_dim());
    }
    return total;
}

void
Scheduler::admit_arrivals()
{
    // FIFO admission: the queue head blocks everything behind it, so
    // an expensive request cannot be starved by a stream of cheap
    // later ones.
    while (!queue_.empty() && active_.size() < target_batch()) {
        QueuedRequest& head = queue_.front();
        if (head.arrival_s > now_s_) {
            break;  // Not arrived yet on the modeled clock.
        }
        const std::size_t projected =
            projected_kv_bytes(head.request);
        if (config_.kv_budget_bytes != 0 && !active_.empty() &&
            committed_kv_bytes() + projected >
                config_.kv_budget_bytes) {
            break;  // Would overcommit the KV budget.
        }
        const SessionOptions options = head.request.session;
        ActiveRequest a{.id = head.id,
                        .request = std::move(head.request),
                        .session = engine_.create_session(options)};
        a.projected_kv_bytes = projected;
        a.arrival_s = head.arrival_s;
        a.admitted_s = now_s_;
        queue_.pop_front();
        active_.push_back(std::move(a));
    }
}

bool
Scheduler::emit_token(ActiveRequest& req, int token)
{
    if (functional_) {
        req.tokens.push_back(token);
    }
    ++req.generated;
    ++generated_tokens_;
    if (req.request.on_token) {
        req.request.on_token(req.id, req.generated - 1, token);
    }
    req.pending_token = token;
    if (functional_ && req.request.stop_token &&
        token == *req.request.stop_token) {
        finish(req, FinishReason::kStopToken);
        return true;
    }
    if (req.generated >= req.request.max_new_tokens) {
        finish(req, FinishReason::kMaxTokens);
        return true;
    }
    return false;
}

void
Scheduler::finish(ActiveRequest& req, FinishReason reason)
{
    FinishedRequest f;
    f.id = req.id;
    f.reason = reason;
    f.tokens = std::move(req.tokens);
    f.prompt_tokens = req.request.prompt_tokens();
    f.generated = req.generated;
    f.arrival_s = req.arrival_s;
    f.admitted_s = req.admitted_s;
    f.first_token_s = req.first_token_s;
    f.finished_s = now_s_;
    sum_queue_s_ += f.queue_s();
    sum_ttft_s_ += f.ttft_s();
    max_ttft_s_ = std::max(max_ttft_s_, f.ttft_s());
    sum_tpot_s_ += f.tpot_s();
    ++finished_count_;
    finished_.push_back(std::move(f));
    req.done = true;
}

bool
Scheduler::step()
{
    if (queue_.empty() && active_.empty()) {
        return false;
    }
    // Idle scheduler, all queued arrivals in the future: fast-forward
    // the modeled clock to the next arrival.
    if (active_.empty() && !queue_.empty() &&
        queue_.front().arrival_s > now_s_) {
        idle_s_ += queue_.front().arrival_s - now_s_;
        now_s_ = queue_.front().arrival_s;
    }
    admit_arrivals();
    if (active_.empty()) {
        return !queue_.empty();
    }

    // Build the iteration's mixed plan: one prefill chunk per
    // prompt-phase request, one decode step per generation-phase
    // request; everything shares one weight-stream-shared workload.
    StepPlan plan;
    std::vector<std::size_t> prefill_owner;
    std::vector<std::size_t> decode_owner;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        ActiveRequest& a = active_[i];
        if (!a.prefill_done()) {
            const std::size_t remaining =
                a.request.prompt_tokens() - a.prompt_fed;
            const std::size_t chunk = std::min(
                config_.prefill_chunk_tokens == 0
                    ? remaining
                    : config_.prefill_chunk_tokens,
                remaining);
            StepPlan::PrefillEntry entry;
            entry.session = &a.session;
            if (functional_) {
                entry.tokens =
                    std::span<const int>(a.request.prompt)
                        .subspan(a.prompt_fed, chunk);
            } else {
                entry.analytic_tokens = chunk;
            }
            plan.prefills.push_back(entry);
            prefill_owner.push_back(i);
        } else {
            plan.decode_sessions.push_back(&a.session);
            if (functional_) {
                plan.decode_tokens.push_back(a.pending_token);
            }
            decode_owner.push_back(i);
        }
    }

    const StepResult result = engine_.step(plan);
    horizon_.add(result.report.perf);
    now_s_ = idle_s_ + horizon_.elapsed_s();
    decode_tokens_ += plan.decode_sessions.size();
    for (const StepPlan::PrefillEntry& entry : plan.prefills) {
        prefill_tokens_ += entry.size();
    }

    for (std::size_t k = 0; k < result.outputs.size(); ++k) {
        emit_token(active_[decode_owner[k]],
                   result.outputs[k].next_token);
    }
    for (std::size_t k = 0; k < result.prefill_outputs.size(); ++k) {
        ActiveRequest& a = active_[prefill_owner[k]];
        a.prompt_fed += plan.prefills[k].size();
        if (!a.prefill_done()) {
            continue;
        }
        // Prefill complete: the chunk's final logits already carry
        // the request's first generated token (TTFT is now).
        a.first_token_s = now_s_;
        if (a.request.max_new_tokens == 0) {
            finish(a, FinishReason::kMaxTokens);
        } else {
            emit_token(a, result.prefill_outputs[k].next_token);
        }
    }

    // Peak footprint is observed before retiring finished requests:
    // their caches were resident through this iteration.
    peak_kv_bytes_ = std::max(peak_kv_bytes_, kv_bytes_in_use());
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](const ActiveRequest& a) {
                                     return a.done;
                                 }),
                  active_.end());
    return !(queue_.empty() && active_.empty());
}

std::vector<FinishedRequest>
Scheduler::run()
{
    while (step()) {
    }
    return take_finished();
}

std::vector<FinishedRequest>
Scheduler::take_finished()
{
    std::vector<FinishedRequest> out;
    out.swap(finished_);
    return out;
}

ServerStats
Scheduler::stats() const
{
    ServerStats s;
    s.horizon = horizon_.total();
    s.steps = horizon_.steps();
    s.submitted = submitted_;
    s.finished = finished_count_;
    s.active = active_.size();
    s.queued = queue_.size();
    s.decode_tokens = decode_tokens_;
    s.prefill_tokens = prefill_tokens_;
    s.generated_tokens = generated_tokens_;
    s.kv_budget_bytes = config_.kv_budget_bytes;
    s.peak_kv_bytes = peak_kv_bytes_;
    s.target_batch = target_batch();
    if (finished_count_ > 0) {
        const double n = static_cast<double>(finished_count_);
        s.mean_queue_s = sum_queue_s_ / n;
        s.mean_ttft_s = sum_ttft_s_ / n;
        s.max_ttft_s = max_ttft_s_;
        s.mean_tpot_s = sum_tpot_s_ / n;
    }
    return s;
}

}  // namespace serve
}  // namespace mugi
