#include "serve/scheduler.h"

#include <algorithm>
#include <cassert>

#include "quant/kv_cache.h"

namespace mugi {
namespace serve {

const char*
finish_reason_name(FinishReason reason)
{
    switch (reason) {
      case FinishReason::kMaxTokens:
        return "max_tokens";
      case FinishReason::kStopToken:
        return "stop_token";
    }
    return "?";
}

Scheduler::Scheduler(const Engine& engine,
                     const SchedulerConfig& config)
    : engine_(engine), config_(config),
      functional_(engine.has_model()),
      pool_(config.kv_budget_bytes, config.kv_block_tokens)
{
    // The assert is the contract, exactly as in
    // Engine::create_session: a model (config) is required.
    assert(engine.model_config().has_value() &&
           "scheduling needs a model (config) at engine build");
    if (config_.max_batch == 0) {
        policy_ = BatchPolicy::derive(engine.design(),
                                      *engine.model_config(),
                                      config_.policy_context);
    }
}

std::uint64_t
Scheduler::submit(Request request)
{
    assert((!functional_ || !request.prompt.empty()) &&
           "functional requests need a non-empty prompt");
    assert(request.session.initial_context == 0 &&
           "context is built by the scheduler's chunked prefill");
    request.session.initial_context = 0;
    const std::uint64_t id = ++submitted_;
    const double arrival =
        std::max(request.arrival_time_s, now_s_);
    if (functional_ && request.prompt.empty()) {
        // There is nothing to decode from: retire the request
        // immediately instead of feeding token -1 into the model
        // (the assert above catches this in debug builds).  All
        // milestones collapse onto the arrival instant, so queue /
        // TTFT / TPOT are zero and the stats() means stay exact.
        FinishedRequest f;
        f.id = id;
        f.reason = FinishReason::kMaxTokens;
        f.arrival_s = arrival;
        f.admitted_s = arrival;
        f.first_token_s = arrival;
        f.finished_s = arrival;
        ++finished_count_;
        finished_.push_back(std::move(f));
        return id;
    }
    QueuedRequest queued;
    queued.id = id;
    queued.arrival_s = arrival;
    queued.request = std::move(request);
    queue_.push_back(std::move(queued));
    return id;
}

std::size_t
Scheduler::block_group_bytes(quant::KvPrecision precision) const
{
    const model::ModelConfig& c = *engine_.model_config();
    return c.num_layers * config_.kv_block_tokens *
           quant::KvCache::bytes_per_position(c.num_kv_heads,
                                              c.head_dim(), precision);
}

std::size_t
Scheduler::blocks_for(std::size_t positions) const
{
    return (positions + config_.kv_block_tokens - 1) /
           config_.kv_block_tokens;
}

std::size_t
Scheduler::admission_bytes(const QueuedRequest& queued) const
{
    const quant::KvPrecision precision =
        queued.request.session.kv_precision;
    if (config_.admission == AdmissionMode::kFullProjection) {
        return block_group_bytes(precision) *
               blocks_for(queued.request.prompt_tokens() +
                          queued.request.max_new_tokens);
    }
    // Paged reservation: the blocks covering the (possibly resumed)
    // prompt plus the first decode append -- growth beyond that is
    // allocated on demand and defended by preemption.
    const std::size_t feed =
        queued.request.prompt_tokens() + queued.resume_generated;
    return block_group_bytes(precision) * blocks_for(feed + 1);
}

std::size_t
Scheduler::committed_bytes(const ActiveRequest& req) const
{
    if (config_.admission == AdmissionMode::kFullProjection) {
        return req.projected_bytes;
    }
    const std::size_t positions =
        std::max(req.feed_tokens, req.session.position()) + 1;
    return block_group_bytes(req.session.kv_precision()) *
           blocks_for(positions);
}

std::size_t
Scheduler::committed_total() const
{
    std::size_t total = 0;
    for (const ActiveRequest& a : active_) {
        total += committed_bytes(a);
    }
    return total;
}

std::size_t
Scheduler::kv_bytes_in_use() const
{
    return pool_.bytes_in_use();
}

std::size_t
Scheduler::step_append_tokens(const ActiveRequest& req) const
{
    if (req.prefill_done()) {
        return 1;  // One decode append per layer cache.
    }
    const std::size_t remaining = req.feed_tokens - req.prompt_fed;
    return std::min(config_.prefill_chunk_tokens == 0
                        ? remaining
                        : config_.prefill_chunk_tokens,
                    remaining);
}

void
Scheduler::preempt(std::size_t index)
{
    ActiveRequest victim = std::move(active_[index]);
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(index));
    ++preemptions_;
    if (!functional_) {
        pool_.unreserve(victim.analytic_reserved_bytes);
    }
    QueuedRequest q;
    q.id = victim.id;
    q.request = std::move(victim.request);
    q.arrival_s = victim.arrival_s;
    q.resumed = true;
    q.original_admitted_s = victim.admitted_s;
    q.resume_tokens = std::move(victim.tokens);
    q.resume_generated = victim.generated;
    q.first_token_s = victim.first_token_s;
    q.preempt_count = victim.preempt_count + 1;
    // Front of the queue: the victim was admitted before anything
    // still waiting, and FIFO admission keeps it first in line.
    queue_.push_front(std::move(q));
    // victim.session dies here: its caches release every block back
    // to the pool, which is the point of preemption.
}

void
Scheduler::preempt_for_pressure()
{
    if (config_.kv_budget_bytes == 0) {
        return;
    }
    // Evict until the blocks this iteration's appends need fit the
    // budget; a single resident request may overcommit (it could
    // never run otherwise).
    while (active_.size() > 1) {
        std::size_t needed = 0;
        for (const ActiveRequest& a : active_) {
            needed +=
                block_group_bytes(a.session.kv_precision()) *
                blocks_for(a.session.position() +
                           step_append_tokens(a));
        }
        if (needed <= config_.kv_budget_bytes) {
            return;
        }
        // Victim: lowest priority; ties evict the latest admitted.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < active_.size(); ++i) {
            const bool lower =
                active_[i].request.priority <
                    active_[victim].request.priority ||
                (active_[i].request.priority ==
                     active_[victim].request.priority &&
                 active_[i].admission_seq >
                     active_[victim].admission_seq);
            if (lower) {
                victim = i;
            }
        }
        preempt(victim);
    }
}

void
Scheduler::sync_analytic_reservation(ActiveRequest& req)
{
    if (functional_) {
        return;  // Functional caches allocate their own blocks.
    }
    const std::size_t target =
        block_group_bytes(req.session.kv_precision()) *
        blocks_for(req.session.position());
    if (target > req.analytic_reserved_bytes) {
        pool_.reserve(target - req.analytic_reserved_bytes);
        req.analytic_reserved_bytes = target;
    }
}

void
Scheduler::admit_arrivals()
{
    // FIFO admission: the queue head blocks everything behind it, so
    // an expensive request cannot be starved by a stream of cheap
    // later ones.  A preempted request re-enters at the head.
    while (!queue_.empty() && active_.size() < target_batch()) {
        QueuedRequest& head = queue_.front();
        if (head.arrival_s > now_s_) {
            break;  // Not arrived yet on the modeled clock.
        }
        const std::size_t needed = admission_bytes(head);
        std::size_t watermark = 0;
        if (config_.admission == AdmissionMode::kPagedReservation) {
            watermark =
                config_.watermark_blocks *
                block_group_bytes(head.request.session.kv_precision);
        }
        if (config_.kv_budget_bytes != 0 && !active_.empty() &&
            committed_total() + needed + watermark >
                config_.kv_budget_bytes) {
            break;  // Would overcommit the KV budget.
        }
        SessionOptions options = head.request.session;
        options.kv_pool = &pool_;
        ActiveRequest a{.id = head.id,
                        .request = std::move(head.request),
                        .session = engine_.create_session(options)};
        a.tokens = std::move(head.resume_tokens);
        a.generated = head.resume_generated;
        if (functional_) {
            a.feed = a.request.prompt;
            a.feed.insert(a.feed.end(), a.tokens.begin(),
                          a.tokens.end());
            a.feed_tokens = a.feed.size();
        } else {
            a.feed_tokens =
                a.request.prompt_tokens() + a.generated;
        }
        if (config_.admission == AdmissionMode::kFullProjection) {
            a.projected_bytes = needed;
        }
        a.admission_seq = ++admission_seq_;
        a.preempt_count = head.preempt_count;
        a.arrival_s = head.arrival_s;
        a.admitted_s =
            head.resumed ? head.original_admitted_s : now_s_;
        a.first_token_s = head.first_token_s;
        queue_.pop_front();
        active_.push_back(std::move(a));
    }
}

bool
Scheduler::emit_token(ActiveRequest& req, int token)
{
    if (functional_) {
        req.tokens.push_back(token);
    }
    ++req.generated;
    ++generated_tokens_;
    if (req.request.on_token) {
        req.request.on_token(req.id, req.generated - 1, token);
    }
    req.pending_token = token;
    if (functional_ && req.request.stop_token &&
        token == *req.request.stop_token) {
        finish(req, FinishReason::kStopToken);
        return true;
    }
    if (req.generated >= req.request.max_new_tokens) {
        finish(req, FinishReason::kMaxTokens);
        return true;
    }
    return false;
}

void
Scheduler::finish(ActiveRequest& req, FinishReason reason)
{
    FinishedRequest f;
    f.id = req.id;
    f.reason = reason;
    f.tokens = std::move(req.tokens);
    f.prompt_tokens = req.request.prompt_tokens();
    f.generated = req.generated;
    f.preemptions = req.preempt_count;
    f.arrival_s = req.arrival_s;
    f.admitted_s = req.admitted_s;
    f.first_token_s = req.first_token_s;
    f.finished_s = now_s_;
    sum_queue_s_ += f.queue_s();
    sum_ttft_s_ += f.ttft_s();
    max_ttft_s_ = std::max(max_ttft_s_, f.ttft_s());
    sum_tpot_s_ += f.tpot_s();
    ++finished_count_;
    finished_.push_back(std::move(f));
    req.done = true;
}

bool
Scheduler::step()
{
    if (queue_.empty() && active_.empty()) {
        return false;
    }
    // Idle scheduler, all queued arrivals in the future: fast-forward
    // the modeled clock to the next arrival.
    if (active_.empty() && !queue_.empty() &&
        queue_.front().arrival_s > now_s_) {
        idle_s_ += queue_.front().arrival_s - now_s_;
        now_s_ = queue_.front().arrival_s;
    }
    admit_arrivals();
    if (active_.empty()) {
        return !queue_.empty();
    }
    // Guarantee this iteration's appends have blocks before any work
    // is planned: evicting mid-layer is not an option, so pressure is
    // resolved up front (vLLM-style recompute preemption).
    preempt_for_pressure();

    // Build the iteration's mixed plan: one prefill chunk per
    // prompt-phase request, one decode step per generation-phase
    // request; everything shares one weight-stream-shared workload.
    StepPlan plan;
    std::vector<std::size_t> prefill_owner;
    std::vector<std::size_t> decode_owner;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        ActiveRequest& a = active_[i];
        if (!a.prefill_done()) {
            const std::size_t chunk = step_append_tokens(a);
            StepPlan::PrefillEntry entry;
            entry.session = &a.session;
            if (functional_) {
                entry.tokens = std::span<const int>(a.feed).subspan(
                    a.prompt_fed, chunk);
            } else {
                entry.analytic_tokens = chunk;
            }
            plan.prefills.push_back(entry);
            prefill_owner.push_back(i);
        } else {
            plan.decode_sessions.push_back(&a.session);
            if (functional_) {
                plan.decode_tokens.push_back(a.pending_token);
            }
            decode_owner.push_back(i);
        }
    }

    const StepResult result = engine_.step(plan);
    horizon_.add(result.report.perf);
    now_s_ = idle_s_ + horizon_.elapsed_s();
    decode_tokens_ += plan.decode_sessions.size();
    for (const StepPlan::PrefillEntry& entry : plan.prefills) {
        prefill_tokens_ += entry.size();
    }

    for (std::size_t k = 0; k < result.outputs.size(); ++k) {
        emit_token(active_[decode_owner[k]],
                   result.outputs[k].next_token);
    }
    for (std::size_t k = 0; k < result.prefill_outputs.size(); ++k) {
        ActiveRequest& a = active_[prefill_owner[k]];
        a.prompt_fed += plan.prefills[k].size();
        if (!a.prefill_done()) {
            continue;
        }
        // Prefill complete: the chunk's final logits already carry
        // the next generated token.  A resumed request (generated >
        // 0) just replayed its history -- its TTFT stands and its
        // next emission continues where eviction cut it off.
        if (a.generated == 0) {
            a.first_token_s = now_s_;
            if (a.request.max_new_tokens == 0) {
                finish(a, FinishReason::kMaxTokens);
                continue;
            }
        }
        emit_token(a, result.prefill_outputs[k].next_token);
    }

    // Mirror analytic cache growth into the pool before retiring:
    // finished requests' memory was resident through this iteration,
    // so the pool's peak sees it.
    for (ActiveRequest& a : active_) {
        sync_analytic_reservation(a);
    }
    for (ActiveRequest& a : active_) {
        if (a.done && !functional_) {
            pool_.unreserve(a.analytic_reserved_bytes);
        }
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](const ActiveRequest& a) {
                                     return a.done;
                                 }),
                  active_.end());
    return !(queue_.empty() && active_.empty());
}

std::vector<FinishedRequest>
Scheduler::run()
{
    while (step()) {
    }
    return take_finished();
}

std::vector<FinishedRequest>
Scheduler::take_finished()
{
    std::vector<FinishedRequest> out;
    out.swap(finished_);
    return out;
}

ServerStats
Scheduler::stats() const
{
    ServerStats s;
    s.horizon = horizon_.total();
    s.steps = horizon_.steps();
    s.submitted = submitted_;
    s.finished = finished_count_;
    s.active = active_.size();
    s.queued = queue_.size();
    s.decode_tokens = decode_tokens_;
    s.prefill_tokens = prefill_tokens_;
    s.generated_tokens = generated_tokens_;
    s.kv_budget_bytes = config_.kv_budget_bytes;
    s.peak_kv_bytes = pool_.peak_bytes_in_use();
    s.peak_pool_utilization = pool_.peak_utilization();
    s.preemptions = preemptions_;
    s.target_batch = target_batch();
    if (finished_count_ > 0) {
        const double n = static_cast<double>(finished_count_);
        s.mean_queue_s = sum_queue_s_ / n;
        s.mean_ttft_s = sum_ttft_s_ / n;
        s.max_ttft_s = max_ttft_s_;
        s.mean_tpot_s = sum_tpot_s_ / n;
    }
    return s;
}

}  // namespace serve
}  // namespace mugi
