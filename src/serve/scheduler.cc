#include "serve/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "quant/kv_cache.h"
#include "support/audit.h"
#include "support/fault.h"

namespace mugi {
namespace serve {
namespace {

/** FNV-1a over one 64-bit value, little-endian byte order. */
std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (value >> (8 * i)) & 0xFF;
        h *= 1099511628211ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

/**
 * Exact nearest-rank percentile over an ascending-sorted sample set
 * (rank = ceil(p/100 * N), 1-based); 0 when there are no samples.
 */
double
nearest_rank(const std::vector<double>& sorted, double p)
{
    if (sorted.empty()) {
        return 0.0;
    }
    const auto rank = static_cast<std::size_t>(std::ceil(
        p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::max<std::size_t>(rank, 1) - 1];
}

}  // namespace

const char*
finish_reason_name(FinishReason reason)
{
    switch (reason) {
      case FinishReason::kMaxTokens:
        return "max_tokens";
      case FinishReason::kStopToken:
        return "stop_token";
      case FinishReason::kCancelled:
        return "cancelled";
      case FinishReason::kDeadline:
        return "deadline";
      case FinishReason::kShutdown:
        return "shutdown";
      case FinishReason::kShed:
        return "shed";
      case FinishReason::kAdmissionTimeout:
        return "admission_timeout";
    }
    return "?";
}

std::size_t
resolve_step_threads(std::size_t requested)
{
    if (requested != SchedulerConfig::kAutoThreads) {
        return requested;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    if (hc <= 1) {
        return 0;  // Single-core or unknown: stay serial.
    }
    // Leave one core for the thread driving the loop.
    return std::min<std::size_t>(hc - 1,
                                 SchedulerConfig::kMaxAutoThreads);
}

std::size_t
threads_flag(const char* text)
{
    if (std::strcmp(text, "auto") == 0) {
        return SchedulerConfig::kAutoThreads;
    }
    return static_cast<std::size_t>(std::strtoull(text, nullptr, 10));
}

Scheduler::Scheduler(const Engine& engine,
                     const SchedulerConfig& config)
    : engine_(engine), config_(config),
      functional_(engine.has_model()),
      pool_(config.kv_budget_bytes, config.kv_block_tokens)
{
    // The assert is the contract, exactly as in
    // Engine::create_session: a model (config) is required.
    assert(engine.model_config().has_value() &&
           "scheduling needs a model (config) at engine build");
    if (config_.max_batch == 0) {
        policy_ = BatchPolicy::derive(engine.design(),
                                      *engine.model_config(),
                                      config_.policy_context);
    }
    config_.step_threads = resolve_step_threads(config.step_threads);
}

std::uint64_t
Scheduler::submit(Request request)
{
    // Auto ids continue the submission count, which keeps them at
    // 1..N for in-process callers (serve::Server always chooses its
    // own ids through submit_with_id instead).
    return submit_with_id(std::move(request), submitted_ + 1);
}

std::uint64_t
Scheduler::submit_with_id(Request request, std::uint64_t id)
{
    assert((!functional_ || !request.prompt.empty()) &&
           "functional requests need a non-empty prompt");
    assert(request.session.initial_context == units::Tokens(0) &&
           "context is built by the scheduler's chunked prefill");
    request.session.initial_context = units::Tokens(0);
    ++submitted_;
    const double arrival =
        std::max(request.arrival_time_s, now_s_);
    if (functional_ && request.prompt.empty()) {
        // There is nothing to decode from: retire the request
        // immediately instead of feeding token -1 into the model
        // (the assert above catches this in debug builds).  All
        // milestones collapse onto the arrival instant, so queue /
        // TTFT / TPOT are zero and the stats() means stay exact.
        FinishedRequest f;
        f.id = id;
        f.reason = FinishReason::kMaxTokens;
        f.arrival_s = arrival;
        f.admitted_s = arrival;
        // No token was ever emitted, so there is no first-token
        // milestone; ttft_s() reports 0 and the stats() TTFT
        // aggregates exclude the request.
        f.finished_s = arrival;
        record_finished(std::move(f));
        return id;
    }
    QueuedRequest queued;
    queued.id = id;
    queued.arrival_s = arrival;
    queued.request = std::move(request);
    if (prefix_caching_on()) {
        // Hash the shareable prompt blocks exactly once; admission
        // attempts (there may be many while the head waits on the
        // budget) only walk the cached chain.
        queued.prefix_keys = prefix_keys_for(queued.request);
    }
    queue_.push_back(std::move(queued));
    return id;
}

units::Bytes
Scheduler::block_group_bytes(quant::KvPrecision precision) const
{
    const model::ModelConfig& c = *engine_.model_config();
    // One block's bytes (block_tokens x per-position cost), across
    // every layer's cache.
    return units::bytes_for(config_.kv_block_tokens,
                            quant::KvCache::bytes_per_position(
                                c.num_kv_heads, c.head_dim(),
                                precision)) *
           c.num_layers;
}

units::Blocks
Scheduler::blocks_for(units::Tokens tokens) const
{
    return units::blocks_for(tokens, config_.kv_block_tokens);
}

bool
Scheduler::prefix_caching_on() const
{
    return config_.prefix_caching &&
           config_.admission == AdmissionMode::kPagedReservation;
}

std::vector<std::uint64_t>
Scheduler::prefix_keys_for(const Request& request) const
{
    const std::size_t bt = config_.kv_block_tokens.value();
    std::size_t region = request.prompt_tokens().value();
    if (!functional_) {
        if (request.prefix_group == 0) {
            return {};  // Nothing declared shareable.
        }
        region = std::min(region, request.prefix_tokens.value());
    }
    const std::size_t depth = region / bt;
    std::vector<std::uint64_t> keys;
    keys.reserve(depth);
    // Seed with the precision (and, analytically, the group id):
    // blocks only match between caches of identical layout.
    std::uint64_t h = fnv1a64(
        kFnvOffset,
        static_cast<std::uint64_t>(request.session.kv_precision));
    if (!functional_) {
        h = fnv1a64(h, request.prefix_group);
    }
    for (std::size_t b = 0; b < depth; ++b) {
        if (functional_) {
            for (std::size_t t = b * bt; t < (b + 1) * bt; ++t) {
                h = fnv1a64(h, static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(
                                       request.prompt[t])));
            }
        } else {
            h = fnv1a64(h, b);
        }
        keys.push_back(h);
    }
    return keys;
}

Scheduler::PrefixMatch
Scheduler::find_prefix_match(const QueuedRequest& queued) const
{
    PrefixMatch match;
    if (!prefix_caching_on()) {
        return match;
    }
    const std::size_t bt = config_.kv_block_tokens.value();
    const quant::KvPrecision precision =
        queued.request.session.kv_precision;
    const std::size_t prompt_len =
        queued.request.prompt_tokens().value();
    const std::size_t feed =
        prompt_len + queued.resume_generated.value();
    if (feed == 0) {
        return match;
    }
    const std::vector<std::uint64_t>& keys = queued.prefix_keys;
    // Never share the whole feed: the chunk completing prefill must
    // feed >= 1 real token so its logits emit the first token.
    const std::size_t cap =
        std::min(keys.size(), std::min(prompt_len, feed - 1) / bt);
    for (std::size_t b = 1; b <= cap; ++b) {
        const auto it = prefix_index_.find(keys[b - 1]);
        if (it == prefix_index_.end()) {
            break;  // Chain property: deeper runs cannot match.
        }
        bool found = false;
        for (const std::uint64_t owner_id : it->second) {
            for (std::size_t i = 0; i < active_.size(); ++i) {
                const ActiveRequest& donor = active_[i];
                if (donor.id != owner_id ||
                    donor.session.kv_precision() != precision) {
                    continue;
                }
                // The donor must have those positions resident --
                // fed (or itself adopted), not merely promised.
                if (donor.prompt_fed.value() < b * bt) {
                    continue;
                }
                if (functional_ &&
                    (donor.request.prompt.size() < b * bt ||
                     !std::equal(queued.request.prompt.begin(),
                                 queued.request.prompt.begin() +
                                     static_cast<std::ptrdiff_t>(b *
                                                                 bt),
                                 donor.request.prompt.begin()))) {
                    continue;  // Hash collision: verify content.
                }
                match.tokens = units::Tokens(b * bt);
                match.blocks = units::Blocks(b);
                match.donor = i;
                found = true;
                break;
            }
            if (found) {
                break;
            }
        }
        if (!found) {
            break;  // No deeper donor can exist (prefix property).
        }
    }
    return match;
}

void
Scheduler::register_prefix_owner(ActiveRequest& req)
{
    // req.prefix_keys were moved over from the queue entry (hashed
    // once at submit).
    for (const std::uint64_t key : req.prefix_keys) {
        prefix_index_[key].push_back(req.id);
    }
}

void
Scheduler::deregister_prefix_owner(const ActiveRequest& req)
{
    for (const std::uint64_t key : req.prefix_keys) {
        const auto it = prefix_index_.find(key);
        if (it == prefix_index_.end()) {
            continue;
        }
        auto& owners = it->second;
        owners.erase(
            std::remove(owners.begin(), owners.end(), req.id),
            owners.end());
        if (owners.empty()) {
            prefix_index_.erase(it);
        }
    }
}

void
Scheduler::acquire_analytic_prefix_refs(ActiveRequest& req,
                                        units::Blocks blocks)
{
    assert(blocks.value() <= req.prefix_keys.size());
    const units::Bytes group =
        block_group_bytes(req.session.kv_precision());
    while (req.analytic_refs_held < blocks.value()) {
        std::size_t& refs =
            analytic_prefix_refs_[req.prefix_keys
                                      [req.analytic_refs_held]];
        if (refs == 0) {
            // First sharer to cover the block reserves its bytes;
            // later sharers just take a reference.
            pool_.reserve(group);
        }
        ++refs;
        ++req.analytic_refs_held;
    }
}

void
Scheduler::release_analytic_prefix_refs(ActiveRequest& req)
{
    const units::Bytes group =
        block_group_bytes(req.session.kv_precision());
    for (std::size_t i = 0; i < req.analytic_refs_held; ++i) {
        const auto it =
            analytic_prefix_refs_.find(req.prefix_keys[i]);
        assert(it != analytic_prefix_refs_.end() && it->second > 0);
        if (it == analytic_prefix_refs_.end()) {
            continue;  // Unreachable; keeps NDEBUG builds safe.
        }
        if (--it->second == 0) {
            // Last sharer out: the mirrored block leaves the pool
            // exactly once, like a physical refcount reaching zero.
            analytic_prefix_refs_.erase(it);
            pool_.unreserve(group);
        }
    }
    req.analytic_refs_held = 0;
}

units::Bytes
Scheduler::admission_bytes(const QueuedRequest& queued,
                           units::Blocks shared_blocks) const
{
    const quant::KvPrecision precision =
        queued.request.session.kv_precision;
    if (config_.admission == AdmissionMode::kFullProjection) {
        return units::bytes_for(
            blocks_for(queued.request.prompt_tokens() +
                       queued.request.max_new_tokens),
            block_group_bytes(precision));
    }
    // Paged reservation: the blocks covering the (possibly resumed)
    // prompt plus the first decode append -- growth beyond that is
    // allocated on demand and defended by preemption.  Blocks a
    // prefix-cache hit maps onto resident storage are already
    // charged there; admission pays only the unshared tail.
    const units::Tokens feed =
        queued.request.prompt_tokens() + queued.resume_generated;
    const units::Blocks blocks = blocks_for(feed + units::Tokens(1));
    assert(shared_blocks <= blocks);
    return units::bytes_for(blocks - shared_blocks,
                            block_group_bytes(precision));
}

units::Bytes
Scheduler::watermark_bytes(quant::KvPrecision head_precision) const
{
    if (config_.admission != AdmissionMode::kPagedReservation) {
        return units::Bytes(0);
    }
    // Headroom at the *largest* resident block group: decode growth
    // of a float-precision resident is not covered by an INT4-sized
    // watermark.
    units::Bytes group = block_group_bytes(head_precision);
    for (const ActiveRequest& a : active_) {
        group = std::max(group,
                         block_group_bytes(a.session.kv_precision()));
    }
    return units::bytes_for(config_.watermark_blocks, group);
}

units::Bytes
Scheduler::resident_bytes(const ActiveRequest& req) const
{
    if (functional_) {
        // Exact block bytes the session's caches hold -- including
        // blocks shared with other sessions (the pool counts each
        // physical block once; growth_slack_bytes subtracts this
        // same quantity, so the two views stay consistent).
        return req.session.kv_bytes();
    }
    return req.analytic_reserved_bytes +
           units::bytes_for(
               units::Blocks(req.analytic_refs_held),
               block_group_bytes(req.session.kv_precision()));
}

units::Bytes
Scheduler::growth_slack_bytes(const ActiveRequest& req,
                              units::Tokens tokens) const
{
    const units::Bytes target = units::bytes_for(
        blocks_for(tokens),
        block_group_bytes(req.session.kv_precision()));
    const units::Bytes resident = resident_bytes(req);
    return target > resident ? target - resident : units::Bytes(0);
}

units::Bytes
Scheduler::committed_total() const
{
    if (config_.admission == AdmissionMode::kFullProjection) {
        units::Bytes total{0};
        for (const ActiveRequest& a : active_) {
            total += a.projected_bytes;
        }
        return total;
    }
    // Paged: the pool's exact footprint (physical blocks + analytic
    // reservations, shared blocks counted once) plus each request's
    // growth to cover its feed and next decode append.
    units::Bytes total = pool_.bytes_in_use();
    for (const ActiveRequest& a : active_) {
        total += growth_slack_bytes(
            a, std::max(a.feed_tokens,
                        units::tokens_for(a.session.position())) +
                   units::Tokens(1));
    }
    return total;
}

units::Bytes
Scheduler::kv_bytes_in_use() const
{
    return pool_.bytes_in_use();
}

units::Tokens
Scheduler::step_append_tokens(const ActiveRequest& req) const
{
    if (req.prefill_done()) {
        return units::Tokens(1);  // One decode append per layer cache.
    }
    const units::Tokens remaining = req.feed_tokens - req.prompt_fed;
    return std::min(config_.prefill_chunk_tokens == units::Tokens(0)
                        ? remaining
                        : config_.prefill_chunk_tokens,
                    remaining);
}

void
Scheduler::preempt(std::size_t index)
{
    ActiveRequest victim = std::move(active_[index]);
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(index));
    ++preemptions_;
    deregister_prefix_owner(victim);
    if (!functional_) {
        release_analytic_prefix_refs(victim);
        pool_.unreserve(victim.analytic_reserved_bytes);
    }
    QueuedRequest q;
    q.id = victim.id;
    q.request = std::move(victim.request);
    q.arrival_s = victim.arrival_s;
    q.resumed = true;
    q.original_admitted_s = victim.admitted_s;
    q.resume_tokens = std::move(victim.tokens);
    q.resume_generated = victim.generated;
    q.first_token_s = victim.first_token_s;
    q.preempt_count = victim.preempt_count + 1;
    // The chain keys depend only on the prompt / prefix declaration
    // and precision: carry them back instead of re-hashing.
    q.prefix_keys = std::move(victim.prefix_keys);
    // Front of the queue: the victim was admitted before anything
    // still waiting, and FIFO admission keeps it first in line.
    queue_.push_front(std::move(q));
    // victim.session dies here: its caches drop their block
    // references, which is the point of preemption.  A block another
    // request shares survives (its refcount stays > 0) -- one
    // owner's eviction never frees a sharer's storage.
}

void
Scheduler::preempt_for_pressure()
{
    if (config_.kv_budget_bytes == units::Bytes(0)) {
        return;
    }
    // Evict until the blocks this iteration's appends need fit the
    // budget; a single resident request may overcommit (it could
    // never run otherwise).  The need is pool-exact: current bytes
    // (shared blocks counted once) plus each request's growth to
    // cover its appends, so sharing defers preemption exactly as
    // far as the physical savings allow.
    while (active_.size() > 1) {
        units::Bytes needed = pool_.bytes_in_use();
        for (const ActiveRequest& a : active_) {
            needed += growth_slack_bytes(
                a, units::tokens_for(a.session.position()) +
                       step_append_tokens(a));
        }
        if (needed <= config_.kv_budget_bytes) {
            return;
        }
        // Victim: lowest priority; ties evict the latest admitted.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < active_.size(); ++i) {
            const bool lower =
                active_[i].request.priority <
                    active_[victim].request.priority ||
                (active_[i].request.priority ==
                     active_[victim].request.priority &&
                 active_[i].admission_seq >
                     active_[victim].admission_seq);
            if (lower) {
                victim = i;
            }
        }
        preempt(victim);
    }
}

void
Scheduler::sync_analytic_reservation(ActiveRequest& req)
{
    if (functional_) {
        return;  // Functional caches allocate their own blocks.
    }
    // Shared-prefix blocks the position now covers go through the
    // refcount map (charged once across sharers).
    acquire_analytic_prefix_refs(
        req, std::min(units::Blocks(req.prefix_keys.size()),
                      units::full_blocks_for(
                          units::tokens_for(req.session.position()),
                          config_.kv_block_tokens)));
    // The private tail (everything past the refcounted prefix).
    const units::Bytes target = units::bytes_for(
        blocks_for(units::tokens_for(req.session.position())) -
            units::Blocks(req.analytic_refs_held),
        block_group_bytes(req.session.kv_precision()));
    if (target > req.analytic_reserved_bytes) {
        pool_.reserve(target - req.analytic_reserved_bytes);
        req.analytic_reserved_bytes = target;
    }
}

void
Scheduler::admit_arrivals()
{
    // FIFO admission: the queue head blocks everything behind it, so
    // an expensive request cannot be starved by a stream of cheap
    // later ones.  A preempted request re-enters at the head.
    while (!queue_.empty() && active_.size() < target_batch()) {
        QueuedRequest& head = queue_.front();
        if (head.arrival_s > now_s_) {
            break;  // Not arrived yet on the modeled clock.
        }
        // Chaos seam: a fired "block_pool.allocate" defers this
        // iteration's admissions, exactly as a transiently exhausted
        // pool would.  Deferral delays work but never changes which
        // tokens come out, so the chaos bench's bit-identity gate
        // still holds over it.
        if (MUGI_FAULT_POINT("block_pool.allocate")) {
            break;
        }
        // Prefix-cache lookup first: a hit shrinks the admission
        // charge to the unshared tail.
        const PrefixMatch match = find_prefix_match(head);
        const units::Bytes needed = admission_bytes(head, match.blocks);
        if (config_.kv_budget_bytes != units::Bytes(0)) {
            const units::Bytes watermark =
                watermark_bytes(head.request.session.kv_precision);
            if (committed_total() + needed + watermark >
                config_.kv_budget_bytes) {
                // Would overcommit the KV budget.  The only
                // exception: a request whose reservation alone (plus
                // the headroom it would need) exceeds the budget can
                // never pass this check, so it is admitted when the
                // scheduler is otherwise empty -- it could never run
                // at all otherwise, and a single resident request is
                // allowed to overcommit the advisory pool.
                const bool oversized_alone =
                    needed + watermark > config_.kv_budget_bytes;
                if (!(active_.empty() && oversized_alone)) {
                    break;
                }
            }
        }
        SessionOptions options = head.request.session;
        options.kv_pool = &pool_;
        ActiveRequest a{.id = head.id,
                        .request = std::move(head.request),
                        .session = engine_.create_session(options)};
        a.tokens = std::move(head.resume_tokens);
        a.generated = head.resume_generated;
        if (functional_) {
            a.feed = a.request.prompt;
            a.feed.insert(a.feed.end(), a.tokens.begin(),
                          a.tokens.end());
            a.feed_tokens = units::Tokens(a.feed.size());
        } else {
            a.feed_tokens =
                a.request.prompt_tokens() + a.generated;
        }
        a.prefix_keys = std::move(head.prefix_keys);
        if (match.tokens > units::Tokens(0)) {
            // Map the shared prompt prefix onto the donor's resident
            // blocks and skip its prefill chunks: the tokens are
            // already computed (and, under KVQ, already quantized).
            if (functional_) {
                a.session.adopt_kv_prefix(
                    active_[match.donor].session,
                    units::positions_for(match.tokens));
            } else {
                engine_.advance_context(a.session, match.tokens);
                // Take the shared references *now*: the adopted
                // blocks must count as resident before this step's
                // pressure check, or the sharer's full growth slack
                // would preempt-thrash it straight back out.
                acquire_analytic_prefix_refs(a, match.blocks);
            }
            a.prompt_fed = match.tokens;
            a.shared_prefix_tokens = match.tokens;
            a.shared_prefix_blocks = match.blocks;
            ++prefix_hits_;
            shared_blocks_ += match.blocks;
            saved_prefill_tokens_ += match.tokens;
        }
        if (config_.admission == AdmissionMode::kFullProjection) {
            a.projected_bytes = needed;
        }
        a.admission_seq = ++admission_seq_;
        a.preempt_count = head.preempt_count;
        a.arrival_s = head.arrival_s;
        a.admitted_s =
            head.resumed ? head.original_admitted_s : now_s_;
        a.first_token_s = head.first_token_s;
        queue_.pop_front();
        register_prefix_owner(a);
        active_.push_back(std::move(a));
    }
}

bool
Scheduler::emit_token(ActiveRequest& req, int token)
{
    if (functional_) {
        req.tokens.push_back(token);
    }
    ++req.generated;
    ++generated_tokens_;
    if (req.request.on_token) {
        req.request.on_token(req.id, req.generated.value() - 1, token);
    }
    req.pending_token = token;
    if (functional_ && req.request.stop_token &&
        token == *req.request.stop_token) {
        finish(req, FinishReason::kStopToken);
        return true;
    }
    if (req.generated >= req.request.max_new_tokens) {
        finish(req, FinishReason::kMaxTokens);
        return true;
    }
    return false;
}

void
Scheduler::finish(ActiveRequest& req, FinishReason reason)
{
    FinishedRequest f;
    f.id = req.id;
    f.reason = reason;
    f.tokens = std::move(req.tokens);
    f.prompt_tokens = req.request.prompt_tokens();
    f.generated = req.generated;
    f.preemptions = req.preempt_count;
    f.arrival_s = req.arrival_s;
    f.admitted_s = req.admitted_s;
    f.first_token_s = req.first_token_s;
    f.finished_s = now_s_;
    record_finished(std::move(f));
    req.done = true;
}

void
Scheduler::record_finished(FinishedRequest f)
{
    sum_queue_s_ += f.queue_s();
    // TTFT is defined over requests that emitted a first token and
    // TPOT over those with an inter-token gap; anything else would
    // dilute the means (and percentiles) with structural zeros.
    // Cancelled / expired requests that did emit tokens count -- their
    // latencies were real serving latencies.
    if (f.generated > units::Tokens(0)) {
        sum_ttft_s_ += f.ttft_s();
        max_ttft_s_ = std::max(max_ttft_s_, f.ttft_s());
        ttft_samples_.push_back(f.ttft_s());
        ++ttft_count_;
    }
    if (f.generated > units::Tokens(1)) {
        sum_tpot_s_ += f.tpot_s();
        tpot_samples_.push_back(f.tpot_s());
        ++tpot_count_;
    }
    switch (f.reason) {
      case FinishReason::kCancelled:
      case FinishReason::kShutdown:
        ++cancelled_;
        break;
      case FinishReason::kDeadline:
        ++expired_;
        break;
      case FinishReason::kShed:
        ++requests_shed_;
        break;
      case FinishReason::kAdmissionTimeout:
        ++admission_timeouts_;
        break;
      default:
        break;
    }
    ++finished_count_;
    finished_.push_back(std::move(f));
}

void
Scheduler::retire_active(std::size_t index, FinishReason reason)
{
    ActiveRequest& req = active_[index];
    finish(req, reason);
    deregister_prefix_owner(req);
    if (!functional_) {
        release_analytic_prefix_refs(req);
        pool_.unreserve(req.analytic_reserved_bytes);
    }
    // Erasing destroys the session, whose caches drop their block
    // references -- the same release order the end-of-step retire
    // path uses, so shared prefix blocks survive while another
    // resident holds them.
    active_.erase(active_.begin() +
                  static_cast<std::ptrdiff_t>(index));
}

void
Scheduler::finish_queued(QueuedRequest&& queued, FinishReason reason)
{
    FinishedRequest f;
    f.id = queued.id;
    f.reason = reason;
    f.tokens = std::move(queued.resume_tokens);
    f.prompt_tokens = queued.request.prompt_tokens();
    f.generated = queued.resume_generated;
    f.preemptions = queued.preempt_count;
    f.arrival_s = queued.arrival_s;
    // Clamp the milestones so a request cancelled before its modeled
    // arrival (or before admission) reports zero queue wait rather
    // than a negative one.  A preempted request keeps its original
    // admission stamp -- it really was admitted back then.
    const double retired_s = std::max(now_s_, queued.arrival_s);
    f.admitted_s = queued.resumed ? queued.original_admitted_s
                                  : retired_s;
    f.first_token_s = queued.first_token_s;
    f.finished_s = retired_s;
    record_finished(std::move(f));
}

bool
Scheduler::cancel(std::uint64_t id)
{
    for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].id == id) {
            retire_active(i, FinishReason::kCancelled);
#if MUGI_AUDIT_INVARIANTS
            support::audit_or_abort("Scheduler::cancel",
                                    check_invariants());
#endif
            return true;
        }
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->id == id) {
            finish_queued(std::move(*it),
                          FinishReason::kCancelled);
            queue_.erase(it);
            return true;
        }
    }
    return false;
}

std::size_t
Scheduler::cancel_all(FinishReason reason)
{
    std::size_t retired = 0;
    // Back to front: each retire erases, and earlier indexes stay
    // valid.  Order within finished_ still reads naturally enough --
    // callers key on ids, not positions.
    while (!active_.empty()) {
        retire_active(active_.size() - 1, reason);
        ++retired;
    }
    while (!queue_.empty()) {
        finish_queued(std::move(queue_.front()), reason);
        queue_.pop_front();
        ++retired;
    }
#if MUGI_AUDIT_INVARIANTS
    if (retired > 0) {
        support::audit_or_abort("Scheduler::cancel_all",
                                check_invariants());
    }
#endif
    return retired;
}

void
Scheduler::expire_deadlines()
{
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->request.deadline_s > 0.0 &&
            it->request.deadline_s <= now_s_) {
            finish_queued(std::move(*it), FinishReason::kDeadline);
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    // Back to front so retire_active's erase keeps indexes valid.
    for (std::size_t i = active_.size(); i-- > 0;) {
        const ActiveRequest& a = active_[i];
        if (!a.done && a.request.deadline_s > 0.0 &&
            a.request.deadline_s <= now_s_) {
            retire_active(i, FinishReason::kDeadline);
        }
    }
}

void
Scheduler::expire_admission_timeouts()
{
    for (auto it = queue_.begin(); it != queue_.end();) {
        // Preempted requests were already admitted once: their
        // re-queue wait is preemption pressure, not admission load.
        const double timeout =
            it->request.admission_timeout_s > 0.0
                ? it->request.admission_timeout_s
                : config_.admission_timeout_s;
        if (!it->resumed && timeout > 0.0 &&
            it->arrival_s <= now_s_ &&
            now_s_ - it->arrival_s >= timeout) {
            finish_queued(std::move(*it),
                          FinishReason::kAdmissionTimeout);
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Scheduler::shed_for_capacity()
{
    if (config_.max_queued_requests == 0) {
        return;
    }
    // Candidates: arrived and never admitted.  Future trace arrivals
    // are not yet load; preempted re-queues must survive to keep the
    // bit-identity contract (their emitted tokens already stand).
    while (true) {
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (!queue_[i].resumed && queue_[i].arrival_s <= now_s_) {
                candidates.push_back(i);
            }
        }
        if (candidates.size() <= config_.max_queued_requests) {
            return;
        }
        // kRejectNewest: the last candidate in queue order (latest
        // arrival under FIFO submission).  kRejectLowestPriority:
        // minimum priority, ties broken toward the newest -- the
        // admission-side mirror of preemption's victim choice.
        std::size_t victim = candidates.back();
        if (config_.shed_policy == ShedPolicy::kRejectLowestPriority) {
            for (const std::size_t i : candidates) {
                if (queue_[i].request.priority <=
                    queue_[victim].request.priority) {
                    victim = i;
                }
            }
        }
        finish_queued(std::move(queue_[victim]), FinishReason::kShed);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(victim));
    }
}

bool
Scheduler::step()
{
    if (queue_.empty() && active_.empty()) {
        return false;
    }
    // Idle scheduler, all queued arrivals in the future: fast-forward
    // the modeled clock to the next arrival.
    if (active_.empty() && !queue_.empty() &&
        queue_.front().arrival_s > now_s_) {
        idle_s_ += queue_.front().arrival_s - now_s_;
        now_s_ = queue_.front().arrival_s;
    }
    // A queued request whose deadline already passed must never be
    // admitted (and must not block FIFO admission behind it).
    expire_deadlines();
    // Overload protection runs before admission so a shed request is
    // never charged against the pool: timeouts first (a timed-out
    // request is not load the bounded queue should shed someone else
    // for), then the capacity bound.
    expire_admission_timeouts();
    shed_for_capacity();
    admit_arrivals();
    if (active_.empty()) {
        return !queue_.empty();
    }
    // Guarantee this iteration's appends have blocks before any work
    // is planned: evicting mid-layer is not an option, so pressure is
    // resolved up front (vLLM-style recompute preemption).
    preempt_for_pressure();

    // Build the iteration's mixed plan: one prefill chunk per
    // prompt-phase request, one decode step per generation-phase
    // request; everything shares one weight-stream-shared workload.
    StepPlan plan;
    std::vector<std::size_t> prefill_owner;
    std::vector<std::size_t> decode_owner;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        ActiveRequest& a = active_[i];
        if (!a.prefill_done()) {
            const units::Tokens chunk = step_append_tokens(a);
            StepPlan::PrefillEntry entry;
            entry.session = &a.session;
            if (functional_) {
                entry.tokens = std::span<const int>(a.feed).subspan(
                    a.prompt_fed.value(), chunk.value());
            } else {
                entry.analytic_tokens = chunk;
            }
            plan.prefills.push_back(entry);
            prefill_owner.push_back(i);
        } else {
            plan.decode_sessions.push_back(&a.session);
            if (functional_) {
                plan.decode_tokens.push_back(a.pending_token);
            }
            decode_owner.push_back(i);
        }
    }

    plan.threads = config_.step_threads;
    const StepResult result = engine_.step(plan);
    if (result.workers.threads > 0) {
        ++pooled_steps_;
        sum_worker_busy_ += result.workers.busy_fraction;
    }
    horizon_.add(result.report.perf);
    now_s_ = idle_s_ + horizon_.elapsed_s();
    decode_tokens_ += units::Tokens(plan.decode_sessions.size());
    for (const StepPlan::PrefillEntry& entry : plan.prefills) {
        prefill_tokens_ += entry.size();
    }

    for (std::size_t k = 0; k < result.outputs.size(); ++k) {
        emit_token(active_[decode_owner[k]],
                   result.outputs[k].next_token);
    }
    for (std::size_t k = 0; k < result.prefill_outputs.size(); ++k) {
        ActiveRequest& a = active_[prefill_owner[k]];
        a.prompt_fed += plan.prefills[k].size();
        if (!a.prefill_done()) {
            continue;
        }
        // Prefill complete: the chunk's final logits already carry
        // the next generated token.  A resumed request (generated >
        // 0) just replayed its history -- its TTFT stands and its
        // next emission continues where eviction cut it off.
        if (a.generated == units::Tokens(0)) {
            if (a.request.max_new_tokens == units::Tokens(0)) {
                // No token will ever be emitted: retire without a
                // first-token stamp so the request cannot contribute
                // a fake TTFT to the aggregates.
                finish(a, FinishReason::kMaxTokens);
                continue;
            }
            a.first_token_s = now_s_;
        }
        emit_token(a, result.prefill_outputs[k].next_token);
    }

    // Mirror analytic cache growth into the pool before retiring:
    // finished requests' memory was resident through this iteration,
    // so the pool's peak sees it.
    for (ActiveRequest& a : active_) {
        sync_analytic_reservation(a);
    }
    // Deadlines are checked after the clock advance and emissions:
    // a deadline passing mid-iteration still delivers this
    // iteration's token, then the request retires with its KV blocks
    // released exactly as on a natural finish.
    expire_deadlines();
    for (ActiveRequest& a : active_) {
        if (!a.done) {
            continue;
        }
        deregister_prefix_owner(a);
        if (!functional_) {
            release_analytic_prefix_refs(a);
            pool_.unreserve(a.analytic_reserved_bytes);
        }
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [](const ActiveRequest& a) {
                                     return a.done;
                                 }),
                  active_.end());
#if MUGI_AUDIT_INVARIANTS
    // Every scheduler iteration ends structurally consistent:
    // refcount or reservation drift is corruption, caught here at
    // the step that introduced it instead of steps later.
    support::audit_or_abort("Scheduler::step", check_invariants());
#endif
    return !(queue_.empty() && active_.empty());
}

std::string
Scheduler::check_invariants() const
{
    std::ostringstream out;
    // Rung 1: the pool's own slot/refcount/free-list accounting.
    const std::string pool_violation = pool_.check_invariants();
    if (!pool_violation.empty()) {
        return "pool: " + pool_violation;
    }
    // Rung 2: every prefix-index entry names resident owners that
    // actually hold the key (entries live exactly as long as their
    // owner is resident).
    for (const auto& [key, owners] : prefix_index_) {
        if (owners.empty()) {
            out << "prefix index key " << key << " has no owners";
            return out.str();
        }
        for (const std::uint64_t owner : owners) {
            const auto holder = std::find_if(
                active_.begin(), active_.end(),
                [owner](const ActiveRequest& a) {
                    return a.id == owner;
                });
            if (holder == active_.end()) {
                out << "prefix index key " << key
                    << " owned by non-resident request " << owner;
                return out.str();
            }
            if (std::find(holder->prefix_keys.begin(),
                          holder->prefix_keys.end(),
                          key) == holder->prefix_keys.end()) {
                out << "prefix index key " << key << " not among "
                    << "request " << owner << "'s prefix keys";
                return out.str();
            }
            if (std::count(owners.begin(), owners.end(), owner) !=
                1) {
                out << "request " << owner
                    << " listed twice for prefix key " << key;
                return out.str();
            }
        }
    }
    if (functional_) {
        // Functional serving reserves nothing analytically, and
        // every pool reference is a resident session's block-table
        // entry: the per-slot refcount total must equal the sum of
        // the sessions' tables, or a cache leaked / double-freed a
        // reference.
        if (pool_.reserved_bytes() != units::Bytes(0)) {
            out << "functional scheduler holds "
                << pool_.reserved_bytes()
                << " analytic reserved bytes";
            return out.str();
        }
        units::Blocks table_blocks{0};
        for (const ActiveRequest& a : active_) {
            table_blocks += a.session.kv_block_count();
        }
        if (table_blocks.value() != pool_.ref_total()) {
            out << "resident sessions hold " << table_blocks
                << " block-table entries but the pool counts "
                << pool_.ref_total() << " references";
            return out.str();
        }
        return {};
    }
    // Analytic serving: recount the prefix refcounts from scratch
    // and recompute the exact reservation the pool must carry --
    // each refcounted shared group once (at its holders' precision)
    // plus every resident's private tail.
    std::unordered_map<std::uint64_t, std::size_t> refs;
    units::Bytes expected_reserved{0};
    for (const ActiveRequest& a : active_) {
        if (a.analytic_refs_held > a.prefix_keys.size()) {
            out << "request " << a.id << " holds "
                << a.analytic_refs_held << " refs over "
                << a.prefix_keys.size() << " prefix keys";
            return out.str();
        }
        for (std::size_t i = 0; i < a.analytic_refs_held; ++i) {
            if (refs[a.prefix_keys[i]]++ == 0) {
                expected_reserved +=
                    block_group_bytes(a.session.kv_precision());
            }
        }
        expected_reserved += a.analytic_reserved_bytes;
    }
    if (refs.size() != analytic_prefix_refs_.size()) {
        out << "analytic prefix refs track "
            << analytic_prefix_refs_.size() << " keys, recount finds "
            << refs.size();
        return out.str();
    }
    for (const auto& [key, count] : refs) {
        const auto it = analytic_prefix_refs_.find(key);
        if (it == analytic_prefix_refs_.end() ||
            it->second != count) {
            out << "analytic prefix key " << key << " recounts to "
                << count << " sharers, tracked as "
                << (it == analytic_prefix_refs_.end() ? 0
                                                      : it->second);
            return out.str();
        }
    }
    if (pool_.blocks_in_use() != units::Blocks(0)) {
        out << "analytic scheduler pool holds "
            << pool_.blocks_in_use() << " physical blocks";
        return out.str();
    }
    if (expected_reserved != pool_.reserved_bytes()) {
        out << "pool reserves " << pool_.reserved_bytes()
            << " bytes, recomputed reservations total "
            << expected_reserved;
        return out.str();
    }
    return {};
}

std::vector<FinishedRequest>
Scheduler::run()
{
    while (step()) {
    }
    return take_finished();
}

std::vector<FinishedRequest>
Scheduler::take_finished()
{
    std::vector<FinishedRequest> out;
    out.swap(finished_);
    return out;
}

ServerStats
Scheduler::stats() const
{
    ServerStats s;
    s.horizon = horizon_.total();
    s.steps = horizon_.steps();
    s.now_s = now_s_;
    s.submitted = submitted_;
    s.finished = finished_count_;
    s.active = active_.size();
    s.queued = queue_.size();
    s.decode_tokens = decode_tokens_;
    s.prefill_tokens = prefill_tokens_;
    s.generated_tokens = generated_tokens_;
    s.kv_budget_bytes = config_.kv_budget_bytes;
    s.kv_bytes_in_use = pool_.bytes_in_use();
    s.peak_kv_bytes = pool_.peak_bytes_in_use();
    s.peak_pool_utilization = pool_.peak_utilization();
    s.preemptions = preemptions_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.requests_shed = requests_shed_;
    s.admission_timeouts = admission_timeouts_;
    s.prefix_hits = prefix_hits_;
    s.shared_blocks = shared_blocks_;
    s.saved_prefill_tokens = saved_prefill_tokens_;
    s.target_batch = target_batch();
    if (finished_count_ > 0) {
        s.mean_queue_s =
            sum_queue_s_ / static_cast<double>(finished_count_);
    }
    // Each latency mean divides by the count of requests it is
    // defined over, not by every finished request.
    if (ttft_count_ > 0) {
        s.mean_ttft_s =
            sum_ttft_s_ / static_cast<double>(ttft_count_);
        s.max_ttft_s = max_ttft_s_;
    }
    if (tpot_count_ > 0) {
        s.mean_tpot_s =
            sum_tpot_s_ / static_cast<double>(tpot_count_);
    }
    {
        // Exact nearest-rank percentiles over the same per-request
        // samples the means use (sorted on demand: stats() is a
        // report call, not a per-step one).
        std::vector<double> ttft = ttft_samples_;
        std::sort(ttft.begin(), ttft.end());
        s.p50_ttft_s = nearest_rank(ttft, 50.0);
        s.p95_ttft_s = nearest_rank(ttft, 95.0);
        s.p99_ttft_s = nearest_rank(ttft, 99.0);
        std::vector<double> tpot = tpot_samples_;
        std::sort(tpot.begin(), tpot.end());
        s.p50_tpot_s = nearest_rank(tpot, 50.0);
        s.p95_tpot_s = nearest_rank(tpot, 95.0);
        s.p99_tpot_s = nearest_rank(tpot, 99.0);
    }
    s.pooled_steps = pooled_steps_;
    if (pooled_steps_ > 0) {
        s.mean_worker_busy =
            sum_worker_busy_ / static_cast<double>(pooled_steps_);
        s.mean_worker_idle = 1.0 - s.mean_worker_busy;
    }
    return s;
}

}  // namespace serve
}  // namespace mugi
