#ifndef MUGI_SERVE_SCHEDULER_H_
#define MUGI_SERVE_SCHEDULER_H_

/**
 * @file
 * The request-lifecycle serving frontend: admission control, chunked
 * prefill and continuous batching over Engine::step.
 *
 * Callers submit() Requests and step() (or run()) the scheduler; it
 * owns everything in between:
 *
 *  - an admission queue ordered by submission, gated on each
 *    request's modeled arrival time and on a KV-memory budget: a
 *    request is only admitted when its *projected* KV footprint at
 *    full generation length (prompt + max_new_tokens, exact
 *    KvCache::bytes_per_position accounting for its precision) fits
 *    alongside the already-committed footprints.  Admission is FIFO
 *    (head-of-line blocking, no starvation);
 *  - chunked prefill: admitted prompts are fed at most
 *    prefill_chunk_tokens per iteration, interleaved with the decode
 *    batch in one Engine::step(StepPlan) whose mixed workload shares
 *    a single WOQ weight stream (vLLM/Sarathi-style chunked prefill);
 *  - continuous batching toward the BatchPolicy target derived from
 *    the Fig. 14 sweep: finished requests leave mid-flight and
 *    queued requests are admitted the same iteration.
 *
 * Chunked-prefill invariant: feeding a prompt chunk by chunk is
 * bit-identical to one Engine::prefill call, and the mixed step's
 * workload MACs equal the sum of the equivalent standalone chunk and
 * decode workloads -- so scheduling changes *when* work happens,
 * never its numerics or totals (tests/serve/scheduler_test.cc).
 *
 * Time is the modeled clock: each iteration advances it by the mixed
 * step's modeled runtime, which is what the TTFT/TPOT/queue numbers
 * in ServerStats are measured in.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/batch_policy.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "sim/performance_model.h"

namespace mugi {
namespace serve {

/** Scheduler knobs fixed at construction. */
struct SchedulerConfig {
    /**
     * KV-memory budget in bytes shared by all admitted requests;
     * 0 = unbounded.  A request whose projection alone exceeds the
     * budget is still admitted when it can run alone (it could never
     * run otherwise).
     */
    std::size_t kv_budget_bytes = 0;
    /** Max prompt tokens fed per request per iteration. */
    std::size_t prefill_chunk_tokens = 256;
    /**
     * Concurrent-request target the continuous batch is steered
     * toward; 0 = derive via BatchPolicy from the engine's design
     * and model config.
     */
    std::size_t max_batch = 0;
    /** Context length used by the BatchPolicy derivation sweep. */
    std::size_t policy_context = 512;
};

/** Serving-horizon report: accumulator totals + latency stats. */
struct ServerStats {
    /**
     * sim::PerfAccumulator total over every mixed step: cycles,
     * energy, tokens (prefill + decode) and recomputed rates --
     * energy_per_token_j here is the serving energy-per-token number.
     */
    sim::PerfReport horizon;
    std::size_t steps = 0;

    std::size_t submitted = 0;
    std::size_t finished = 0;
    std::size_t active = 0;  ///< Currently admitted.
    std::size_t queued = 0;  ///< Waiting for admission.

    /**
     * Decode-step tokens processed; with prefill_tokens this
     * accounts the horizon exactly: horizon.tokens ==
     * prefill_tokens + decode_tokens.
     */
    std::size_t decode_tokens = 0;
    std::size_t prefill_tokens = 0;  ///< Prompt tokens processed.
    /**
     * Tokens emitted to callers.  Each request's first token rides
     * its final prefill chunk, so generated_tokens exceeds
     * decode_tokens by one per finished request.
     */
    std::size_t generated_tokens = 0;

    std::size_t kv_budget_bytes = 0;
    /** Largest exact KV footprint observed across any iteration. */
    std::size_t peak_kv_bytes = 0;
    std::size_t target_batch = 0;

    // Over finished requests, on the modeled clock.
    double mean_queue_s = 0.0;
    double mean_ttft_s = 0.0;
    double max_ttft_s = 0.0;
    double mean_tpot_s = 0.0;
};

/** Request-lifecycle scheduler over one Engine. */
class Scheduler {
  public:
    /** @p engine must outlive the scheduler. */
    explicit Scheduler(const Engine& engine,
                       const SchedulerConfig& config = {});

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Enqueue a request; returns the id FinishedRequest reports. */
    std::uint64_t submit(Request request);

    /**
     * One scheduling iteration: admit, build the mixed StepPlan,
     * Engine::step it, stream tokens, retire finished requests.
     * Returns true while any request is active or queued.
     */
    bool step();

    /** step() until drained, then hand back every finished request. */
    std::vector<FinishedRequest> run();

    /** Finished requests since the last take (submission order). */
    std::vector<FinishedRequest> take_finished();

    ServerStats stats() const;

    /** Modeled clock: PerfAccumulator::elapsed_s + idle skips. */
    double now_s() const { return now_s_; }
    std::size_t queued() const { return queue_.size(); }
    std::size_t active() const { return active_.size(); }
    /** Exact KV bytes currently cached across admitted requests. */
    std::size_t kv_bytes_in_use() const;
    const BatchPolicy& policy() const { return policy_; }

  private:
    struct ActiveRequest {
        std::uint64_t id = 0;
        Request request;
        Session session;
        std::size_t prompt_fed = 0;
        std::vector<int> tokens{};
        std::size_t generated = 0;
        int pending_token = -1;  ///< Next decode input.
        std::size_t projected_kv_bytes = 0;
        double arrival_s = 0.0;
        double admitted_s = 0.0;
        double first_token_s = 0.0;
        bool done = false;

        bool
        prefill_done() const
        {
            return prompt_fed >= request.prompt_tokens();
        }
    };

    struct QueuedRequest {
        std::uint64_t id = 0;
        Request request;
        /** max(arrival_time_s, clock at submit). */
        double arrival_s = 0.0;
    };

    std::size_t
    target_batch() const
    {
        return config_.max_batch ? config_.max_batch
                                 : policy_.target_batch();
    }

    std::size_t projected_kv_bytes(const Request& request) const;
    std::size_t committed_kv_bytes() const;
    void admit_arrivals();
    /** Emit one generated token; returns true when req is finished. */
    bool emit_token(ActiveRequest& req, int token);
    void finish(ActiveRequest& req, FinishReason reason);

    const Engine& engine_;
    SchedulerConfig config_;
    BatchPolicy policy_;
    bool functional_ = false;

    std::deque<QueuedRequest> queue_;
    std::vector<ActiveRequest> active_;
    std::vector<FinishedRequest> finished_;

    sim::PerfAccumulator horizon_;
    /** Clock: horizon_.elapsed_s() + idle fast-forward skips. */
    double now_s_ = 0.0;
    double idle_s_ = 0.0;

    // Cumulative counters (survive take_finished()).
    std::size_t submitted_ = 0;
    std::size_t finished_count_ = 0;
    std::size_t decode_tokens_ = 0;
    std::size_t prefill_tokens_ = 0;
    std::size_t generated_tokens_ = 0;
    std::size_t peak_kv_bytes_ = 0;
    double sum_queue_s_ = 0.0;
    double sum_ttft_s_ = 0.0;
    double max_ttft_s_ = 0.0;
    double sum_tpot_s_ = 0.0;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_SCHEDULER_H_
