#ifndef MUGI_SERVE_SCHEDULER_H_
#define MUGI_SERVE_SCHEDULER_H_

/**
 * @file
 * The request-lifecycle serving frontend: admission control, chunked
 * prefill, continuous batching and KV-memory management over
 * Engine::step.
 *
 * Callers submit() Requests and step() (or run()) the scheduler; it
 * owns everything in between:
 *
 *  - a quant::BlockPool sized to the KV budget: every admitted
 *    request's caches draw fixed-size blocks from it (functional
 *    serving), or the scheduler mirrors the modeled cache through
 *    byte reservations (analytic serving), so the pool's
 *    bytes_in_use is the exact device footprint either way;
 *  - an admission queue ordered by submission, gated on each
 *    request's modeled arrival time and on **block-level
 *    reservation**: a request is admitted when the blocks covering
 *    its prompt (plus a watermark of free blocks that keeps decode
 *    headroom) fit beside the blocks committed to resident requests
 *    -- not its full projected generation length, which is what lets
 *    a paged pool admit strictly more concurrent sessions than the
 *    old full-length projection (kept as
 *    AdmissionMode::kFullProjection for comparison).  Admission is
 *    FIFO (head-of-line blocking, no starvation);
 *  - **preemption**: when decode growth would run the pool dry, the
 *    lowest-priority running request (ties: latest admitted) is
 *    evicted -- its blocks freed immediately -- and re-queued at the
 *    front for recompute-style re-prefill through the existing
 *    chunked-prefill path (its prompt plus the tokens it had already
 *    generated are replayed, so its remaining output is bit-identical
 *    to an uncontended run);
 *  - **prefix caching**: a content-addressed index of the resident
 *    requests' prompt-block runs (chained hashes at block
 *    granularity, per KV precision).  When a new request's prompt
 *    prefix matches blocks a resident request has already computed,
 *    admission maps its session onto those physical blocks under
 *    pool refcounts (copy-on-write protected), charges only the
 *    unshared tail against the budget, and skips the shared blocks'
 *    prefill chunks entirely -- under Mugi's INT4-KVQ layout a hit
 *    saves both the recompute and the quantization pass.  Analytic
 *    serving mirrors this: requests declaring a common
 *    Request::prefix_group share refcounted reservations and skip
 *    the shared chunks the same way.  Preemption interacts through
 *    the refcounts: evicting one sharer never frees a block another
 *    sharer still reads;
 *  - chunked prefill: admitted prompts are fed at most
 *    prefill_chunk_tokens per iteration, interleaved with the decode
 *    batch in one Engine::step(StepPlan) whose mixed workload shares
 *    a single WOQ weight stream (vLLM/Sarathi-style chunked prefill);
 *  - continuous batching toward the BatchPolicy target derived from
 *    the Fig. 14 sweep: finished requests leave mid-flight and
 *    queued requests are admitted the same iteration.
 *
 * Chunked-prefill invariant: feeding a prompt chunk by chunk is
 * bit-identical to one Engine::prefill call, and the mixed step's
 * workload MACs equal the sum of the equivalent standalone chunk and
 * decode workloads -- so scheduling (including preemption) changes
 * *when* work happens, never its numerics or totals
 * (tests/serve/scheduler_test.cc).
 *
 * Time is the modeled clock: each iteration advances it by the mixed
 * step's modeled runtime, which is what the TTFT/TPOT/queue numbers
 * in ServerStats are measured in.
 *
 * Admission accounting is *unit-typed* (support/units.h): budgets and
 * reservations are units::Bytes, chunk sizes and prompt lengths
 * units::Tokens, block counts units::Blocks, and every
 * tokens-to-bytes crossing goes through the named conversion helpers
 * (blocks_for / bytes_for) -- the admission-path functions contain no
 * raw .value() unwraps, which tools/mugi_check.py rule R4 enforces.
 *
 * Thread-safety: externally serialized -- the scheduler is a
 * single-threaded control loop (submit/cancel/step/run from one
 * thread at a time).  serve::Server is the push-based front: it owns
 * the one thread that calls these members and feeds it submissions /
 * cancellations through a support::Channel, so callers never touch
 * the scheduler directly; the engine it drives and the block pool it
 * owns are the internally-synchronized pieces.
 * Every step ends with an invariant audit under
 * MUGI_AUDIT_INVARIANTS (support/audit.h): check_invariants()
 * recomputes reservation and prefix-refcount accounting from scratch
 * and any drift aborts.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "quant/block_allocator.h"
#include "serve/batch_policy.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "sim/performance_model.h"

namespace mugi {
namespace serve {

/** How admission charges a request against the KV budget. */
enum class AdmissionMode {
    /**
     * Block-level reservation: charge the blocks covering the prompt
     * (plus the next decode append) and keep watermark_blocks free;
     * decode growth is handled by allocation on demand plus
     * preemption under pressure.
     */
    kPagedReservation,
    /**
     * Legacy conservative policy: charge the full projected
     * generation length (prompt + max_new_tokens, block-rounded) up
     * front.  Never preempts; admits fewer concurrent sessions.
     */
    kFullProjection,
};

/**
 * Which queued request the bounded admission queue sheds when it is
 * over SchedulerConfig::max_queued_requests.  Only *arrived*,
 * never-admitted requests are candidates: future trace arrivals are
 * not yet load, and preempted requests re-queued for re-prefill were
 * already admitted once (shedding them would throw away emitted
 * tokens and break the bit-identity contract).
 */
enum class ShedPolicy {
    /** Shed the most recently arrived candidate (LIFO kill: the
     *  oldest waiters keep their place, no starvation reordering). */
    kRejectNewest,
    /** Shed the lowest-priority candidate (ties: newest first) --
     *  the admission-side mirror of preemption's victim choice. */
    kRejectLowestPriority,
};

/** Scheduler knobs fixed at construction. */
struct SchedulerConfig {
    /**
     * KV-memory budget in bytes shared by all admitted requests (the
     * block pool's capacity); 0 = unbounded.  A request whose
     * reservation alone exceeds the budget is still admitted when it
     * can run alone (it could never run otherwise) -- the pool
     * overcommits for it.
     */
    units::Bytes kv_budget_bytes{0};
    /** Max prompt tokens fed per request per iteration. */
    units::Tokens prefill_chunk_tokens{256};
    /**
     * Concurrent-request target the continuous batch is steered
     * toward; 0 = derive via BatchPolicy from the engine's design
     * and model config.
     */
    std::size_t max_batch = 0;
    /** Context length used by the BatchPolicy derivation sweep. */
    std::size_t policy_context = 512;

    /** Admission policy against the KV budget. */
    AdmissionMode admission = AdmissionMode::kPagedReservation;
    /** KV positions per block of the shared pool. */
    units::Tokens kv_block_tokens = quant::BlockPool::kDefaultBlockTokens;
    /**
     * Blocks that must remain free after a paged admission -- decode
     * headroom that damps admit/preempt thrash, vLLM's watermark.
     * Sized at the *largest* block-group resident (or being
     * admitted), so a small-precision admission cannot eat the
     * headroom a float-precision resident needs to grow.
     */
    units::Blocks watermark_blocks{1};
    /**
     * Cross-request KV prefix caching (paged admission only): map a
     * new request's prompt onto blocks a resident request already
     * computed, charge admission only for the unshared tail, and
     * skip the shared blocks' prefill chunks.  Off reverts to
     * recompute-everything admission (the A/B baseline
     * bench/prefix_cache.cc measures against).
     */
    bool prefix_caching = true;

    /**
     * Bounded admission queue: when more than this many *arrived*,
     * never-admitted requests are waiting, the shed policy retires
     * the excess with FinishReason::kShed instead of letting the
     * queue grow without bound; 0 = unbounded (the pre-overload
     * behaviour).  Checked every scheduling iteration, before
     * admission, on the modeled clock.
     */
    std::size_t max_queued_requests = 0;
    /** Which candidate to shed when the queue is over its bound. */
    ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
    /**
     * Default maximum queue wait (modeled seconds) before a request
     * still awaiting admission is retired with
     * FinishReason::kAdmissionTimeout; 0 = no limit.
     * Request::admission_timeout_s overrides per request.  Distinct
     * from deadlines: this bounds only the arrival -> admission
     * window and never fires once the request is admitted.
     */
    double admission_timeout_s = 0.0;

    /**
     * Worker threads every mixed step fans its functional work
     * across (StepPlan::threads); 0 = serial.  Pooled steps are
     * bit-identical to serial ones, so this knob changes wall-clock
     * only -- never tokens, numerics, or the modeled clock.
     * kAutoThreads resolves at Scheduler construction to
     * hardware_concurrency() - 1 (one core left for the loop
     * thread), clamped to kMaxAutoThreads, and to 0 (serial) on a
     * single-core box.
     */
    std::size_t step_threads = 0;

    /** step_threads sentinel: size the pool from the hardware. */
    static constexpr std::size_t kAutoThreads =
        static_cast<std::size_t>(-1);
    /** Upper clamp of the kAutoThreads resolution. */
    static constexpr std::size_t kMaxAutoThreads = 16;
};

/**
 * Resolve a step_threads request: kAutoThreads becomes
 * hardware_concurrency() - 1 clamped to [0, kMaxAutoThreads] (0 --
 * serial -- when the hardware reports <= 1 or unknown); any other
 * value passes through unchanged.
 */
std::size_t resolve_step_threads(std::size_t requested);

/**
 * Parse a --threads flag value: "auto" (case-sensitive) yields
 * SchedulerConfig::kAutoThreads, anything else its integer value.
 */
std::size_t threads_flag(const char* text);

/** Serving-horizon report: accumulator totals + latency stats. */
struct ServerStats {
    /**
     * sim::PerfAccumulator total over every mixed step: cycles,
     * energy, tokens (prefill + decode) and recomputed rates --
     * energy_per_token_j here is the serving energy-per-token number.
     */
    sim::PerfReport horizon;
    std::size_t steps = 0;
    /** Modeled clock when the snapshot was taken (Scheduler::now_s). */
    double now_s = 0.0;

    std::size_t submitted = 0;
    std::size_t finished = 0;
    std::size_t active = 0;  ///< Currently admitted.
    std::size_t queued = 0;  ///< Waiting for admission.

    /**
     * Decode-step tokens processed; with prefill_tokens this
     * accounts the horizon exactly: horizon.tokens ==
     * prefill_tokens + decode_tokens.  Re-prefill after a preemption
     * counts toward prefill_tokens (recompute is real work).
     */
    units::Tokens decode_tokens{0};
    units::Tokens prefill_tokens{0};  ///< Prompt tokens processed.
    /**
     * Tokens emitted to callers.  One token rides each completed
     * prefill (the chunk's final logits), so generated_tokens
     * exceeds decode_tokens by one per prefill completion -- once
     * per request plus once per re-prefill after a preemption
     * (replayed history itself is never re-emitted).
     */
    units::Tokens generated_tokens{0};

    units::Bytes kv_budget_bytes{0};
    /**
     * Exact block-pool footprint right now (allocated blocks plus
     * analytic reservations).  Zero once every request retired --
     * the "no leaked blocks" number bench/serve_load --check gates.
     */
    units::Bytes kv_bytes_in_use{0};
    /**
     * Largest exact block-pool footprint observed (allocated blocks
     * plus analytic reservations).
     */
    units::Bytes peak_kv_bytes{0};
    /** peak_kv_bytes / kv_budget_bytes (0 when unbounded). */
    double peak_pool_utilization = 0.0;
    /** Requests evicted under KV pressure and re-queued. */
    std::size_t preemptions = 0;
    /** Requests retired by cancel / non-draining shutdown. */
    std::size_t cancelled = 0;
    /** Requests retired because their deadline passed. */
    std::size_t expired = 0;
    /**
     * Requests load-shed before admission (bounded-queue policy in
     * the scheduler, plus -- in Server::stats() -- submissions the
     * server itself refused at the command channel).
     */
    std::size_t requests_shed = 0;
    /** Requests whose admission timeout expired while queued. */
    std::size_t admission_timeouts = 0;
    /**
     * Requests cancelled because their client could not keep up with
     * the token stream (HTTP write timeout / vanished connection).
     * Counted by the server front-end; always 0 at scheduler level.
     */
    std::size_t slow_client_cancels = 0;
    /**
     * Fires of the process-wide FaultInjector since it was armed
     * (support/fault.h); 0 when disarmed or compiled out.  Snapshot
     * taken by Server::stats(); always 0 at scheduler level.
     */
    std::size_t faults_injected = 0;
    /** Admissions whose prompt mapped onto resident prefix blocks. */
    std::size_t prefix_hits = 0;
    /**
     * Cumulative all-layer block groups adopted from a resident
     * request at admission (each counted once in the pool no matter
     * how many sharers hold it).
     */
    units::Blocks shared_blocks{0};
    /** Prompt tokens whose prefill was skipped by prefix sharing. */
    units::Tokens saved_prefill_tokens{0};
    std::size_t target_batch = 0;

    /** Steps that ran on the worker pool (step_threads > 0). */
    std::size_t pooled_steps = 0;
    /**
     * Mean per-step worker busy/idle fractions over pooled steps
     * (StepResult::WorkerStats) -- how much of the pool's capacity
     * the step partitioning actually kept fed.  Zero when every step
     * ran serially.
     */
    double mean_worker_busy = 0.0;
    double mean_worker_idle = 0.0;

    // Over finished requests, on the modeled clock.  TTFT aggregates
    // are over requests that emitted >= 1 token and TPOT over those
    // that emitted >= 2 -- a max_new_tokens == 0 request has no first
    // token and a single-token request has no inter-token gap, so
    // neither may dilute the means (they still count toward queue
    // stats and finished).
    double mean_queue_s = 0.0;
    double mean_ttft_s = 0.0;
    double max_ttft_s = 0.0;
    double mean_tpot_s = 0.0;

    // Latency *percentiles* over the same per-request samples the
    // means are computed from (exact nearest-rank over every
    // finished request, not a reservoir -- serving horizons here are
    // at most tens of thousands of requests).  Tail latency is the
    // serving number that matters: a mean TTFT hides the p99 queue
    // spike an arrival burst causes.  Surfaced in /metrics,
    // examples/serving and bench/serve_load's rate sweep.
    double p50_ttft_s = 0.0;
    double p95_ttft_s = 0.0;
    double p99_ttft_s = 0.0;
    double p50_tpot_s = 0.0;
    double p95_tpot_s = 0.0;
    double p99_tpot_s = 0.0;
};

/** Request-lifecycle scheduler over one Engine. */
class Scheduler {
  public:
    /** @p engine must outlive the scheduler. */
    explicit Scheduler(const Engine& engine,
                       const SchedulerConfig& config = {});

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Enqueue a request; returns the id FinishedRequest reports. */
    std::uint64_t submit(Request request);

    /**
     * Enqueue a request under a caller-chosen id (must be unique for
     * the scheduler's lifetime; serve::Server assigns ids on the
     * submitting thread so a handle exists before the loop thread
     * ever sees the request).  submit() is this with the next
     * sequential id.
     */
    std::uint64_t submit_with_id(Request request, std::uint64_t id);

    /**
     * Retire request @p id wherever it is in the lifecycle -- still
     * queued, mid-prefill, or decoding -- with
     * FinishReason::kCancelled.  Its KV blocks / reservations are
     * released immediately, exactly as a natural finish releases
     * them (shared prefix blocks survive while another resident
     * holds them), and the retirement is audited under
     * MUGI_AUDIT_INVARIANTS.  Tokens already emitted stand in the
     * FinishedRequest.  Returns false when the id is unknown or
     * already finished.  Like every other member, callable only from
     * the thread driving the scheduler.
     */
    bool cancel(std::uint64_t id);

    /**
     * Retire every queued and active request with @p reason (the
     * non-draining server shutdown path).  Returns how many were
     * retired.
     */
    std::size_t cancel_all(FinishReason reason = FinishReason::kShutdown);

    /**
     * One scheduling iteration: admit, preempt if the pool would run
     * dry, build the mixed StepPlan, Engine::step it, stream tokens,
     * retire finished requests.  Returns true while any request is
     * active or queued.
     */
    bool step();

    /** step() until drained, then hand back every finished request. */
    std::vector<FinishedRequest> run();

    /** Finished requests since the last take (submission order). */
    std::vector<FinishedRequest> take_finished();

    ServerStats stats() const;

    /** Modeled clock: PerfAccumulator::elapsed_s + idle skips. */
    double now_s() const { return now_s_; }
    std::size_t queued() const { return queue_.size(); }
    std::size_t active() const { return active_.size(); }
    /** Exact KV block-pool bytes held by admitted requests. */
    units::Bytes kv_bytes_in_use() const;
    /** Requests evicted under KV pressure so far. */
    std::size_t preemptions() const { return preemptions_; }
    /** The shared block pool (admission + caches account here). */
    const quant::BlockPool& pool() const { return pool_; }
    const BatchPolicy& policy() const { return policy_; }

    /**
     * Recompute the scheduler's cross-structure accounting from
     * scratch and return a description of the first violation (empty
     * string: consistent).  Checks the pool's own invariants, that
     * every prefix-index entry names a resident owner holding that
     * key, that analytic prefix refcounts match a from-scratch
     * recount with pool reservations equal to the refcounted groups
     * plus every resident's private tail, and that functional
     * sessions' block tables account for every pool reference.
     * Available in every build type; step() runs it automatically
     * under MUGI_AUDIT_INVARIANTS.
     */
    [[nodiscard]] std::string check_invariants() const;

  private:
    struct ActiveRequest {
        std::uint64_t id = 0;
        Request request;
        Session session;
        /**
         * Tokens chunked prefill feeds (functional): the prompt,
         * plus -- after a preemption -- the tokens generated before
         * eviction, replayed to rebuild the KV cache bit-identically.
         */
        std::vector<int> feed;
        /** Effective prompt length (analytic: prompt + replayed). */
        units::Tokens feed_tokens{0};
        units::Tokens prompt_fed{0};
        std::vector<int> tokens{};
        units::Tokens generated{0};
        int pending_token = -1;  ///< Next decode input.
        /** Pool bytes reserved for this analytic session's cache
         *  beyond any refcounted shared-prefix blocks. */
        units::Bytes analytic_reserved_bytes{0};
        /** Full projection charge (kFullProjection mode only). */
        units::Bytes projected_bytes{0};
        /**
         * Positions adopted from a resident request's KV blocks at
         * admission (prefix-cache hit); their prefill chunks were
         * skipped.
         */
        units::Tokens shared_prefix_tokens{0};
        /** Block groups those positions cover. */
        units::Blocks shared_prefix_blocks{0};
        /**
         * Chain keys of this request's shareable prompt-block runs
         * -- the prefix-index entries it owns while resident.
         */
        std::vector<std::uint64_t> prefix_keys;
        /**
         * Leading prefix_keys this *analytic* request holds
         * refcounted reservations for (each key's block-group bytes
         * are charged to the pool exactly once across all sharers).
         */
        std::size_t analytic_refs_held = 0;
        std::uint64_t admission_seq = 0;
        std::size_t preempt_count = 0;
        double arrival_s = 0.0;
        double admitted_s = 0.0;
        double first_token_s = 0.0;
        bool done = false;

        bool
        prefill_done() const
        {
            return prompt_fed >= feed_tokens;
        }
    };

    struct QueuedRequest {
        std::uint64_t id = 0;
        Request request;
        /** max(arrival_time_s, clock at submit). */
        double arrival_s = 0.0;

        /**
         * Chain keys of the request's shareable prompt blocks,
         * computed once at submit (they depend only on the prompt /
         * prefix declaration and precision) and moved into the
         * ActiveRequest at admission; find_prefix_match walks them
         * on every admission attempt without re-hashing the prompt.
         */
        std::vector<std::uint64_t> prefix_keys;

        // Resume state carried across a preemption.
        bool resumed = false;
        std::vector<int> resume_tokens;
        units::Tokens resume_generated{0};
        double original_admitted_s = 0.0;
        double first_token_s = 0.0;
        std::size_t preempt_count = 0;
    };

    std::size_t
    target_batch() const
    {
        return config_.max_batch ? config_.max_batch
                                 : policy_.target_batch();
    }

    /** What a prefix-index lookup found for a queued request. */
    struct PrefixMatch {
        units::Tokens tokens{0};  ///< Block-aligned shared positions.
        units::Blocks blocks{0};  ///< Block groups those cover.
        /** active_ index of the resident donor (tokens > 0 only). */
        std::size_t donor = 0;
    };

    /** Bytes of one all-layer block group at @p precision. */
    units::Bytes block_group_bytes(quant::KvPrecision precision) const;
    /** Blocks covering @p tokens at the pool's block geometry. */
    units::Blocks blocks_for(units::Tokens tokens) const;
    /** Prefix caching needs paged refcounts and the config knob. */
    bool prefix_caching_on() const;
    /**
     * Chain keys over @p request's shareable prompt-block runs, one
     * per depth (functional: hashes of the real token runs; analytic:
     * synthesized from prefix_group within prefix_tokens).  Empty
     * when the request has nothing shareable.
     */
    std::vector<std::uint64_t> prefix_keys_for(const Request& request)
        const;
    /**
     * Longest block-aligned prompt prefix of @p queued already
     * computed by a resident request at the same precision (always
     * leaving >= 1 token to feed, so the completing chunk's logits
     * still emit the first token).
     */
    PrefixMatch find_prefix_match(const QueuedRequest& queued) const;
    /** Publish @p req's prompt blocks in the prefix index. */
    void register_prefix_owner(ActiveRequest& req);
    /** Remove @p req's prefix-index entries (retire / preempt). */
    void deregister_prefix_owner(const ActiveRequest& req);
    /**
     * Take refcounted reservations on the first @p blocks of an
     * analytic request's prefix keys (reserve-once semantics); both
     * admission (adopted blocks must be resident *before* the next
     * pressure check) and the per-step reservation sync call this.
     */
    void acquire_analytic_prefix_refs(ActiveRequest& req,
                                      units::Blocks blocks);
    /** Drop an analytic request's refcounted prefix reservations. */
    void release_analytic_prefix_refs(ActiveRequest& req);
    /**
     * Bytes admission must charge for @p queued (mode-dependent);
     * a prefix-cache hit charges only the unshared tail.
     */
    units::Bytes admission_bytes(const QueuedRequest& queued,
                                 units::Blocks shared_blocks) const;
    /** Watermark headroom at the largest resident block group. */
    units::Bytes watermark_bytes(quant::KvPrecision head_precision)
        const;
    /** Pool bytes @p req's blocks / reservations occupy today. */
    units::Bytes resident_bytes(const ActiveRequest& req) const;
    /** Bytes @p req still needs to cover @p tokens positions, beyond
     *  resident_bytes (shared blocks therefore counted once). */
    units::Bytes growth_slack_bytes(const ActiveRequest& req,
                                    units::Tokens tokens) const;
    units::Bytes committed_total() const;
    /** KV positions @p req will append this iteration. */
    units::Tokens step_append_tokens(const ActiveRequest& req) const;
    /** Evict active requests until this iteration's appends fit. */
    void preempt_for_pressure();
    /** Evict active_[index]: free its blocks, re-queue at the front. */
    void preempt(std::size_t index);
    /**
     * Retire active_[index] with @p reason right now: finish it,
     * drop its prefix-index entries and analytic reservations, and
     * erase it (its session's destructor releases the KV blocks) --
     * the cancel/deadline twin of the end-of-step retire path.
     */
    void retire_active(std::size_t index, FinishReason reason);
    /** Retire a (still-)queued request with @p reason. */
    void finish_queued(QueuedRequest&& queued, FinishReason reason);
    /** Retire queued+active requests whose deadline_s passed. */
    void expire_deadlines();
    /**
     * Bounded-queue sweep: while more than max_queued_requests
     * arrived, never-admitted requests wait, retire the shed
     * policy's pick with FinishReason::kShed.  No-op when
     * max_queued_requests == 0.
     */
    void shed_for_capacity();
    /** Retire queued requests whose admission timeout expired. */
    void expire_admission_timeouts();
    /** Fold @p f into the latency aggregates and the finished list. */
    void record_finished(FinishedRequest f);
    /** Grow the pool reservation mirroring an analytic cache. */
    void sync_analytic_reservation(ActiveRequest& req);
    void admit_arrivals();
    /** Emit one generated token; returns true when req is finished. */
    bool emit_token(ActiveRequest& req, int token);
    void finish(ActiveRequest& req, FinishReason reason);

    const Engine& engine_;
    SchedulerConfig config_;
    BatchPolicy policy_;
    bool functional_ = false;

    quant::BlockPool pool_;
    std::deque<QueuedRequest> queue_;
    std::vector<ActiveRequest> active_;
    std::vector<FinishedRequest> finished_;

    /**
     * Prefix index: chain key of a prompt-block run -> ids of the
     * resident requests whose prompts contain that run (entries live
     * exactly as long as their owner is resident).
     */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        prefix_index_;
    /**
     * Analytic mirror of block refcounts: chain key -> number of
     * resident analytic sharers; the block-group bytes behind a key
     * are reserved when the count rises from 0 and unreserved when
     * it returns to 0, so shared reservations are counted once.
     */
    std::unordered_map<std::uint64_t, std::size_t>
        analytic_prefix_refs_;

    sim::PerfAccumulator horizon_;
    /** Clock: horizon_.elapsed_s() + idle fast-forward skips. */
    double now_s_ = 0.0;
    double idle_s_ = 0.0;

    // Cumulative counters (survive take_finished()).
    std::size_t submitted_ = 0;
    std::size_t finished_count_ = 0;
    units::Tokens decode_tokens_{0};
    units::Tokens prefill_tokens_{0};
    units::Tokens generated_tokens_{0};
    std::size_t preemptions_ = 0;
    std::size_t cancelled_ = 0;
    std::size_t expired_ = 0;
    std::size_t requests_shed_ = 0;
    std::size_t admission_timeouts_ = 0;
    std::size_t prefix_hits_ = 0;
    units::Blocks shared_blocks_{0};
    units::Tokens saved_prefill_tokens_{0};
    std::uint64_t admission_seq_ = 0;
    double sum_queue_s_ = 0.0;
    double sum_ttft_s_ = 0.0;
    double max_ttft_s_ = 0.0;
    double sum_tpot_s_ = 0.0;
    /** Pooled-step worker-utilization sums (stats() divides). */
    std::size_t pooled_steps_ = 0;
    double sum_worker_busy_ = 0.0;
    /** Finished requests that emitted >= 1 token (TTFT divisor). */
    std::size_t ttft_count_ = 0;
    /** Finished requests that emitted >= 2 tokens (TPOT divisor). */
    std::size_t tpot_count_ = 0;
    /** Per-request latency samples behind the stats() percentiles
     *  (same inclusion rules as the ttft/tpot counts above). */
    std::vector<double> ttft_samples_;
    std::vector<double> tpot_samples_;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_SCHEDULER_H_
