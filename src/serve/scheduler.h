#ifndef MUGI_SERVE_SCHEDULER_H_
#define MUGI_SERVE_SCHEDULER_H_

/**
 * @file
 * The request-lifecycle serving frontend: admission control, chunked
 * prefill, continuous batching and KV-memory management over
 * Engine::step.
 *
 * Callers submit() Requests and step() (or run()) the scheduler; it
 * owns everything in between:
 *
 *  - a quant::BlockPool sized to the KV budget: every admitted
 *    request's caches draw fixed-size blocks from it (functional
 *    serving), or the scheduler mirrors the modeled cache through
 *    byte reservations (analytic serving), so the pool's
 *    bytes_in_use is the exact device footprint either way;
 *  - an admission queue ordered by submission, gated on each
 *    request's modeled arrival time and on **block-level
 *    reservation**: a request is admitted when the blocks covering
 *    its prompt (plus a watermark of free blocks that keeps decode
 *    headroom) fit beside the blocks committed to resident requests
 *    -- not its full projected generation length, which is what lets
 *    a paged pool admit strictly more concurrent sessions than the
 *    old full-length projection (kept as
 *    AdmissionMode::kFullProjection for comparison).  Admission is
 *    FIFO (head-of-line blocking, no starvation);
 *  - **preemption**: when decode growth would run the pool dry, the
 *    lowest-priority running request (ties: latest admitted) is
 *    evicted -- its blocks freed immediately -- and re-queued at the
 *    front for recompute-style re-prefill through the existing
 *    chunked-prefill path (its prompt plus the tokens it had already
 *    generated are replayed, so its remaining output is bit-identical
 *    to an uncontended run);
 *  - chunked prefill: admitted prompts are fed at most
 *    prefill_chunk_tokens per iteration, interleaved with the decode
 *    batch in one Engine::step(StepPlan) whose mixed workload shares
 *    a single WOQ weight stream (vLLM/Sarathi-style chunked prefill);
 *  - continuous batching toward the BatchPolicy target derived from
 *    the Fig. 14 sweep: finished requests leave mid-flight and
 *    queued requests are admitted the same iteration.
 *
 * Chunked-prefill invariant: feeding a prompt chunk by chunk is
 * bit-identical to one Engine::prefill call, and the mixed step's
 * workload MACs equal the sum of the equivalent standalone chunk and
 * decode workloads -- so scheduling (including preemption) changes
 * *when* work happens, never its numerics or totals
 * (tests/serve/scheduler_test.cc).
 *
 * Time is the modeled clock: each iteration advances it by the mixed
 * step's modeled runtime, which is what the TTFT/TPOT/queue numbers
 * in ServerStats are measured in.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "quant/block_allocator.h"
#include "serve/batch_policy.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "sim/performance_model.h"

namespace mugi {
namespace serve {

/** How admission charges a request against the KV budget. */
enum class AdmissionMode {
    /**
     * Block-level reservation: charge the blocks covering the prompt
     * (plus the next decode append) and keep watermark_blocks free;
     * decode growth is handled by allocation on demand plus
     * preemption under pressure.
     */
    kPagedReservation,
    /**
     * Legacy conservative policy: charge the full projected
     * generation length (prompt + max_new_tokens, block-rounded) up
     * front.  Never preempts; admits fewer concurrent sessions.
     */
    kFullProjection,
};

/** Scheduler knobs fixed at construction. */
struct SchedulerConfig {
    /**
     * KV-memory budget in bytes shared by all admitted requests (the
     * block pool's capacity); 0 = unbounded.  A request whose
     * reservation alone exceeds the budget is still admitted when it
     * can run alone (it could never run otherwise) -- the pool
     * overcommits for it.
     */
    std::size_t kv_budget_bytes = 0;
    /** Max prompt tokens fed per request per iteration. */
    std::size_t prefill_chunk_tokens = 256;
    /**
     * Concurrent-request target the continuous batch is steered
     * toward; 0 = derive via BatchPolicy from the engine's design
     * and model config.
     */
    std::size_t max_batch = 0;
    /** Context length used by the BatchPolicy derivation sweep. */
    std::size_t policy_context = 512;

    /** Admission policy against the KV budget. */
    AdmissionMode admission = AdmissionMode::kPagedReservation;
    /** KV positions per block of the shared pool. */
    std::size_t kv_block_tokens = quant::BlockPool::kDefaultBlockTokens;
    /**
     * Blocks (per layer, at the admitted request's precision) that
     * must remain free after a paged admission -- decode headroom
     * that damps admit/preempt thrash, vLLM's watermark.
     */
    std::size_t watermark_blocks = 1;
};

/** Serving-horizon report: accumulator totals + latency stats. */
struct ServerStats {
    /**
     * sim::PerfAccumulator total over every mixed step: cycles,
     * energy, tokens (prefill + decode) and recomputed rates --
     * energy_per_token_j here is the serving energy-per-token number.
     */
    sim::PerfReport horizon;
    std::size_t steps = 0;

    std::size_t submitted = 0;
    std::size_t finished = 0;
    std::size_t active = 0;  ///< Currently admitted.
    std::size_t queued = 0;  ///< Waiting for admission.

    /**
     * Decode-step tokens processed; with prefill_tokens this
     * accounts the horizon exactly: horizon.tokens ==
     * prefill_tokens + decode_tokens.  Re-prefill after a preemption
     * counts toward prefill_tokens (recompute is real work).
     */
    std::size_t decode_tokens = 0;
    std::size_t prefill_tokens = 0;  ///< Prompt tokens processed.
    /**
     * Tokens emitted to callers.  One token rides each completed
     * prefill (the chunk's final logits), so generated_tokens
     * exceeds decode_tokens by one per prefill completion -- once
     * per request plus once per re-prefill after a preemption
     * (replayed history itself is never re-emitted).
     */
    std::size_t generated_tokens = 0;

    std::size_t kv_budget_bytes = 0;
    /**
     * Largest exact block-pool footprint observed (allocated blocks
     * plus analytic reservations).
     */
    std::size_t peak_kv_bytes = 0;
    /** peak_kv_bytes / kv_budget_bytes (0 when unbounded). */
    double peak_pool_utilization = 0.0;
    /** Requests evicted under KV pressure and re-queued. */
    std::size_t preemptions = 0;
    std::size_t target_batch = 0;

    // Over finished requests, on the modeled clock.
    double mean_queue_s = 0.0;
    double mean_ttft_s = 0.0;
    double max_ttft_s = 0.0;
    double mean_tpot_s = 0.0;
};

/** Request-lifecycle scheduler over one Engine. */
class Scheduler {
  public:
    /** @p engine must outlive the scheduler. */
    explicit Scheduler(const Engine& engine,
                       const SchedulerConfig& config = {});

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Enqueue a request; returns the id FinishedRequest reports. */
    std::uint64_t submit(Request request);

    /**
     * One scheduling iteration: admit, preempt if the pool would run
     * dry, build the mixed StepPlan, Engine::step it, stream tokens,
     * retire finished requests.  Returns true while any request is
     * active or queued.
     */
    bool step();

    /** step() until drained, then hand back every finished request. */
    std::vector<FinishedRequest> run();

    /** Finished requests since the last take (submission order). */
    std::vector<FinishedRequest> take_finished();

    ServerStats stats() const;

    /** Modeled clock: PerfAccumulator::elapsed_s + idle skips. */
    double now_s() const { return now_s_; }
    std::size_t queued() const { return queue_.size(); }
    std::size_t active() const { return active_.size(); }
    /** Exact KV block-pool bytes held by admitted requests. */
    std::size_t kv_bytes_in_use() const;
    /** Requests evicted under KV pressure so far. */
    std::size_t preemptions() const { return preemptions_; }
    /** The shared block pool (admission + caches account here). */
    const quant::BlockPool& pool() const { return pool_; }
    const BatchPolicy& policy() const { return policy_; }

  private:
    struct ActiveRequest {
        std::uint64_t id = 0;
        Request request;
        Session session;
        /**
         * Tokens chunked prefill feeds (functional): the prompt,
         * plus -- after a preemption -- the tokens generated before
         * eviction, replayed to rebuild the KV cache bit-identically.
         */
        std::vector<int> feed;
        /** Effective prompt length (analytic: prompt + replayed). */
        std::size_t feed_tokens = 0;
        std::size_t prompt_fed = 0;
        std::vector<int> tokens{};
        std::size_t generated = 0;
        int pending_token = -1;  ///< Next decode input.
        /** Pool bytes reserved for this analytic session's cache. */
        std::size_t analytic_reserved_bytes = 0;
        /** Full projection charge (kFullProjection mode only). */
        std::size_t projected_bytes = 0;
        std::uint64_t admission_seq = 0;
        std::size_t preempt_count = 0;
        double arrival_s = 0.0;
        double admitted_s = 0.0;
        double first_token_s = 0.0;
        bool done = false;

        bool
        prefill_done() const
        {
            return prompt_fed >= feed_tokens;
        }
    };

    struct QueuedRequest {
        std::uint64_t id = 0;
        Request request;
        /** max(arrival_time_s, clock at submit). */
        double arrival_s = 0.0;

        // Resume state carried across a preemption.
        bool resumed = false;
        std::vector<int> resume_tokens;
        std::size_t resume_generated = 0;
        double original_admitted_s = 0.0;
        double first_token_s = 0.0;
        std::size_t preempt_count = 0;
    };

    std::size_t
    target_batch() const
    {
        return config_.max_batch ? config_.max_batch
                                 : policy_.target_batch();
    }

    /** Bytes of one all-layer block group at @p precision. */
    std::size_t block_group_bytes(quant::KvPrecision precision) const;
    std::size_t blocks_for(std::size_t positions) const;
    /** Bytes admission must charge for @p queued (mode-dependent). */
    std::size_t admission_bytes(const QueuedRequest& queued) const;
    /** Bytes currently committed to @p req against the budget. */
    std::size_t committed_bytes(const ActiveRequest& req) const;
    std::size_t committed_total() const;
    /** KV positions @p req will append this iteration. */
    std::size_t step_append_tokens(const ActiveRequest& req) const;
    /** Evict active requests until this iteration's appends fit. */
    void preempt_for_pressure();
    /** Evict active_[index]: free its blocks, re-queue at the front. */
    void preempt(std::size_t index);
    /** Grow the pool reservation mirroring an analytic cache. */
    void sync_analytic_reservation(ActiveRequest& req);
    void admit_arrivals();
    /** Emit one generated token; returns true when req is finished. */
    bool emit_token(ActiveRequest& req, int token);
    void finish(ActiveRequest& req, FinishReason reason);

    const Engine& engine_;
    SchedulerConfig config_;
    BatchPolicy policy_;
    bool functional_ = false;

    quant::BlockPool pool_;
    std::deque<QueuedRequest> queue_;
    std::vector<ActiveRequest> active_;
    std::vector<FinishedRequest> finished_;

    sim::PerfAccumulator horizon_;
    /** Clock: horizon_.elapsed_s() + idle fast-forward skips. */
    double now_s_ = 0.0;
    double idle_s_ = 0.0;

    // Cumulative counters (survive take_finished()).
    std::size_t submitted_ = 0;
    std::size_t finished_count_ = 0;
    std::size_t decode_tokens_ = 0;
    std::size_t prefill_tokens_ = 0;
    std::size_t generated_tokens_ = 0;
    std::size_t preemptions_ = 0;
    std::uint64_t admission_seq_ = 0;
    double sum_queue_s_ = 0.0;
    double sum_ttft_s_ = 0.0;
    double max_ttft_s_ = 0.0;
    double sum_tpot_s_ = 0.0;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_SCHEDULER_H_
