#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/fault.h"

namespace mugi {
namespace serve {

/**
 * Shared per-request state: the delta stream plus the finished slot.
 * The loop thread produces, the handle's owner consumes; the Server
 * and every copy of the handle share ownership, so the state outlives
 * whichever side finishes first.
 */
struct RequestHandle::State {
    State(std::uint64_t id, std::size_t delta_capacity)
        : id(id), deltas(delta_capacity)
    {
    }

    const std::uint64_t id;
    /**
     * Sized at submit to max_new_tokens + slack, so the loop
     * thread's push never blocks on a slow (or absent) consumer --
     * a stalled HTTP client can never stall the scheduler.
     */
    support::Channel<TokenDelta> deltas;

    support::Mutex mu;
    std::condition_variable_any cv;
    std::optional<FinishedRequest> finished MUGI_GUARDED_BY(mu);
};

std::uint64_t
RequestHandle::id() const
{
    return state_->id;
}

std::optional<TokenDelta>
RequestHandle::next()
{
    return state_->deltas.pop();
}

std::optional<TokenDelta>
RequestHandle::try_next()
{
    return state_->deltas.try_pop();
}

FinishedRequest
RequestHandle::wait()
{
    State& s = *state_;
    s.mu.lock();
    while (!s.finished) {
        s.cv.wait(s.mu);
    }
    FinishedRequest f = *s.finished;
    s.mu.unlock();
    return f;
}

std::optional<FinishedRequest>
RequestHandle::poll()
{
    support::MutexLock lock(state_->mu);
    return state_->finished;
}

bool
RequestHandle::cancel()
{
    return server_->cancel(state_->id);
}

Server::Server(const Engine& engine, const ServerConfig& config)
    : engine_(engine), config_(config),
      commands_(config.command_queue_depth),
      scheduler_(engine, config.scheduler)
{
    publish_stats();
    loop_thread_ = std::thread(&Server::loop, this);
}

Server::~Server()
{
    shutdown(ShutdownMode::kDrain);
}

RequestHandle
Server::submit(Request request)
{
    const std::uint64_t id = next_id_.fetch_add(1);
    // Delta capacity: every token the request can ever stream, plus
    // slack -- the dimensionless token count via the same-unit ratio.
    const std::size_t delta_capacity =
        request.max_new_tokens / units::Tokens(1) + 2;
    auto state = std::make_shared<RequestHandle::State>(
        id, delta_capacity);

    // Chain the server's streaming hook onto any caller callback:
    // the callback still fires first (from the loop thread), then
    // the delta lands in the handle's channel.
    TokenCallback user_hook = std::move(request.on_token);
    request.on_token = [state, user_hook](std::uint64_t rid,
                                          std::size_t index,
                                          int token) {
        if (user_hook) {
            user_hook(rid, index, token);
        }
        state->deltas.push(TokenDelta{rid, index, token});
    };

    bool accepted = false;
    {
        support::MutexLock lock(mu_);
        if (accepting_) {
            live_.emplace(id, state);
            accepted = true;
        }
    }
    if (accepted) {
        // Chaos seam: a fired "channel.push" is a command channel
        // that refused the submission -- the request is shed before
        // the scheduler ever sees it, the overload twin of the
        // shutdown race below.  Its handle still resolves.
        if (MUGI_FAULT_POINT("channel.push")) {
            server_sheds_.fetch_add(1);
            finish_unsubmitted(id, state, FinishReason::kShed);
            return RequestHandle(this, std::move(state));
        }
        Command command;
        command.kind = Command::Kind::kSubmit;
        command.id = id;
        command.request = std::move(request);
        if (commands_.push(std::move(command))) {
            return RequestHandle(this, std::move(state));
        }
        // The channel closed between the accepting_ check and the
        // push (shutdown race): fall through to the rejection path.
    }
    finish_unsubmitted(id, state, FinishReason::kShutdown);
    return RequestHandle(this, std::move(state));
}

bool
Server::cancel(std::uint64_t id)
{
    {
        support::MutexLock lock(mu_);
        if (live_.find(id) == live_.end()) {
            return false;  // Unknown or already retired.
        }
    }
    Command command;
    command.kind = Command::Kind::kCancel;
    command.id = id;
    // push blocks under backpressure rather than dropping; false
    // only when shutdown already closed the channel (a draining
    // server runs the request to completion instead).
    return commands_.push(std::move(command));
}

void
Server::shutdown(ShutdownMode mode)
{
    {
        support::MutexLock lock(mu_);
        accepting_ = false;
    }
    if (mode == ShutdownMode::kAbort) {
        abort_.store(true);
    }
    commands_.close();
    bool join = false;
    {
        support::MutexLock lock(mu_);
        if (!joined_) {
            joined_ = true;
            join = true;
        }
    }
    if (join && loop_thread_.joinable()) {
        loop_thread_.join();
    }
}

bool
Server::accepting() const
{
    support::MutexLock lock(mu_);
    return accepting_;
}

bool
Server::ready() const
{
    support::MutexLock lock(mu_);
    return accepting_ && commands_.size() < commands_.capacity();
}

void
Server::record_slow_client_cancel()
{
    slow_client_cancels_.fetch_add(1);
}

std::string
Server::check_invariants() const
{
    {
        support::MutexLock lock(mu_);
        if (!joined_) {
            return "Server::check_invariants called before shutdown "
                   "(the scheduler is loop-thread-only state while "
                   "the loop runs)";
        }
    }
    // The loop thread has exited and joined: its writes are visible
    // and nothing else touches the scheduler.
    return scheduler_.check_invariants();
}

ServerStats
Server::stats() const
{
    support::MutexLock lock(mu_);
    ServerStats s = stats_snapshot_;
    // Server-side counters the scheduler never sees: submissions the
    // command channel refused, front-end slow-client cancels, and the
    // process-wide fault-injection fire count.
    s.requests_shed += server_sheds_.load();
    s.slow_client_cancels = slow_client_cancels_.load();
    s.faults_injected = support::FaultInjector::instance().fires();
    return s;
}

void
Server::loop()
{
    bool open = true;
    for (;;) {
        const bool has_work =
            scheduler_.queued() > 0 || scheduler_.active() > 0;
        if (!open && !has_work) {
            break;  // Drained and no more commands can arrive.
        }
        if (open && !has_work) {
            // Idle: block until work (or shutdown) arrives instead
            // of spinning.
            std::optional<Command> command = commands_.pop();
            if (!command) {
                open = false;
                continue;  // Re-check: pending work may remain.
            }
            apply(std::move(*command));
        }
        // Adopt everything already queued before stepping, so one
        // iteration batches every arrival it can see.
        while (std::optional<Command> command = commands_.try_pop()) {
            apply(std::move(*command));
        }
        if (abort_.load()) {
            break;
        }
        // Chaos seam: a fired "loop.step_delay" stalls the loop
        // thread in *wall-clock* time only.  The scheduler's modeled
        // clock is untouched, so delays change when tokens are
        // delivered, never which tokens come out.
        if (MUGI_FAULT_POINT("loop.step_delay")) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        scheduler_.step();
        // Publish BEFORE delivering: the moment a handle's wait()
        // returns, stats() already reflects that retirement -- a
        // caller may read stats() the instant its stream ends.
        publish_stats();
        deliver_finished();
    }
    if (abort_.load()) {
        // Adopt any still-queued submissions so their handles
        // resolve, then retire everything on the spot.
        while (std::optional<Command> command = commands_.try_pop()) {
            apply(std::move(*command));
        }
        scheduler_.cancel_all(FinishReason::kShutdown);
        publish_stats();
        deliver_finished();
    }
    publish_stats();
}

void
Server::apply(Command&& command)
{
    switch (command.kind) {
      case Command::Kind::kSubmit:
        scheduler_.submit_with_id(std::move(command.request),
                                  command.id);
        break;
      case Command::Kind::kCancel:
        // False (already retired naturally) is fine: the handle has
        // or will get its FinishedRequest either way.
        scheduler_.cancel(command.id);
        break;
    }
}

void
Server::deliver_finished()
{
    for (FinishedRequest& f : scheduler_.take_finished()) {
        std::shared_ptr<RequestHandle::State> state;
        {
            support::MutexLock lock(mu_);
            const auto it = live_.find(f.id);
            if (it != live_.end()) {
                state = it->second;
                live_.erase(it);
            }
        }
        if (!state) {
            continue;  // Unreachable: every id came from submit().
        }
        // Close first: a consumer blocked in next() wakes, drains
        // the remaining deltas, then sees end-of-stream.
        state->deltas.close();
        state->mu.lock();
        state->finished = std::move(f);
        state->mu.unlock();
        state->cv.notify_all();
    }
}

void
Server::publish_stats()
{
    ServerStats snapshot = scheduler_.stats();
    support::MutexLock lock(mu_);
    stats_snapshot_ = std::move(snapshot);
}

void
Server::finish_unsubmitted(
    std::uint64_t id,
    const std::shared_ptr<RequestHandle::State>& state,
    FinishReason reason)
{
    {
        support::MutexLock lock(mu_);
        live_.erase(id);
    }
    FinishedRequest f;
    f.id = id;
    f.reason = reason;
    state->deltas.close();
    state->mu.lock();
    state->finished = std::move(f);
    state->mu.unlock();
    state->cv.notify_all();
}

}  // namespace serve
}  // namespace mugi
