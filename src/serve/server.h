#ifndef MUGI_SERVE_SERVER_H_
#define MUGI_SERVE_SERVER_H_

/**
 * @file
 * The push-based serving core: Scheduler's single-threaded loop moved
 * onto its own thread behind a submit()/cancel() facade.
 *
 * Server inverts the caller-driven pull loop.  Instead of one thread
 * calling submit()/step() in a loop, the Server owns a dedicated
 * *loop thread* that drives the Scheduler, and any number of caller
 * threads push work at it:
 *
 *   caller threads        loop thread              pool workers
 *   submit()/cancel() --> Channel<Command> -->     Scheduler::step
 *   RequestHandle     <-- Channel<TokenDelta> <--  (Engine fans MACs
 *     next()/wait()        per request              across ThreadPool)
 *
 * Life of a request: submit() assigns the id on the *calling* thread
 * (so the handle exists before the loop thread ever sees the
 * request), chains the server's streaming hook onto Request::on_token
 * and enqueues a submission command.  The loop thread admits it,
 * steps the scheduler, and every generated token is pushed into the
 * request's own Channel<TokenDelta> -- sized so the producer never
 * blocks -- where RequestHandle::next() (or an HTTP connection)
 * drains it.  When the scheduler retires the request, the delta
 * channel closes (next() returns nullopt: end of stream) and the
 * FinishedRequest is published for RequestHandle::wait().
 *
 * Cancellation (DELETE in the HTTP front-end) and deadline expiry
 * retire through Scheduler::cancel / the deadline sweep, releasing KV
 * blocks exactly as a natural finish does -- audited by the
 * scheduler's invariant checkers, and the "no leaked blocks" number
 * is stats().kv_bytes_in_use == 0 once everything retired.
 *
 * shutdown(kDrain) closes the submission channel (queued commands
 * still drain -- close never drops) and lets in-flight requests run
 * to completion; shutdown(kAbort) retires everything immediately with
 * FinishReason::kShutdown.  Either way every handle resolves: no
 * caller is left blocked on a stream that will never end.
 *
 * Token streams are bit-identical to an in-process Scheduler run of
 * the same request set: the loop thread *is* the single thread the
 * Scheduler requires, threading changed where requests come from,
 * never what the engine computes (bench/serve_load --check gates
 * this end to end over HTTP).
 *
 * Thread-safety: internally synchronized.  submit(), cancel(),
 * stats(), shutdown() and the RequestHandle members may be called
 * from any thread concurrently; cross-thread traffic flows through
 * support::Channel and the MUGI_GUARDED_BY state below, and
 * tests/serve/server_test.cc races submitters against the loop under
 * TSan.  The Scheduler itself is only ever touched by the loop
 * thread.  The Server must outlive its RequestHandles' member calls,
 * and the Engine must outlive the Server.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/request.h"
#include "serve/scheduler.h"
#include "support/channel.h"
#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace serve {

/** Server knobs fixed at construction. */
struct ServerConfig {
    /** The scheduler the loop thread drives. */
    SchedulerConfig scheduler;
    /**
     * Submission-channel depth: submit() blocks (backpressure, never
     * drops) once this many commands are queued ahead of the loop
     * thread.
     */
    std::size_t command_queue_depth = 256;
};

/** One streamed token: request, 0-based emission index, token id. */
struct TokenDelta {
    std::uint64_t id = 0;
    std::size_t index = 0;
    int token = -1;  ///< -1 on analytic engines (no real tokens).
};

/** How shutdown treats requests still in the system. */
enum class ShutdownMode {
    /** Refuse new work, run queued + in-flight to completion. */
    kDrain,
    /** Retire everything now with FinishReason::kShutdown. */
    kAbort,
};

class Server;

/**
 * Caller's end of one submitted request: a stream of token deltas
 * plus the final FinishedRequest.  Cheap to copy (shared state);
 * valid until the Server is destroyed.
 */
class RequestHandle {
  public:
    std::uint64_t id() const;

    /**
     * Next streamed token, blocking until one is produced; nullopt
     * means the stream ended (finished, cancelled, expired, or shut
     * down -- wait() tells which).
     */
    std::optional<TokenDelta> next();
    /** Non-blocking next(); nullopt when nothing is pending. */
    std::optional<TokenDelta> try_next();

    /** Block until the request retires; returns its FinishedRequest. */
    FinishedRequest wait();
    /** The FinishedRequest, if the request already retired. */
    std::optional<FinishedRequest> poll();

    /** Ask the server to cancel this request (see Server::cancel). */
    bool cancel();

  private:
    friend class Server;
    struct State;
    RequestHandle(Server* server, std::shared_ptr<State> state)
        : server_(server), state_(std::move(state))
    {
    }

    Server* server_;
    std::shared_ptr<State> state_;
};

/** The push-based serving front over one Engine (see file doc). */
class Server {
  public:
    /** @p engine must outlive the server; the loop thread starts
     *  running before the constructor returns. */
    explicit Server(const Engine& engine,
                    const ServerConfig& config = {});
    /** Joins the loop thread; equivalent to shutdown(kDrain). */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Submit a request from any thread.  The returned handle is live
     * immediately; the request reaches the scheduler asynchronously.
     * Any Request::on_token callback still fires (from the loop
     * thread) before the delta is streamed.  After shutdown began,
     * the request never runs: its handle resolves at once with
     * FinishReason::kShutdown and zero tokens.
     */
    RequestHandle submit(Request request);

    /**
     * Ask the loop thread to cancel @p id.  Returns false when the
     * id is unknown or already retired (an HTTP 404); true means the
     * cancel command was enqueued -- the request will retire with
     * FinishReason::kCancelled unless it finishes naturally first.
     */
    bool cancel(std::uint64_t id);

    /**
     * Stop the server (idempotent; the destructor drains).  kDrain
     * completes in-flight and queued work first; kAbort retires it
     * all with FinishReason::kShutdown.  Blocks until the loop
     * thread exits; every outstanding handle has resolved by then.
     */
    void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

    /** True until shutdown() begins refusing submissions. */
    bool accepting() const;

    /**
     * Readiness (vs. the liveness accepting() reports): true while
     * the server is accepting AND the command channel has room --
     * i.e. the loop thread is keeping up.  The HTTP front-end's
     * /healthz maps false onto 503 so load balancers stop routing to
     * a draining or saturated server before submits start blocking.
     */
    bool ready() const;

    /**
     * Count one slow-client cancellation (HTTP write timeout or a
     * vanished connection forced a cancel); surfaced as
     * ServerStats::slow_client_cancels.  Called by the front-end
     * from any connection thread.
     */
    void record_slow_client_cancel();

    /**
     * Recompute the scheduler's cross-structure accounting from
     * scratch (Scheduler::check_invariants) and return the first
     * violation, empty when consistent.  Only callable after
     * shutdown() returned -- the scheduler is loop-thread-only state
     * while the loop runs -- and returns a diagnostic (not a crash)
     * when called too early.  The chaos bench's end-of-run gate.
     */
    [[nodiscard]] std::string check_invariants() const;

    /** The engine the loop thread drives (e.g. has_model()). */
    const Engine& engine() const { return engine_; }

    /**
     * Scheduler stats as of the end of the loop thread's most recent
     * iteration (a consistent snapshot -- the scheduler itself is
     * never touched cross-thread).  Published before handles resolve:
     * once a RequestHandle's wait() returns, stats() already reflects
     * that retirement.
     */
    ServerStats stats() const;

  private:
    struct Command {
        enum class Kind { kSubmit, kCancel };
        Kind kind = Kind::kSubmit;
        std::uint64_t id = 0;
        Request request;  ///< kSubmit only.
    };

    void loop();
    void apply(Command&& command);
    /** Route take_finished() results to their handles. */
    void deliver_finished();
    void publish_stats();
    /** Resolve @p state without the scheduler ever seeing it. */
    void finish_unsubmitted(std::uint64_t id,
                            const std::shared_ptr<RequestHandle::State>&
                                state,
                            FinishReason reason);

    const Engine& engine_;
    ServerConfig config_;

    /** MPSC: any caller thread -> the loop thread. */
    support::Channel<Command> commands_;

    /** Loop-thread-only state (no guard needed: one owner). */
    Scheduler scheduler_;

    mutable support::Mutex mu_;
    /** Submitted-but-not-retired requests, by id. */
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<RequestHandle::State>>
        live_ MUGI_GUARDED_BY(mu_);
    ServerStats stats_snapshot_ MUGI_GUARDED_BY(mu_);
    bool accepting_ MUGI_GUARDED_BY(mu_) = true;
    bool joined_ MUGI_GUARDED_BY(mu_) = false;

    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<bool> abort_{false};
    /** Submissions the server itself shed (fault-injected channel
     *  refusal); merged into ServerStats::requests_shed. */
    std::atomic<std::size_t> server_sheds_{0};
    /** Slow-client cancellations reported by the front-end. */
    std::atomic<std::size_t> slow_client_cancels_{0};

    std::thread loop_thread_;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_SERVER_H_
