#include "serve/session.h"

#include <cassert>

namespace mugi {
namespace serve {

Session::Session(std::uint64_t id, quant::KvPrecision kv_precision,
                 std::size_t initial_context, std::size_t num_layers)
    : id_(id), kv_precision_(kv_precision), position_(initial_context),
      layer_hooks_(num_layers)
{
}

std::size_t
Session::kv_bytes() const
{
    std::size_t total = 0;
    for (const quant::KvCache& cache : caches_) {
        total += cache.byte_size();
    }
    return total;
}

std::size_t
Session::kv_memory_bytes(std::size_t num_layers,
                         std::size_t num_kv_heads,
                         std::size_t head_dim) const
{
    if (!caches_.empty()) {
        std::size_t total = 0;
        for (const quant::KvCache& cache : caches_) {
            total += cache.memory_bytes();
        }
        return total;
    }
    // Analytic session: the modeled cache holds position_ tokens per
    // layer at this session's precision.
    return num_layers * position_ *
           quant::KvCache::bytes_per_position(num_kv_heads, head_dim,
                                              kv_precision_);
}

void
Session::set_hooks(const model::NonlinearHooks& hooks)
{
    hooks_ = hooks;
}

void
Session::set_layer_hooks(std::size_t layer,
                         std::optional<model::NonlinearHooks> hooks)
{
    assert(layer < layer_hooks_.size());
    layer_hooks_[layer] = hooks;
}

const model::NonlinearHooks&
Session::hooks_for(std::size_t layer) const
{
    if (layer < layer_hooks_.size() &&
        layer_hooks_[layer].has_value()) {
        return *layer_hooks_[layer];
    }
    return hooks_;
}

}  // namespace serve
}  // namespace mugi
