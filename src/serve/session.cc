#include "serve/session.h"

#include <cassert>

namespace mugi {
namespace serve {

Session::Session(std::uint64_t id, quant::KvPrecision kv_precision,
                 std::size_t initial_context, std::size_t num_layers)
    : id_(id), kv_precision_(kv_precision), position_(initial_context),
      layer_hooks_(num_layers)
{
}

std::size_t
Session::kv_bytes() const
{
    std::size_t total = 0;
    for (const quant::KvCache& cache : caches_) {
        total += cache.memory_bytes();
    }
    return total;
}

void
Session::set_hooks(const model::NonlinearHooks& hooks)
{
    hooks_ = hooks;
}

void
Session::set_layer_hooks(std::size_t layer,
                         std::optional<model::NonlinearHooks> hooks)
{
    assert(layer < layer_hooks_.size());
    layer_hooks_[layer] = hooks;
}

const model::NonlinearHooks&
Session::hooks_for(std::size_t layer) const
{
    if (layer < layer_hooks_.size() &&
        layer_hooks_[layer].has_value()) {
        return *layer_hooks_[layer];
    }
    return hooks_;
}

}  // namespace serve
}  // namespace mugi
