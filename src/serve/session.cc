#include "serve/session.h"

#include <cassert>

namespace mugi {
namespace serve {

Session::Session(std::uint64_t id, quant::KvPrecision kv_precision,
                 std::size_t initial_context, std::size_t num_layers)
    : id_(id), kv_precision_(kv_precision), position_(initial_context),
      layer_hooks_(num_layers)
{
}

units::Bytes
Session::kv_bytes() const
{
    units::Bytes total{0};
    for (const quant::KvCache& cache : caches_) {
        total += cache.memory_bytes();
    }
    return total;
}

void
Session::adopt_kv_prefix(const Session& donor,
                         units::Positions positions)
{
    assert(position_ == 0 && tokens_generated_ == 0 &&
           "prefix adoption needs an untouched session");
    assert(!caches_.empty() &&
           "prefix adoption is for functional sessions with KV caches");
    assert(caches_.size() == donor.caches_.size());
    assert(kv_precision_ == donor.kv_precision_);
    assert(positions.value() <= donor.position_);
    if (positions.value() == 0) {
        return;
    }
    for (std::size_t l = 0; l < caches_.size(); ++l) {
        caches_[l].share_prefix_from(donor.caches_[l], positions);
    }
    position_ = positions.value();
}

units::Blocks
Session::kv_block_count() const
{
    units::Blocks blocks{0};
    for (const quant::KvCache& cache : caches_) {
        blocks += cache.blocks_in_use();
    }
    return blocks;
}

units::Blocks
Session::shared_kv_blocks() const
{
    units::Blocks shared{0};
    for (const quant::KvCache& cache : caches_) {
        shared += cache.shared_blocks();
    }
    return shared;
}

void
Session::set_hooks(const model::NonlinearHooks& hooks)
{
    hooks_ = hooks;
}

void
Session::set_layer_hooks(std::size_t layer,
                         std::optional<model::NonlinearHooks> hooks)
{
    assert(layer < layer_hooks_.size());
    layer_hooks_[layer] = hooks;
}

const model::NonlinearHooks&
Session::hooks_for(std::size_t layer) const
{
    if (layer < layer_hooks_.size() &&
        layer_hooks_[layer].has_value()) {
        return *layer_hooks_[layer];
    }
    return hooks_;
}

}  // namespace serve
}  // namespace mugi
