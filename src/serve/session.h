#ifndef MUGI_SERVE_SESSION_H_
#define MUGI_SERVE_SESSION_H_

/**
 * @file
 * Per-request serving state.
 *
 * An Engine (serve/engine.h) is immutable and shared; everything that
 * changes while a request is being served lives here: the (optionally
 * KVQ-quantized, Sec. 2.3.3) per-layer KV caches, the decode
 * position, and the per-layer nonlinear window tuning of Fig. 7 --
 * each request may deploy its own VLP kernels from the engine's
 * registry without affecting its neighbours in the batch.
 *
 * Thread-safety: externally serialized -- a session is not
 * individually thread-safe (one request = one stream of steps), but
 * distinct sessions never share mutable state (shared KV blocks are
 * copy-on-write), so disjoint session sets may be stepped
 * concurrently through the same engine
 * (tests/concurrency/engine_step_stress_test.cc exercises exactly
 * this under TSan).
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "model/transformer.h"
#include "quant/kv_cache.h"

namespace mugi {
namespace serve {

class Engine;

/** Per-request knobs fixed at admission time. */
struct SessionOptions {
    /** KV-cache storage precision (KVQ INT4 by default, Sec. 2.3.3). */
    quant::KvPrecision kv_precision = quant::KvPrecision::kInt4;
    /**
     * Pre-existing context length for analytic (workload-model-only)
     * serving; must be 0 when the engine hosts a functional model,
     * whose context is built by prefilling real tokens.
     */
    units::Tokens initial_context{0};
    /**
     * Shared block pool the session's KV caches draw from (must
     * outlive the session) -- serve::Scheduler points every admitted
     * request at its pool so admission, preemption and the caches all
     * account the same bytes.  nullptr: each cache uses a private
     * unbounded pool.
     */
    quant::BlockPool* kv_pool = nullptr;
};

/** One request's mutable state; created by Engine::create_session. */
class Session {
  public:
    Session(Session&&) = default;
    Session& operator=(Session&&) = default;

    units::SessionId id() const { return units::SessionId(id_); }

    /** Tokens resident in the KV cache (the current context length). */
    units::Positions position() const
    {
        return units::Positions(position_);
    }

    /** Tokens produced by Engine::step for this session. */
    std::uint64_t tokens_generated() const { return tokens_generated_; }

    quant::KvPrecision kv_precision() const { return kv_precision_; }

    /**
     * Exact KV block footprint across layers (KvCache::memory_bytes
     * semantics), in bytes.  0 for analytic sessions (no caches) --
     * serve::Scheduler mirrors those into its BlockPool instead, so
     * pool accounting is the footprint source of truth either way.
     */
    units::Bytes kv_bytes() const;

    /**
     * Prefix caching (functional sessions): map the first
     * @p positions of @p donor's per-layer KV blocks into this
     * freshly-created session's caches under pool refcounts
     * (quant::KvCache::share_prefix_from) and advance the position to
     * match, so chunked prefill resumes after the shared prefix.
     * Requires an untouched session (position 0), a donor from the
     * same engine whose caches share this session's pool, identical
     * KV precision, and donor position >= @p positions.  Appends by
     * either session copy-on-write shared blocks, so both keep
     * byte-identical reads; serve::Scheduler calls this when its
     * prefix index maps a new prompt onto resident blocks.
     */
    void adopt_kv_prefix(const Session& donor,
                         units::Positions positions);

    /** KV blocks (summed over layers) shared with another session. */
    units::Blocks shared_kv_blocks() const;

    /**
     * KV blocks this session's caches hold across layers -- each
     * cache's table entries, shared or not.  The scheduler's
     * invariant auditor compares the sum over resident sessions
     * against the pool's per-block refcount total.
     */
    units::Blocks kv_block_count() const;

    /**
     * Replace the default nonlinear kernels for every layer.  The
     * approximators referenced by @p hooks must outlive the session;
     * kernels obtained from the engine's registry do (retain them via
     * retain_kernel).
     */
    void set_hooks(const model::NonlinearHooks& hooks);

    /** Per-layer override (Fig. 7 tuning); nullopt = session default. */
    void set_layer_hooks(std::size_t layer,
                         std::optional<model::NonlinearHooks> hooks);

    /** Hooks in effect for @p layer. */
    const model::NonlinearHooks& hooks_for(std::size_t layer) const;

    /** Keep a registry kernel alive for this session's lifetime. */
    void
    retain_kernel(
        std::shared_ptr<const nonlinear::NonlinearApproximator> kernel)
    {
        retained_.push_back(std::move(kernel));
    }

  private:
    friend class Engine;

    Session(std::uint64_t id, quant::KvPrecision kv_precision,
            std::size_t initial_context, std::size_t num_layers);

    std::uint64_t id_ = 0;
    quant::KvPrecision kv_precision_ = quant::KvPrecision::kInt4;
    std::size_t position_ = 0;
    std::uint64_t tokens_generated_ = 0;

    /** Per-layer KV caches; empty for analytic-only sessions. */
    std::vector<quant::KvCache> caches_;

    model::NonlinearHooks hooks_;
    std::vector<std::optional<model::NonlinearHooks>> layer_hooks_;
    std::vector<std::shared_ptr<const nonlinear::NonlinearApproximator>>
        retained_;
};

}  // namespace serve
}  // namespace mugi

#endif  // MUGI_SERVE_SESSION_H_
