#include "server/frontend.h"

#include <cstdio>
#include <random>
#include <utility>

#include "server/json.h"

namespace mugi {
namespace server {
namespace {

/** splitmix64: the uuid mixer (id -> two well-mixed 64-bit halves). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
seed_from_entropy()
{
    std::random_device entropy;
    return (static_cast<std::uint64_t>(entropy()) << 32) ^
           entropy();
}

/** The final NDJSON line / non-streamed summary fields. */
json::ObjectWriter
finish_fields(const serve::FinishedRequest& f)
{
    json::ObjectWriter w;
    w.field_bool("done", true)
        .field("reason", serve::finish_reason_name(f.reason))
        .field_int("generated",
                   static_cast<long long>(f.generated.value()))
        .field_int("prompt_tokens",
                   static_cast<long long>(f.prompt_tokens.value()))
        .field_int("preemptions",
                   static_cast<long long>(f.preemptions))
        .field("queue_s", f.queue_s())
        .field("ttft_s", f.ttft_s())
        .field("tpot_s", f.tpot_s());
    return w;
}

}  // namespace

Frontend::Frontend(serve::Server& server)
    : server_(server), uuid_seed_(seed_from_entropy())
{
}

bool
Frontend::bind(std::uint16_t port)
{
    return listener_.bind_and_listen(port);
}

void
Frontend::run()
{
    for (;;) {
        const int fd = listener_.accept_fd(100);
        {
            support::MutexLock lock(mu_);
            if (stopping_) {
                if (fd >= 0) {
                    Connection refused(fd);  // Close it.
                }
                return;
            }
            if (fd >= 0) {
                workers_.emplace_back(&Frontend::handle, this, fd);
            }
        }
    }
}

void
Frontend::stop()
{
    {
        support::MutexLock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    listener_.close();
    // Drain: in-flight requests complete, every stream ends, every
    // connection worker unblocks.
    server_.shutdown(serve::ShutdownMode::kDrain);
    std::vector<std::thread> workers;
    {
        support::MutexLock lock(mu_);
        workers.swap(workers_);
    }
    for (std::thread& worker : workers) {
        worker.join();
    }
}

void
Frontend::handle(int fd)
{
    Connection connection(fd);
    HttpRequest request;
    if (!connection.read_request(&request)) {
        connection.write_response(
            400, "application/json",
            "{\"error\":\"malformed request\"}");
        return;
    }
    const std::string cancel_prefix = "/v1/generate/";
    if (request.method == "POST" &&
        request.target == "/v1/generate") {
        handle_generate(connection, request);
    } else if (request.method == "DELETE" &&
               request.target.rfind(cancel_prefix, 0) == 0) {
        handle_cancel(connection,
                      request.target.substr(cancel_prefix.size()));
    } else if (request.method == "GET" &&
               request.target == "/metrics") {
        handle_metrics(connection);
    } else if (request.method == "GET" &&
               request.target == "/healthz") {
        handle_health(connection);
    } else {
        connection.write_response(404, "application/json",
                                  "{\"error\":\"no such route\"}");
    }
}

void
Frontend::handle_generate(Connection& connection,
                          const HttpRequest& http_request)
{
    const std::optional<json::Value> body =
        json::parse(http_request.body.empty() ? "{}"
                                              : http_request.body);
    if (!body || !body->is_object()) {
        connection.write_response(400, "application/json",
                                  "{\"error\":\"invalid JSON\"}");
        return;
    }

    serve::Request request;
    if (const json::Value* prompt = body->find("prompt")) {
        if (!prompt->is_array()) {
            connection.write_response(
                400, "application/json",
                "{\"error\":\"prompt must be a token array\"}");
            return;
        }
        request.prompt.reserve(prompt->array.size());
        for (const json::Value& token : prompt->array) {
            request.prompt.push_back(static_cast<int>(token.number));
        }
    }
    request.analytic_prompt_tokens =
        units::Tokens(static_cast<std::size_t>(
            body->number_or("prompt_tokens", 0.0)));
    request.max_new_tokens = units::Tokens(static_cast<std::size_t>(
        body->number_or("max_new_tokens", 16.0)));
    if (const json::Value* stop = body->find("stop_token")) {
        if (stop->is_number()) {
            request.stop_token = static_cast<int>(stop->number);
        }
    }
    request.priority =
        static_cast<int>(body->number_or("priority", 0.0));
    request.prefix_group = static_cast<std::uint64_t>(
        body->number_or("prefix_group", 0.0));
    request.prefix_tokens =
        units::Tokens(static_cast<std::size_t>(
            body->number_or("prefix_tokens", 0.0)));
    request.arrival_time_s = body->number_or("arrival_time_s", 0.0);
    request.deadline_s = body->number_or("deadline_s", 0.0);
    const double timeout_s = body->number_or("timeout_s", 0.0);
    if (timeout_s > 0.0) {
        // Relative deadline against the modeled clock's snapshot.
        request.deadline_s = server_.stats().now_s + timeout_s;
    }
    const bool stream = body->bool_or("stream", true);

    if (server_.engine().has_model() && request.prompt.empty()) {
        connection.write_response(
            400, "application/json",
            "{\"error\":\"functional engine needs a prompt\"}");
        return;
    }
    if (!server_.accepting()) {
        connection.write_response(503, "application/json",
                                  "{\"error\":\"draining\"}");
        return;
    }

    serve::RequestHandle handle = server_.submit(std::move(request));
    const std::string uuid = uuid_for(handle.id());
    {
        support::MutexLock lock(mu_);
        uuids_.emplace(uuid, handle.id());
    }

    if (stream) {
        bool client_gone = !connection.begin_chunked(
            200, "application/x-ndjson");
        if (!client_gone) {
            json::ObjectWriter head;
            head.field("id", uuid);
            client_gone =
                !connection.write_chunk(head.str() + "\n");
        }
        while (std::optional<serve::TokenDelta> delta =
                   handle.next()) {
            if (client_gone) {
                continue;  // Drain so wait() below is immediate.
            }
            json::ObjectWriter line;
            line.field_int("index",
                           static_cast<long long>(delta->index))
                .field_int("token", delta->token);
            if (!connection.write_chunk(line.str() + "\n")) {
                // Client disconnected mid-stream: cancel so its KV
                // blocks free now instead of at max_new_tokens.
                client_gone = true;
                handle.cancel();
            }
        }
        const serve::FinishedRequest finished = handle.wait();
        if (!client_gone) {
            connection.write_chunk(finish_fields(finished).str() +
                                   "\n");
            connection.end_chunked();
        }
    } else {
        std::string tokens = "[";
        bool first = true;
        while (std::optional<serve::TokenDelta> delta =
                   handle.next()) {
            if (!first) {
                tokens += ',';
            }
            first = false;
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%d", delta->token);
            tokens += buf;
        }
        tokens += ']';
        const serve::FinishedRequest finished = handle.wait();
        json::ObjectWriter response = finish_fields(finished);
        response.field("id", uuid).field_raw("tokens", tokens);
        connection.write_response(200, "application/json",
                                  response.str());
    }
    {
        support::MutexLock lock(mu_);
        uuids_.erase(uuid);
    }
}

void
Frontend::handle_cancel(Connection& connection,
                        const std::string& uuid)
{
    std::uint64_t id = 0;
    bool known = false;
    {
        support::MutexLock lock(mu_);
        const auto it = uuids_.find(uuid);
        if (it != uuids_.end()) {
            id = it->second;
            known = true;
        }
    }
    if (known && server_.cancel(id)) {
        connection.write_response(202, "application/json",
                                  "{\"cancelled\":true}");
    } else {
        connection.write_response(
            404, "application/json",
            "{\"error\":\"unknown or finished request\"}");
    }
}

void
Frontend::handle_metrics(Connection& connection)
{
    const serve::ServerStats stats = server_.stats();
    char buffer[2048];
    const int n = std::snprintf(
        buffer, sizeof(buffer),
        "# TYPE mugi_requests_submitted counter\n"
        "mugi_requests_submitted %zu\n"
        "# TYPE mugi_requests_finished counter\n"
        "mugi_requests_finished %zu\n"
        "# TYPE mugi_requests_cancelled counter\n"
        "mugi_requests_cancelled %zu\n"
        "# TYPE mugi_requests_expired counter\n"
        "mugi_requests_expired %zu\n"
        "# TYPE mugi_requests_active gauge\n"
        "mugi_requests_active %zu\n"
        "# TYPE mugi_requests_queued gauge\n"
        "mugi_requests_queued %zu\n"
        "# TYPE mugi_preemptions counter\n"
        "mugi_preemptions %zu\n"
        "# TYPE mugi_kv_bytes_in_use gauge\n"
        "mugi_kv_bytes_in_use %zu\n"
        "# TYPE mugi_kv_peak_bytes gauge\n"
        "mugi_kv_peak_bytes %zu\n"
        "# TYPE mugi_generated_tokens counter\n"
        "mugi_generated_tokens %zu\n"
        "# TYPE mugi_ttft_seconds summary\n"
        "mugi_ttft_seconds{quantile=\"0.5\"} %.9g\n"
        "mugi_ttft_seconds{quantile=\"0.95\"} %.9g\n"
        "mugi_ttft_seconds{quantile=\"0.99\"} %.9g\n"
        "# TYPE mugi_tpot_seconds summary\n"
        "mugi_tpot_seconds{quantile=\"0.5\"} %.9g\n"
        "mugi_tpot_seconds{quantile=\"0.95\"} %.9g\n"
        "mugi_tpot_seconds{quantile=\"0.99\"} %.9g\n",
        stats.submitted, stats.finished, stats.cancelled,
        stats.expired, stats.active, stats.queued,
        stats.preemptions, stats.kv_bytes_in_use.value(),
        stats.peak_kv_bytes.value(), stats.generated_tokens.value(),
        stats.p50_ttft_s, stats.p95_ttft_s, stats.p99_ttft_s,
        stats.p50_tpot_s, stats.p95_tpot_s, stats.p99_tpot_s);
    connection.write_response(
        200, "text/plain; version=0.0.4",
        std::string(buffer, static_cast<std::size_t>(n)));
}

void
Frontend::handle_health(Connection& connection)
{
    if (server_.accepting()) {
        connection.write_response(200, "application/json",
                                  "{\"status\":\"ok\"}");
    } else {
        connection.write_response(503, "application/json",
                                  "{\"status\":\"draining\"}");
    }
}

std::string
Frontend::uuid_for(std::uint64_t id) const
{
    const std::uint64_t hi = mix64(uuid_seed_ ^ id);
    const std::uint64_t lo = mix64(hi ^ ~id);
    char buffer[40];
    std::snprintf(
        buffer, sizeof(buffer),
        "%08x-%04x-%04x-%04x-%012llx",
        static_cast<unsigned>(hi >> 32),
        static_cast<unsigned>((hi >> 16) & 0xFFFF),
        static_cast<unsigned>(hi & 0xFFFF),
        static_cast<unsigned>(lo >> 48),
        static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFULL));
    return buffer;
}

}  // namespace server
}  // namespace mugi
