#include "server/frontend.h"

#include <cmath>
#include <cstdio>
#include <random>
#include <utility>

#include "server/json.h"

namespace mugi {
namespace server {
namespace {

/** splitmix64: the uuid mixer (id -> two well-mixed 64-bit halves). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
seed_from_entropy()
{
    std::random_device entropy;
    return (static_cast<std::uint64_t>(entropy()) << 32) ^
           entropy();
}

/**
 * Range-checked narrowing from a parsed JSON double.  json.cc's
 * strtod maps overflowing literals ("1e999") to +/-inf and accepts
 * any finite double, so every cast the API narrows through must
 * reject non-finite and out-of-range values here -- casting inf or a
 * negative to an unsigned integral is undefined behaviour.
 */
bool
to_count(double value, std::size_t* out)
{
    if (!std::isfinite(value) || value < 0.0 || value > 1e15) {
        return false;
    }
    *out = static_cast<std::size_t>(value);
    return true;
}

bool
to_int(double value, int* out)
{
    if (!std::isfinite(value) || value < -2147483648.0 ||
        value > 2147483647.0) {
        return false;
    }
    *out = static_cast<int>(value);
    return true;
}

bool
to_u64(double value, std::uint64_t* out)
{
    if (!std::isfinite(value) || value < 0.0 || value > 1e18) {
        return false;
    }
    *out = static_cast<std::uint64_t>(value);
    return true;
}

/** The final NDJSON line / non-streamed summary fields. */
json::ObjectWriter
finish_fields(const serve::FinishedRequest& f)
{
    json::ObjectWriter w;
    w.field_bool("done", true)
        .field("reason", serve::finish_reason_name(f.reason))
        .field_int("generated",
                   static_cast<long long>(f.generated.value()))
        .field_int("prompt_tokens",
                   static_cast<long long>(f.prompt_tokens.value()))
        .field_int("preemptions",
                   static_cast<long long>(f.preemptions))
        .field("queue_s", f.queue_s())
        .field("ttft_s", f.ttft_s())
        .field("tpot_s", f.tpot_s());
    return w;
}

}  // namespace

Frontend::Frontend(serve::Server& server)
    : server_(server), uuid_seed_(seed_from_entropy())
{
}

bool
Frontend::bind(std::uint16_t port)
{
    return listener_.bind_and_listen(port);
}

void
Frontend::run()
{
    for (;;) {
        const int fd = listener_.accept_fd(100);
        {
            support::MutexLock lock(mu_);
            if (stopping_) {
                if (fd >= 0) {
                    Connection refused(fd);  // Close it.
                }
                return;
            }
            if (fd >= 0) {
                workers_.emplace_back(&Frontend::handle, this, fd);
            }
        }
    }
}

void
Frontend::stop()
{
    {
        support::MutexLock lock(mu_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    listener_.close();
    // Drain: in-flight requests complete, every stream ends, every
    // connection worker unblocks.
    server_.shutdown(serve::ShutdownMode::kDrain);
    std::vector<std::thread> workers;
    {
        support::MutexLock lock(mu_);
        workers.swap(workers_);
    }
    for (std::thread& worker : workers) {
        worker.join();
    }
}

void
Frontend::handle(int fd)
{
    Connection connection(fd);
    connection.set_write_timeout(write_timeout_s_);
    HttpRequest request;
    if (!connection.read_request(&request)) {
        connection.write_response(
            400, "application/json",
            "{\"error\":\"malformed request\"}");
        return;
    }
    // Route on target first so a known route hit with the wrong
    // method gets 405, not a misleading 404.
    const std::string cancel_prefix = "/v1/generate/";
    if (request.target == "/v1/generate") {
        if (request.method == "POST") {
            handle_generate(connection, request);
        } else {
            connection.write_response(
                405, "application/json",
                "{\"error\":\"method not allowed\"}");
        }
    } else if (request.target.rfind(cancel_prefix, 0) == 0) {
        if (request.method == "DELETE") {
            handle_cancel(
                connection,
                request.target.substr(cancel_prefix.size()));
        } else {
            connection.write_response(
                405, "application/json",
                "{\"error\":\"method not allowed\"}");
        }
    } else if (request.target == "/metrics" ||
               request.target == "/healthz") {
        if (request.method != "GET") {
            connection.write_response(
                405, "application/json",
                "{\"error\":\"method not allowed\"}");
        } else if (request.target == "/metrics") {
            handle_metrics(connection);
        } else {
            handle_health(connection);
        }
    } else {
        connection.write_response(404, "application/json",
                                  "{\"error\":\"no such route\"}");
    }
}

void
Frontend::handle_generate(Connection& connection,
                          const HttpRequest& http_request)
{
    const std::optional<json::Value> body =
        json::parse(http_request.body.empty() ? "{}"
                                              : http_request.body);
    if (!body || !body->is_object()) {
        connection.write_response(400, "application/json",
                                  "{\"error\":\"invalid JSON\"}");
        return;
    }

    const auto reject_numbers = [&connection] {
        connection.write_response(
            400, "application/json",
            "{\"error\":\"non-finite or out-of-range number\"}");
    };
    serve::Request request;
    if (const json::Value* prompt = body->find("prompt")) {
        if (!prompt->is_array()) {
            connection.write_response(
                400, "application/json",
                "{\"error\":\"prompt must be a token array\"}");
            return;
        }
        request.prompt.reserve(prompt->array.size());
        for (const json::Value& token : prompt->array) {
            int token_id = 0;
            if (!token.is_number() ||
                !to_int(token.number, &token_id)) {
                reject_numbers();
                return;
            }
            request.prompt.push_back(token_id);
        }
    }
    std::size_t analytic_prompt = 0;
    std::size_t max_new = 0;
    std::size_t prefix_tokens = 0;
    std::uint64_t prefix_group = 0;
    int priority = 0;
    if (!to_count(body->number_or("prompt_tokens", 0.0),
                  &analytic_prompt) ||
        !to_count(body->number_or("max_new_tokens", 16.0),
                  &max_new) ||
        !to_count(body->number_or("prefix_tokens", 0.0),
                  &prefix_tokens) ||
        !to_u64(body->number_or("prefix_group", 0.0),
                &prefix_group) ||
        !to_int(body->number_or("priority", 0.0), &priority)) {
        reject_numbers();
        return;
    }
    request.analytic_prompt_tokens = units::Tokens(analytic_prompt);
    request.max_new_tokens = units::Tokens(max_new);
    if (const json::Value* stop = body->find("stop_token")) {
        int stop_id = 0;
        if (stop->is_number() && to_int(stop->number, &stop_id)) {
            request.stop_token = stop_id;
        }
    }
    request.priority = priority;
    request.prefix_group = prefix_group;
    request.prefix_tokens = units::Tokens(prefix_tokens);
    request.arrival_time_s = body->number_or("arrival_time_s", 0.0);
    request.deadline_s = body->number_or("deadline_s", 0.0);
    request.admission_timeout_s =
        body->number_or("admission_timeout_s", 0.0);
    const double timeout_s = body->number_or("timeout_s", 0.0);
    if (!std::isfinite(request.arrival_time_s) ||
        !std::isfinite(request.deadline_s) ||
        !std::isfinite(request.admission_timeout_s) ||
        !std::isfinite(timeout_s)) {
        reject_numbers();
        return;
    }
    if (timeout_s > 0.0) {
        // Relative deadline against the modeled clock's snapshot.
        request.deadline_s = server_.stats().now_s + timeout_s;
    }
    const bool stream = body->bool_or("stream", true);

    if (server_.engine().has_model() && request.prompt.empty()) {
        connection.write_response(
            400, "application/json",
            "{\"error\":\"functional engine needs a prompt\"}");
        return;
    }
    if (!server_.accepting()) {
        connection.write_response(503, "application/json",
                                  "{\"error\":\"draining\"}");
        return;
    }

    serve::RequestHandle handle = server_.submit(std::move(request));
    const std::string uuid = uuid_for(handle.id());
    {
        support::MutexLock lock(mu_);
        uuids_.emplace(uuid, handle.id());
    }

    // Block on the first stream event before writing anything: a
    // request the scheduler sheds (or admission-times-out) closes
    // its stream with zero deltas, and the client should see 429 +
    // Retry-After -- not an empty 200 stream.
    std::optional<serve::TokenDelta> first_delta = handle.next();
    if (!first_delta) {
        // End-of-stream with zero deltas: the retirement is already
        // on its way (wait(), not poll() -- the delta channel closes
        // an instant before the FinishedRequest is published).
        const serve::FinishedRequest early = handle.wait();
        if (early.reason == serve::FinishReason::kShed ||
            early.reason == serve::FinishReason::kAdmissionTimeout) {
            {
                support::MutexLock lock(mu_);
                uuids_.erase(uuid);
            }
            respond_overloaded(connection, early);
            return;
        }
    }

    if (stream) {
        bool client_gone = !connection.begin_chunked(
            200, "application/x-ndjson");
        if (!client_gone) {
            json::ObjectWriter head;
            head.field("id", uuid);
            client_gone =
                !connection.write_chunk(head.str() + "\n");
        }
        if (client_gone && first_delta) {
            // The client vanished before the stream even started:
            // free its KV blocks now, don't generate into the void.
            handle.cancel();
            server_.record_slow_client_cancel();
        }
        for (std::optional<serve::TokenDelta> delta =
                 std::move(first_delta);
             delta; delta = handle.next()) {
            if (client_gone) {
                continue;  // Drain so wait() below is immediate.
            }
            json::ObjectWriter line;
            line.field_int("index",
                           static_cast<long long>(delta->index))
                .field_int("token", delta->token);
            if (!connection.write_chunk(line.str() + "\n")) {
                // Client disconnected or stalled past the write
                // timeout mid-stream: cancel so its KV blocks free
                // now instead of at max_new_tokens.
                client_gone = true;
                handle.cancel();
                server_.record_slow_client_cancel();
            }
        }
        const serve::FinishedRequest finished = handle.wait();
        if (!client_gone) {
            connection.write_chunk(finish_fields(finished).str() +
                                   "\n");
            connection.end_chunked();
        }
    } else {
        std::string tokens = "[";
        bool first = true;
        for (std::optional<serve::TokenDelta> delta =
                 std::move(first_delta);
             delta; delta = handle.next()) {
            if (!first) {
                tokens += ',';
            }
            first = false;
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%d", delta->token);
            tokens += buf;
        }
        tokens += ']';
        const serve::FinishedRequest finished = handle.wait();
        json::ObjectWriter response = finish_fields(finished);
        response.field("id", uuid).field_raw("tokens", tokens);
        connection.write_response(200, "application/json",
                                  response.str());
    }
    {
        support::MutexLock lock(mu_);
        uuids_.erase(uuid);
    }
}

void
Frontend::respond_overloaded(Connection& connection,
                             const serve::FinishedRequest& finished)
{
    // Retry-After from the live backlog: every waiting-or-running
    // request costs roughly (nominal generation length x TPOT) of
    // loop time, so that product over the backlog approximates when
    // capacity frees up.  Clamped to [1, 60]s -- a bounded hint, not
    // a promise.
    const serve::ServerStats stats = server_.stats();
    double tpot = stats.p50_tpot_s > 0.0 ? stats.p50_tpot_s
                                         : stats.mean_tpot_s;
    if (tpot <= 0.0) {
        tpot = 0.05;  // No samples yet: a generic decode cadence.
    }
    const double backlog =
        static_cast<double>(stats.queued + stats.active);
    constexpr double kNominalTokens = 16.0;
    const double eta_s = backlog * tpot * kNominalTokens;
    const int retry_after = static_cast<int>(
        std::min(60.0, std::max(1.0, std::ceil(eta_s))));
    char header_value[16];
    std::snprintf(header_value, sizeof(header_value), "%d",
                  retry_after);
    json::ObjectWriter body;
    body.field("error", "overloaded")
        .field("reason", serve::finish_reason_name(finished.reason))
        .field_int("retry_after_s", retry_after);
    connection.write_response(429, "application/json", body.str(),
                              {{"Retry-After", header_value}});
}

void
Frontend::handle_cancel(Connection& connection,
                        const std::string& uuid)
{
    std::uint64_t id = 0;
    bool known = false;
    {
        support::MutexLock lock(mu_);
        const auto it = uuids_.find(uuid);
        if (it != uuids_.end()) {
            id = it->second;
            known = true;
        }
    }
    if (known && server_.cancel(id)) {
        connection.write_response(202, "application/json",
                                  "{\"cancelled\":true}");
    } else {
        connection.write_response(
            404, "application/json",
            "{\"error\":\"unknown or finished request\"}");
    }
}

void
Frontend::handle_metrics(Connection& connection)
{
    const serve::ServerStats stats = server_.stats();
    char buffer[3072];
    const int n = std::snprintf(
        buffer, sizeof(buffer),
        "# TYPE mugi_requests_submitted counter\n"
        "mugi_requests_submitted %zu\n"
        "# TYPE mugi_requests_finished counter\n"
        "mugi_requests_finished %zu\n"
        "# TYPE mugi_requests_cancelled counter\n"
        "mugi_requests_cancelled %zu\n"
        "# TYPE mugi_requests_expired counter\n"
        "mugi_requests_expired %zu\n"
        "# TYPE mugi_requests_shed counter\n"
        "mugi_requests_shed %zu\n"
        "# TYPE mugi_admission_timeouts counter\n"
        "mugi_admission_timeouts %zu\n"
        "# TYPE mugi_slow_client_cancels counter\n"
        "mugi_slow_client_cancels %zu\n"
        "# TYPE mugi_faults_injected counter\n"
        "mugi_faults_injected %zu\n"
        "# TYPE mugi_requests_active gauge\n"
        "mugi_requests_active %zu\n"
        "# TYPE mugi_requests_queued gauge\n"
        "mugi_requests_queued %zu\n"
        "# TYPE mugi_preemptions counter\n"
        "mugi_preemptions %zu\n"
        "# TYPE mugi_kv_bytes_in_use gauge\n"
        "mugi_kv_bytes_in_use %zu\n"
        "# TYPE mugi_kv_peak_bytes gauge\n"
        "mugi_kv_peak_bytes %zu\n"
        "# TYPE mugi_generated_tokens counter\n"
        "mugi_generated_tokens %zu\n"
        "# TYPE mugi_ttft_seconds summary\n"
        "mugi_ttft_seconds{quantile=\"0.5\"} %.9g\n"
        "mugi_ttft_seconds{quantile=\"0.95\"} %.9g\n"
        "mugi_ttft_seconds{quantile=\"0.99\"} %.9g\n"
        "# TYPE mugi_tpot_seconds summary\n"
        "mugi_tpot_seconds{quantile=\"0.5\"} %.9g\n"
        "mugi_tpot_seconds{quantile=\"0.95\"} %.9g\n"
        "mugi_tpot_seconds{quantile=\"0.99\"} %.9g\n",
        stats.submitted, stats.finished, stats.cancelled,
        stats.expired, stats.requests_shed,
        stats.admission_timeouts, stats.slow_client_cancels,
        stats.faults_injected, stats.active, stats.queued,
        stats.preemptions, stats.kv_bytes_in_use.value(),
        stats.peak_kv_bytes.value(), stats.generated_tokens.value(),
        stats.p50_ttft_s, stats.p95_ttft_s, stats.p99_ttft_s,
        stats.p50_tpot_s, stats.p95_tpot_s, stats.p99_tpot_s);
    connection.write_response(
        200, "text/plain; version=0.0.4",
        std::string(buffer, static_cast<std::size_t>(n)));
}

void
Frontend::handle_health(Connection& connection)
{
    // Liveness vs readiness: responding at all is liveness; 200 means
    // "route traffic here".  Draining (shutdown began) and saturation
    // (the loop thread is behind and the command channel is full) are
    // both not-ready -- a load balancer should back off before
    // submits start blocking.
    if (!server_.accepting()) {
        connection.write_response(503, "application/json",
                                  "{\"status\":\"draining\"}");
    } else if (!server_.ready()) {
        connection.write_response(503, "application/json",
                                  "{\"status\":\"saturated\"}");
    } else {
        connection.write_response(200, "application/json",
                                  "{\"status\":\"ok\"}");
    }
}

std::string
Frontend::uuid_for(std::uint64_t id) const
{
    const std::uint64_t hi = mix64(uuid_seed_ ^ id);
    const std::uint64_t lo = mix64(hi ^ ~id);
    char buffer[40];
    std::snprintf(
        buffer, sizeof(buffer),
        "%08x-%04x-%04x-%04x-%012llx",
        static_cast<unsigned>(hi >> 32),
        static_cast<unsigned>((hi >> 16) & 0xFFFF),
        static_cast<unsigned>(hi & 0xFFFF),
        static_cast<unsigned>(lo >> 48),
        static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFULL));
    return buffer;
}

}  // namespace server
}  // namespace mugi
