#ifndef MUGI_SERVER_FRONTEND_H_
#define MUGI_SERVER_FRONTEND_H_

/**
 * @file
 * The HTTP front-end over serve::Server: routes, request UUIDs, the
 * streaming protocol, and graceful drain.
 *
 * Routes (all loopback, HTTP/1.1, Connection: close):
 *
 *  - POST /v1/generate -- submit one request.  JSON body fields
 *    (all optional unless the engine is functional, which requires
 *    "prompt"):
 *      prompt            array of token ints (functional engines)
 *      prompt_tokens     analytic prompt length
 *      max_new_tokens    generation cap (default 16)
 *      stop_token        early-stop token id
 *      priority          preemption priority
 *      prefix_group / prefix_tokens   analytic shared-prefix decl.
 *      arrival_time_s    modeled-clock arrival (trace replay)
 *      deadline_s        absolute modeled-clock deadline
 *      timeout_s         relative deadline: modeled now + timeout
 *      stream            default true
 *    Streaming response: chunked NDJSON -- one {"id": "<uuid>"}
 *    line, one {"index": i, "token": t} line per delta, and a final
 *    {"done": true, "reason": ..., latency milestones} line.
 *    stream=false returns one JSON object with the token array.
 *  - DELETE /v1/generate/<uuid> -- cancel; 202 when the cancel was
 *    enqueued, 404 when the uuid is unknown or already retired.
 *  - GET /metrics -- ServerStats in Prometheus text format,
 *    including the p50/p95/p99 TTFT/TPOT gauges.
 *  - GET /healthz -- 200 "ok" while accepting, 503 once draining.
 *
 * Shutdown: stop() (the SIGINT/SIGTERM path) closes the listener,
 * drains the serve::Server (in-flight requests complete and their
 * streams end normally), then joins every connection thread.
 *
 * Thread-safety: internally synchronized.  One accept loop (run())
 * hands each connection to its own worker thread; workers share the
 * serve::Server (itself internally synchronized) and the
 * MUGI_GUARDED_BY uuid table below.  stop() may be called from any
 * thread, concurrently with run().
 */

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/server.h"
#include "server/http.h"
#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace server {

class Frontend {
  public:
    /** @p server must outlive the frontend. */
    explicit Frontend(serve::Server& server);

    Frontend(const Frontend&) = delete;
    Frontend& operator=(const Frontend&) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral); false on failure. */
    bool bind(std::uint16_t port);
    /** The bound port (after bind). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Accept loop: serve until stop().  Call from the thread that
     * owns the frontend's lifetime (main, or a test's helper
     * thread).
     */
    void run();

    /**
     * Graceful drain: stop accepting, let serve::Server finish
     * in-flight work, join every connection thread.  Idempotent;
     * callable from any thread (a signal-flag watcher, a test).
     */
    void stop();

  private:
    void handle(int fd);
    void handle_generate(Connection& connection,
                         const HttpRequest& request);
    void handle_cancel(Connection& connection,
                       const std::string& uuid);
    void handle_metrics(Connection& connection);
    void handle_health(Connection& connection);

    /** Canonical 8-4-4-4-12 UUID for @p id (seeded per process). */
    std::string uuid_for(std::uint64_t id) const;

    serve::Server& server_;
    Listener listener_;

    mutable support::Mutex mu_;
    /** Live uuid -> serve::Server request id (DELETE routing). */
    std::unordered_map<std::string, std::uint64_t> uuids_
        MUGI_GUARDED_BY(mu_);
    std::vector<std::thread> workers_ MUGI_GUARDED_BY(mu_);
    bool stopping_ MUGI_GUARDED_BY(mu_) = false;

    /** Per-process UUID seed (std::random_device at construction). */
    const std::uint64_t uuid_seed_;
};

}  // namespace server
}  // namespace mugi

#endif  // MUGI_SERVER_FRONTEND_H_
