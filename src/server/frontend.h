#ifndef MUGI_SERVER_FRONTEND_H_
#define MUGI_SERVER_FRONTEND_H_

/**
 * @file
 * The HTTP front-end over serve::Server: routes, request UUIDs, the
 * streaming protocol, and graceful drain.
 *
 * Routes (all loopback, HTTP/1.1, Connection: close):
 *
 *  - POST /v1/generate -- submit one request.  JSON body fields
 *    (all optional unless the engine is functional, which requires
 *    "prompt"):
 *      prompt            array of token ints (functional engines)
 *      prompt_tokens     analytic prompt length
 *      max_new_tokens    generation cap (default 16)
 *      stop_token        early-stop token id
 *      priority          preemption priority
 *      prefix_group / prefix_tokens   analytic shared-prefix decl.
 *      arrival_time_s    modeled-clock arrival (trace replay)
 *      deadline_s        absolute modeled-clock deadline
 *      timeout_s         relative deadline: modeled now + timeout
 *      stream            default true
 *    Streaming response: chunked NDJSON -- one {"id": "<uuid>"}
 *    line, one {"index": i, "token": t} line per delta, and a final
 *    {"done": true, "reason": ..., latency milestones} line.
 *    stream=false returns one JSON object with the token array.
 *  - DELETE /v1/generate/<uuid> -- cancel; 202 when the cancel was
 *    enqueued, 404 when the uuid is unknown or already retired.
 *  - GET /metrics -- ServerStats in Prometheus text format,
 *    including the p50/p95/p99 TTFT/TPOT gauges and the overload
 *    counters (requests_shed, admission_timeouts,
 *    slow_client_cancels, faults_injected).
 *  - GET /healthz -- liveness vs readiness: 200 "ok" while accepting
 *    AND the command channel has room; 503 "draining" once
 *    shutdown()/stop() began; 503 "saturated" while the loop thread
 *    is not keeping up (command channel full) -- the signal a load
 *    balancer needs to stop routing here before submits block.
 *
 * Overload: a request the scheduler sheds (bounded admission queue)
 * or admission-times-out before any token is produced gets HTTP 429
 * with a Retry-After header derived from the current backlog and
 * TPOT: ceil((queued + active) x p50 TPOT x nominal tokens), clamped
 * to [1, 60] seconds.  A known route hit with the wrong method gets
 * 405; malformed JSON and non-finite / out-of-range numeric fields
 * get 400 before anything is submitted.  A client that stops
 * draining its stream for longer than the write timeout (or
 * vanishes) has its request cancelled -- KV blocks release
 * immediately -- and is counted in slow_client_cancels.
 *
 * Shutdown: stop() (the SIGINT/SIGTERM path) closes the listener,
 * drains the serve::Server (in-flight requests complete and their
 * streams end normally), then joins every connection thread.
 *
 * Thread-safety: internally synchronized.  One accept loop (run())
 * hands each connection to its own worker thread; workers share the
 * serve::Server (itself internally synchronized) and the
 * MUGI_GUARDED_BY uuid table below.  stop() may be called from any
 * thread, concurrently with run().
 */

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/server.h"
#include "server/http.h"
#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace server {

class Frontend {
  public:
    /** @p server must outlive the frontend. */
    explicit Frontend(serve::Server& server);

    Frontend(const Frontend&) = delete;
    Frontend& operator=(const Frontend&) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral); false on failure. */
    bool bind(std::uint16_t port);
    /** The bound port (after bind). */
    std::uint16_t port() const { return listener_.port(); }

    /**
     * Accept loop: serve until stop().  Call from the thread that
     * owns the frontend's lifetime (main, or a test's helper
     * thread).
     */
    void run();

    /**
     * Graceful drain: stop accepting, let serve::Server finish
     * in-flight work, join every connection thread.  Idempotent;
     * callable from any thread (a signal-flag watcher, a test).
     */
    void stop();

    /**
     * Slow-client write timeout applied to every accepted
     * connection (SO_SNDTIMEO); 0 disables.  Configuration: set
     * before run(), not concurrently with it.
     */
    void set_write_timeout_s(double seconds)
    {
        write_timeout_s_ = seconds;
    }

  private:
    void handle(int fd);
    void handle_generate(Connection& connection,
                         const HttpRequest& request);
    /** 429 + Retry-After for a shed / admission-timed-out request. */
    void respond_overloaded(Connection& connection,
                            const serve::FinishedRequest& finished);
    void handle_cancel(Connection& connection,
                       const std::string& uuid);
    void handle_metrics(Connection& connection);
    void handle_health(Connection& connection);

    /** Canonical 8-4-4-4-12 UUID for @p id (seeded per process). */
    std::string uuid_for(std::uint64_t id) const;

    serve::Server& server_;
    Listener listener_;

    mutable support::Mutex mu_;
    /** Live uuid -> serve::Server request id (DELETE routing). */
    std::unordered_map<std::string, std::uint64_t> uuids_
        MUGI_GUARDED_BY(mu_);
    std::vector<std::thread> workers_ MUGI_GUARDED_BY(mu_);
    bool stopping_ MUGI_GUARDED_BY(mu_) = false;

    /** Per-process UUID seed (std::random_device at construction). */
    const std::uint64_t uuid_seed_;

    /** See set_write_timeout_s (configuration: set before run()). */
    double write_timeout_s_ = 10.0;
};

}  // namespace server
}  // namespace mugi

#endif  // MUGI_SERVER_FRONTEND_H_
