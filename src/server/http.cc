#include "server/http.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/fault.h"

namespace mugi {
namespace server {
namespace {

const char*
status_text(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 429: return "Too Many Requests";
      case 503: return "Service Unavailable";
      default: return "Status";
    }
}

/** ::read with EINTR retried; otherwise read()'s contract. */
ssize_t
read_some(int fd, char* buffer, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::read(fd, buffer, size);
        if (n < 0 && errno == EINTR) {
            continue;  // Interrupted by a signal: not an error.
        }
        return n;
    }
}

std::string
lower(std::string s)
{
    for (char& c : s) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
}

/** Read from @p fd until @p buffer contains @p delimiter (or limit);
 *  returns the delimiter's end offset, or npos on EOF/overrun. */
std::size_t
read_until(int fd, std::string& buffer, const char* delimiter,
           std::size_t limit)
{
    const std::size_t dlen = std::strlen(delimiter);
    for (;;) {
        const std::size_t found = buffer.find(delimiter);
        if (found != std::string::npos) {
            return found + dlen;
        }
        if (buffer.size() > limit) {
            return std::string::npos;
        }
        char chunk[4096];
        const ssize_t n = read_some(fd, chunk, sizeof(chunk));
        if (n <= 0) {
            return std::string::npos;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** Ensure @p buffer holds at least @p size bytes, reading as needed. */
bool
read_exactly(int fd, std::string& buffer, std::size_t size)
{
    while (buffer.size() < size) {
        char chunk[4096];
        const ssize_t n = read_some(fd, chunk, sizeof(chunk));
        if (n <= 0) {
            return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
}

/** Parse "Key: Value" header lines out of @p head into @p headers. */
void
parse_headers(const std::string& head, std::size_t line_start,
              std::map<std::string, std::string>* headers)
{
    while (line_start < head.size()) {
        std::size_t line_end = head.find("\r\n", line_start);
        if (line_end == std::string::npos) {
            line_end = head.size();
        }
        if (line_end == line_start) {
            break;  // Blank line: end of headers.
        }
        const std::string line =
            head.substr(line_start, line_end - line_start);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            std::size_t vstart = colon + 1;
            while (vstart < line.size() && line[vstart] == ' ') {
                ++vstart;
            }
            (*headers)[lower(line.substr(0, colon))] =
                line.substr(vstart);
        }
        line_start = line_end + 2;
    }
}

}  // namespace

Connection::~Connection()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

bool
Connection::read_request(HttpRequest* out, std::size_t max_body_bytes)
{
    std::string buffer;
    const std::size_t head_end =
        read_until(fd_, buffer, "\r\n\r\n", 64 * 1024);
    if (head_end == std::string::npos) {
        return false;
    }
    const std::string head = buffer.substr(0, head_end);

    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::string line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
        return false;
    }
    out->method = line.substr(0, sp1);
    out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out->headers.clear();
    parse_headers(head, line_end + 2, &out->headers);

    std::size_t content_length = 0;
    const auto it = out->headers.find("content-length");
    if (it != out->headers.end()) {
        content_length = static_cast<std::size_t>(
            std::strtoull(it->second.c_str(), nullptr, 10));
    }
    if (content_length > max_body_bytes) {
        return false;
    }
    std::string rest = buffer.substr(head_end);
    if (!read_exactly(fd_, rest, content_length)) {
        return false;
    }
    out->body = rest.substr(0, content_length);
    return true;
}

bool
Connection::set_write_timeout(double seconds)
{
    if (seconds < 0.0) {
        return false;
    }
    timeval tv{};
    tv.tv_sec = static_cast<long>(seconds);
    tv.tv_usec = static_cast<long>(
        (seconds - std::floor(seconds)) * 1e6);
    return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv,
                        sizeof(tv)) == 0;
}

bool
Connection::write_all(const char* data, std::size_t size)
{
    // Chaos seam: a fired "http.write" is the peer vanishing
    // mid-write (EPIPE/ECONNRESET); callers must treat it exactly
    // like the real thing -- for a mid-stream chunk that means
    // cancelling the request so its KV blocks release.
    if (MUGI_FAULT_POINT("http.write")) {
        return false;
    }
    std::size_t written = 0;
    while (written < size) {
        std::size_t attempt = size - written;
        // Chaos seam: a fired "http.write.short" caps this send at
        // one byte, forcing the short-write resume path that a full
        // socket buffer exercises in production.
        if (attempt > 1 && MUGI_FAULT_POINT("http.write.short")) {
            attempt = 1;
        }
        const ssize_t n = ::send(fd_, data + written, attempt,
                                 MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) {
            continue;  // Interrupted by a signal: retry the send.
        }
        if (n <= 0) {
            // EPIPE/ECONNRESET (peer gone), or EAGAIN/EWOULDBLOCK
            // from an expired SO_SNDTIMEO (peer stalled): either way
            // this connection is not worth blocking a thread for.
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Connection::write_response(int status, const std::string& content_type,
                           const std::string& body)
{
    return write_response(status, content_type, body, {});
}

bool
Connection::write_response(
    int status, const std::string& content_type,
    const std::string& body,
    const std::map<std::string, std::string>& extra_headers)
{
    char head[256];
    const int n = std::snprintf(
        head, sizeof(head),
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n",
        status, status_text(status), content_type.c_str(),
        body.size());
    std::string message(head, static_cast<std::size_t>(n));
    for (const auto& header : extra_headers) {
        message += header.first;
        message += ": ";
        message += header.second;
        message += "\r\n";
    }
    message += "\r\n";
    message += body;
    return write_all(message.data(), message.size());
}

bool
Connection::begin_chunked(int status, const std::string& content_type)
{
    char head[256];
    const int n = std::snprintf(
        head, sizeof(head),
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
        "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status, status_text(status), content_type.c_str());
    return write_all(head, static_cast<std::size_t>(n));
}

bool
Connection::write_chunk(const std::string& data)
{
    if (data.empty()) {
        return true;  // An empty chunk would terminate the stream.
    }
    char size_line[32];
    const int n = std::snprintf(size_line, sizeof(size_line),
                                "%zx\r\n", data.size());
    return write_all(size_line, static_cast<std::size_t>(n)) &&
           write_all(data.data(), data.size()) &&
           write_all("\r\n", 2);
}

bool
Connection::end_chunked()
{
    return write_all("0\r\n\r\n", 5);
}

Listener::~Listener()
{
    close();
}

bool
Listener::bind_and_listen(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                      &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }
    fd_.store(fd);
    return true;
}

int
Listener::accept_fd(int timeout_ms)
{
    const int fd = fd_.load();
    if (fd < 0) {
        return -1;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
        return -1;  // Timeout or poll failure (listener closed).
    }
    return ::accept(fd, nullptr, nullptr);
}

void
Listener::close()
{
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
        ::close(fd);
    }
}

Client::~Client()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

bool
Client::connect(std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

std::optional<HttpResponse>
Client::request(const std::string& method, const std::string& target,
                const std::string& body)
{
    if (fd_ < 0) {
        return std::nullopt;
    }
    char head[512];
    const int n = std::snprintf(
        head, sizeof(head),
        "%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\n"
        "Content-Length: %zu\r\nConnection: close\r\n\r\n",
        method.c_str(), target.c_str(), body.size());
    std::string out(head, static_cast<std::size_t>(n));
    out += body;
    std::size_t written = 0;
    while (written < out.size()) {
        const ssize_t w = ::send(fd_, out.data() + written,
                                 out.size() - written, MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR) {
            continue;
        }
        if (w <= 0) {
            return std::nullopt;
        }
        written += static_cast<std::size_t>(w);
    }

    // Read to EOF (Connection: close framing) and parse.
    std::string buffer;
    for (;;) {
        char chunk[4096];
        const ssize_t r = read_some(fd_, chunk, sizeof(chunk));
        if (r < 0) {
            return std::nullopt;
        }
        if (r == 0) {
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(r));
    }
    const std::size_t head_end = buffer.find("\r\n\r\n");
    if (head_end == std::string::npos) {
        return std::nullopt;
    }
    HttpResponse response;
    const std::string response_head = buffer.substr(0, head_end);
    const std::size_t line_end = response_head.find("\r\n");
    const std::string status_line = response_head.substr(
        0, line_end == std::string::npos ? response_head.size()
                                         : line_end);
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string::npos) {
        return std::nullopt;
    }
    response.status = std::atoi(status_line.c_str() + sp + 1);
    parse_headers(response_head,
                  line_end == std::string::npos ? response_head.size()
                                                : line_end + 2,
                  &response.headers);

    std::string payload = buffer.substr(head_end + 4);
    const auto te = response.headers.find("transfer-encoding");
    if (te != response.headers.end() &&
        lower(te->second) == "chunked") {
        // De-chunk: size-line CRLF data CRLF ... 0 CRLF CRLF.
        std::string decoded;
        std::size_t pos = 0;
        for (;;) {
            const std::size_t crlf = payload.find("\r\n", pos);
            if (crlf == std::string::npos) {
                return std::nullopt;
            }
            const std::size_t size = static_cast<std::size_t>(
                std::strtoull(payload.c_str() + pos, nullptr, 16));
            if (size == 0) {
                break;
            }
            const std::size_t data_start = crlf + 2;
            if (data_start + size > payload.size()) {
                return std::nullopt;
            }
            decoded += payload.substr(data_start, size);
            pos = data_start + size + 2;  // Skip trailing CRLF.
        }
        response.body = std::move(decoded);
    } else {
        response.body = std::move(payload);
    }
    return response;
}

}  // namespace server
}  // namespace mugi
