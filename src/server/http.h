#ifndef MUGI_SERVER_HTTP_H_
#define MUGI_SERVER_HTTP_H_

/**
 * @file
 * Minimal HTTP/1.1 over POSIX sockets -- exactly the slice the
 * serving front-end needs, no external dependency:
 *
 *  - Listener: bind/listen on a loopback port (0 = ephemeral; the
 *    bound port is readable back for tests), accept with a poll
 *    timeout so the accept loop can observe a shutdown flag;
 *  - Connection: read one request (request line, headers,
 *    Content-Length body -- the API never receives chunked uploads),
 *    write fixed responses, and stream chunked transfer-encoding
 *    responses (begin_chunked / write_chunk / end_chunked) for the
 *    token-delta stream;
 *  - HttpRequest: parsed method / target / headers (lower-cased
 *    keys) / body.
 *
 * Also the client slice bench/serve_load --check drives the gate
 * with: Client::connect to loopback, request/response with chunked
 * decoding, so both ends of the smoke test share one implementation.
 *
 * Unhappy-path hardening: every read/send retries EINTR, sends use
 * MSG_NOSIGNAL (and mugi_server additionally ignores SIGPIPE
 * process-wide) so a vanished client surfaces as a failed write --
 * never a signal death -- short writes are resumed, and EAGAIN from
 * an expired SO_SNDTIMEO (set_write_timeout) fails the write so a
 * stalled client cannot wedge its connection thread.  write paths
 * carry the "http.write" / "http.write.short" fault sites
 * (support/fault.h) so the chaos bench can inject exactly these
 * failures deterministically.
 *
 * Thread-safety: externally serialized per object -- each
 * Connection/Client has exactly one owning thread (the front-end
 * hands each accepted connection to one worker); Listener::accept_fd may
 * be called from one accept thread while close() arrives from a
 * signal-driven shutdown path (the int fd member is atomic).
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace mugi {
namespace server {

/** One parsed HTTP request. */
struct HttpRequest {
    std::string method;   ///< "GET", "POST", "DELETE", ...
    std::string target;   ///< Path as sent, e.g. "/v1/generate".
    std::map<std::string, std::string> headers;  ///< Keys lower-cased.
    std::string body;
};

/** One parsed HTTP response (client side). */
struct HttpResponse {
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;  ///< De-chunked when transfer-encoding applied.
};

/** One accepted connection; closes its fd on destruction. */
class Connection {
  public:
    explicit Connection(int fd) : fd_(fd) {}
    ~Connection();

    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /**
     * Read and parse one request; false on EOF, malformed framing,
     * or a body larger than @p max_body_bytes.
     */
    bool read_request(HttpRequest* out,
                      std::size_t max_body_bytes = 1 << 20);

    /**
     * Bound every blocking send on this connection (SO_SNDTIMEO): a
     * client that stops draining its socket for longer than
     * @p seconds fails the write instead of wedging the connection
     * thread forever.  0 disables the bound.  The front-end maps a
     * failed mid-stream write onto cancelling the request, so a slow
     * client releases its KV blocks instead of holding them.
     */
    bool set_write_timeout(double seconds);

    /** Write a complete fixed-length response. */
    bool write_response(int status, const std::string& content_type,
                        const std::string& body);
    /** write_response with extra headers (e.g. Retry-After). */
    bool write_response(
        int status, const std::string& content_type,
        const std::string& body,
        const std::map<std::string, std::string>& extra_headers);

    /** Start a chunked streaming response. */
    bool begin_chunked(int status, const std::string& content_type);
    /** One chunk (no-op on empty data: empty terminates in HTTP). */
    bool write_chunk(const std::string& data);
    /** Terminal zero-length chunk. */
    bool end_chunked();

    int fd() const { return fd_; }

  private:
    bool write_all(const char* data, std::size_t size);

    int fd_;
};

/** Loopback listener for the front-end's accept loop. */
class Listener {
  public:
    Listener() = default;
    ~Listener();

    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral) and listen. */
    bool bind_and_listen(std::uint16_t port);
    /** The bound port (after bind_and_listen). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept one connection, waiting at most @p timeout_ms; -1 on
     * timeout or on a closed/failed listener.  The timeout is what
     * lets the accept loop poll a shutdown flag.
     */
    int accept_fd(int timeout_ms);

    /**
     * Close the listening socket (idempotent).  An accept_fd already
     * blocked in poll() is NOT interrupted -- it returns at its own
     * timeout -- which is why the accept loop polls with a short
     * timeout rather than blocking indefinitely.
     */
    void close();

  private:
    std::atomic<int> fd_{-1};
    std::uint16_t port_ = 0;
};

/** Blocking HTTP/1.1 client over one loopback connection. */
class Client {
  public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /** Connect to 127.0.0.1:@p port. */
    bool connect(std::uint16_t port);

    /**
     * Send @p method @p target with @p body and read the full
     * response, de-chunking if needed.  Connection: close semantics
     * -- one request per Client.
     */
    std::optional<HttpResponse> request(const std::string& method,
                                        const std::string& target,
                                        const std::string& body = "");

  private:
    int fd_ = -1;
};

}  // namespace server
}  // namespace mugi

#endif  // MUGI_SERVER_HTTP_H_
