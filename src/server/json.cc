#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mugi {
namespace server {
namespace json {
namespace {

/** Recursive-descent parser state over one document. */
struct Parser {
    const std::string& text;
    std::size_t pos = 0;
    bool failed = false;

    void
    skip_ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skip_ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consume_word(const char* word)
    {
        const std::size_t len = std::char_traits<char>::length(word);
        if (text.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    Value
    fail()
    {
        failed = true;
        return Value{};
    }

    Value
    parse_string()
    {
        Value v;
        v.kind = Value::Kind::kString;
        ++pos;  // Opening quote.
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                if (++pos >= text.size()) {
                    return fail();
                }
                switch (text[pos]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    // \uXXXX: decode the BMP code point to UTF-8
                    // (no surrogate-pair handling -- the serving API
                    // exchanges ASCII).
                    if (pos + 4 >= text.size()) {
                        return fail();
                    }
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[++pos];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') {
                            cp |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail();
                        }
                    }
                    ++pos;
                    if (cp < 0x80) {
                        v.string.push_back(static_cast<char>(cp));
                    } else if (cp < 0x800) {
                        v.string.push_back(
                            static_cast<char>(0xC0 | (cp >> 6)));
                        v.string.push_back(
                            static_cast<char>(0x80 | (cp & 0x3F)));
                    } else {
                        v.string.push_back(
                            static_cast<char>(0xE0 | (cp >> 12)));
                        v.string.push_back(static_cast<char>(
                            0x80 | ((cp >> 6) & 0x3F)));
                        v.string.push_back(
                            static_cast<char>(0x80 | (cp & 0x3F)));
                    }
                    continue;
                  }
                  default:
                    return fail();
                }
            }
            v.string.push_back(c);
            ++pos;
        }
        if (pos >= text.size()) {
            return fail();  // Unterminated string.
        }
        ++pos;  // Closing quote.
        return v;
    }

    Value
    parse_number()
    {
        const char* start = text.c_str() + pos;
        char* end = nullptr;
        const double number = std::strtod(start, &end);
        if (end == start) {
            return fail();
        }
        pos += static_cast<std::size_t>(end - start);
        Value v;
        v.kind = Value::Kind::kNumber;
        v.number = number;
        return v;
    }

    Value
    parse_value(int depth)
    {
        if (depth > 32) {
            return fail();  // Bounded nesting: no stack abuse.
        }
        skip_ws();
        if (pos >= text.size()) {
            return fail();
        }
        const char c = text[pos];
        if (c == '"') {
            return parse_string();
        }
        if (c == '{') {
            ++pos;
            Value v;
            v.kind = Value::Kind::kObject;
            skip_ws();
            if (consume('}')) {
                return v;
            }
            for (;;) {
                skip_ws();
                if (pos >= text.size() || text[pos] != '"') {
                    return fail();
                }
                Value key = parse_string();
                if (failed || !consume(':')) {
                    return fail();
                }
                Value member = parse_value(depth + 1);
                if (failed) {
                    return fail();
                }
                v.object.emplace(std::move(key.string),
                                 std::move(member));
                if (consume(',')) {
                    continue;
                }
                if (consume('}')) {
                    return v;
                }
                return fail();
            }
        }
        if (c == '[') {
            ++pos;
            Value v;
            v.kind = Value::Kind::kArray;
            skip_ws();
            if (consume(']')) {
                return v;
            }
            for (;;) {
                Value element = parse_value(depth + 1);
                if (failed) {
                    return fail();
                }
                v.array.push_back(std::move(element));
                if (consume(',')) {
                    continue;
                }
                if (consume(']')) {
                    return v;
                }
                return fail();
            }
        }
        if (consume_word("true")) {
            Value v;
            v.kind = Value::Kind::kBool;
            v.boolean = true;
            return v;
        }
        if (consume_word("false")) {
            Value v;
            v.kind = Value::Kind::kBool;
            return v;
        }
        if (consume_word("null")) {
            return Value{};
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            return parse_number();
        }
        return fail();
    }
};

void
dump_to(const Value& value, std::string& out)
{
    switch (value.kind) {
      case Value::Kind::kNull:
        out += "null";
        break;
      case Value::Kind::kBool:
        out += value.boolean ? "true" : "false";
        break;
      case Value::Kind::kNumber: {
        // Integral values print without a decimal point, so token
        // ids and counts round-trip textually.
        if (value.number == std::floor(value.number) &&
            std::abs(value.number) < 1e15) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(value.number));
            out += buf;
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", value.number);
            out += buf;
        }
        break;
      }
      case Value::Kind::kString:
        out += '"';
        out += escape(value.string);
        out += '"';
        break;
      case Value::Kind::kArray: {
        out += '[';
        bool first = true;
        for (const Value& v : value.array) {
            if (!first) {
                out += ',';
            }
            first = false;
            dump_to(v, out);
        }
        out += ']';
        break;
      }
      case Value::Kind::kObject: {
        out += '{';
        bool first = true;
        for (const auto& [key, v] : value.object) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += '"';
            out += escape(key);
            out += "\":";
            dump_to(v, out);
        }
        out += '}';
        break;
      }
    }
}

}  // namespace

const Value*
Value::find(const std::string& key) const
{
    if (kind != Kind::kObject) {
        return nullptr;
    }
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

double
Value::number_or(const std::string& key, double fallback) const
{
    const Value* v = find(key);
    return (v != nullptr && v->is_number()) ? v->number : fallback;
}

bool
Value::bool_or(const std::string& key, bool fallback) const
{
    const Value* v = find(key);
    return (v != nullptr && v->kind == Kind::kBool) ? v->boolean
                                                    : fallback;
}

std::optional<Value>
parse(const std::string& text)
{
    Parser parser{text};
    Value v = parser.parse_value(0);
    if (parser.failed) {
        return std::nullopt;
    }
    parser.skip_ws();
    if (parser.pos != text.size()) {
        return std::nullopt;  // Trailing garbage.
    }
    return v;
}

std::string
dump(const Value& value)
{
    std::string out;
    dump_to(value, out);
    return out;
}

std::string
escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

ObjectWriter&
ObjectWriter::field(const std::string& key, double value)
{
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = value;
    return field_raw(key, dump(v));
}

ObjectWriter&
ObjectWriter::field(const std::string& key, const std::string& value)
{
    return field_raw(key, "\"" + escape(value) + "\"");
}

ObjectWriter&
ObjectWriter::field_bool(const std::string& key, bool value)
{
    return field_raw(key, value ? "true" : "false");
}

ObjectWriter&
ObjectWriter::field_int(const std::string& key, long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return field_raw(key, buf);
}

ObjectWriter&
ObjectWriter::field_raw(const std::string& key,
                        const std::string& json)
{
    if (!body_.empty()) {
        body_ += ',';
    }
    body_ += '"';
    body_ += escape(key);
    body_ += "\":";
    body_ += json;
    return *this;
}

std::string
ObjectWriter::str() const
{
    return "{" + body_ + "}";
}

}  // namespace json
}  // namespace server
}  // namespace mugi
