#ifndef MUGI_SERVER_JSON_H_
#define MUGI_SERVER_JSON_H_

/**
 * @file
 * Minimal JSON for the HTTP front-end: parse request bodies, build
 * response/stream lines.  No external dependency -- a ~RFC 8259
 * recursive-descent parser over std::string plus an escape-correct
 * writer, covering exactly what the serving API exchanges (objects,
 * arrays, numbers, strings, bools, null; no \uXXXX surrogate pairs
 * beyond pass-through).
 *
 * bench/serve_load --check reuses this to parse the NDJSON token
 * stream back out of the HTTP response, so the front-end and its
 * gate agree on one grammar.
 *
 * Thread-safety: externally serialized -- Value is a plain value
 * type and parse()/dump() are pure functions of their arguments;
 * distinct threads may parse distinct documents freely.
 */

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mugi {
namespace server {
namespace json {

/** One parsed JSON value (tagged union over the std containers). */
struct Value {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Ordered map: dump() round-trips keys deterministically. */
    std::map<std::string, Value> object;

    bool is_null() const { return kind == Kind::kNull; }
    bool is_number() const { return kind == Kind::kNumber; }
    bool is_string() const { return kind == Kind::kString; }
    bool is_array() const { return kind == Kind::kArray; }
    bool is_object() const { return kind == Kind::kObject; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value* find(const std::string& key) const;
    /** Member as a double, or @p fallback when absent/mistyped. */
    double number_or(const std::string& key, double fallback) const;
    /** Member as a bool, or @p fallback when absent/mistyped. */
    bool bool_or(const std::string& key, bool fallback) const;
};

/** Parse one JSON document; nullopt on any syntax error. */
std::optional<Value> parse(const std::string& text);

/** Serialize @p value back to compact JSON. */
std::string dump(const Value& value);

/** Escape @p text as the inside of a JSON string literal. */
std::string escape(const std::string& text);

/**
 * Incremental object writer for the streaming lines the front-end
 * emits: ObjectWriter w; w.field("id", ...); w.str() -> {"id":...}.
 */
class ObjectWriter {
  public:
    ObjectWriter& field(const std::string& key, double value);
    ObjectWriter& field(const std::string& key, const std::string& value);
    ObjectWriter& field_bool(const std::string& key, bool value);
    ObjectWriter& field_int(const std::string& key, long long value);
    ObjectWriter& field_raw(const std::string& key,
                            const std::string& json);
    std::string str() const;

  private:
    std::string body_;
};

}  // namespace json
}  // namespace server
}  // namespace mugi

#endif  // MUGI_SERVER_JSON_H_
