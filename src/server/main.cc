/**
 * @file
 * mugi_server: the HTTP serving binary.
 *
 * Wires an Engine (analytic Llama-2 70B on the Mugi design by
 * default; --functional swaps in the eval-scale transformer with
 * real tokens) into serve::Server's threaded loop and serves the
 * front-end routes on 127.0.0.1.
 *
 *   ./build/mugi_server [--port N] [--threads N|auto]
 *                       [--kv-budget-mb N] [--max-queued N]
 *                       [--admission-timeout-s X] [--functional]
 *
 * SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
 * requests run to completion, streams end normally, then the
 * process exits with a final stats line.
 *
 * Thread-safety note (contract for this translation unit): main owns
 * the Frontend and Server; the signal handler only stores one
 * lock-free atomic flag that the main thread polls.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "model/accuracy.h"
#include "model/transformer.h"
#include "serve/server.h"
#include "server/frontend.h"

using namespace mugi;

namespace {

std::atomic<int> g_signal{0};

void
on_signal(int sig)
{
    g_signal.store(sig);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::uint16_t port = 8080;
    std::size_t threads = 0;
    std::size_t kv_budget_mb = 1024;
    std::size_t max_queued = 0;
    double admission_timeout_s = 0.0;
    bool functional = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<std::uint16_t>(
                std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = serve::threads_flag(argv[++i]);
        } else if (std::strcmp(argv[i], "--kv-budget-mb") == 0 &&
                   i + 1 < argc) {
            kv_budget_mb = static_cast<std::size_t>(
                std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--max-queued") == 0 &&
                   i + 1 < argc) {
            max_queued = static_cast<std::size_t>(
                std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--admission-timeout-s") ==
                       0 &&
                   i + 1 < argc) {
            admission_timeout_s = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--functional") == 0) {
            functional = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--port N] [--threads N|auto] "
                         "[--kv-budget-mb N] [--max-queued N] "
                         "[--admission-timeout-s X] [--functional]\n",
                         argv[0]);
            return 2;
        }
    }

    // A stalled or vanished client must surface as a failed write on
    // its own connection thread, never as a process-killing SIGPIPE
    // (sends also pass MSG_NOSIGNAL; this covers any other fd).
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore_pipe, nullptr);

    // The engine: analytic Llama-2 70B serving by default, or the
    // eval-scale functional transformer (real tokens) on demand.
    std::unique_ptr<serve::Engine> engine;
    if (functional) {
        const model::ModelConfig config =
            model::llama2_7b().scaled_for_eval(4, 128, 512);
        auto transformer =
            std::make_shared<model::TransformerModel>(config, 11);
        engine = std::make_unique<serve::Engine>(sim::make_mugi(256),
                                                 transformer);
    } else {
        engine = std::make_unique<serve::Engine>(
            sim::make_mugi(256), model::llama2_70b());
    }

    serve::ServerConfig config;
    config.scheduler.kv_budget_bytes =
        units::Bytes(kv_budget_mb << 20);
    config.scheduler.prefill_chunk_tokens =
        units::Tokens(functional ? 16 : 256);
    config.scheduler.step_threads = threads;
    config.scheduler.max_queued_requests = max_queued;
    config.scheduler.admission_timeout_s = admission_timeout_s;
    serve::Server server(*engine, config);
    server::Frontend frontend(server);
    if (!frontend.bind(port)) {
        std::fprintf(stderr, "mugi_server: cannot bind port %u\n",
                     port);
        return 1;
    }

    struct sigaction action {};
    action.sa_handler = on_signal;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    std::printf("mugi_server: %s engine on 127.0.0.1:%u "
                "(POST /v1/generate, DELETE /v1/generate/<id>, "
                "/metrics, /healthz)\n",
                functional ? "functional" : "analytic",
                frontend.port());
    std::fflush(stdout);

    std::thread accept_thread([&frontend] { frontend.run(); });
    while (g_signal.load() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("mugi_server: signal %d, draining\n",
                g_signal.load());
    std::fflush(stdout);
    frontend.stop();
    accept_thread.join();

    const serve::ServerStats stats = server.stats();
    std::printf("mugi_server: served %zu requests (%zu cancelled, "
                "%zu expired, %zu shed, %zu admission timeouts, "
                "%zu slow-client cancels), %zu tokens, "
                "kv in use %zu bytes\n",
                stats.finished, stats.cancelled, stats.expired,
                stats.requests_shed, stats.admission_timeouts,
                stats.slow_client_cancels,
                stats.generated_tokens.value(),
                stats.kv_bytes_in_use.value());
    return 0;
}
