#include "sim/cost_model.h"

#include "arch/tech_model.h"

namespace mugi {
namespace sim {

using arch::Component;
using arch::component_area;
using arch::component_energy;

namespace {

constexpr double kUm2ToMm2 = 1e-6;

/** Area of the standalone nonlinear vector array of a baseline. */
double
nonlinear_unit_area_um2(const DesignConfig& d)
{
    const double lanes = static_cast<double>(d.vector_lanes);
    switch (d.nonlinear) {
      case NonlinearScheme::kVlp:
        return 0.0;  // Shared with the GEMM array.
      case NonlinearScheme::kLut: {
        // Mugi-L: FIFO-built programmable LUT; 8 inputs share one
        // LUT sized for 2 signs x 8 mantissas x 8 exponents x 2 B,
        // replicated to match array bandwidth (H/8 copies).
        const double luts =
            static_cast<double>(d.array_rows) / 8.0;
        const double lut_bytes = 2 * 8 * 8 * 2;
        return luts * lut_bytes * component_area(Component::kLutByte) *
               8.0;  // Programmability overhead (Sec. 6.3.1).
      }
      case NonlinearScheme::kPrecise:
        // MAC lane + control per lane.
        return lanes * (component_area(Component::kBf16Mac) + 800.0);
      case NonlinearScheme::kTaylor:
        // MAC lane + 10 coefficient registers.
        return lanes * (component_area(Component::kBf16Mac) +
                        10 * 2 * component_area(Component::kFifoByte));
      case NonlinearScheme::kPwl:
        // MAC lane + 22 segment registers + comparators.
        return lanes *
               (component_area(Component::kBf16Mac) +
                22 * 4 * component_area(Component::kFifoByte) +
                5 * component_area(Component::kComparator));
    }
    return 0.0;
}

}  // namespace

AreaBreakdown
node_area(const DesignConfig& d)
{
    AreaBreakdown a;
    const double H = static_cast<double>(d.array_rows);
    const double W = static_cast<double>(d.array_cols);

    switch (d.kind) {
      case DesignKind::kMugi:
      case DesignKind::kMugiLut: {
        a.pe = H * W * component_area(Component::kVlpPe) * kUm2ToMm2;
        a.tc = (H * component_area(Component::kTemporalConverter) +
                W * component_area(Component::kCounter)) *
               kUm2ToMm2;
        // iAcc per column + oAcc per row (output stationary).
        a.acc = (W + H) * component_area(Component::kBf16Adder) *
                kUm2ToMm2;
        // Buffer-minimized: broadcast rows (no per-row input FIFO),
        // one leaned output FIFO per row of W entries (Sec. 4.2).
        const double fifo_bytes = H * W * 2 + W * 16;
        a.fifo = fifo_bytes * component_area(Component::kFifoByte) *
                 kUm2ToMm2;
        a.control = (H * component_area(Component::kSignConvert) +
                     H * component_area(Component::kPostProc) +
                     W * component_area(Component::kWindowSelect) +
                     2500.0) *
                    kUm2ToMm2;
        a.vector = d.vector_lanes *
                   component_area(Component::kBf16Mac) * kUm2ToMm2;
        a.nonlinear = nonlinear_unit_area_um2(d) * kUm2ToMm2;
        break;
      }
      case DesignKind::kCarat: {
        a.pe = H * W * component_area(Component::kVlpPe) * kUm2ToMm2;
        a.tc = (H * component_area(Component::kTemporalConverter) +
                W * component_area(Component::kCounter)) *
               kUm2ToMm2;
        a.acc = (W + H) * component_area(Component::kBf16Adder) *
                kUm2ToMm2;
        // Carat pipelines inputs across rows and double-buffers the
        // OR-tree outputs: FIFO cost scales ~quadratically with the
        // array (Sec. 4.2), ~4.5x the Mugi buffer area.
        const double fifo_bytes = H * W * 2 * 2.6 + H * 16 * 2;
        a.fifo = fifo_bytes * component_area(Component::kFifoByte) *
                 kUm2ToMm2;
        a.control = (H * component_area(Component::kSignConvert) +
                     H * component_area(Component::kPostProc) +
                     2500.0) *
                    kUm2ToMm2;
        a.vector = d.vector_lanes *
                   component_area(Component::kBf16Mac) * kUm2ToMm2;
        a.nonlinear = nonlinear_unit_area_um2(d) * kUm2ToMm2;
        break;
      }
      case DesignKind::kSystolic:
      case DesignKind::kSystolicFigna:
      case DesignKind::kSimd:
      case DesignKind::kSimdFigna: {
        const bool figna = d.kind == DesignKind::kSystolicFigna ||
                           d.kind == DesignKind::kSimdFigna;
        const bool systolic = d.kind == DesignKind::kSystolic ||
                              d.kind == DesignKind::kSystolicFigna;
        const double pe_area = component_area(
            figna ? Component::kFignaMac : Component::kBf16Mac);
        a.pe = H * W * pe_area * kUm2ToMm2;
        if (systolic) {
            // Output accumulators along one edge + control column.
            a.acc = W * component_area(Component::kFp32Adder) *
                    kUm2ToMm2;
            a.control = (H * 500.0 + 4000.0) * kUm2ToMm2;
            // Skew/staging FIFOs along both edges.
            a.fifo = (H + W) * 8 *
                     component_area(Component::kFifoByte) * kUm2ToMm2;
        } else {
            // SIMD: adder trees (W-1 adders per column).
            a.acc = (W * (H - 1) *
                     component_area(Component::kBf16Adder) * 0.35 +
                     W * component_area(Component::kFp32Adder)) *
                    kUm2ToMm2;
            a.control = 4000.0 * kUm2ToMm2;
            a.fifo = W * 8 * component_area(Component::kFifoByte) *
                     kUm2ToMm2;
        }
        a.vector = 0.0;
        a.nonlinear = nonlinear_unit_area_um2(d) * kUm2ToMm2;
        break;
      }
      case DesignKind::kTensor: {
        const double macs = H * W * static_cast<double>(d.array_depth);
        a.pe = macs * component_area(Component::kBf16Mac) * kUm2ToMm2;
        a.acc = H * W * component_area(Component::kFp32Adder) *
                kUm2ToMm2;
        // Operand routing / crossbars dominate beyond the MACs.
        a.control = a.pe * 0.9;
        a.fifo = macs * 2 * component_area(Component::kFifoByte) *
                 kUm2ToMm2;
        a.nonlinear = nonlinear_unit_area_um2(d) * kUm2ToMm2;
        break;
      }
    }

    arch::SramMacro macro{d.sram_bytes, true};
    a.sram = 3.0 * macro.area_um2() * kUm2ToMm2;  // i/w/o SRAMs.

    if (d.nodes() > 1) {
        a.noc = component_area(Component::kRouter) * kUm2ToMm2;
    }
    return a;
}

double
node_leakage_mw(const DesignConfig& d)
{
    const AreaBreakdown a = node_area(d);
    const double logic_mm2 = a.array_total() + a.noc;
    arch::SramMacro macro{d.sram_bytes, true};
    return logic_mm2 * arch::kLogicLeakageMwPerMm2 +
           3.0 * macro.leakage_mw();
}

double
total_area_mm2(const DesignConfig& d)
{
    return node_area(d).total() * static_cast<double>(d.nodes());
}

double
gemm_energy_per_mac(const DesignConfig& d)
{
    switch (d.kind) {
      case DesignKind::kMugi:
      case DesignKind::kMugiLut: {
        // Per 8-cycle sweep of H x 8 MACs: 8 iAcc adds per column,
        // one subscription + one oAcc add per MAC, TC/counter toggles.
        const double H = static_cast<double>(d.array_rows);
        const double sweep_macs = H * 8.0;
        const double iacc = 8.0 * 8.0 *
                            component_energy(Component::kBf16Adder);
        const double per_mac =
            component_energy(Component::kVlpPe) +
            component_energy(Component::kBf16Adder) +
            component_energy(Component::kTemporalConverter) / 8.0;
        return per_mac + iacc / sweep_macs;
      }
      case DesignKind::kCarat: {
        // Same VLP arithmetic + per-cycle FIFO shifting across rows.
        const DesignConfig as_mugi = [&] {
            DesignConfig m = d;
            m.kind = DesignKind::kMugi;
            return m;
        }();
        return gemm_energy_per_mac(as_mugi) +
               component_energy(Component::kFifoByte) * 2.0;
      }
      case DesignKind::kSystolic:
        return component_energy(Component::kBf16Mac) +
               2 * component_energy(Component::kFifoByte);  // Shifts.
      case DesignKind::kSystolicFigna:
        return component_energy(Component::kFignaMac) +
               2 * component_energy(Component::kFifoByte);
      case DesignKind::kSimd:
        return component_energy(Component::kBf16Mac) +
               0.35 * component_energy(Component::kBf16Adder);
      case DesignKind::kSimdFigna:
        return component_energy(Component::kFignaMac) +
               0.35 * component_energy(Component::kBf16Adder);
      case DesignKind::kTensor:
        // Amortized control in a big pipelined core.
        return component_energy(Component::kBf16Mac) * 0.95;
    }
    return 0.0;
}

double
nonlinear_energy_per_element(const DesignConfig& d)
{
    arch::SramMacro macro{d.sram_bytes, true};
    // Every scheme reads its BF16 input and writes its BF16 output
    // through the on-chip SRAM.
    const double io = 4.0 * macro.access_energy_per_byte();
    switch (d.nonlinear) {
      case NonlinearScheme::kVlp: {
        // One LUT-row SRAM read per cycle shared by H rows; per
        // element: the sliding-window row latch (8 x BF16 into the
        // PE registers), one mantissa + one exponent subscription,
        // and the PP select.
        const double H = static_cast<double>(d.array_rows);
        const double row_read =
            16.0 * macro.access_energy_per_byte();  // 8 x BF16.
        const double row_latch =
            16.0 * component_energy(Component::kFifoByte);
        return io + 8.0 * row_read / H + row_latch +
               2.0 * component_energy(Component::kVlpPe) +
               component_energy(Component::kPostProc) +
               component_energy(Component::kTemporalConverter);
      }
      case NonlinearScheme::kLut:
        // Dedicated FIFO-LUT lookup: shift-select across 128 entries.
        return io +
               128 * 2 * component_energy(Component::kLutByte) / 8.0 +
               component_energy(Component::kPostProc);
      case NonlinearScheme::kPrecise:
        return io + 44.0 * component_energy(Component::kBf16Mac);
      case NonlinearScheme::kTaylor:
        return io + 10.0 * component_energy(Component::kBf16Mac);
      case NonlinearScheme::kPwl:
        return io + 5.0 * component_energy(Component::kBf16Mac) +
               5.0 * component_energy(Component::kComparator);
    }
    return 0.0;
}

}  // namespace sim
}  // namespace mugi
