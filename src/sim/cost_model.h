#ifndef MUGI_SIM_COST_MODEL_H_
#define MUGI_SIM_COST_MODEL_H_

/**
 * @file
 * Area and leakage-power composition of a design (Fig. 13, Table 3
 * "OC Area").  Every design is costed from the same 45 nm component
 * library (arch/tech_model.h); the breakdown categories follow the
 * Fig. 13 legend: Acc / FIFO / PE / Nonlinear / Vector / TC (plus
 * control) at the array level, and Array / SRAM / NoC at the node
 * level.
 *
 * Mugi-specific effects modeled here:
 *  - buffer minimization (Sec. 4.2): Carat pipelines inputs across
 *    rows and double-buffers the OR-tree output, costing FIFO area
 *    that scales with the array size; Mugi broadcasts and leans the
 *    output buffers, cutting total buffer area ~4.5x;
 *  - array sharing: Mugi has no standalone nonlinear vector array,
 *    while every baseline pays for one.
 */

#include "sim/design.h"

namespace mugi {
namespace sim {

/** Area breakdown of one node, mm^2. */
struct AreaBreakdown {
    double pe = 0.0;         ///< Compute PEs.
    double acc = 0.0;        ///< Output/input accumulators.
    double fifo = 0.0;       ///< FIFOs and staging buffers.
    double tc = 0.0;         ///< Temporal converters + counters.
    double nonlinear = 0.0;  ///< Standalone nonlinear hardware.
    double vector = 0.0;     ///< Vector (scaling/division) array.
    double control = 0.0;    ///< PP / SW / M-proc / E-proc / misc.
    double sram = 0.0;       ///< On-chip i/w/o SRAM.
    double noc = 0.0;        ///< Router + links share (per node).

    double
    array_total() const
    {
        return pe + acc + fifo + tc + nonlinear + vector + control;
    }
    double total() const { return array_total() + sram + noc; }
};

/** Static (leakage) power of one node in mW. */
double node_leakage_mw(const DesignConfig& design);

/** Per-node area breakdown. */
AreaBreakdown node_area(const DesignConfig& design);

/** Full-design area (all nodes + NoC), mm^2. */
double total_area_mm2(const DesignConfig& design);

/** Dynamic energy per MAC for GEMM on this design, pJ. */
double gemm_energy_per_mac(const DesignConfig& design);

/** Dynamic energy per element for nonlinear work, pJ. */
double nonlinear_energy_per_element(const DesignConfig& design);

}  // namespace sim
}  // namespace mugi

#endif  // MUGI_SIM_COST_MODEL_H_
