#include "sim/design.h"

#include <algorithm>

namespace mugi {
namespace sim {

const char*
design_kind_name(DesignKind kind)
{
    switch (kind) {
      case DesignKind::kMugi:
        return "mugi";
      case DesignKind::kMugiLut:
        return "mugi-l";
      case DesignKind::kCarat:
        return "carat";
      case DesignKind::kSystolic:
        return "sa";
      case DesignKind::kSystolicFigna:
        return "sa-f";
      case DesignKind::kSimd:
        return "sd";
      case DesignKind::kSimdFigna:
        return "sd-f";
      case DesignKind::kTensor:
        return "tensor";
    }
    return "?";
}

const char*
nonlinear_scheme_name(NonlinearScheme scheme)
{
    switch (scheme) {
      case NonlinearScheme::kVlp:
        return "vlp";
      case NonlinearScheme::kLut:
        return "lut";
      case NonlinearScheme::kPrecise:
        return "precise";
      case NonlinearScheme::kTaylor:
        return "taylor";
      case NonlinearScheme::kPwl:
        return "pwl";
    }
    return "?";
}

double
DesignConfig::peak_macs_per_cycle() const
{
    if (is_vlp()) {
        // One outer-product sweep of H x 8 MACs per 2^3 cycles.
        return static_cast<double>(array_rows);
    }
    if (kind == DesignKind::kTensor) {
        return static_cast<double>(array_rows) * array_cols *
               array_depth;
    }
    return static_cast<double>(array_rows) * array_cols;
}

DesignConfig
DesignConfig::with_noc(std::size_t rows, std::size_t cols) const
{
    DesignConfig mesh = *this;
    mesh.noc_rows = rows;
    mesh.noc_cols = cols;
    mesh.name = std::to_string(rows) + "x" + std::to_string(cols) +
                " " + name;
    return mesh;
}

DesignConfig
make_mugi(std::size_t array_rows)
{
    DesignConfig d;
    d.name = "Mugi(" + std::to_string(array_rows) + ")";
    d.kind = DesignKind::kMugi;
    d.array_rows = array_rows;
    d.array_cols = 8;
    d.nonlinear = NonlinearScheme::kVlp;
    d.vector_lanes = 8;
    return d;
}

DesignConfig
make_mugi_l(std::size_t array_rows)
{
    DesignConfig d = make_mugi(array_rows);
    d.name = "Mugi-L(" + std::to_string(array_rows) + ")";
    d.kind = DesignKind::kMugiLut;
    d.nonlinear = NonlinearScheme::kLut;
    return d;
}

DesignConfig
make_carat(std::size_t array_rows)
{
    DesignConfig d;
    d.name = "Carat(" + std::to_string(array_rows) + ")";
    d.kind = DesignKind::kCarat;
    d.array_rows = array_rows;
    d.array_cols = 8;
    // Carat has no VLP nonlinear support; it falls back to a Taylor
    // vector array sized to its accumulator bandwidth, which lands at
    // ~3x Mugi's nonlinear latency (Sec. 6.3.1: "Carat triples the
    // nonlinear latency of Mugi, due to relying on non-VLP
    // approximations"): H/2.4 lanes at 10 cycles/element vs Mugi's
    // H/8 elements/cycle.
    d.nonlinear = NonlinearScheme::kTaylor;
    d.vector_lanes = std::max<std::size_t>(16, (array_rows * 10) / 24);
    return d;
}

DesignConfig
make_systolic(std::size_t dim, bool figna)
{
    DesignConfig d;
    d.name = std::string(figna ? "SA-F(" : "SA(") +
             std::to_string(dim) + ")";
    d.kind = figna ? DesignKind::kSystolicFigna : DesignKind::kSystolic;
    d.array_rows = dim;
    d.array_cols = dim;
    d.nonlinear = NonlinearScheme::kPrecise;
    d.vector_lanes = 16;
    return d;
}

DesignConfig
make_simd(std::size_t dim, bool figna)
{
    DesignConfig d = make_systolic(dim, figna);
    d.name = std::string(figna ? "SD-F(" : "SD(") +
             std::to_string(dim) + ")";
    d.kind = figna ? DesignKind::kSimdFigna : DesignKind::kSimd;
    return d;
}

DesignConfig
make_tensor()
{
    DesignConfig d;
    d.name = "Tensor";
    d.kind = DesignKind::kTensor;
    d.array_rows = 8;
    d.array_cols = 16;
    d.array_depth = 16;
    d.nonlinear = NonlinearScheme::kPrecise;
    // GPU-class wide SIMD for nonlinear work (SFU-style lanes).
    d.vector_lanes = 128;
    d.sram_bytes = 1024 * 1024;  // Table 2: 1 MB for the tensor core.
    return d;
}

DesignConfig
make_vector_array(std::size_t lanes, NonlinearScheme scheme)
{
    DesignConfig d;
    d.name = std::string("VA-") + nonlinear_scheme_name(scheme) + "(" +
             std::to_string(lanes) + ")";
    // A vector array is modeled as a 1-D SIMD design.
    d.kind = DesignKind::kSimd;
    d.array_rows = lanes;
    d.array_cols = 1;
    d.nonlinear = scheme;
    d.vector_lanes = lanes;
    return d;
}

}  // namespace sim
}  // namespace mugi
