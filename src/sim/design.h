#ifndef MUGI_SIM_DESIGN_H_
#define MUGI_SIM_DESIGN_H_

/**
 * @file
 * Accelerator design configurations of Table 2: Mugi, Carat, systolic
 * array (SA), SIMD array (SD), their FIGNA variants (-F), the tensor
 * core, and the Mugi-L ablation (dedicated LUT instead of temporal
 * VLP nonlinear).  A design is one node; NoC configurations replicate
 * it over a 2-D mesh (Sec. 5.2.3).
 */

#include <cstddef>
#include <string>

namespace mugi {
namespace sim {

/** Datapath families of Table 2. */
enum class DesignKind {
    kMugi,           ///< VLP array, shared nonlinear + GEMM.
    kMugiLut,        ///< Mugi-L: VLP GEMM + dedicated LUT nonlinear.
    kCarat,          ///< Prior VLP design (modified for BF16-INT4).
    kSystolic,       ///< Weight/output-stationary MAC systolic array.
    kSystolicFigna,  ///< Systolic with FIGNA FP-INT PEs.
    kSimd,           ///< SIMD array with adder trees.
    kSimdFigna,      ///< SIMD with FIGNA PEs.
    kTensor,         ///< Fully-pipelined 8x16x16 tensor core.
};

const char* design_kind_name(DesignKind kind);

/** Nonlinear-operation scheme attached to a design. */
enum class NonlinearScheme {
    kVlp,      ///< Temporal VLP on the shared array (Mugi).
    kLut,      ///< Dedicated programmable LUT (Mugi-L).
    kPrecise,  ///< Precise 44-cycle MAC vector array (VA-FP).
    kTaylor,   ///< Taylor-series vector array (degree 9).
    kPwl,      ///< Piecewise-linear vector array (22 segments).
};

const char* nonlinear_scheme_name(NonlinearScheme scheme);

/** One accelerator node (plus optional mesh replication). */
struct DesignConfig {
    std::string name;
    DesignKind kind = DesignKind::kMugi;
    std::size_t array_rows = 128;  ///< H (Table 2 "Array height").
    std::size_t array_cols = 8;    ///< W (8 for VLP; H for SA/SD).
    std::size_t array_depth = 1;   ///< 16 for the tensor core.
    NonlinearScheme nonlinear = NonlinearScheme::kVlp;
    std::size_t vector_lanes = 8;  ///< Vec / vector-array width.
    std::size_t sram_bytes = 64 * 1024;  ///< Each of i/w/o SRAM.
    std::size_t noc_rows = 1;      ///< Mesh shape (1x1 = single node).
    std::size_t noc_cols = 1;

    std::size_t nodes() const { return noc_rows * noc_cols; }
    bool
    is_vlp() const
    {
        return kind == DesignKind::kMugi || kind == DesignKind::kCarat ||
               kind == DesignKind::kMugiLut;
    }

    /** Peak MACs per cycle of one node. */
    double peak_macs_per_cycle() const;

    /** Replicated mesh variant of this node. */
    DesignConfig with_noc(std::size_t rows, std::size_t cols) const;
};

// ---- Table 2 factory functions. ----

/** Mugi node with H array rows (128/256 in Table 3; 64 in Fig. 14). */
DesignConfig make_mugi(std::size_t array_rows);
/** Mugi-L: dedicated-LUT ablation. */
DesignConfig make_mugi_l(std::size_t array_rows);
/** Carat modified for BF16-INT4 (Sec. 5.2.2). */
DesignConfig make_carat(std::size_t array_rows);
/** Systolic array of A x A BF16 MACs (A = 4..64). */
DesignConfig make_systolic(std::size_t dim, bool figna = false);
/** SIMD array of A x A MACs with adder trees. */
DesignConfig make_simd(std::size_t dim, bool figna = false);
/** Tensor core: 8x16x16 MACs/cycle, 1 MB SRAM. */
DesignConfig make_tensor();
/**
 * Standalone vector array of @p lanes MAC lanes running @p scheme
 * (the VA-FP / VA-AP baselines of Fig. 11).
 */
DesignConfig make_vector_array(std::size_t lanes,
                               NonlinearScheme scheme);

}  // namespace sim
}  // namespace mugi

#endif  // MUGI_SIM_DESIGN_H_
