#include "sim/event_sim.h"

#include <algorithm>

#include "arch/tech_model.h"
#include "sim/performance_model.h"

namespace mugi {
namespace sim {

EventSimResult
simulate(const DesignConfig& design, const model::Workload& workload)
{
    EventSimResult result;
    const double nodes = static_cast<double>(design.nodes());
    const arch::OffChipMemory hbm;

    // Two resources, each free from a given cycle onward.
    double array_free = 0.0;
    double hbm_free = 0.0;
    // Completion time of the weight prefetch for the next compute op.
    double prefetch_done = 0.0;

    const auto schedule_gemm = [&](const model::GemmOp& op) {
        // 1. Weight prefetch on the HBM channel (skipped for
        //    cache-resident operands).
        const double bytes =
            op.weights_from_dram
                ? static_cast<double>(op.weight_bytes()) / nodes
                : 0.0;
        const double transfer = bytes / hbm.bytes_per_cycle();
        const double mem_start = hbm_free;
        const double mem_end = mem_start + transfer;
        if (transfer > 0.0) {
            hbm_free = mem_end;
            result.memory_busy_cycles += transfer;
            result.timeline.push_back(
                {op.name + ":dram", op.cls, mem_start, mem_end, true});
        }
        prefetch_done = mem_end;

        // 2. Compute on the array once both the array is free and the
        //    operands have landed (double-buffered: the prefetch ran
        //    concurrently with the previous op's compute).
        const OpCost cost = gemm_cost(design, op);
        const double compute = cost.compute_cycles / nodes;
        const double start = std::max(array_free, prefetch_done);
        const double end = start + compute;
        array_free = end;
        result.compute_busy_cycles += compute;
        result.timeline.push_back({op.name, op.cls, start, end, false});
    };

    const auto schedule_nonlinear = [&](const model::NonlinearWork& w) {
        const OpCost cost = nonlinear_cost(design, w);
        const double compute = cost.compute_cycles / nodes;
        const double start = array_free;
        const double end = start + compute;
        array_free = end;
        result.compute_busy_cycles += compute;
        result.timeline.push_back(
            {w.name, model::OpClass::kNonlinear, start, end, false});
    };

    // Stream order: the workload generator emits ops in layer order
    // (projections, attention, FFN) followed by the nonlinear work;
    // interleave nonlinears after the attention/FFN GEMMs they
    // follow.  The simple stream keeps the dependency structure of
    // one decode step.
    for (const model::GemmOp& op : workload.gemms) {
        schedule_gemm(op);
    }
    for (const model::NonlinearWork& w : workload.nonlinears) {
        schedule_nonlinear(w);
    }

    result.makespan_cycles = std::max(array_free, hbm_free);
    return result;
}

}  // namespace sim
}  // namespace mugi
