#ifndef MUGI_SIM_EVENT_SIM_H_
#define MUGI_SIM_EVENT_SIM_H_

/**
 * @file
 * Event-based simulator (Sec. 5.4: "an event-based simulator that can
 * hierarchically solve the mapping of nonlinear operations and GEMM").
 *
 * The simulator schedules a workload's operation stream onto two
 * shared resources per node -- the compute array and the HBM channel
 * -- as a discrete-event timeline.  Weight streaming double-buffers
 * against computation (Sec. 4: "double buffers all memory hierarchies
 * to hide access latency"), so an op's DRAM traffic overlaps the
 * *previous* op's compute.  The analytic model's per-op
 * max(compute, memory) roofline is the no-dependency limit; the event
 * simulation reproduces it within the pipeline fill error, which is
 * what the cross-validation tests assert.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "model/workload.h"
#include "sim/design.h"

namespace mugi {
namespace sim {

/** One scheduled interval on a resource. */
struct ScheduledOp {
    std::string name;
    model::OpClass cls = model::OpClass::kProjection;
    double start_cycle = 0.0;
    double end_cycle = 0.0;
    bool on_memory = false;  ///< True for HBM transfer intervals.
};

/** Event-simulation outcome. */
struct EventSimResult {
    std::vector<ScheduledOp> timeline;
    double makespan_cycles = 0.0;
    /** Busy cycles of the compute array (utilization numerator). */
    double compute_busy_cycles = 0.0;
    /** Busy cycles of the HBM channel. */
    double memory_busy_cycles = 0.0;

    double
    compute_utilization() const
    {
        return makespan_cycles > 0.0
                   ? compute_busy_cycles / makespan_cycles
                   : 0.0;
    }
};

/**
 * Simulate one inference step.  Ops execute in stream order on the
 * array; each op's weight stream is prefetched on the HBM channel and
 * must complete before the op's compute interval ends (double
 * buffering: prefetch of op i+1 overlaps compute of op i).
 */
EventSimResult simulate(const DesignConfig& design,
                        const model::Workload& workload);

}  // namespace sim
}  // namespace mugi

#endif  // MUGI_SIM_EVENT_SIM_H_
