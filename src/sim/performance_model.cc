#include "sim/performance_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "arch/tech_model.h"

namespace mugi {
namespace sim {
namespace {

double
ceil_div(double a, double b)
{
    return std::ceil(a / b);
}

/** Compute-bound cycles of one GEMM on one node. */
double
gemm_compute_cycles(const DesignConfig& d, const model::GemmOp& op)
{
    const double m = static_cast<double>(op.m);
    const double n = static_cast<double>(op.n);
    const double k = static_cast<double>(op.k);
    const double count = static_cast<double>(op.count);

    if (d.is_vlp()) {
        // Transposed Mugi mapping (Sec. 4.2): weights (n) on H rows,
        // activations (m) on 8 columns; each k-step sweeps 2^3
        // cycles.  Matches vlp::vlp_gemm_mugi_cycles exactly.
        const double H = static_cast<double>(d.array_rows);
        const double W = static_cast<double>(d.array_cols);
        return count * ceil_div(n, H) * ceil_div(m, W) * k * 8.0;
    }
    if (d.kind == DesignKind::kTensor) {
        // Fully pipelined 8x16x16 MAC block per cycle.
        const double tm = static_cast<double>(d.array_rows);
        const double tn = static_cast<double>(d.array_cols);
        const double tk = static_cast<double>(d.array_depth);
        return count * ceil_div(m, tm) * ceil_div(n, tn) *
                   ceil_div(k, tk) +
               32.0;  // Pipeline fill.
    }
    // SA / SD, output stationary (Sec. 5.2.3): an A x A output tile
    // holds min(m, A) live rows; k streams through.  SA pays a drain
    // of A cycles per tile; SD a small reload bubble.
    const double A = static_cast<double>(d.array_rows);
    const bool systolic = d.kind == DesignKind::kSystolic ||
                          d.kind == DesignKind::kSystolicFigna;
    const double overhead = systolic ? A : A / 4.0;
    return count * ceil_div(m, A) * ceil_div(n, A) * (k + overhead);
}

}  // namespace

OpCost
gemm_cost(const DesignConfig& d, const model::GemmOp& op)
{
    OpCost cost;
    cost.name = op.name;
    cost.cls = op.cls;
    cost.compute_cycles = gemm_compute_cycles(d, op);

    const arch::OffChipMemory hbm;
    const double bytes =
        static_cast<double>(op.weights_from_dram ? op.weight_bytes()
                                                 : 0) +
        static_cast<double>(op.activation_bytes()) * 0.0;
    cost.memory_cycles = bytes / hbm.bytes_per_cycle();
    cost.cycles = std::max(cost.compute_cycles, cost.memory_cycles);

    const double macs = static_cast<double>(op.macs());
    arch::SramMacro macro{d.sram_bytes, true};
    const double sram_bytes =
        static_cast<double>(op.weight_bytes()) +
        static_cast<double>(op.activation_bytes()) +
        static_cast<double>(op.output_bytes());
    cost.dynamic_energy_pj =
        macs * gemm_energy_per_mac(d) +
        sram_bytes * macro.access_energy_per_byte() +
        (op.weights_from_dram
             ? static_cast<double>(op.weight_bytes()) *
                   hbm.energy_per_byte()
             : 0.0);
    return cost;
}

OpCost
nonlinear_cost(const DesignConfig& d, const model::NonlinearWork& work)
{
    OpCost cost;
    cost.name = work.name;
    cost.cls = model::OpClass::kNonlinear;
    const double elements = static_cast<double>(work.elements);

    double elements_per_cycle = 0.0;
    switch (d.nonlinear) {
      case NonlinearScheme::kVlp:
        // H rows retire one element each per 2^3-cycle mapping
        // (fully pipelined, Fig. 10).
        elements_per_cycle = static_cast<double>(d.array_rows) / 8.0;
        break;
      case NonlinearScheme::kLut:
        // 8 inputs share one LUT port; H/8 LUT copies.
        elements_per_cycle = static_cast<double>(d.array_rows) / 8.0;
        break;
      case NonlinearScheme::kPrecise:
        elements_per_cycle =
            static_cast<double>(d.vector_lanes) / 44.0;
        break;
      case NonlinearScheme::kTaylor:
        elements_per_cycle =
            static_cast<double>(d.vector_lanes) / 10.0;
        break;
      case NonlinearScheme::kPwl:
        elements_per_cycle = static_cast<double>(d.vector_lanes) / 5.0;
        break;
    }
    cost.compute_cycles = elements / elements_per_cycle;

    if (work.is_softmax) {
        // Normalization: the sum accumulates for free in the oAcc
        // during exp (Sec. 4.1) and the vector array scales outputs
        // as they exit the oFIFO, "hiding latency" (Sec. 5.2.1) --
        // only a single pipeline drain per row remains.
        cost.compute_cycles +=
            static_cast<double>(work.row_length) /
            std::max<double>(1.0, static_cast<double>(d.vector_lanes));
    }
    cost.cycles = cost.compute_cycles;  // On-chip data: no HBM term.

    double per_element = nonlinear_energy_per_element(d);
    if (work.is_softmax) {
        per_element +=
            arch::component_energy(arch::Component::kBf16Adder) +
            arch::component_energy(arch::Component::kBf16Mac);
    }
    cost.dynamic_energy_pj = elements * per_element;
    return cost;
}

PerfReport
run_workload(const DesignConfig& design, const model::Workload& workload)
{
    PerfReport report;
    report.design_name = design.name;
    report.workload_name = workload.name;
    const double nodes = static_cast<double>(design.nodes());

    double total_cycles = 0.0;
    double dynamic_pj = 0.0;
    double noc_pj = 0.0;

    for (const model::GemmOp& op : workload.gemms) {
        OpCost cost = gemm_cost(design, op);
        // Even tiling across nodes (output stationary, inter-node
        // accumulation): compute and memory streams divide by the
        // node count; dynamic energy is unchanged (same MACs), plus
        // NoC transfer energy for operands and partial sums.
        cost.compute_cycles /= nodes;
        cost.memory_cycles /= nodes;
        cost.cycles = std::max(cost.compute_cycles, cost.memory_cycles);
        if (design.nodes() > 1) {
            const double mesh_dim = std::sqrt(nodes);
            const double hops = std::max(1.0, 2.0 * mesh_dim / 3.0);
            const double moved_bytes =
                static_cast<double>(op.weight_bytes()) +
                static_cast<double>(op.activation_bytes()) +
                static_cast<double>(op.output_bytes());
            noc_pj += moved_bytes * hops * arch::kNocHopEnergyPerByte;
        }
        report.ops.push_back(cost);
        total_cycles += cost.cycles;
        dynamic_pj += cost.dynamic_energy_pj;
        report.cycles_by_class[op.cls] += cost.cycles;
        report.energy_by_class[op.cls] += cost.dynamic_energy_pj;
    }
    for (const model::NonlinearWork& work : workload.nonlinears) {
        OpCost cost = nonlinear_cost(design, work);
        cost.compute_cycles /= nodes;
        cost.cycles = cost.compute_cycles;
        report.ops.push_back(cost);
        total_cycles += cost.cycles;
        dynamic_pj += cost.dynamic_energy_pj;
        report.cycles_by_class[model::OpClass::kNonlinear] +=
            cost.cycles;
        report.energy_by_class[model::OpClass::kNonlinear] +=
            cost.dynamic_energy_pj;
    }
    dynamic_pj += noc_pj;

    report.total_cycles = total_cycles;
    report.runtime_s = total_cycles * arch::kCycleNs * 1e-9;
    report.dynamic_energy_j = dynamic_pj * 1e-12;
    report.leakage_energy_j = node_leakage_mw(design) * 1e-3 * nodes *
                              report.runtime_s;
    report.tokens = static_cast<double>(workload.tokens());

    report.throughput_tokens_per_s = report.tokens / report.runtime_s;
    report.power_w =
        (report.dynamic_energy_j + report.leakage_energy_j) /
        report.runtime_s;
    report.energy_per_token_j =
        (report.dynamic_energy_j + report.leakage_energy_j) /
        report.tokens;
    report.power_efficiency =
        report.throughput_tokens_per_s / report.power_w;
    report.energy_efficiency =
        report.throughput_tokens_per_s * report.power_efficiency;
    return report;
}

void
PerfAccumulator::add(const PerfReport& report)
{
    if (steps_ == 0) {
        sum_.design_name = report.design_name;
        sum_.workload_name = report.workload_name + " (accumulated)";
    }
    ++steps_;
    sum_.total_cycles += report.total_cycles;
    sum_.runtime_s += report.runtime_s;
    sum_.dynamic_energy_j += report.dynamic_energy_j;
    sum_.leakage_energy_j += report.leakage_energy_j;
    sum_.tokens += report.tokens;
    for (const auto& [cls, cycles] : report.cycles_by_class) {
        sum_.cycles_by_class[cls] += cycles;
    }
    for (const auto& [cls, energy] : report.energy_by_class) {
        sum_.energy_by_class[cls] += energy;
    }
}

PerfReport
PerfAccumulator::total() const
{
    PerfReport report = sum_;
    if (report.runtime_s <= 0.0 || report.tokens <= 0.0) {
        return report;
    }
    report.throughput_tokens_per_s = report.tokens / report.runtime_s;
    report.power_w =
        (report.dynamic_energy_j + report.leakage_energy_j) /
        report.runtime_s;
    report.energy_per_token_j =
        (report.dynamic_energy_j + report.leakage_energy_j) /
        report.tokens;
    report.power_efficiency =
        report.throughput_tokens_per_s / report.power_w;
    report.energy_efficiency =
        report.throughput_tokens_per_s * report.power_efficiency;
    return report;
}

NonlinearPerf
run_nonlinear_only(const DesignConfig& design,
                   const model::NonlinearWork& work)
{
    const OpCost cost = nonlinear_cost(design, work);
    NonlinearPerf perf;
    const double runtime_s = cost.cycles * arch::kCycleNs * 1e-9 /
                             static_cast<double>(design.nodes());
    perf.elements_per_s =
        static_cast<double>(work.elements) / runtime_s;
    const double energy_j =
        cost.dynamic_energy_pj * 1e-12 +
        node_leakage_mw(design) * 1e-3 *
            static_cast<double>(design.nodes()) * runtime_s;
    perf.power_w = energy_j / runtime_s;
    perf.power_efficiency = perf.elements_per_s / perf.power_w;
    perf.energy_efficiency =
        perf.elements_per_s * perf.power_efficiency;
    return perf;
}

KvFootprint
kv_footprint(const model::ModelConfig& config,
             units::Positions positions, quant::KvPrecision precision,
             units::Tokens block_tokens,
             units::Positions shared_positions)
{
    assert(block_tokens.value() > 0);
    assert(shared_positions <= positions);
    KvFootprint fp;
    const units::Bytes per_position =
        quant::KvCache::bytes_per_position(config.num_kv_heads,
                                           config.head_dim(),
                                           precision);
    // Fully-shared leading blocks live in the donor's accounting;
    // only the unshared tail (plus any partially-shared block, which
    // the writer will copy-on-write anyway) is this request's own.
    const units::Blocks shared_blocks = units::full_blocks_for(
        units::tokens_for(shared_positions), block_tokens);
    fp.contiguous_bytes =
        units::bytes_for(
            units::tokens_for(positions - shared_positions),
            per_position) *
        config.num_layers;
    fp.blocks = units::blocks_for(units::tokens_for(positions),
                                  block_tokens) -
                shared_blocks;
    fp.paged_bytes =
        units::bytes_for(units::tokens_for(fp.blocks, block_tokens),
                         per_position) *
        config.num_layers;
    return fp;
}

}  // namespace sim
}  // namespace mugi
