#ifndef MUGI_SIM_PERFORMANCE_MODEL_H_
#define MUGI_SIM_PERFORMANCE_MODEL_H_

/**
 * @file
 * Analytic performance model (Sec. 5.4): per-operation latency and
 * energy of a workload on a design, with an HBM roofline per op and
 * utilization terms that capture the mapping effects the paper
 * evaluates:
 *
 *  - Mugi/Carat (transposed VLP): INT4 weights on H rows, BF16
 *    activations on 8 columns; one k-step sweep = 2^3 cycles; column
 *    utilization = min(m, 8)/8 (peaks at batch/GQA-group 8, Sec. 4.2);
 *  - SA/SD (output stationary, Sec. 5.2.3): out-tile rows limited by
 *    the activation rows, utilization = min(m, A)/A -- the small-batch
 *    under-utilization that worsens with array size (Sec. 6.2);
 *  - tensor core: fully pipelined 8x16x16;
 *  - nonlinear schemes: VLP H/8 elem/cycle vs vector arrays at
 *    lanes/cycles-per-element.
 *
 * The cycle formulas for the VLP designs equal the cycle-accurate
 * array simulation (vlp::vlp_gemm_mugi) exactly; tests enforce this.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/workload.h"
#include "quant/kv_cache.h"
#include "sim/cost_model.h"
#include "sim/design.h"

namespace mugi {
namespace sim {

/**
 * Modeled KV-cache footprint of one request at a context length,
 * under both storage disciplines the serving stack supports.  This
 * is the quantity serve::Scheduler admits against and
 * bench/kv_paging.cc sweeps: contiguous_bytes is the token-exact
 * accounting a full-length projection charges, paged_bytes rounds up
 * to the fixed-size blocks a quant::BlockPool actually allocates.
 */
struct KvFootprint {
    units::Bytes contiguous_bytes{0};  ///< positions * exact B/pos.
    units::Bytes paged_bytes{0};       ///< Whole blocks, all layers.
    units::Blocks blocks{0};           ///< Per-layer block count.
};

/**
 * @param shared_positions Leading positions resident as another
 *        request's prefix-cached blocks (block-aligned by the
 *        scheduler's sharing rule).  Only the *fully*-shared leading
 *        blocks are discounted from the paged accounting -- those
 *        blocks' storage (and, with INT4 KVQ, their quantization
 *        pass) is charged to the donor -- so the result is the
 *        request's own admission charge and the prefill work it must
 *        still run covers exactly positions - shared tokens.
 */
KvFootprint kv_footprint(const model::ModelConfig& config,
                         units::Positions positions,
                         quant::KvPrecision precision,
                         units::Tokens block_tokens =
                             quant::BlockPool::kDefaultBlockTokens,
                         units::Positions shared_positions =
                             units::Positions(0));

/** Latency + energy of one op on one design. */
struct OpCost {
    std::string name;
    model::OpClass cls = model::OpClass::kProjection;
    double compute_cycles = 0.0;  ///< Array-bound cycles.
    double memory_cycles = 0.0;   ///< HBM-bound cycles.
    double cycles = 0.0;          ///< max(compute, memory).
    double dynamic_energy_pj = 0.0;
};

/** Full execution report of a workload on a design. */
struct PerfReport {
    std::string design_name;
    std::string workload_name;
    std::vector<OpCost> ops;
    double total_cycles = 0.0;
    double runtime_s = 0.0;
    double dynamic_energy_j = 0.0;
    double leakage_energy_j = 0.0;
    double tokens = 0.0;

    double throughput_tokens_per_s = 0.0;
    double power_w = 0.0;  ///< (dynamic + leakage) / runtime.
    /**
     * Energy efficiency as the paper reports it (Table 3
     * "Tokens/s/uJ"): throughput divided by energy-per-token, i.e.
     * throughput^2 / power.
     */
    double energy_efficiency = 0.0;
    double power_efficiency = 0.0;  ///< tokens/s/W.
    double energy_per_token_j = 0.0;

    /** Cycles per op class (latency breakdown, Fig. 16). */
    std::map<model::OpClass, double> cycles_by_class;
    /** Dynamic energy per op class (carbon breakdown, Fig. 15). */
    std::map<model::OpClass, double> energy_by_class;
};

/**
 * Accumulates per-step PerfReports into a serving-horizon total:
 * cycles, energies, tokens and the per-class breakdowns add up; the
 * derived rates (throughput, power, efficiencies) are recomputed
 * over the aggregate, so a sequence of heterogeneous Engine::step
 * reports folds into one steady-state serving report.
 */
class PerfAccumulator {
  public:
    /** Fold one step's report in (op lists are not retained). */
    void add(const PerfReport& report);

    std::size_t steps() const { return steps_; }

    /**
     * Modeled busy time accumulated so far, in seconds.
     * serve::Scheduler's request-lifecycle clock (queue wait, TTFT,
     * TPOT) is this plus any idle fast-forward skips it makes while
     * waiting for future arrivals.
     */
    double elapsed_s() const { return sum_.runtime_s; }

    /** The aggregate with all derived metrics recomputed. */
    PerfReport total() const;

  private:
    std::size_t steps_ = 0;
    PerfReport sum_;
};

/** Cost of one GEMM on one node of the design. */
OpCost gemm_cost(const DesignConfig& design, const model::GemmOp& op);

/** Cost of one nonlinear batch on one node of the design. */
OpCost nonlinear_cost(const DesignConfig& design,
                      const model::NonlinearWork& work);

/**
 * Run a workload on the design.  With a multi-node mesh, GEMMs are
 * tiled evenly across nodes (output stationary, inter-node
 * accumulation, Sec. 4.2) and the NoC adds transfer energy; the
 * off-chip memory always supplies the minimum required bandwidth
 * (Sec. 5.2.3).
 */
PerfReport run_workload(const DesignConfig& design,
                        const model::Workload& workload);

/**
 * Nonlinear-only report (Fig. 11): throughput in elements/s plus the
 * same efficiency metrics, for a stream of @p elements of @p op.
 */
struct NonlinearPerf {
    double elements_per_s = 0.0;
    double power_w = 0.0;
    double energy_efficiency = 0.0;  ///< throughput^2 / power.
    double power_efficiency = 0.0;   ///< elements/s/W.
};

NonlinearPerf run_nonlinear_only(const DesignConfig& design,
                                 const model::NonlinearWork& work);

}  // namespace sim
}  // namespace mugi

#endif  // MUGI_SIM_PERFORMANCE_MODEL_H_
