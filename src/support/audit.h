#ifndef MUGI_SUPPORT_AUDIT_H_
#define MUGI_SUPPORT_AUDIT_H_

/**
 * @file
 * Debug invariant-auditor plumbing.
 *
 * The concurrency-bearing subsystems expose `check_invariants()`
 * methods that recompute their accounting from scratch (refcount
 * totals vs slots in use, reservations vs committed blocks, ...) and
 * return a description of the first violation -- an empty string
 * means the structure is consistent.  Those checkers exist in every
 * build type so tests (and callers that want an error-return) can
 * always run them.
 *
 * MUGI_AUDIT_INVARIANTS gates the *automatic* audit calls wired into
 * hot paths (the end of every serve::Scheduler::step): 1 by default
 * in assert-enabled builds (Debug / CI), 0 under NDEBUG so release
 * builds pay nothing.  Override with -DMUGI_AUDIT_INVARIANTS=1 to
 * force audits into an optimized build.  A failed automatic audit
 * calls audit_failure(), which prints the violation and aborts --
 * drift in refcounted, copy-on-write block accounting is corruption,
 * not a recoverable condition.
 *
 * Thread-safety: audit_failure is reentrant (stateless, write + abort).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef MUGI_AUDIT_INVARIANTS
#ifdef NDEBUG
#define MUGI_AUDIT_INVARIANTS 0
#else
#define MUGI_AUDIT_INVARIANTS 1
#endif
#endif

namespace mugi {
namespace support {

/** Report a failed invariant audit and abort. */
[[noreturn]] inline void
audit_failure(const char* where, const std::string& violation)
{
    std::fprintf(stderr, "mugi invariant audit failed in %s: %s\n",
                 where, violation.c_str());
    std::fflush(stderr);
    std::abort();
}

/** Abort iff @p violation is non-empty (one auditor call site). */
inline void
audit_or_abort(const char* where, const std::string& violation)
{
    if (!violation.empty()) {
        audit_failure(where, violation);
    }
}

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_AUDIT_H_
