#ifndef MUGI_SUPPORT_CHANNEL_H_
#define MUGI_SUPPORT_CHANNEL_H_

/**
 * @file
 * Bounded MPSC/MPMC channel with close semantics -- the cross-thread
 * seam of the push-based serving core.
 *
 * A Channel<T> is a bounded FIFO handoff queue: any number of
 * producers push() while consumers pop(), and close() transitions the
 * channel into its terminal state.  The contract mirrors Go channels
 * and ScaleLLM's request queues:
 *
 *  - push() blocks while the channel is full and returns false once
 *    the channel is closed (the value is NOT enqueued; a closed
 *    channel accepts nothing);
 *  - pop() blocks while the channel is empty and still open; after
 *    close(), every value already enqueued is still delivered in FIFO
 *    order, and only then does pop() return nullopt -- close drains,
 *    it never drops;
 *  - try_push() / try_pop() are the non-blocking forms (full/closed
 *    and empty respectively);
 *  - close() is idempotent and wakes every blocked producer and
 *    consumer.
 *
 * serve::Server runs one Channel<Command> as its MPSC submission
 * queue (any caller thread -> the scheduler loop thread) and one
 * Channel<TokenDelta> per request as its SPSC streaming path (loop
 * thread -> the caller or HTTP connection draining the stream).
 *
 * Thread-safety: internally synchronized.  Every member may be called
 * from any thread concurrently; all mutable state is guarded by the
 * capability-annotated support::Mutex (MUGI_GUARDED_BY enforced under
 * -Wthread-safety), and tests/concurrency/channel_test.cc races
 * producers against consumers under TSan.  The destructor must not
 * race other member calls (external serialization of lifetime, as
 * usual).
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace support {

/** Bounded multi-producer channel (see file comment for contract). */
template <typename T>
class Channel {
  public:
    /** @p capacity items may be queued before push() blocks (>= 1). */
    explicit Channel(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /**
     * Enqueue @p value, blocking while the channel is full.  Returns
     * false (value dropped) iff the channel was closed before space
     * became available.
     */
    bool
    push(T value)
    {
        mu_.lock();
        while (items_.size() >= capacity_ && !closed_) {
            not_full_.wait(mu_);
        }
        if (closed_) {
            mu_.unlock();
            return false;
        }
        items_.push_back(std::move(value));
        mu_.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Enqueue without blocking; false when full or closed. */
    bool
    try_push(T value)
    {
        {
            MutexLock lock(mu_);
            if (closed_ || items_.size() >= capacity_) {
                return false;
            }
            items_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest value, blocking while the channel is empty
     * and open.  nullopt means closed AND fully drained -- the
     * terminal state; values enqueued before close() still arrive.
     */
    std::optional<T>
    pop()
    {
        mu_.lock();
        while (items_.empty() && !closed_) {
            not_empty_.wait(mu_);
        }
        if (items_.empty()) {
            mu_.unlock();
            return std::nullopt;  // Closed and drained.
        }
        T value = std::move(items_.front());
        items_.pop_front();
        mu_.unlock();
        not_full_.notify_one();
        return value;
    }

    /** Dequeue without blocking; nullopt when nothing is queued. */
    std::optional<T>
    try_pop()
    {
        std::optional<T> value;
        {
            MutexLock lock(mu_);
            if (items_.empty()) {
                return std::nullopt;
            }
            value.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return value;
    }

    /**
     * Close the channel: producers are refused from here on, queued
     * values still drain, every blocked push/pop wakes.  Idempotent.
     */
    void
    close()
    {
        {
            MutexLock lock(mu_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool
    closed() const
    {
        MutexLock lock(mu_);
        return closed_;
    }

    /** Queued (pushed, not yet popped) items right now. */
    std::size_t
    size() const
    {
        MutexLock lock(mu_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    mutable Mutex mu_;
    std::condition_variable_any not_empty_;
    std::condition_variable_any not_full_;
    std::deque<T> items_ MUGI_GUARDED_BY(mu_);
    bool closed_ MUGI_GUARDED_BY(mu_) = false;
    const std::size_t capacity_;
};

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_CHANNEL_H_
