#include "support/fault.h"

namespace mugi {
namespace support {

namespace {

/** FNV-1a over the site name: stable site identity across runs. */
std::uint64_t
fnv1a(const char* s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (; *s != '\0'; ++s) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
        h *= 1099511628211ull;
    }
    return h;
}

/** splitmix64 finalizer: uniform bits from (seed, site, counter). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const FaultPlan& plan)
{
    MutexLock lock(mu_);
    seed_ = plan.seed;
    sites_.clear();
    for (const FaultSiteConfig& config : plan.sites) {
        SiteState state;
        state.rate = config.rate < 0.0 ? 0.0
                   : config.rate > 1.0 ? 1.0
                                       : config.rate;
        state.max_fires = config.max_fires;
        state.site_hash = fnv1a(config.site.c_str());
        sites_[config.site] = state;
    }
    armed_.store(true, std::memory_order_relaxed);
}

void
FaultInjector::disarm()
{
    MutexLock lock(mu_);
    armed_.store(false, std::memory_order_relaxed);
    seed_ = 0;
    sites_.clear();
}

bool
FaultInjector::should_fire(const char* site)
{
    if (!armed_.load(std::memory_order_relaxed)) {
        return false;  // Disarmed fast path: one relaxed load.
    }
    MutexLock lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        return false;  // Site not named by the plan.
    }
    SiteState& state = it->second;
    // Two mixes, not one: seed ^ site ^ counter alone is commutative,
    // so nearby (seed, counter) pairs collide and adjacent seeds see
    // permutations of the same draws.  Hashing (seed, site) into a
    // stream base first makes every seed an independent sequence.
    const std::uint64_t draw =
        mix64(mix64(seed_ ^ state.site_hash) +
              static_cast<std::uint64_t>(state.evaluations));
    ++state.evaluations;
    if (state.max_fires != 0 && state.fired >= state.max_fires) {
        return false;
    }
    // Map the top 53 bits to [0, 1): enough resolution for any rate.
    const double unit =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (unit >= state.rate) {
        return false;
    }
    ++state.fired;
    return true;
}

std::size_t
FaultInjector::fires() const
{
    MutexLock lock(mu_);
    std::size_t total = 0;
    for (const auto& entry : sites_) {
        total += entry.second.fired;
    }
    return total;
}

std::size_t
FaultInjector::fires(const std::string& site) const
{
    MutexLock lock(mu_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

std::size_t
FaultInjector::evaluations() const
{
    MutexLock lock(mu_);
    std::size_t total = 0;
    for (const auto& entry : sites_) {
        total += entry.second.evaluations;
    }
    return total;
}

}  // namespace support
}  // namespace mugi
