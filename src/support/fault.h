#ifndef MUGI_SUPPORT_FAULT_H_
#define MUGI_SUPPORT_FAULT_H_

/**
 * @file
 * Deterministic fault injection for the serving stack's unhappy paths.
 *
 * Production code marks failure-capable seams with named *fault
 * sites*:
 *
 *     if (MUGI_FAULT_POINT("block_pool.allocate")) {
 *         return kInvalidBlock;  // Simulated pool exhaustion.
 *     }
 *
 * With the build option MUGI_FAULT_INJECTION=OFF the macro expands to
 * a constant `false` and the compiler deletes the branch -- zero cost
 * and zero behavioural surface in production builds.  With injection
 * compiled in (the default for this repo's CI), every site is still
 * inert until a test or bench *arms* the process-wide FaultInjector
 * with a FaultPlan: a seed plus per-site firing rates and caps.
 *
 * Determinism contract: whether the Nth evaluation of a given site
 * fires is a pure function of (plan seed, site name, N).  Two runs
 * that evaluate a site the same number of times see the same firing
 * pattern, regardless of what other sites or threads do -- each site
 * keeps its own evaluation counter and derives its decisions by
 * hashing (seed, fnv1a(site), counter) through splitmix64.  What is
 * NOT reproducible across runs is which *connection or request*
 * happens to hit the Nth evaluation when threads race; chaos gates
 * therefore assert invariants (no leaks, bit-identical survivors),
 * never specific victims.
 *
 * Thread-safety: internally synchronized.  should_fire() and the
 * counter accessors may be called from any thread; the armed flag is
 * a relaxed atomic read on the (disarmed) fast path and all per-site
 * state is guarded by a Mutex once armed.  arm()/disarm() may race
 * should_fire() safely, but two concurrent arm() calls race on which
 * plan wins (tests serialize arming, as usual for configuration).
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace support {

/** One site's schedule within a FaultPlan. */
struct FaultSiteConfig {
    /** Site name, matching the MUGI_FAULT_POINT literal exactly. */
    std::string site;
    /** Probability in [0, 1] that any one evaluation fires. */
    double rate = 0.0;
    /** Stop firing after this many fires (0 = unlimited). */
    std::size_t max_fires = 0;
};

/** A seeded, deterministic schedule over a set of fault sites. */
struct FaultPlan {
    std::uint64_t seed = 0;
    std::vector<FaultSiteConfig> sites;
};

/**
 * Process-wide fault-site registry (see file comment for the
 * determinism and thread-safety contracts).
 */
class FaultInjector {
  public:
    /** The process-wide instance MUGI_FAULT_POINT consults. */
    static FaultInjector& instance();

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /** Install @p plan and reset all counters.  Overwrites any
     *  previous plan. */
    void arm(const FaultPlan& plan);

    /** Remove the plan: every site goes inert, counters reset. */
    void disarm();

    /** True while a plan is installed (even one with no sites). */
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /**
     * Evaluate @p site against the armed plan.  Returns true iff the
     * site should fail now.  Disarmed, or for a site the plan does
     * not name: always false, and nothing is counted.
     */
    bool should_fire(const char* site);

    /** Total fires across all sites since arm(). */
    std::size_t fires() const;

    /** Fires charged to one site since arm() (0 if never fired). */
    std::size_t fires(const std::string& site) const;

    /** Evaluations of armed sites since arm() (fired or not). */
    std::size_t evaluations() const;

  private:
    FaultInjector() = default;

    struct SiteState {
        double rate = 0.0;
        std::size_t max_fires = 0;
        std::uint64_t site_hash = 0;
        std::size_t evaluations = 0;
        std::size_t fired = 0;
    };

    std::atomic<bool> armed_{false};
    mutable Mutex mu_;
    std::uint64_t seed_ MUGI_GUARDED_BY(mu_) = 0;
    std::map<std::string, SiteState> sites_ MUGI_GUARDED_BY(mu_);
};

/**
 * RAII plan installer for tests and benches: arms on construction,
 * disarms on destruction so a failing test never leaks an armed plan
 * into later tests in the same binary.
 */
class ScopedFaultPlan {
  public:
    explicit ScopedFaultPlan(const FaultPlan& plan)
    {
        FaultInjector::instance().arm(plan);
    }
    ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace support
}  // namespace mugi

#if defined(MUGI_FAULT_INJECTION_ENABLED) && MUGI_FAULT_INJECTION_ENABLED
#define MUGI_FAULT_POINT(site) \
    (::mugi::support::FaultInjector::instance().should_fire(site))
#else
#define MUGI_FAULT_POINT(site) (false)
#endif

#endif  // MUGI_SUPPORT_FAULT_H_
