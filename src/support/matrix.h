#ifndef MUGI_SUPPORT_MATRIX_H_
#define MUGI_SUPPORT_MATRIX_H_

/**
 * @file
 * Minimal row-major dense matrix used across the VLP kernels, the
 * quantization substrate and the transformer model.  Deliberately
 * simple: shape + flat storage + bounds-checked element access in
 * debug builds.
 *
 * Thread-safety: externally serialized.  A Matrix is a plain value
 * with no internal locking; concurrent const access is safe, and any
 * writer requires exclusive access (the kernels hand each worker a
 * disjoint row range or a private output tile).
 */

#include <cassert>
#include <cstddef>
#include <vector>

namespace mugi {
namespace support {

/** Row-major dense matrix of T. */
template <typename T>
class Matrix {
  public:
    Matrix() = default;

    /** rows x cols matrix, value-initialized. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols)
    {
    }

    /** rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, T fill)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    T&
    at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const T&
    at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    T& operator()(std::size_t r, std::size_t c) { return at(r, c); }
    const T&
    operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    /** Pointer to the first element of row @p r. */
    T* row_data(std::size_t r) { return data_.data() + r * cols_; }
    const T*
    row_data(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    std::vector<T>& data() { return data_; }
    const std::vector<T>& data() const { return data_; }

    friend bool
    operator==(const Matrix& a, const Matrix& b)
    {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
               a.data_ == b.data_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI = Matrix<int>;

/** C = A * B with float accumulation, plain triple loop (reference). */
inline MatrixF
matmul(const MatrixF& a, const MatrixF& b)
{
    assert(a.cols() == b.rows());
    MatrixF c(a.rows(), b.cols(), 0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float aik = a.at(i, k);
            if (aik == 0.0f) continue;
            const float* brow = b.row_data(k);
            float* crow = c.row_data(i);
            for (std::size_t j = 0; j < b.cols(); ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_MATRIX_H_
