#ifndef MUGI_SUPPORT_MUTEX_H_
#define MUGI_SUPPORT_MUTEX_H_

/**
 * @file
 * Capability-annotated mutex wrappers.
 *
 * support::Mutex is std::mutex wearing Clang's `capability`
 * attribute, and support::MutexLock is the matching scoped_lockable
 * std::lock_guard.  The internally-synchronized classes
 * (quant::BlockPool, serve::KernelRegistry) lock through these so
 * `-Wthread-safety` can see their acquires: libstdc++'s std::mutex is
 * unannotated, and a lock the analysis cannot see makes every
 * MUGI_GUARDED_BY field access a false positive.  Zero overhead: both
 * types compile to exactly the std:: equivalents they wrap.
 *
 * Thread-safety: Mutex is the synchronization primitive itself;
 * MutexLock is a stack-local guard and is never shared.
 */

#include <mutex>

#include "support/thread_annotations.h"

namespace mugi {
namespace support {

/** std::mutex as a Clang-visible lockable capability. */
class MUGI_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void
    lock() MUGI_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() MUGI_RELEASE()
    {
        mu_.unlock();
    }

    [[nodiscard]] bool
    try_lock() MUGI_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    std::mutex mu_;
};

/** std::lock_guard over a Mutex, visible to the analysis. */
class MUGI_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) MUGI_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() MUGI_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_MUTEX_H_
