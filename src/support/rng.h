#ifndef MUGI_SUPPORT_RNG_H_
#define MUGI_SUPPORT_RNG_H_

/**
 * @file
 * Deterministic random helpers.  All experiments seed explicitly so
 * the benchmark harness reproduces the same rows on every run.
 *
 * Thread-safety: externally serialized.  The helpers mutate both the
 * caller's std::mt19937 and the target matrix; callers own the
 * engine, and deterministic replay requires a fixed draw order, so
 * each engine must be confined to one thread at a time.
 */

#include <cstdint>
#include <random>

#include "support/matrix.h"

namespace mugi {
namespace support {

/** Fill @p m with N(mean, stddev) samples from @p rng. */
inline void
fill_gaussian(MatrixF& m, std::mt19937& rng, float mean = 0.0f,
              float stddev = 1.0f)
{
    std::normal_distribution<float> dist(mean, stddev);
    for (float& v : m.data()) {
        v = dist(rng);
    }
}

/** Fill @p m with U(lo, hi) samples from @p rng. */
inline void
fill_uniform(MatrixF& m, std::mt19937& rng, float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    for (float& v : m.data()) {
        v = dist(rng);
    }
}

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_RNG_H_
