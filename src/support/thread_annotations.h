#ifndef MUGI_SUPPORT_THREAD_ANNOTATIONS_H_
#define MUGI_SUPPORT_THREAD_ANNOTATIONS_H_

/**
 * @file
 * Clang thread-safety-analysis capability annotations.
 *
 * These macros expand to Clang's `-Wthread-safety` attributes so the
 * compiler can prove, at build time, that every access to a
 * `MUGI_GUARDED_BY(mu)` field happens with `mu` held and that every
 * `MUGI_REQUIRES(mu)` function is only called under the lock.  On
 * compilers without the analysis (GCC) they expand to nothing, so
 * annotated headers stay portable.
 *
 * The analysis only understands capability-annotated lock types, so
 * annotated classes hold a support::Mutex / support::MutexLock
 * (support/mutex.h) instead of a bare std::mutex / std::lock_guard --
 * libstdc++'s std::mutex carries no annotations and would make every
 * acquire invisible to the checker.
 *
 * Enforced by the MUGI_THREAD_SAFETY_ANALYSIS CMake option, which
 * turns on `-Wthread-safety -Werror=thread-safety` (Clang builds
 * only); CI runs it as the clang-thread-safety matrix entry, and
 * tests/concurrency/compile_fail/ holds a deliberately mis-locked
 * access that must FAIL that build.
 *
 * Thread-safety: macro-only header; nothing here is runtime state.
 */

#if defined(__clang__)
#define MUGI_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MUGI_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define MUGI_CAPABILITY(x) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/** Marks an RAII type that acquires in its ctor / releases in dtor. */
#define MUGI_SCOPED_CAPABILITY \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/** Field may only be read or written with the capability held. */
#define MUGI_GUARDED_BY(x) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/** Pointed-to data may only be touched with the capability held. */
#define MUGI_PT_GUARDED_BY(x) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/** Caller must already hold the capability (private _locked helpers). */
#define MUGI_REQUIRES(...) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (public locking entry points). */
#define MUGI_EXCLUDES(...) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define MUGI_ACQUIRE(...) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function releases a held capability. */
#define MUGI_RELEASE(...) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns @p result. */
#define MUGI_TRY_ACQUIRE(result, ...)            \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(            \
        try_acquire_capability(result, __VA_ARGS__))

/** Function returns a reference to the given capability. */
#define MUGI_RETURN_CAPABILITY(x) \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/** Opt a function out of the analysis (use sparingly, justify why). */
#define MUGI_NO_THREAD_SAFETY_ANALYSIS \
    MUGI_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MUGI_SUPPORT_THREAD_ANNOTATIONS_H_
