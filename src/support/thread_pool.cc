#include "support/thread_pool.h"

#include <cassert>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

namespace mugi {
namespace support {

std::vector<std::pair<std::size_t, std::size_t>>
split_ranges(std::size_t count, std::size_t parts)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t n = count < parts ? count : parts;
    ranges.reserve(n);
    std::size_t begin = 0;
    for (std::size_t p = 0; p < n; ++p) {
        const std::size_t end =
            begin + count / n + (p < count % n ? 1 : 0);
        ranges.emplace_back(begin, end);
        begin = end;
    }
    return ranges;
}

ThreadPool::ThreadPool(std::size_t threads)
{
    assert(threads >= 1 && "a pool needs at least one worker");
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::run(std::function<void()> task)
{
    {
        MutexLock lock(mu_);
        assert(!shutdown_ && "run() on a pool being destroyed");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::execute_timed(const std::function<void()>& task)
{
    const auto start = std::chrono::steady_clock::now();
    task();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count()),
        std::memory_order_relaxed);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadPool::worker_loop()
{
    // Manual lock/unlock instead of a scoped guard: the capability
    // analysis tracks the balanced acquire/release across the loop
    // (held at the loop head, released around the task body), and
    // cv_.wait(mu_) unlocks/relocks through the annotated Mutex's own
    // BasicLockable interface.
    mu_.lock();
    for (;;) {
        while (queue_.empty() && !shutdown_) {
            cv_.wait(mu_);
        }
        if (queue_.empty()) {
            break;  // shutdown_ and fully drained.
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        mu_.unlock();
        execute_timed(task);
        mu_.lock();
    }
    mu_.unlock();
}

void
ThreadPool::parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    if (count == 1) {
        // A single task gains nothing from a worker handoff, and the
        // bytes are the same whichever thread runs it.
        fn(0);
        return;
    }
    // Per-call join state: concurrent parallel_for calls over one
    // pool each wait on their own barrier.  shared_ptr keeps the
    // state alive until the last task's notify completed, even
    // though the caller normally outlives its tasks.
    struct State {
        std::atomic<std::size_t> remaining{0};
        Mutex mu;
        std::condition_variable_any cv;
        std::size_t first_error MUGI_GUARDED_BY(mu) =
            std::numeric_limits<std::size_t>::max();
        std::exception_ptr error MUGI_GUARDED_BY(mu);
    };
    auto state = std::make_shared<State>();
    state->remaining.store(count, std::memory_order_relaxed);
    // Enqueue every index under one lock (one submission round-trip
    // per barrier, not per task).  fn is captured by reference: the
    // caller blocks below until every task finished, so the referent
    // outlives all uses.
    {
        MutexLock lock(mu_);
        assert(!shutdown_ && "parallel_for() on a pool being destroyed");
        for (std::size_t i = 0; i < count; ++i) {
            queue_.push_back([state, &fn, i] {
                std::exception_ptr error;
                try {
                    fn(i);
                } catch (...) {
                    error = std::current_exception();
                }
                if (error) {
                    MutexLock elock(state->mu);
                    if (i < state->first_error) {
                        state->first_error = i;
                        state->error = error;
                    }
                }
                // acq_rel: the caller's acquire load of zero must see
                // every byte the tasks wrote.
                if (state->remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    // Empty critical section: a caller past its spin
                    // phase is either not yet waiting (it re-checks
                    // remaining under state->mu before sleeping) or
                    // already in wait (this lock serializes after it
                    // released state->mu) -- either way the notify is
                    // not lost.
                    { MutexLock block(state->mu); }
                    state->cv.notify_all();
                }
            });
        }
    }
    cv_.notify_all();
    // The caller is not a passive waiter: drain queued tasks until
    // this barrier's count hits zero.  That adds the calling thread
    // to the worker set and removes the final worker-to-caller
    // wakeup from the critical path.
    while (state->remaining.load(std::memory_order_acquire) != 0) {
        std::function<void()> task;
        {
            MutexLock lock(mu_);
            if (!queue_.empty()) {
                task = std::move(queue_.front());
                queue_.pop_front();
            }
        }
        if (task) {
            execute_timed(task);
            continue;
        }
        // Queue drained but stragglers still run on workers: spin
        // briefly (straggler tails are usually microseconds), then
        // sleep on the barrier's condvar.
        bool done = false;
        for (int spin = 0; spin < 4096; ++spin) {
            if (state->remaining.load(std::memory_order_acquire) ==
                0) {
                done = true;
                break;
            }
        }
        if (done) {
            break;
        }
        state->mu.lock();
        while (state->remaining.load(std::memory_order_acquire) !=
               0) {
            state->cv.wait(state->mu);
        }
        state->mu.unlock();
        break;
    }
    std::exception_ptr error;
    {
        MutexLock lock(state->mu);
        error = state->error;
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

}  // namespace support
}  // namespace mugi
