#ifndef MUGI_SUPPORT_THREAD_POOL_H_
#define MUGI_SUPPORT_THREAD_POOL_H_

/**
 * @file
 * Fixed-size worker pool with deterministic task ordering -- the
 * execution substrate of the parallel Engine::step hot path.
 *
 * Tasks enqueue FIFO and workers pop FIFO, so a one-worker pool
 * executes run() tasks in exactly the submission order (the property
 * the ordering unit tests pin).  parallel_for(count, fn) enqueues the
 * count index tasks in ascending order and blocks the caller until
 * all of them finished; if any task throws, the exception of the
 * *lowest-index* failing task is rethrown on the caller -- a
 * deterministic choice no matter how the workers interleaved.  The
 * caller is not a passive waiter: while its barrier is open it drains
 * queued tasks itself, so a parallel_for region runs on up to
 * num_threads() + 1 threads and the final handoff latency (worker
 * finishes, caller wakes) mostly disappears.  A count of one runs
 * inline on the caller -- no queue traffic at all.
 *
 * Determinism contract: the pool never decides *what* is computed,
 * only *when*.  Callers that need bit-identical results partition
 * their work into tasks that write disjoint outputs (e.g. disjoint
 * matrix row ranges) and join at a barrier (parallel_for's return);
 * then any interleaving produces the same bytes as the serial loop.
 *
 * Destruction drains: the destructor stops accepting new work, runs
 * every task still queued, then joins the workers -- so "shutdown
 * while queued" loses nothing (pinned by the unit tests).  Submitting
 * from a task while the destructor runs is not supported.
 *
 * Thread-safety: internally synchronized.  run() and parallel_for()
 * may be called from any number of threads concurrently (including
 * from inside tasks for run(); parallel_for from inside a task of the
 * same pool would deadlock a fully-busy pool and is disallowed).  The
 * queue is guarded by a capability-annotated support::Mutex; the
 * cumulative busy/task counters are relaxed atomics (monotonic
 * counters, no ordering needed).  The destructor must not race other
 * member calls (external serialization of lifetime, as usual).
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace mugi {
namespace support {

/**
 * At most @p parts contiguous [begin, end) ranges covering
 * [0, count), sized within one item of each other (never empty) --
 * the standard disjoint-output partition pooled stages join on.
 */
std::vector<std::pair<std::size_t, std::size_t>>
split_ranges(std::size_t count, std::size_t parts);

/** Fixed-size FIFO worker pool (see file comment for the contract). */
class ThreadPool {
  public:
    /** Spawn exactly @p threads workers (at least one). */
    explicit ThreadPool(std::size_t threads);

    /** Drain the remaining queue, then join every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const { return workers_.size(); }

    /** Enqueue one task (FIFO; runs on some worker, never inline). */
    void run(std::function<void()> task);

    /**
     * Run fn(0), fn(1), ..., fn(count - 1) and block until all
     * completed.  Tasks enqueue in ascending index order under one
     * lock; the caller then helps drain the queue until its barrier
     * closes (so parallelism is the workers plus the caller), and
     * count == 1 executes fn(0) inline without touching the queue or
     * the counters.  If any invocation threw, the lowest-index task's
     * exception is rethrown here after the join -- every task still
     * runs to completion first.
     */
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

    /**
     * Cumulative nanoseconds spent executing queued tasks since
     * construction, on workers and on parallel_for callers draining
     * their own barriers.  With wall-clock over a region, this yields
     * the region's busy fraction: (delta busy) / (threads * wall) --
     * approximate when concurrent callers share the pool, and worth
     * clamping since caller-executed tasks can push it past 1.
     */
    std::uint64_t
    busy_ns() const
    {
        return busy_ns_.load(std::memory_order_relaxed);
    }

    /** Cumulative queued tasks completed since construction. */
    std::uint64_t
    tasks_completed() const
    {
        return tasks_completed_.load(std::memory_order_relaxed);
    }

  private:
    void worker_loop();
    void execute_timed(const std::function<void()>& task);

    Mutex mu_;
    std::condition_variable_any cv_;
    std::deque<std::function<void()>> queue_ MUGI_GUARDED_BY(mu_);
    bool shutdown_ MUGI_GUARDED_BY(mu_) = false;

    std::atomic<std::uint64_t> busy_ns_{0};
    std::atomic<std::uint64_t> tasks_completed_{0};

    std::vector<std::thread> workers_;
};

}  // namespace support
}  // namespace mugi

#endif  // MUGI_SUPPORT_THREAD_POOL_H_
