#ifndef MUGI_SUPPORT_UNITS_H_
#define MUGI_SUPPORT_UNITS_H_

/**
 * @file
 * Unit-safe quantities for the serving stack's exact accounting.
 *
 * Admission, watermarks, preemption and prefix-cache charging all
 * compare byte budgets derived from token counts through block
 * geometry.  With every one of those quantities a bare std::size_t,
 * tokens and bytes mix silently -- PR 4's bugfix sweep caught exactly
 * one such bug (an admission watermark sized in the wrong precision).
 * This header makes unit confusion a *compile* error:
 *
 *  - Tokens     token counts (prompt lengths, chunk sizes, budgets);
 *  - Positions  KV-cache slots / context positions (tokens occupy
 *               positions one-to-one, but a position index is not a
 *               token budget -- conversions are named, see below);
 *  - Blocks     fixed-token KV block counts (pool granularity);
 *  - Bytes      device memory (what the KV budget is denominated in);
 *  - SessionId / BlockId  opaque identifiers that cannot be compared
 *               or mixed across kinds (or with quantities).
 *
 * Each type wraps one integer, constructs only explicitly, and
 * supports arithmetic/comparison against its own kind alone.  The
 * .value() escape hatch unwraps for leaf arithmetic and printing; the
 * repo-specific analyzer (tools/mugi_check.py, rule R3/R4) polices
 * that unwraps never re-mix units outside the named conversion
 * helpers below -- `bytes_for`, `blocks_for`, `tokens_for`,
 * `positions_for` are the ONLY places tokens become bytes or blocks,
 * so every unit crossing in the accounting path is a named, audited
 * function instead of an inline multiply.
 *
 * Multiplications that cross into Bytes are overflow-guarded: a
 * product that would wrap std::size_t aborts (in every build type)
 * instead of silently admitting a request against a tiny wrapped
 * budget.  Same-unit addition/subtraction keeps raw size_t semantics
 * (the accounting code relies on the `a > b ? a - b : 0` idiom).
 *
 * Zero-cost: every type is a trivially-copyable standard-layout
 * wrapper of exactly one integer (static_asserts below pin this), so
 * Release codegen is identical to the raw integers it replaced --
 * the deterministic examples/benches are byte-identical across the
 * refactor.
 *
 * Thread-safety: immutable value types -- no shared state, every
 * operation is a pure function of its operands; freely usable from
 * any thread.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace mugi {
namespace support {
namespace units {

/** Report a wrapped unit conversion and abort (never recoverable:
 *  a wrapped byte budget admits unbounded requests). */
[[noreturn]] inline void
overflow_failure(const char* what)
{
    std::fprintf(stderr, "mugi units overflow in %s\n", what);
    std::fflush(stderr);
    std::abort();
}

namespace detail {

/** size_t multiply that aborts on wraparound (constexpr-friendly:
 *  a compile-time overflow is a compile error). */
constexpr std::size_t
checked_mul(std::size_t a, std::size_t b, const char* what)
{
    if (b != 0 &&
        a > std::numeric_limits<std::size_t>::max() / b) {
        overflow_failure(what);
    }
    return a * b;
}

}  // namespace detail

/**
 * One strongly-typed integer quantity.  Distinct Tag types
 * instantiate unrelated classes, so Tokens + Bytes, Tokens < Blocks,
 * or passing Bytes where Tokens is expected all fail to compile
 * (tests/units/compile_fail/).
 */
template <typename Tag, typename RepT = std::size_t>
class Quantity {
  public:
    using Rep = RepT;

    constexpr Quantity() = default;
    constexpr explicit Quantity(Rep value) : value_(value) {}

    /** The raw count -- the audited escape hatch (mugi_check R3/R4
     *  police what expressions it may feed). */
    [[nodiscard]] constexpr Rep value() const { return value_; }

    // Same-unit arithmetic only.  Unsigned wrap semantics are kept
    // deliberately: the accounting code guards subtraction with
    // `a > b ? a - b : zero` exactly as the raw size_t code did.
    friend constexpr Quantity
    operator+(Quantity a, Quantity b)
    {
        return Quantity(a.value_ + b.value_);
    }
    friend constexpr Quantity
    operator-(Quantity a, Quantity b)
    {
        return Quantity(a.value_ - b.value_);
    }
    constexpr Quantity&
    operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity&
    operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }
    constexpr Quantity&
    operator++()
    {
        ++value_;
        return *this;
    }
    constexpr Quantity&
    operator--()
    {
        --value_;
        return *this;
    }

    /** Scale by a dimensionless count (e.g. bytes-per-block x
     *  layers); overflow-guarded. */
    friend constexpr Quantity
    operator*(Quantity q, Rep count)
    {
        return Quantity(
            detail::checked_mul(q.value_, count, "Quantity*count"));
    }
    friend constexpr Quantity
    operator*(Rep count, Quantity q)
    {
        return q * count;
    }
    friend constexpr Quantity
    operator/(Quantity q, Rep count)
    {
        return Quantity(q.value_ / count);
    }
    /** Ratio of two same-unit quantities is dimensionless. */
    friend constexpr Rep
    operator/(Quantity a, Quantity b)
    {
        return a.value_ / b.value_;
    }
    friend constexpr Quantity
    operator%(Quantity a, Quantity b)
    {
        return Quantity(a.value_ % b.value_);
    }

    friend constexpr bool
    operator==(Quantity a, Quantity b) = default;
    friend constexpr auto
    operator<=>(Quantity a, Quantity b) = default;

    /** Streams print the raw count, so `os << stats.prefill_tokens`
     *  is byte-identical to the pre-units output. */
    friend std::ostream&
    operator<<(std::ostream& os, Quantity q)
    {
        return os << q.value_;
    }

  private:
    Rep value_ = 0;
};

/** Token counts: prompt lengths, chunk sizes, generation budgets. */
using Tokens = Quantity<struct TokensTag>;
/** KV-cache slots / context positions. */
using Positions = Quantity<struct PositionsTag>;
/** Fixed-token KV block counts (quant::BlockPool granularity). */
using Blocks = Quantity<struct BlocksTag>;
/** Device memory (the unit KV budgets are denominated in). */
using Bytes = Quantity<struct BytesTag>;

/**
 * An opaque identifier: comparable for identity within its own kind
 * only -- no arithmetic, no cross-kind comparison (a SessionId is not
 * a BlockId, and neither is an index).  .value() unwraps for table
 * indexing and printing.
 */
template <typename Tag, typename RepT>
class OpaqueId {
  public:
    using Rep = RepT;

    constexpr OpaqueId() = default;
    constexpr explicit OpaqueId(Rep raw) : raw_(raw) {}

    [[nodiscard]] constexpr Rep value() const { return raw_; }

    friend constexpr bool
    operator==(OpaqueId a, OpaqueId b) = default;
    friend constexpr auto
    operator<=>(OpaqueId a, OpaqueId b) = default;

    friend std::ostream&
    operator<<(std::ostream& os, OpaqueId id)
    {
        return os << +id.raw_;
    }

  private:
    Rep raw_ = 0;
};

/** Identity of one serve::Session (engine-issued, process-unique). */
using SessionId = OpaqueId<struct SessionIdTag, std::uint64_t>;
/** Handle to one quant::BlockPool block (slot-table index). */
using BlockId = OpaqueId<struct BlockIdTag, std::uint32_t>;

// ---- Named unit conversions ----------------------------------------
//
// The ONLY sanctioned crossings between units.  Each one encodes a
// piece of block geometry (positions per block, bytes per position)
// so the conversion is named and auditable; tools/mugi_check.py rule
// R3 rejects ad-hoc `.value()` cross-multiplication elsewhere.

/** Blocks covering @p tokens at @p block_tokens per block (ceil). */
constexpr Blocks
blocks_for(Tokens tokens, Tokens block_tokens)
{
    return Blocks((tokens.value() + block_tokens.value() - 1) /
                  block_tokens.value());
}

/** Blocks *completely* covered by @p tokens (floor) -- the prefix-
 *  sharing rule: only whole blocks are shareable. */
constexpr Blocks
full_blocks_for(Tokens tokens, Tokens block_tokens)
{
    return Blocks(tokens.value() / block_tokens.value());
}

/** Token capacity of @p blocks whole blocks. */
constexpr Tokens
tokens_for(Blocks blocks, Tokens block_tokens)
{
    return Tokens(detail::checked_mul(
        static_cast<std::size_t>(blocks.value()),
        block_tokens.value(), "tokens_for(Blocks)"));
}

/** Bytes of @p tokens at @p per_token bytes each (overflow-guarded). */
constexpr Bytes
bytes_for(Tokens tokens, Bytes per_token)
{
    return Bytes(detail::checked_mul(tokens.value(), per_token.value(),
                                     "bytes_for(Tokens)"));
}

/** Bytes of @p blocks at @p per_block bytes each (overflow-guarded). */
constexpr Bytes
bytes_for(Blocks blocks, Bytes per_block)
{
    return Bytes(detail::checked_mul(
        static_cast<std::size_t>(blocks.value()), per_block.value(),
        "bytes_for(Blocks)"));
}

/** Tokens occupy KV positions one-to-one: a fed/generated token
 *  lands in exactly one cache slot. */
constexpr Positions
positions_for(Tokens tokens)
{
    return Positions(tokens.value());
}

/** The context positions a request covers, as a token budget. */
constexpr Tokens
tokens_for(Positions positions)
{
    return Tokens(positions.value());
}

// ---- Zero-overhead proofs ------------------------------------------
//
// The whole point of the refactor is type-level: the strong types
// must be free in Release.  Pin triviality, size and layout so a
// future member (a debug tag, a virtual) cannot silently change the
// ABI of every accounting structure.

static_assert(std::is_trivially_copyable_v<Tokens> &&
              std::is_trivially_destructible_v<Tokens> &&
              std::is_standard_layout_v<Tokens>);
static_assert(std::is_trivially_copyable_v<Positions> &&
              std::is_standard_layout_v<Positions>);
static_assert(std::is_trivially_copyable_v<Blocks> &&
              std::is_standard_layout_v<Blocks>);
static_assert(std::is_trivially_copyable_v<Bytes> &&
              std::is_standard_layout_v<Bytes>);
static_assert(std::is_trivially_copyable_v<SessionId> &&
              std::is_standard_layout_v<SessionId>);
static_assert(std::is_trivially_copyable_v<BlockId> &&
              std::is_standard_layout_v<BlockId>);

static_assert(sizeof(Tokens) == sizeof(std::size_t) &&
              alignof(Tokens) == alignof(std::size_t));
static_assert(sizeof(Positions) == sizeof(std::size_t));
static_assert(sizeof(Blocks) == sizeof(std::size_t));
static_assert(sizeof(Bytes) == sizeof(std::size_t));
static_assert(sizeof(SessionId) == sizeof(std::uint64_t));
static_assert(sizeof(BlockId) == sizeof(std::uint32_t));

}  // namespace units
}  // namespace support

/** Short spelling for the accounting layers: units::Tokens etc. */
namespace units = support::units;

}  // namespace mugi

// Opaque ids key hash tables (the pool's free lists, audit sets).
template <typename Tag, typename Rep>
struct std::hash<mugi::support::units::OpaqueId<Tag, Rep>> {
    std::size_t
    operator()(mugi::support::units::OpaqueId<Tag, Rep> id) const
    {
        return std::hash<Rep>{}(id.value());
    }
};

#endif  // MUGI_SUPPORT_UNITS_H_
