#include "vlp/nonlinear_lut.h"

#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"

namespace mugi {
namespace vlp {

bool
default_signed_input(nonlinear::NonlinearOp op)
{
    // Softmax feeds exp with max-subtracted (non-positive) inputs.
    return op != nonlinear::NonlinearOp::kExp;
}

NonlinearLut::NonlinearLut(const LutConfig& config) : config_(config)
{
    assert(config.mantissa_bits >= 0 && config.mantissa_bits <= 8);
    assert(config.max_exp >= config.min_exp);
    const int signs = config_.signed_input ? 2 : 1;
    const int mantissas = config_.num_mantissas();
    const int exponents = config_.num_exponents();
    data_.resize(static_cast<std::size_t>(signs) * mantissas * exponents);
    for (int s = 0; s < signs; ++s) {
        // For single-sign (exp/softmax) LUTs, the stored sign is
        // negative; sign index 0 maps to negative in that case.
        const bool negative = config_.signed_input ? (s == 1) : true;
        for (int m = 0; m < mantissas; ++m) {
            for (int e = 0; e < exponents; ++e) {
                const double magnitude = std::ldexp(
                    1.0 + static_cast<double>(m) / mantissas,
                    config_.min_exp + e);
                const double x = negative ? -magnitude : magnitude;
                const double y = nonlinear::eval_ref(config_.op, x);
                const std::size_t idx =
                    (static_cast<std::size_t>(s) * mantissas + m) *
                        exponents +
                    e;
                data_[idx] =
                    numerics::bf16_round(static_cast<float>(y));
            }
        }
    }
}

std::size_t
NonlinearLut::index(bool sign, std::uint32_t mantissa) const
{
    assert(mantissa < static_cast<std::uint32_t>(config_.num_mantissas()));
    std::size_t s = 0;
    if (config_.signed_input) {
        s = sign ? 1 : 0;
    } else {
        assert(sign && "single-sign LUT stores the negative half only");
    }
    return (s * config_.num_mantissas() + mantissa) *
           config_.num_exponents();
}

float
NonlinearLut::entry(bool sign, std::uint32_t mantissa, int exponent) const
{
    assert(exponent >= config_.min_exp && exponent <= config_.max_exp);
    return data_[index(sign, mantissa) + (exponent - config_.min_exp)];
}

std::span<const float>
NonlinearLut::row(bool sign, std::uint32_t mantissa) const
{
    return {data_.data() + index(sign, mantissa),
            static_cast<std::size_t>(config_.num_exponents())};
}

}  // namespace vlp
}  // namespace mugi
