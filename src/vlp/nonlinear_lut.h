#ifndef MUGI_VLP_NONLINEAR_LUT_H_
#define MUGI_VLP_NONLINEAR_LUT_H_

/**
 * @file
 * The precomputed nonlinear LUT held in Mugi's iSRAM (Sec. 3.1,
 * Fig. 3(d-g)).  The LUT is organized so one *row* holds all results
 * sharing a sign+mantissa, with one entry per exponent; the value-reuse
 * phase streams rows in mantissa-ascending order and the exponent
 * subscription picks the element.
 *
 * Entries store f((-1)^s * (1 + m / 2^mb) * 2^e) rounded to BF16 --
 * i.e. VLP performs *input approximation*: the output is the exact
 * function evaluated at the rounded input grid point (Sec. 3.2).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "nonlinear/reference.h"

namespace mugi {
namespace vlp {

/** Static configuration of the LUT window (Sec. 3.3, Fig. 5/6). */
struct LutConfig {
    nonlinear::NonlinearOp op = nonlinear::NonlinearOp::kExp;
    int mantissa_bits = 3;  ///< Rounded input mantissa width.
    /**
     * Full LUT exponent window [min_exp, max_exp], the "LUT window" of
     * Fig. 5.  Fig. 6 sweeps its size ("LUT size") and its anchor
     * ("Min/Max Exp").
     */
    int min_exp = -3;
    int max_exp = 4;
    /**
     * Whether the LUT stores both signs.  Softmax inputs are
     * max-subtracted and hence non-positive, so exp needs only the
     * negative half; SiLU/GELU need both ("The LUT size will double if
     * the nonlinear operation has both positive and negative inputs",
     * Sec. 4.1).
     */
    bool signed_input = true;

    /** Number of exponents stored per row. */
    int num_exponents() const { return max_exp - min_exp + 1; }
    /** Number of mantissa rows per sign. */
    int num_mantissas() const { return 1 << mantissa_bits; }
};

/** Default sign coverage for @p op (see LutConfig::signed_input). */
bool default_signed_input(nonlinear::NonlinearOp op);

/** The iSRAM-resident LUT. */
class NonlinearLut {
  public:
    explicit NonlinearLut(const LutConfig& config);

    const LutConfig& config() const { return config_; }

    /**
     * The stored result for grid point
     * (-1)^sign * (1 + mantissa / 2^mb) * 2^exponent.
     * @p exponent must lie inside [min_exp, max_exp].
     */
    float entry(bool sign, std::uint32_t mantissa, int exponent) const;

    /**
     * One LUT row: all exponent entries sharing (sign, mantissa),
     * ordered min_exp..max_exp.  This is the vector broadcast across
     * the array during the value-reuse phase.
     */
    std::span<const float> row(bool sign, std::uint32_t mantissa) const;

    /** Total number of stored entries. */
    std::size_t size() const { return data_.size(); }

    /** Storage footprint in bytes (BF16 entries). */
    std::size_t byte_size() const { return data_.size() * 2; }

  private:
    std::size_t index(bool sign, std::uint32_t mantissa) const;

    LutConfig config_;
    std::vector<float> data_;  ///< BF16-rounded values, widened.
};

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_NONLINEAR_LUT_H_
