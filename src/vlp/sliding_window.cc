#include "vlp/sliding_window.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "numerics/float_bits.h"

namespace mugi {
namespace vlp {

const char*
window_policy_name(WindowPolicy policy)
{
    switch (policy) {
      case WindowPolicy::kMaxAnchored:
        return "max-anchored";
      case WindowPolicy::kMinAnchored:
        return "min-anchored";
      case WindowPolicy::kCoverage:
        return "coverage";
      case WindowPolicy::kFixedTop:
        return "fixed-top";
    }
    return "?";
}

WindowChoice
choose_window(std::span<const float> inputs, const LutConfig& lut,
              int window_size, WindowPolicy policy)
{
    assert(window_size >= 1);
    const int full_lo = lut.min_exp;
    const int full_hi = lut.max_exp;
    if (full_hi - full_lo + 1 <= window_size) {
        return {full_lo, full_hi};
    }

    // Histogram of input exponents clamped into the LUT range.
    const int range = full_hi - full_lo + 1;
    std::vector<std::size_t> histogram(range, 0);
    int seen_min = full_hi + 1;
    int seen_max = full_lo - 1;
    for (const float x : inputs) {
        const numerics::FloatFields f = numerics::decompose(x);
        if (f.is_zero || f.is_inf || f.is_nan) {
            continue;  // Specials bypass the LUT via the PP block.
        }
        const int e = std::clamp(f.exponent, full_lo, full_hi);
        ++histogram[e - full_lo];
        seen_min = std::min(seen_min, e);
        seen_max = std::max(seen_max, e);
    }

    const auto clamp_window = [&](int lo) {
        lo = std::clamp(lo, full_lo, full_hi - window_size + 1);
        return WindowChoice{lo, lo + window_size - 1};
    };

    switch (policy) {
      case WindowPolicy::kFixedTop:
        return clamp_window(full_hi - window_size + 1);
      case WindowPolicy::kMaxAnchored:
        if (seen_max < full_lo) {
            return clamp_window(full_hi - window_size + 1);
        }
        return clamp_window(seen_max - window_size + 1);
      case WindowPolicy::kMinAnchored:
        if (seen_min > full_hi) {
            return clamp_window(full_lo);
        }
        return clamp_window(seen_min);
      case WindowPolicy::kCoverage: {
        // Slide and pick the position covering the most inputs; ties
        // prefer the higher window (large-magnitude coverage degrades
        // more gracefully through the underflow-to-f(0) rule than
        // through overflow clamping).
        std::size_t best_count = 0;
        int best_lo = full_hi - window_size + 1;
        for (int lo = full_lo; lo + window_size - 1 <= full_hi; ++lo) {
            std::size_t count = 0;
            for (int e = lo; e <= lo + window_size - 1; ++e) {
                count += histogram[e - full_lo];
            }
            if (count >= best_count) {
                best_count = count;
                best_lo = lo;
            }
        }
        return clamp_window(best_lo);
      }
    }
    return clamp_window(full_lo);
}

}  // namespace vlp
}  // namespace mugi
