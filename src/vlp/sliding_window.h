#ifndef MUGI_VLP_SLIDING_WINDOW_H_
#define MUGI_VLP_SLIDING_WINDOW_H_

/**
 * @file
 * Sliding-window selection for value-centric approximation (Sec. 3.3,
 * Fig. 5).  A single mapping can only expose window_size exponents
 * (matching the array width), chosen from the full LUT window.  The SW
 * block slides the window per mapping "aiming to minimize the accuracy
 * loss".
 */

#include <span>

#include "vlp/nonlinear_lut.h"

namespace mugi {
namespace vlp {

/** A contiguous exponent window [lo, hi] inside the full LUT range. */
struct WindowChoice {
    int lo = 0;
    int hi = 0;

    int size() const { return hi - lo + 1; }
    bool contains(int e) const { return e >= lo && e <= hi; }

    friend bool
    operator==(const WindowChoice& a, const WindowChoice& b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }
};

/** How the E-proc anchors the sliding window for a mapping. */
enum class WindowPolicy {
    /**
     * Anchor the window top at the largest exponent present in the
     * mapping ("determine the maximum ... exponent", Sec. 4 step 1).
     */
    kMaxAnchored,
    /** Anchor the window bottom at the smallest exponent present. */
    kMinAnchored,
    /**
     * Slide to the position covering the most inputs -- the
     * value-centric choice that minimizes the number of clamped
     * values (default).
     */
    kCoverage,
    /** Keep the window pinned at the top of the full LUT range. */
    kFixedTop,
};

const char* window_policy_name(WindowPolicy policy);

/**
 * Choose the sliding window for one mapping.
 *
 * @param inputs The values mapped onto the array in this mapping.
 * @param lut Full-LUT configuration providing [min_exp, max_exp].
 * @param window_size Array width (8 in the paper).
 * @param policy Anchoring policy.
 * @return The selected window, always fully inside the LUT range.
 *         If the LUT range is no wider than the window, the window is
 *         the whole range regardless of policy.
 */
WindowChoice choose_window(std::span<const float> inputs,
                           const LutConfig& lut, int window_size,
                           WindowPolicy policy);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_SLIDING_WINDOW_H_
