#include "vlp/temporal.h"

#include <cassert>

namespace mugi {
namespace vlp {

SweepResult
temporal_multiply(std::uint32_t i, double w, int bits)
{
    assert(bits > 0 && bits <= 16);
    assert(i < (1u << bits));
    SweepResult result;
    result.products.assign(1, 0.0);
    const TemporalConverter tc(i);
    double acc = 0.0;
    const std::uint32_t sweep = 1u << bits;
    for (std::uint32_t c = 0; c < sweep; ++c) {
        if (tc.spikes_at(c)) {
            // Temporal subscription: latch the accumulator, which at
            // cycle c holds c * w.
            result.products[0] = acc;
        }
        acc += w;
    }
    result.cycles = sweep;
    return result;
}

SweepResult
temporal_scalar_vector(std::span<const std::uint32_t> values, double w,
                       int bits)
{
    assert(bits > 0 && bits <= 16);
    SweepResult result;
    result.products.assign(values.size(), 0.0);
    std::vector<TemporalConverter> tcs;
    tcs.reserve(values.size());
    for (const std::uint32_t v : values) {
        assert(v < (1u << bits));
        tcs.emplace_back(v);
    }
    double acc = 0.0;  // One accumulation, shared: value reuse.
    const std::uint32_t sweep = 1u << bits;
    for (std::uint32_t c = 0; c < sweep; ++c) {
        for (std::size_t k = 0; k < tcs.size(); ++k) {
            if (tcs[k].spikes_at(c)) {
                result.products[k] = acc;
            }
        }
        acc += w;
    }
    result.cycles = sweep;
    return result;
}

SweepResult
temporal_outer_product(std::span<const std::uint32_t> row_values,
                       std::span<const double> col_weights, int bits)
{
    assert(bits > 0 && bits <= 16);
    const std::size_t rows = row_values.size();
    const std::size_t cols = col_weights.size();
    SweepResult result;
    result.products.assign(rows * cols, 0.0);

    std::vector<TemporalConverter> tcs;
    tcs.reserve(rows);
    for (const std::uint32_t v : row_values) {
        assert(v < (1u << bits));
        tcs.emplace_back(v);
    }

    const std::uint32_t sweep = 1u << bits;
    // Column c starts its sweep at global cycle c (staggered by the
    // iFIFO); its local counter at global cycle t is t - c.
    std::vector<double> acc(cols, 0.0);
    const std::uint64_t total =
        static_cast<std::uint64_t>(sweep) + cols - 1;
    for (std::uint64_t t = 0; t < total; ++t) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (t < c) continue;  // Column not started yet.
            const std::uint64_t local = t - c;
            if (local >= sweep) continue;  // Column finished.
            for (std::size_t r = 0; r < rows; ++r) {
                if (tcs[r].spikes_at(static_cast<std::uint32_t>(local))) {
                    result.products[r * cols + c] = acc[c];
                }
            }
            acc[c] += col_weights[c];
        }
    }
    result.cycles = total;
    return result;
}

}  // namespace vlp
}  // namespace mugi
