#ifndef MUGI_VLP_TEMPORAL_H_
#define MUGI_VLP_TEMPORAL_H_

/**
 * @file
 * Temporal-coding primitives of value-level parallelism (Sec. 2.1,
 * Fig. 2): the temporal converter (TC), temporal subscription, and
 * value reuse.  These cycle-accurate helpers are the ground truth the
 * array models and the analytic performance model are validated
 * against.
 */

#include <cstdint>
#include <span>
#include <vector>

namespace mugi {
namespace vlp {

/**
 * Temporal converter: equivalence logic that asserts a spike on the
 * cycle where the counting-up sequence equals the held value
 * (Fig. 2(a)).
 */
class TemporalConverter {
  public:
    explicit TemporalConverter(std::uint32_t value) : value_(value) {}

    /** True exactly when @p counter equals the held value. */
    bool spikes_at(std::uint32_t counter) const { return counter == value_; }

    std::uint32_t value() const { return value_; }

  private:
    std::uint32_t value_;
};

/**
 * Result of a cycle-accurate temporal sweep.
 */
struct SweepResult {
    std::vector<double> products;  ///< One product per subscriber.
    std::uint64_t cycles = 0;      ///< Cycles consumed by the sweep.
};

/**
 * Scalar x scalar multiply via temporal accumulation (Fig. 2(b-d)):
 * accumulate @p w once per cycle; the subscriber latches the running
 * sum on the spike cycle of @p i.  The sweep always runs the full
 * 2^bits cycles (the counter is free-running hardware).
 *
 * @param i Temporal-coded operand, must be < 2^bits.
 * @param w Value-reused operand (any numeric value).
 * @param bits Width of the temporal code.
 */
SweepResult temporal_multiply(std::uint32_t i, double w, int bits);

/**
 * Scalar x vector multiply with value reuse (Fig. 2(e)): a single
 * accumulation of @p w is shared by every element of @p values, each
 * subscribing to its own product in parallel.
 */
SweepResult temporal_scalar_vector(std::span<const std::uint32_t> values,
                                   double w, int bits);

/**
 * Vector x vector outer product organized as a 2D array
 * (Fig. 2(f)): @p row_values are the temporal-coded operands (one per
 * array row), @p col_weights the value-reused operands (one per array
 * column).  products[r * cols + c] = row_values[r] * col_weights[c].
 * Columns are staggered by one cycle (iFIFO pipelining), so the sweep
 * finishes after 2^bits + cols - 1 cycles.
 */
SweepResult temporal_outer_product(
    std::span<const std::uint32_t> row_values,
    std::span<const double> col_weights, int bits);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_TEMPORAL_H_
