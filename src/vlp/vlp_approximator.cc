#include "vlp/vlp_approximator.h"

#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"
#include "numerics/rounding.h"

namespace mugi {
namespace vlp {

using nonlinear::NonlinearOp;

LutConfig
VlpConfig::lut_config() const
{
    LutConfig lut;
    lut.op = op;
    lut.mantissa_bits = mantissa_bits;
    lut.min_exp = lut_min_exp;
    lut.max_exp = lut_max_exp;
    lut.signed_input = default_signed_input(op);
    return lut;
}

VlpApproximator::VlpApproximator(const VlpConfig& config)
    : config_(config), lut_(config.lut_config())
{
    assert(config.window_size >= 1);
    assert(config.lut_max_exp >= config.lut_min_exp);
    assert(config.mapping_rows >= 1);
}

float
VlpApproximator::apply_with_window(float x, const WindowChoice& window) const
{
    // --- PP block special values (Fig. 9 step 4). ---
    if (std::isnan(x)) {
        return x;
    }
    if (std::isinf(x)) {
        switch (config_.op) {
          case NonlinearOp::kExp:
            return x > 0 ? x : 0.0f;
          case NonlinearOp::kSilu:
          case NonlinearOp::kGelu:
            return x > 0 ? x : 0.0f;
        }
    }

    // --- Phase 1: input field split with mantissa rounding. ---
    const float bf16_in = numerics::bf16_round(x);
    const numerics::RoundedValue r =
        numerics::round_mantissa(bf16_in, config_.mantissa_bits);
    const auto f_of_zero = [&]() {
        // E-proc underflow: the value is treated as zero; exp(0)=1,
        // SiLU(0)=GELU(0)=0.  Exact via the PP Zero path.
        return config_.op == NonlinearOp::kExp ? 1.0f : 0.0f;
    };
    if (r.is_zero) {
        return f_of_zero();
    }
    if (config_.op == NonlinearOp::kExp && !r.sign) {
        // Softmax inputs are max-subtracted; a (non-zero) positive
        // input can only be numerical noise.  The single-sign LUT has
        // no positive half, so the E-proc clamps it to zero.
        return f_of_zero();
    }

    // --- E-proc window clamp. ---
    int e = r.exponent;
    if (e < window.lo) {
        return f_of_zero();
    }
    if (e > window.hi) {
        if (config_.op == NonlinearOp::kExp) {
            // Softmax overflow: "overflow values are set to the
            // maximum value of the LUT" (Sec. 4) -- the single entry
            // with the largest stored magnitude, i.e. the deepest exp
            // value in the window.
            return apply_overflow_entry(window);
        } else {
            // SiLU/GELU pass large-magnitude values through: the
            // positive asymptote is the identity, the negative one is
            // zero.
            return r.sign ? 0.0f : bf16_in;
        }
    }

    // --- Phases 2-4: LUT row subscription + exponent subscription. ---
    if (!config_.round_output) {
        // Ablation path: exact function at the grid point, skipping
        // the BF16 rounding of the LUT entries.
        const double magnitude = std::ldexp(
            1.0 + static_cast<double>(r.mantissa) /
                      (1 << config_.mantissa_bits),
            e);
        return static_cast<float>(nonlinear::eval_ref(
            config_.op, r.sign ? -magnitude : magnitude));
    }
    return lut_.entry(r.sign, r.mantissa, e);
}

float
VlpApproximator::apply_overflow_entry(const WindowChoice& window) const
{
    const std::uint32_t max_mantissa =
        (1u << config_.mantissa_bits) - 1u;
    if (!config_.round_output) {
        const double magnitude = std::ldexp(
            1.0 + static_cast<double>(max_mantissa) /
                      (1 << config_.mantissa_bits),
            window.hi);
        return static_cast<float>(
            nonlinear::eval_ref(config_.op, -magnitude));
    }
    return lut_.entry(true, max_mantissa, window.hi);
}

float
VlpApproximator::apply(float x) const
{
    const WindowChoice window = choose_window(
        std::span<const float>(&x, 1), lut_.config(),
        config_.window_size, config_.policy);
    return apply_with_window(x, window);
}

void
VlpApproximator::apply_batch(std::span<const float> in,
                             std::span<float> out) const
{
    assert(in.size() == out.size());
    const std::size_t group = config_.mapping_rows;
    for (std::size_t start = 0; start < in.size(); start += group) {
        const std::size_t n = std::min(group, in.size() - start);
        const std::span<const float> chunk = in.subspan(start, n);
        const WindowChoice window =
            choose_window(chunk, lut_.config(), config_.window_size,
                          config_.policy);
        for (std::size_t i = 0; i < n; ++i) {
            out[start + i] = apply_with_window(chunk[i], window);
        }
    }
}

std::unique_ptr<VlpApproximator>
make_vlp(nonlinear::NonlinearOp op, int lut_size, int max_exp)
{
    VlpConfig config;
    config.op = op;
    config.lut_max_exp = max_exp;
    config.lut_min_exp = max_exp - lut_size + 1;
    return std::make_unique<VlpApproximator>(config);
}

}  // namespace vlp
}  // namespace mugi
