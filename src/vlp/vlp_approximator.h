#ifndef MUGI_VLP_VLP_APPROXIMATOR_H_
#define MUGI_VLP_VLP_APPROXIMATOR_H_

/**
 * @file
 * The paper's primary contribution: VLP nonlinear approximation
 * (Sec. 3).  Functionally, VLP performs *input approximation* in a
 * *value-centric* manner:
 *
 *  1. input field split: the BF16 input is split into S / M / E and
 *     the mantissa is rounded to 3 bits (Sec. 3.2);
 *  2. value reuse: LUT rows (all exponents of one sign+mantissa) are
 *     streamed across the array;
 *  3. mantissa temporal subscription latches the matching row;
 *  4. exponent temporal subscription selects the element inside the
 *     per-mapping sliding window (Sec. 3.3).
 *
 * The output equals the exact function evaluated at the rounded,
 * windowed grid point -- "a precise output for an approximate input".
 * Inputs whose exponent falls below the window are treated as zero
 * (E-proc underflow); overflow behaviour is operation-specific
 * (Sec. 4: softmax clamps into the LUT, SiLU/GELU pass the value
 * through).
 */

#include <memory>
#include <span>
#include <string>

#include "nonlinear/approximator.h"
#include "vlp/nonlinear_lut.h"
#include "vlp/sliding_window.h"

namespace mugi {
namespace vlp {

/** Full configuration of a VLP nonlinear approximator. */
struct VlpConfig {
    nonlinear::NonlinearOp op = nonlinear::NonlinearOp::kExp;
    int mantissa_bits = 3;  ///< Rounded mantissa width (array width 2^mb).
    int window_size = 8;    ///< Sliding-window size = array width.
    int lut_min_exp = -3;   ///< Full LUT window bottom.
    int lut_max_exp = 4;    ///< Full LUT window top.
    WindowPolicy policy = WindowPolicy::kCoverage;
    /**
     * Inputs per mapping; the sliding window is re-chosen for each
     * group of this many inputs (one array load, Sec. 3.3).
     */
    std::size_t mapping_rows = 128;
    /** Round outputs to BF16 (the LUT stores BF16 entries). */
    bool round_output = true;

    /** LutConfig equivalent of this configuration. */
    LutConfig lut_config() const;
};

/**
 * The VLP (Mugi) nonlinear approximator.
 *
 * Thread-safety guarantee: a constructed VlpApproximator is deeply
 * immutable.  Its only state is the configuration and the
 * precomputed LUT, both fixed at construction; apply(),
 * apply_batch() and apply_with_window() are pure functions of that
 * state (the per-mapping sliding window is chosen on the stack via
 * choose_window, which is a stateless free function, and the LUT is
 * only ever read).  One instance may therefore be shared by any
 * number of concurrent sessions/threads without synchronization --
 * this is what lets serve::KernelRegistry hand a single kernel to
 * every request on a node.  Any future change that adds caching or
 * other mutable members must preserve this guarantee (or the
 * registry must stop sharing instances).
 */
class VlpApproximator final : public nonlinear::NonlinearApproximator {
  public:
    explicit VlpApproximator(const VlpConfig& config);

    nonlinear::NonlinearOp op() const override { return config_.op; }
    std::string name() const override { return "vlp"; }

    /**
     * Single-element application.  The window is chosen for this one
     * value (degenerate mapping), so elementwise use behaves like a
     * best-case sliding window.
     */
    float apply(float x) const override;

    /**
     * Batch application with per-mapping sliding windows: inputs are
     * processed in groups of mapping_rows, each with its own window.
     */
    void apply_batch(std::span<const float> in,
                     std::span<float> out) const override;

    /** Apply with an explicitly chosen window (used by tests/tuning). */
    float apply_with_window(float x, const WindowChoice& window) const;

    /**
     * Amortized cycles per element on one array row: the mantissa
     * sweep is 2^mb cycles and mappings are fully pipelined
     * (Fig. 10: new inputs enter at cycle 8).
     */
    double
    cycles_per_element() const override
    {
        return static_cast<double>(1 << config_.mantissa_bits);
    }

    /**
     * Latency of a single (un-pipelined) mapping: mantissa sweep plus
     * exponent subscription (Sec. 3.1: "the full VLP approximation
     * requires the total duration of both").
     */
    std::uint64_t
    mapping_latency_cycles() const
    {
        return (1ull << config_.mantissa_bits) + config_.window_size;
    }

    const VlpConfig& config() const { return config_; }
    const NonlinearLut& lut() const { return lut_; }

  private:
    /** The single deepest LUT entry softmax overflow clamps to. */
    float apply_overflow_entry(const WindowChoice& window) const;

    VlpConfig config_;
    NonlinearLut lut_;
};

/**
 * Convenience: a VLP approximator with the paper's default geometry
 * (3-bit mantissa, window 8) and a full LUT window of
 * [max_exp - lut_size + 1, max_exp] as swept in Fig. 6.
 */
std::unique_ptr<VlpApproximator> make_vlp(nonlinear::NonlinearOp op,
                                          int lut_size, int max_exp);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_VLP_APPROXIMATOR_H_
