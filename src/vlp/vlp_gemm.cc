#include "vlp/vlp_gemm.h"

#include <cassert>
#include <cstdlib>

namespace mugi {
namespace vlp {
namespace {

constexpr int kMagnitudeBits = numerics::kInt4MagnitudeBits;
constexpr std::uint32_t kSweep = 1u << kMagnitudeBits;

std::uint64_t
tile_count(std::size_t total, int tile)
{
    return (total + static_cast<std::size_t>(tile) - 1) /
           static_cast<std::size_t>(tile);
}

/**
 * Shared sweep-accumulator executor: @p temporal is the
 * temporally-coded INT4 operand (rows subscribe), @p values the
 * value-reused float operand (columns accumulate).  Outputs are
 * bit-identical to the literal cycle-by-row scan; the counters are
 * the analytic tile formulas, which the literal scan provably
 * produces (one 2^mb-cycle sweep per (row tile, column tile, k)).
 */
VlpGemmResult
sweep_gemm(const Int4Matrix& temporal, const support::MatrixF& values,
           int array_rows, int array_cols)
{
    assert(temporal.cols() == values.rows());
    assert(array_rows >= 1 && array_cols >= 1);
    const std::size_t r_total = temporal.rows();
    const std::size_t k_total = temporal.cols();
    const std::size_t c_total = values.cols();

    VlpGemmResult result;
    result.out = support::MatrixF(r_total, c_total, 0.0f);

    const SubscriptionLists subs(temporal);
    vlp_gemm_subscribed_packed(subs, values, 0, k_total, result.out);

    const std::uint64_t tiles = tile_count(r_total, array_rows) *
                                tile_count(c_total, array_cols);
    result.sweeps = tiles * k_total;
    result.cycles = result.sweeps * kSweep;
    result.subscriptions =
        static_cast<std::uint64_t>(r_total) * k_total * c_total;
    return result;
}

}  // namespace

SubscriptionLists::SubscriptionLists(const Int4Matrix& weights)
    : rows_(weights.rows()), cols_(weights.cols()),
      tiles_((rows_ + kTileRows - 1) / kTileRows)
{
    entries_.resize(rows_ * cols_);
    offsets_.assign(cols_ * (static_cast<std::size_t>(kBuckets) + 1),
                    0);
    std::size_t counts[kBuckets];
    for (std::size_t k = 0; k < cols_; ++k) {
        for (std::uint32_t m = 0; m < kBuckets; ++m) {
            counts[m] = 0;
        }
        for (std::size_t r = 0; r < rows_; ++r) {
            ++counts[weights.at(r, k).magnitude];
        }
        const std::size_t base =
            k * (static_cast<std::size_t>(kBuckets) + 1);
        offsets_[base] = k * rows_;
        for (std::uint32_t m = 0; m < kBuckets; ++m) {
            offsets_[base + m + 1] = offsets_[base + m] + counts[m];
            counts[m] = offsets_[base + m];
        }
        for (std::size_t r = 0; r < rows_; ++r) {
            const numerics::Int4 w = weights.at(r, k);
            entries_[counts[w.magnitude]++] =
                (static_cast<std::uint32_t>(r) << 4) | w.encode();
        }
    }

    // Packed form: re-bucket each column's non-zero entries by row
    // tile, keeping the cycle-major order within a tile (a stable
    // single pass over the column).  Entries become tile-local u16:
    // 12 bits of local row + the sign-magnitude nibble.
    packed_begin_.assign(cols_ * tiles_ + 1, 0);
    packed_.reserve(entries_.size());
    std::vector<std::vector<std::uint16_t>> per_tile(tiles_);
    for (std::size_t k = 0; k < cols_; ++k) {
        const std::size_t zero_rows = bucket(k, 0).size();
        const std::span<const std::uint32_t> col = column(k);
        for (std::size_t e = zero_rows; e < col.size(); ++e) {
            const std::uint32_t entry = col[e];
            const std::size_t row = entry >> 4;
            per_tile[row / kTileRows].push_back(
                static_cast<std::uint16_t>(((row % kTileRows) << 4) |
                                           (entry & 0xFu)));
        }
        for (std::size_t tile = 0; tile < tiles_; ++tile) {
            packed_.insert(packed_.end(), per_tile[tile].begin(),
                           per_tile[tile].end());
            packed_begin_[k * tiles_ + tile + 1] = packed_.size();
            per_tile[tile].clear();
        }
    }
}

void
vlp_gemm_subscribed(const SubscriptionLists& subs,
                    const support::MatrixF& values, std::size_t k_begin,
                    std::size_t k_end, support::MatrixF& out)
{
    assert(k_end <= subs.cols() && k_begin <= k_end);
    assert(k_end <= values.rows());
    assert(out.rows() == subs.rows() && out.cols() == values.cols());
    const std::size_t c_total = values.cols();
    if (c_total == 0 || subs.rows() == 0) {
        return;
    }

    // The 2^mb accumulator states of one sweep, for every column at
    // once: accs[m][c] = m * values[k][c], built by the same
    // incremental additions the per-column temporal accumulator
    // performs cycle by cycle.  Rows kSweep..2*kSweep-1 hold the
    // sign-applied states (-accs[m][c]; IEEE negation is exact), so
    // each subscription is one branchless table lookup + add.
    support::MatrixF accs(2 * kSweep, c_total, 0.0f);
    const float* state[2 * kSweep];
    for (std::uint32_t m = 0; m < kSweep; ++m) {
        state[m] = accs.row_data(m);
        state[kSweep + m] = accs.row_data(kSweep + m);
    }
    for (std::size_t k = k_begin; k < k_end; ++k) {
        const float* act = values.row_data(k);
        for (std::uint32_t m = 1; m < kSweep; ++m) {
            const float* prev = accs.row_data(m - 1);
            float* cur = accs.row_data(m);
            float* neg = accs.row_data(kSweep + m);
            for (std::size_t c = 0; c < c_total; ++c) {
                cur[c] = prev[c] + act[c];
                neg[c] = -cur[c];
            }
        }
        // Visit each row at its firing cycle, exactly once, in the
        // cycle-major order the sweep fires them.  Rows accumulate
        // disjoint output cells, so any visit order matches the
        // cycle-by-row scan bit for bit -- which also lets the
        // magnitude-0 bucket (the column head) be skipped outright:
        // its subscriptions add sign(0.0f), and no accumulated cell
        // can hold -0.0f (x + y == -0 requires x == y == -0, and
        // every cell starts at +0), so those adds never change bits.
        const std::span<const std::uint32_t> column = subs.column(k);
        const std::size_t zero_rows = subs.bucket(k, 0).size();
        for (std::size_t e = zero_rows; e < column.size(); ++e) {
            const std::uint32_t entry = column[e];
            const float* av = state[entry & 0xFu];
            float* orow = out.row_data(entry >> 4);
            for (std::size_t c = 0; c < c_total; ++c) {
                orow[c] += av[c];
            }
        }
    }
}

void
vlp_gemm_subscribed_packed(const SubscriptionLists& subs,
                           const support::MatrixF& values,
                           std::size_t k_begin, std::size_t k_end,
                           support::MatrixF& out)
{
    assert(k_end <= subs.cols() && k_begin <= k_end);
    assert(k_end <= values.rows());
    assert(out.rows() == subs.rows() && out.cols() == values.cols());
    const std::size_t c_total = values.cols();
    if (c_total == 0 || subs.rows() == 0) {
        return;
    }

    // Identical accumulator-state construction as the u32 executor;
    // only the subscription walk differs (tile-local u16 entries,
    // zero bucket already dropped at build time).  Rows accumulate
    // disjoint output cells, so the tile-major visit order matches
    // the cycle-major walk bit for bit.
    support::MatrixF accs(2 * kSweep, c_total, 0.0f);
    const float* state[2 * kSweep];
    for (std::uint32_t m = 0; m < kSweep; ++m) {
        state[m] = accs.row_data(m);
        state[kSweep + m] = accs.row_data(kSweep + m);
    }
    const std::size_t tiles = subs.tile_count();
    for (std::size_t k = k_begin; k < k_end; ++k) {
        const float* act = values.row_data(k);
        for (std::uint32_t m = 1; m < kSweep; ++m) {
            const float* prev = accs.row_data(m - 1);
            float* cur = accs.row_data(m);
            float* neg = accs.row_data(kSweep + m);
            for (std::size_t c = 0; c < c_total; ++c) {
                cur[c] = prev[c] + act[c];
                neg[c] = -cur[c];
            }
        }
        for (std::size_t tile = 0; tile < tiles; ++tile) {
            const std::size_t base_row =
                tile * SubscriptionLists::kTileRows;
            for (const std::uint16_t entry :
                 subs.packed_tile(k, tile)) {
                const float* av = state[entry & 0xFu];
                float* orow = out.row_data(base_row + (entry >> 4));
                for (std::size_t c = 0; c < c_total; ++c) {
                    orow[c] += av[c];
                }
            }
        }
    }
}

VlpGemmResult
vlp_gemm_mugi(const Int4Matrix& weights,
              const support::MatrixF& activations, int array_rows,
              int array_cols)
{
    return sweep_gemm(weights, activations, array_rows, array_cols);
}

VlpGemmResult
vlp_gemm_carat(const Int4Matrix& activations,
               const support::MatrixF& weights, int array_rows,
               int array_cols)
{
    return sweep_gemm(activations, weights, array_rows, array_cols);
}

VlpGemmResult
vlp_gemm_mugi_baseline(const Int4Matrix& weights,
                       const support::MatrixF& activations,
                       int array_rows, int array_cols)
{
    assert(weights.cols() == activations.rows());
    assert(array_rows >= 1 && array_cols >= 1);
    const std::size_t n_total = weights.rows();
    const std::size_t k_total = weights.cols();
    const std::size_t b_total = activations.cols();

    VlpGemmResult result;
    result.out = support::MatrixF(n_total, b_total, 0.0f);

    // Output-stationary tiling over the H x W array.
    for (std::size_t n0 = 0; n0 < n_total;
         n0 += static_cast<std::size_t>(array_rows)) {
        const std::size_t nh = std::min(
            static_cast<std::size_t>(array_rows), n_total - n0);
        for (std::size_t b0 = 0; b0 < b_total;
             b0 += static_cast<std::size_t>(array_cols)) {
            const std::size_t bw = std::min(
                static_cast<std::size_t>(array_cols), b_total - b0);
            // Each k-step is one temporal sweep: per-column
            // accumulators build multiples of the BF16 activation and
            // every weight row subscribes at its magnitude cycle.
            for (std::size_t k = 0; k < k_total; ++k) {
                for (std::size_t c = 0; c < bw; ++c) {
                    const float act = activations.at(k, b0 + c);
                    float acc = 0.0f;  // Value reuse: one accumulation.
                    for (std::uint32_t cycle = 0; cycle < kSweep;
                         ++cycle) {
                        for (std::size_t r = 0; r < nh; ++r) {
                            const numerics::Int4 w =
                                weights.at(n0 + r, k);
                            if (w.magnitude == cycle) {
                                // Temporal subscription; the SC block
                                // applies the sign.
                                const float product =
                                    w.sign ? -acc : acc;
                                result.out.at(n0 + r, b0 + c) += product;
                                ++result.subscriptions;
                            }
                        }
                        acc += act;
                    }
                }
                // All columns of a k-step share the 2^mb-cycle sweep
                // (columns are staggered but fully pipelined).
                result.cycles += kSweep;
                ++result.sweeps;
            }
        }
    }
    return result;
}

VlpGemmResult
vlp_gemm_carat_baseline(const Int4Matrix& activations,
                        const support::MatrixF& weights, int array_rows,
                        int array_cols)
{
    assert(activations.cols() == weights.rows());
    const std::size_t m_total = activations.rows();
    const std::size_t k_total = activations.cols();
    const std::size_t n_total = weights.cols();

    VlpGemmResult result;
    result.out = support::MatrixF(m_total, n_total, 0.0f);

    for (std::size_t m0 = 0; m0 < m_total;
         m0 += static_cast<std::size_t>(array_rows)) {
        const std::size_t mh = std::min(
            static_cast<std::size_t>(array_rows), m_total - m0);
        for (std::size_t n0 = 0; n0 < n_total;
             n0 += static_cast<std::size_t>(array_cols)) {
            const std::size_t nw = std::min(
                static_cast<std::size_t>(array_cols), n_total - n0);
            for (std::size_t k = 0; k < k_total; ++k) {
                for (std::size_t c = 0; c < nw; ++c) {
                    const float w = weights.at(k, n0 + c);
                    float acc = 0.0f;
                    for (std::uint32_t cycle = 0; cycle < kSweep;
                         ++cycle) {
                        for (std::size_t r = 0; r < mh; ++r) {
                            const numerics::Int4 act =
                                activations.at(m0 + r, k);
                            if (act.magnitude == cycle) {
                                result.out.at(m0 + r, n0 + c) +=
                                    act.sign ? -acc : acc;
                                ++result.subscriptions;
                            }
                        }
                        acc += w;
                    }
                }
                result.cycles += kSweep;
                ++result.sweeps;
            }
        }
    }
    return result;
}

std::uint64_t
vlp_gemm_mugi_cycles(std::size_t n, std::size_t b, std::size_t k,
                     int array_rows, int array_cols, int magnitude_bits)
{
    const std::uint64_t n_tiles =
        (n + array_rows - 1) / static_cast<std::size_t>(array_rows);
    const std::uint64_t b_tiles =
        (b + array_cols - 1) / static_cast<std::size_t>(array_cols);
    return n_tiles * b_tiles * k * (1ull << magnitude_bits);
}

support::MatrixF
int4_gemm_reference(const Int4Matrix& weights,
                    const support::MatrixF& activations)
{
    assert(weights.cols() == activations.rows());
    support::MatrixF out(weights.rows(), activations.cols(), 0.0f);
    for (std::size_t n = 0; n < weights.rows(); ++n) {
        for (std::size_t b = 0; b < activations.cols(); ++b) {
            // Match the temporal model's accumulation order (k
            // ascending, float accumulation) so results are
            // bit-identical.
            float acc = 0.0f;
            for (std::size_t k = 0; k < weights.cols(); ++k) {
                const int w = weights.at(n, k).value();
                float product = 0.0f;
                const float act = activations.at(k, b);
                // Magnitude * act as repeated addition, exactly as the
                // temporal accumulator computes it.
                for (int t = 0; t < std::abs(w); ++t) {
                    product += act;
                }
                acc += (w < 0) ? -product : product;
            }
            out.at(n, b) = acc;
        }
    }
    return out;
}

}  // namespace vlp
}  // namespace mugi
