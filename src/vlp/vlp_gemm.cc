#include "vlp/vlp_gemm.h"

#include <cassert>
#include <cstdlib>

namespace mugi {
namespace vlp {
namespace {

constexpr int kMagnitudeBits = numerics::kInt4MagnitudeBits;
constexpr std::uint32_t kSweep = 1u << kMagnitudeBits;

}  // namespace

VlpGemmResult
vlp_gemm_mugi(const Int4Matrix& weights,
              const support::MatrixF& activations, int array_rows,
              int array_cols)
{
    assert(weights.cols() == activations.rows());
    assert(array_rows >= 1 && array_cols >= 1);
    const std::size_t n_total = weights.rows();
    const std::size_t k_total = weights.cols();
    const std::size_t b_total = activations.cols();

    VlpGemmResult result;
    result.out = support::MatrixF(n_total, b_total, 0.0f);

    // Output-stationary tiling over the H x W array.
    for (std::size_t n0 = 0; n0 < n_total;
         n0 += static_cast<std::size_t>(array_rows)) {
        const std::size_t nh = std::min(
            static_cast<std::size_t>(array_rows), n_total - n0);
        for (std::size_t b0 = 0; b0 < b_total;
             b0 += static_cast<std::size_t>(array_cols)) {
            const std::size_t bw = std::min(
                static_cast<std::size_t>(array_cols), b_total - b0);
            // Each k-step is one temporal sweep: per-column
            // accumulators build multiples of the BF16 activation and
            // every weight row subscribes at its magnitude cycle.
            for (std::size_t k = 0; k < k_total; ++k) {
                for (std::size_t c = 0; c < bw; ++c) {
                    const float act = activations.at(k, b0 + c);
                    float acc = 0.0f;  // Value reuse: one accumulation.
                    for (std::uint32_t cycle = 0; cycle < kSweep;
                         ++cycle) {
                        for (std::size_t r = 0; r < nh; ++r) {
                            const numerics::Int4 w =
                                weights.at(n0 + r, k);
                            if (w.magnitude == cycle) {
                                // Temporal subscription; the SC block
                                // applies the sign.
                                const float product =
                                    w.sign ? -acc : acc;
                                result.out.at(n0 + r, b0 + c) += product;
                                ++result.subscriptions;
                            }
                        }
                        acc += act;
                    }
                }
                // All columns of a k-step share the 2^mb-cycle sweep
                // (columns are staggered but fully pipelined).
                result.cycles += kSweep;
                ++result.sweeps;
            }
        }
    }
    return result;
}

VlpGemmResult
vlp_gemm_carat(const Int4Matrix& activations,
               const support::MatrixF& weights, int array_rows,
               int array_cols)
{
    assert(activations.cols() == weights.rows());
    const std::size_t m_total = activations.rows();
    const std::size_t k_total = activations.cols();
    const std::size_t n_total = weights.cols();

    VlpGemmResult result;
    result.out = support::MatrixF(m_total, n_total, 0.0f);

    for (std::size_t m0 = 0; m0 < m_total;
         m0 += static_cast<std::size_t>(array_rows)) {
        const std::size_t mh = std::min(
            static_cast<std::size_t>(array_rows), m_total - m0);
        for (std::size_t n0 = 0; n0 < n_total;
             n0 += static_cast<std::size_t>(array_cols)) {
            const std::size_t nw = std::min(
                static_cast<std::size_t>(array_cols), n_total - n0);
            for (std::size_t k = 0; k < k_total; ++k) {
                for (std::size_t c = 0; c < nw; ++c) {
                    const float w = weights.at(k, n0 + c);
                    float acc = 0.0f;
                    for (std::uint32_t cycle = 0; cycle < kSweep;
                         ++cycle) {
                        for (std::size_t r = 0; r < mh; ++r) {
                            const numerics::Int4 act =
                                activations.at(m0 + r, k);
                            if (act.magnitude == cycle) {
                                result.out.at(m0 + r, n0 + c) +=
                                    act.sign ? -acc : acc;
                                ++result.subscriptions;
                            }
                        }
                        acc += w;
                    }
                }
                result.cycles += kSweep;
                ++result.sweeps;
            }
        }
    }
    return result;
}

std::uint64_t
vlp_gemm_mugi_cycles(std::size_t n, std::size_t b, std::size_t k,
                     int array_rows, int array_cols, int magnitude_bits)
{
    const std::uint64_t n_tiles =
        (n + array_rows - 1) / static_cast<std::size_t>(array_rows);
    const std::uint64_t b_tiles =
        (b + array_cols - 1) / static_cast<std::size_t>(array_cols);
    return n_tiles * b_tiles * k * (1ull << magnitude_bits);
}

support::MatrixF
int4_gemm_reference(const Int4Matrix& weights,
                    const support::MatrixF& activations)
{
    assert(weights.cols() == activations.rows());
    support::MatrixF out(weights.rows(), activations.cols(), 0.0f);
    for (std::size_t n = 0; n < weights.rows(); ++n) {
        for (std::size_t b = 0; b < activations.cols(); ++b) {
            // Match the temporal model's accumulation order (k
            // ascending, float accumulation) so results are
            // bit-identical.
            float acc = 0.0f;
            for (std::size_t k = 0; k < weights.cols(); ++k) {
                const int w = weights.at(n, k).value();
                float product = 0.0f;
                const float act = activations.at(k, b);
                // Magnitude * act as repeated addition, exactly as the
                // temporal accumulator computes it.
                for (int t = 0; t < std::abs(w); ++t) {
                    product += act;
                }
                acc += (w < 0) ? -product : product;
            }
            out.at(n, b) = acc;
        }
    }
    return out;
}

}  // namespace vlp
}  // namespace mugi
