#ifndef MUGI_VLP_VLP_GEMM_H_
#define MUGI_VLP_VLP_GEMM_H_

/**
 * @file
 * Multiplier-free VLP GEMM (Sec. 2.1, Sec. 4.2).
 *
 * Mugi's asymmetric mapping transposes Carat's: INT4 weights (or
 * quantized KV-cache entries) are temporally coded on the *rows* with
 * a slim sign-magnitude datapath, while BF16 activations (or Q tokens)
 * occupy the *columns* and are value-reused by the per-column
 * accumulators.  One outer-product (k-step) sweep takes 2^3 = 8 cycles
 * for the 3-bit magnitude, matching the 8-column array.
 *
 * Carat's original symmetric mapping (batched low-precision
 * activations on rows, weights on columns) is provided as the
 * baseline.
 *
 * Both are *cycle-accurate functional* models: they simulate the
 * temporal sweeps and return the exact cycle count, which the analytic
 * performance model (src/sim) is validated against.
 */

#include <cstdint>

#include "numerics/int4.h"
#include "support/matrix.h"

namespace mugi {
namespace vlp {

/** Matrix of sign-magnitude INT4 values. */
using Int4Matrix = support::Matrix<numerics::Int4>;

/** Result of a simulated VLP GEMM. */
struct VlpGemmResult {
    support::MatrixF out;          ///< Output-stationary result.
    std::uint64_t cycles = 0;      ///< Simulated cycle count.
    std::uint64_t sweeps = 0;      ///< Temporal sweeps executed.
    std::uint64_t subscriptions = 0;  ///< Temporal subscriptions fired.
};

/**
 * Mugi-mapped GEMM: out[n][b] = sum_k weights[n][k] * activations[k][b].
 *
 * @param weights INT4 weights (or KV entries), logical shape N x K.
 * @param activations BF16-valued activations, logical shape K x B
 *        (values should already be BF16-rounded; the model treats
 *        them as exact binary32).
 * @param array_rows Array height H (weights tile size along N).
 * @param array_cols Array width (8 in the paper; B tile size).
 */
VlpGemmResult vlp_gemm_mugi(const Int4Matrix& weights,
                            const support::MatrixF& activations,
                            int array_rows, int array_cols);

/**
 * Carat-mapped symmetric GEMM: out[m][n] = sum_k acts[m][k] * w[k][n],
 * with the batched INT4 activations temporally coded on rows and the
 * weights value-reused on columns.
 */
VlpGemmResult vlp_gemm_carat(const Int4Matrix& activations,
                             const support::MatrixF& weights,
                             int array_rows, int array_cols);

/**
 * Analytic cycle count of the Mugi mapping:
 *   ceil(N / H) * ceil(B / W) * K * 2^mag_bits
 * (steady-state pipelined; matches the simulated count).
 */
std::uint64_t vlp_gemm_mugi_cycles(std::size_t n, std::size_t b,
                                   std::size_t k, int array_rows,
                                   int array_cols,
                                   int magnitude_bits = 3);

/** Reference: direct GEMM of INT4 weights against float activations. */
support::MatrixF int4_gemm_reference(const Int4Matrix& weights,
                                     const support::MatrixF& activations);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_VLP_GEMM_H_
