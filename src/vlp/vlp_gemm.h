#ifndef MUGI_VLP_VLP_GEMM_H_
#define MUGI_VLP_VLP_GEMM_H_

/**
 * @file
 * Multiplier-free VLP GEMM (Sec. 2.1, Sec. 4.2).
 *
 * Mugi's asymmetric mapping transposes Carat's: INT4 weights (or
 * quantized KV-cache entries) are temporally coded on the *rows* with
 * a slim sign-magnitude datapath, while BF16 activations (or Q tokens)
 * occupy the *columns* and are value-reused by the per-column
 * accumulators.  One outer-product (k-step) sweep takes 2^3 = 8 cycles
 * for the 3-bit magnitude, matching the 8-column array.
 *
 * Carat's original symmetric mapping (batched low-precision
 * activations on rows, weights on columns) is provided as the
 * baseline.
 *
 * Both are *cycle-accurate functional* models: they simulate the
 * temporal sweeps and return the exact cycle count, which the analytic
 * performance model (src/sim) is validated against.
 *
 * Execution strategy: the shipped kernels use a *sweep-accumulator
 * table* instead of literally replaying every cycle.  Per (k, column)
 * the 2^mb accumulator states of a sweep are materialized once by
 * incremental addition (the identical float-op sequence the temporal
 * accumulator produces), and a precomputed per-k magnitude
 * subscription list (SubscriptionLists) visits each row exactly once
 * at its firing cycle -- O(nh + 2^mb) work per sweep instead of the
 * O(nh * 2^mb) cycle-by-row scan.  Outputs and all counters are
 * bit-identical to the literal simulation, which is retained as
 * vlp_gemm_mugi_baseline / vlp_gemm_carat_baseline and pinned by
 * tests (tests/vlp/vlp_gemm_test.cc).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "numerics/int4.h"
#include "support/matrix.h"

namespace mugi {
namespace vlp {

/** Matrix of sign-magnitude INT4 values. */
using Int4Matrix = support::Matrix<numerics::Int4>;

/** Simulated-work counters of one or more VLP GEMMs. */
struct GemmStats {
    std::uint64_t cycles = 0;         ///< Simulated cycle count.
    std::uint64_t sweeps = 0;         ///< Temporal sweeps executed.
    std::uint64_t subscriptions = 0;  ///< Temporal subscriptions fired.

    GemmStats&
    operator+=(const GemmStats& other)
    {
        cycles += other.cycles;
        sweeps += other.sweeps;
        subscriptions += other.subscriptions;
        return *this;
    }
};

/** Result of a simulated VLP GEMM. */
struct VlpGemmResult {
    support::MatrixF out;          ///< Output-stationary result.
    std::uint64_t cycles = 0;      ///< Simulated cycle count.
    std::uint64_t sweeps = 0;      ///< Temporal sweeps executed.
    std::uint64_t subscriptions = 0;  ///< Temporal subscriptions fired.

    GemmStats
    stats() const
    {
        return {cycles, sweeps, subscriptions};
    }
};

/**
 * Precomputed temporal-subscription schedule of an INT4 matrix.
 *
 * For every reduction column k, the matrix rows are bucketed by their
 * 3-bit magnitude -- the cycle of the sweep at which the row's
 * subscription fires -- in row order within a bucket.  Each row
 * appears exactly once per k, so a sweep executor visits
 * O(rows + 2^mb) entries instead of scanning every row on every
 * cycle, and reads the codes from a contiguous per-k layout instead
 * of striding through the row-major matrix once per cycle.
 *
 * The schedule is immutable and independent of the activations, so
 * serving-path holders (serve::PreparedWeights) build it once at load
 * time and reuse it for every GEMM against the same codes.
 *
 * Alongside the u32 entries, the schedule carries a *packed* form:
 * rows are split into tiles of kTileRows and each (k, tile) stores
 * tile-local u16 entries -- (local_row << 4) | nibble, local_row <
 * 2^12 -- with the magnitude-0 bucket omitted outright (its
 * subscriptions add a signed zero to cells that are never -0.0f, so
 * they cannot change bits; see vlp_gemm.cc).  Half-width entries and
 * the dropped zero bucket shrink the inner loop's working set, and
 * the fixed 16-bit stride is what a SIMD gather wants.  The packed
 * executor (vlp_gemm_subscribed_packed) is bit-identical to the u32
 * one, pinned across the ragged-shape matrix by
 * tests/vlp/vlp_gemm_test.cc.
 */
class SubscriptionLists {
  public:
    /**
     * Rows per packed tile: local row indices must fit the 12 bits a
     * u16 entry has left of its sign-magnitude nibble.
     */
    static constexpr std::size_t kTileRows = 1u << 12;

    SubscriptionLists() = default;

    /** Build the per-k magnitude buckets of @p weights. */
    explicit SubscriptionLists(const Int4Matrix& weights);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Row tiles the packed form splits [0, rows) into. */
    std::size_t tile_count() const { return tiles_; }

    /** Row index of a packed entry. */
    static std::uint32_t
    entry_row(std::uint32_t entry)
    {
        return entry >> 4;
    }

    /** Sign bit of a packed entry (true = negative weight). */
    static bool
    entry_sign(std::uint32_t entry)
    {
        return (entry & 0x8u) != 0;
    }

    /** Magnitude (firing cycle) of a packed entry. */
    static std::uint32_t
    entry_magnitude(std::uint32_t entry)
    {
        return entry & 0x7u;
    }

    /**
     * Rows subscribing at cycle @p magnitude of column @p k, each
     * packed as (row << 4) | sign-magnitude nibble (Int4::encode)
     * and ordered by row within the bucket.
     */
    std::span<const std::uint32_t>
    bucket(std::size_t k, std::uint32_t magnitude) const
    {
        const std::size_t base =
            k * (static_cast<std::size_t>(kBuckets) + 1) + magnitude;
        return {entries_.data() + offsets_[base],
                offsets_[base + 1] - offsets_[base]};
    }

    /** All of column @p k's entries, in firing-cycle-major order. */
    std::span<const std::uint32_t>
    column(std::size_t k) const
    {
        return {entries_.data() + k * rows_, rows_};
    }

    /**
     * Column @p k's packed entries whose rows fall in tile @p tile,
     * cycle-major, each (local_row << 4) | nibble with local_row
     * relative to tile * kTileRows.  Magnitude-0 rows are omitted.
     */
    std::span<const std::uint16_t>
    packed_tile(std::size_t k, std::size_t tile) const
    {
        const std::size_t base = k * tiles_ + tile;
        return {packed_.data() + packed_begin_[base],
                packed_begin_[base + 1] - packed_begin_[base]};
    }

  private:
    static constexpr std::uint32_t kBuckets =
        1u << numerics::kInt4MagnitudeBits;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t tiles_ = 0;
    /**
     * rows_ entries per k, bucketed by magnitude (cycle-major, the
     * order the temporal sweep fires them): (row << 4) | nibble.
     */
    std::vector<std::uint32_t> entries_;
    /** Per k: kBuckets + 1 bucket boundaries into entries_. */
    std::vector<std::size_t> offsets_;
    /** Tile-local u16 entries, (k, tile)-major, zero bucket dropped. */
    std::vector<std::uint16_t> packed_;
    /** cols_ * tiles_ + 1 boundaries into packed_. */
    std::vector<std::size_t> packed_begin_;
};

/**
 * Sweep-accumulator GEMM core over a precomputed schedule, restricted
 * to reduction columns [k_begin, k_end):
 *
 *   out[r][c] += sum_{k in [k_begin, k_end)}
 *                  sign(r, k) * accs_k_c[magnitude(r, k)]
 *
 * where accs_k_c[m] = m * values[k][c] built by repeated addition --
 * the exact accumulator states of the temporal sweep.  @p out must be
 * shaped subs.rows() x values.cols(); partial results accumulate into
 * it (callers zero it per quantization group to fold per-group
 * scales).  Pure compute: cycle/sweep counters are analytic
 * (vlp_gemm_mugi_cycles) and owned by the callers.
 */
void vlp_gemm_subscribed(const SubscriptionLists& subs,
                         const support::MatrixF& values,
                         std::size_t k_begin, std::size_t k_end,
                         support::MatrixF& out);

/**
 * Same contract as vlp_gemm_subscribed, executed over the tile-local
 * u16 packed schedule: per k the accumulator states build once, then
 * each row tile's half-width entries stream through the inner loop
 * (smaller working set, SIMD-friendly fixed stride, zero bucket
 * pre-dropped).  Rows accumulate disjoint output cells, so the
 * tile-major visit order is bit-identical to the cycle-major u32 walk
 * -- the shipped executor of sweep kernels and PreparedWeights; the
 * u32 form stays exported for the A/B benchmarks and tests.
 */
void vlp_gemm_subscribed_packed(const SubscriptionLists& subs,
                                const support::MatrixF& values,
                                std::size_t k_begin, std::size_t k_end,
                                support::MatrixF& out);

/**
 * Mugi-mapped GEMM: out[n][b] = sum_k weights[n][k] * activations[k][b].
 *
 * @param weights INT4 weights (or KV entries), logical shape N x K.
 * @param activations BF16-valued activations, logical shape K x B
 *        (values should already be BF16-rounded; the model treats
 *        them as exact binary32).
 * @param array_rows Array height H (weights tile size along N).
 * @param array_cols Array width (8 in the paper; B tile size).
 */
VlpGemmResult vlp_gemm_mugi(const Int4Matrix& weights,
                            const support::MatrixF& activations,
                            int array_rows, int array_cols);

/**
 * Carat-mapped symmetric GEMM: out[m][n] = sum_k acts[m][k] * w[k][n],
 * with the batched INT4 activations temporally coded on rows and the
 * weights value-reused on columns.
 */
VlpGemmResult vlp_gemm_carat(const Int4Matrix& activations,
                             const support::MatrixF& weights,
                             int array_rows, int array_cols);

/**
 * The literal cycle-by-row simulation of the Mugi mapping (the
 * pre-optimization kernel): every sweep scans all nh tile rows on
 * each of the 2^mb cycles.  Kept as the golden reference for the
 * sweep-accumulator kernel's bit-identity tests and as the baseline
 * of bench/gemm_throughput.
 */
VlpGemmResult vlp_gemm_mugi_baseline(const Int4Matrix& weights,
                                     const support::MatrixF& activations,
                                     int array_rows, int array_cols);

/** Literal cycle-by-row simulation of the Carat mapping (baseline). */
VlpGemmResult vlp_gemm_carat_baseline(const Int4Matrix& activations,
                                      const support::MatrixF& weights,
                                      int array_rows, int array_cols);

/**
 * Analytic cycle count of the Mugi mapping:
 *   ceil(N / H) * ceil(B / W) * K * 2^mag_bits
 * (steady-state pipelined; matches the simulated count).
 */
std::uint64_t vlp_gemm_mugi_cycles(std::size_t n, std::size_t b,
                                   std::size_t k, int array_rows,
                                   int array_cols,
                                   int magnitude_bits = 3);

/** Reference: direct GEMM of INT4 weights against float activations. */
support::MatrixF int4_gemm_reference(const Int4Matrix& weights,
                                     const support::MatrixF& activations);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_VLP_GEMM_H_
