#include "vlp/vlp_trig.h"

#include <cassert>
#include <cmath>

#include "numerics/bfloat16.h"
#include "numerics/rounding.h"

namespace mugi {
namespace vlp {

const char*
trig_op_name(TrigOp op)
{
    return op == TrigOp::kSin ? "sin" : "cos";
}

VlpTrigApproximator::VlpTrigApproximator(const VlpTrigConfig& config)
    : config_(config),
      num_exponents_(config.lut_max_exp - config.lut_min_exp + 1)
{
    assert(config.lut_max_exp >= config.lut_min_exp);
    const int mantissas = 1 << config_.mantissa_bits;
    table_.resize(2ull * mantissas * num_exponents_);
    for (int s = 0; s < 2; ++s) {
        for (int m = 0; m < mantissas; ++m) {
            for (int e = 0; e < num_exponents_; ++e) {
                const double magnitude = std::ldexp(
                    1.0 + static_cast<double>(m) / mantissas,
                    config_.lut_min_exp + e);
                const double r = s ? -magnitude : magnitude;
                const double y = config_.op == TrigOp::kSin
                                     ? std::sin(r)
                                     : std::cos(r);
                table_[(static_cast<std::size_t>(s) * mantissas + m) *
                           num_exponents_ +
                       e] =
                    numerics::bf16_round(static_cast<float>(y));
            }
        }
    }
}

float
VlpTrigApproximator::entry(bool sign, std::uint32_t mantissa,
                           int exponent) const
{
    const int mantissas = 1 << config_.mantissa_bits;
    return table_[(static_cast<std::size_t>(sign) * mantissas +
                   mantissa) *
                      num_exponents_ +
                  (exponent - config_.lut_min_exp)];
}

double
VlpTrigApproximator::reference(double x) const
{
    return config_.op == TrigOp::kSin ? std::sin(x) : std::cos(x);
}

std::size_t
VlpTrigApproximator::lut_entries() const
{
    return table_.size();
}

float
VlpTrigApproximator::apply(float x) const
{
    if (std::isnan(x) || std::isinf(x)) {
        return std::nanf("");
    }
    // Range reduction to [-pi, pi] (vector-array add/multiply).
    const double two_pi = 2.0 * M_PI;
    double r = std::fmod(static_cast<double>(x), two_pi);
    if (r > M_PI) {
        r -= two_pi;
    } else if (r < -M_PI) {
        r += two_pi;
    }

    const numerics::RoundedValue v = numerics::round_mantissa(
        numerics::bf16_round(static_cast<float>(r)),
        config_.mantissa_bits);
    if (v.is_zero || v.exponent < config_.lut_min_exp) {
        // Underflow: angle ~ 0 -> sin 0, cos 1 (PP zero path).
        return config_.op == TrigOp::kSin ? 0.0f : 1.0f;
    }
    int e = v.exponent;
    if (e > config_.lut_max_exp) {
        // |r| <= pi < 2^2, so with lut_max_exp >= 1 this only fires
        // for misconfigured windows; clamp into the LUT.
        e = config_.lut_max_exp;
    }
    return entry(v.sign, v.mantissa, e);
}

void
apply_rope_vlp(support::Matrix<float>& x, std::size_t num_heads,
               std::size_t head_dim, std::size_t start_pos,
               const VlpTrigApproximator& sin_approx,
               const VlpTrigApproximator& cos_approx)
{
    assert(sin_approx.config().op == TrigOp::kSin);
    assert(cos_approx.config().op == TrigOp::kCos);
    assert(x.cols() == num_heads * head_dim);
    assert(head_dim % 2 == 0);
    for (std::size_t t = 0; t < x.rows(); ++t) {
        const double pos = static_cast<double>(start_pos + t);
        float* row = x.row_data(t);
        for (std::size_t h = 0; h < num_heads; ++h) {
            float* head = row + h * head_dim;
            for (std::size_t i = 0; i < head_dim / 2; ++i) {
                const double theta =
                    pos * std::pow(10000.0,
                                   -2.0 * static_cast<double>(i) /
                                       static_cast<double>(head_dim));
                const float cos_t =
                    cos_approx.apply(static_cast<float>(theta));
                const float sin_t =
                    sin_approx.apply(static_cast<float>(theta));
                const float a = head[2 * i];
                const float b = head[2 * i + 1];
                head[2 * i] = a * cos_t - b * sin_t;
                head[2 * i + 1] = a * sin_t + b * cos_t;
            }
        }
    }
}

}  // namespace vlp
}  // namespace mugi
