#ifndef MUGI_VLP_VLP_TRIG_H_
#define MUGI_VLP_VLP_TRIG_H_

/**
 * @file
 * VLP approximation of the RoPE trigonometric functions (paper
 * Sec. 7.1, "Additional Operations"): the paper notes Mugi "can
 * either approximate the required sine and cosine functions" or
 * offload them.  This module implements the approximation option.
 *
 * sin/cos are periodic, so raw input approximation on the S-M-E grid
 * would waste the exponent range on large angles.  Instead the angle
 * is first range-reduced to [-pi, pi] (an add/multiply on the vector
 * array), then pushed through the same four-phase VLP machinery as
 * exp/SiLU/GELU: mantissa rounding, sliding exponent window, LUT
 * subscription.  Within [-pi, pi] the exponents span only [-inf, 1],
 * so an 8-exponent window anchored at exponent 1 covers every angle
 * above ~0.015 rad, and the underflow rule (value ~ 0) is exact for
 * sin and benign for cos.
 */

#include <memory>
#include <vector>

#include "support/matrix.h"
#include "vlp/nonlinear_lut.h"
#include "vlp/sliding_window.h"

namespace mugi {
namespace vlp {

/** Which trigonometric function to approximate. */
enum class TrigOp {
    kSin,
    kCos,
};

const char* trig_op_name(TrigOp op);

/** Configuration of a VLP trig approximator. */
struct VlpTrigConfig {
    TrigOp op = TrigOp::kSin;
    int mantissa_bits = 3;
    int window_size = 8;
    /** Full LUT exponent range for the reduced angle in [-pi, pi]. */
    int lut_min_exp = -6;
    int lut_max_exp = 1;
};

/**
 * VLP sine/cosine with range reduction.
 *
 * Functionally: reduce x to r in [-pi, pi], round r's mantissa to the
 * grid, clamp its exponent into the window, return the exact function
 * at the grid point (BF16-rounded) -- the same input-approximation
 * contract as VlpApproximator.
 */
class VlpTrigApproximator {
  public:
    explicit VlpTrigApproximator(const VlpTrigConfig& config);

    float apply(float x) const;

    const VlpTrigConfig& config() const { return config_; }

    /** Exact reference for the configured op. */
    double reference(double x) const;

    /**
     * LUT entries for one period: 2 signs x 2^mb mantissas x window
     * exponents (sin needs the sign row, cos is even so the sign
     * collapses -- both stored for a uniform datapath).
     */
    std::size_t lut_entries() const;

  private:
    VlpTrigConfig config_;
    /** Stored results: [sign][mantissa][exponent]. */
    std::vector<float> table_;
    int num_exponents_;

    float entry(bool sign, std::uint32_t mantissa, int exponent) const;
};

/**
 * Apply VLP-approximated rotary embeddings in place (the drop-in for
 * model/ops.h apply_rope): rotate head pairs with VLP sin/cos.
 */
void apply_rope_vlp(support::Matrix<float>& x, std::size_t num_heads,
                    std::size_t head_dim, std::size_t start_pos,
                    const VlpTrigApproximator& sin_approx,
                    const VlpTrigApproximator& cos_approx);

}  // namespace vlp
}  // namespace mugi

#endif  // MUGI_VLP_VLP_TRIG_H_
