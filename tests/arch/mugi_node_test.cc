#include "arch/mugi_node.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace mugi {
namespace arch {
namespace {

using nonlinear::NonlinearOp;

vlp::VlpConfig
exp_config()
{
    vlp::VlpConfig config;
    config.op = NonlinearOp::kExp;
    config.lut_min_exp = -3;
    config.lut_max_exp = 4;
    return config;
}

vlp::VlpConfig
silu_config()
{
    vlp::VlpConfig config;
    config.op = NonlinearOp::kSilu;
    config.lut_min_exp = -6;
    config.lut_max_exp = 1;
    return config;
}

std::vector<float>
random_inputs(std::size_t n, float lo, float hi, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> values(n);
    for (float& v : values) v = dist(rng);
    return values;
}

TEST(MugiNode, CycleSimulationMatchesFunctionalModelExp)
{
    // The repository's RTL-vs-model stand-in: the cycle-by-cycle
    // array walk must be bit-identical to the functional
    // VlpApproximator.
    const MugiNode node(exp_config(), 32);
    const auto inputs = random_inputs(500, -20.0f, 0.0f, 421);
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    std::vector<float> expected(inputs.size());
    node.reference().apply_batch(inputs, expected);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(run.outputs[i], expected[i]) << i << " " << inputs[i];
    }
}

TEST(MugiNode, CycleSimulationMatchesFunctionalModelSilu)
{
    const MugiNode node(silu_config(), 16);
    const auto inputs = random_inputs(300, -8.0f, 8.0f, 431);
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    std::vector<float> expected(inputs.size());
    node.reference().apply_batch(inputs, expected);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(run.outputs[i], expected[i]) << i << " " << inputs[i];
    }
}

TEST(MugiNode, SpecialsThroughPpBlock)
{
    const MugiNode node(exp_config(), 8);
    const std::vector<float> inputs = {-1.0f, 0.0f, -INFINITY,
                                       std::nanf(""), -0.01f};
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    EXPECT_EQ(run.outputs[1], 1.0f);            // exp(0).
    EXPECT_EQ(run.outputs[2], 0.0f);            // exp(-inf).
    EXPECT_TRUE(std::isnan(run.outputs[3]));    // NaN propagates.
    EXPECT_EQ(run.outputs[4], 1.0f);            // Underflow -> f(0).
}

TEST(MugiNode, PipelinedCycleCount)
{
    // Mappings pipeline at one mantissa sweep (2^3 cycles) each,
    // plus one exponent-subscription drain at the end (Sec. 3.1).
    const MugiNode node(exp_config(), 16);
    const auto inputs = random_inputs(64, -4.0f, 0.0f, 441);
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    EXPECT_EQ(run.mappings, 4u);  // 64 inputs / 16 rows.
    EXPECT_EQ(run.cycles, 4u * 8u + 8u);
}

TEST(MugiNode, SoftmaxSumAccumulatesInOAcc)
{
    const MugiNode node(exp_config(), 32);
    const auto inputs = random_inputs(100, -6.0f, 0.0f, 443);
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    double expected = 0.0;
    for (const float y : run.outputs) {
        expected += y;
    }
    EXPECT_NEAR(run.softmax_sum, expected, 1e-6);
    EXPECT_GT(run.softmax_sum, 0.0);
}

TEST(MugiNode, LutReadsSharedAcrossRows)
{
    // Value reuse: one LUT-row read per cycle serves the whole array,
    // independent of H.
    const MugiNode small(exp_config(), 8);
    const MugiNode large(exp_config(), 64);
    const auto inputs = random_inputs(64, -4.0f, 0.0f, 449);
    const MugiNonlinearRun run_small = small.run_nonlinear(inputs);
    const MugiNonlinearRun run_large = large.run_nonlinear(inputs);
    // 64 inputs: 8 mappings x 8 reads vs 1 mapping x 8 reads.
    EXPECT_EQ(run_small.lut_row_reads, 8u * 8u);
    EXPECT_EQ(run_large.lut_row_reads, 8u);
}

TEST(MugiNode, PerMappingWindowsFollowTheData)
{
    // Two mappings with different exponent clusters must both come
    // out accurate (the sliding window re-anchors per mapping).
    vlp::VlpConfig config = exp_config();
    config.lut_min_exp = -6;
    config.lut_max_exp = 5;
    config.window_size = 4;
    const MugiNode node(config, 8);
    std::vector<float> inputs;
    for (int i = 0; i < 8; ++i) inputs.push_back(-0.1f - 0.002f * i);
    for (int i = 0; i < 8; ++i) inputs.push_back(-9.0f - 0.5f * i);
    const MugiNonlinearRun run = node.run_nonlinear(inputs);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double exact = std::exp(inputs[i]);
        EXPECT_NEAR(run.outputs[i], exact, 0.06 * exact + 5e-3) << i;
    }
}

}  // namespace
}  // namespace arch
}  // namespace mugi
