#include "arch/systolic_array.h"

#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace arch {
namespace {

support::MatrixF
random_matrix(std::size_t r, std::size_t c, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    support::MatrixF m(r, c);
    support::fill_gaussian(m, rng, 0.0f, 1.0f);
    return m;
}

TEST(SystolicArray, MatchesReferenceGemm)
{
    const auto a = random_matrix(12, 20, 401);
    const auto b = random_matrix(20, 9, 402);
    const SystolicResult got = systolic_gemm(a, b, 4);
    const support::MatrixF expected = support::matmul(a, b);
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 9; ++j) {
            EXPECT_NEAR(got.out.at(i, j), expected.at(i, j), 1e-4);
        }
    }
}

TEST(SystolicArray, CycleCountMatchesAnalytic)
{
    const struct {
        std::size_t m, k, n, dim;
    } cases[] = {{8, 16, 16, 16}, {16, 16, 16, 16}, {8, 64, 32, 16},
                 {5, 7, 9, 4},    {32, 8, 8, 8},    {1, 128, 16, 16}};
    for (const auto& c : cases) {
        const auto a = random_matrix(c.m, c.k, 403);
        const auto b = random_matrix(c.k, c.n, 404);
        const SystolicResult got = systolic_gemm(a, b, c.dim);
        EXPECT_EQ(got.cycles,
                  systolic_cycles(c.m, c.n, c.k, c.dim))
            << c.m << "x" << c.k << "x" << c.n << " A=" << c.dim;
    }
}

TEST(SystolicArray, SmallBatchUnderutilization)
{
    // Sec. 6.2: small-batch GEMM under-utilizes large arrays.  With
    // m = 8 activations, a 16x16 array cannot fill its output tile.
    const auto a8 = random_matrix(8, 256, 405);
    const auto b = random_matrix(256, 256, 406);
    const SystolicResult small_batch = systolic_gemm(a8, b, 16);
    EXPECT_LT(small_batch.utilization, 0.5);

    const auto a32 = random_matrix(32, 256, 407);
    const SystolicResult large_batch = systolic_gemm(a32, b, 16);
    EXPECT_GT(large_batch.utilization,
              small_batch.utilization * 1.5);
}

TEST(SystolicArray, UtilizationWorsensWithArraySize)
{
    const auto a = random_matrix(8, 128, 409);
    const auto b = random_matrix(128, 128, 410);
    const SystolicResult a8 = systolic_gemm(a, b, 8);
    const SystolicResult a32 = systolic_gemm(a, b, 32);
    EXPECT_GT(a8.utilization, a32.utilization);
}

TEST(SystolicArray, MacCountExact)
{
    const auto a = random_matrix(6, 10, 411);
    const auto b = random_matrix(10, 7, 412);
    const SystolicResult got = systolic_gemm(a, b, 4);
    EXPECT_EQ(got.macs, 6u * 10u * 7u);
}

class SystolicDimTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SystolicDimTest, CorrectAcrossArraySizes)
{
    const std::size_t dim = GetParam();
    const auto a = random_matrix(dim + 3, 2 * dim + 1, 413);
    const auto b = random_matrix(2 * dim + 1, dim - 1, 414);
    const SystolicResult got = systolic_gemm(a, b, dim);
    const support::MatrixF expected = support::matmul(a, b);
    for (std::size_t i = 0; i < expected.rows(); ++i) {
        for (std::size_t j = 0; j < expected.cols(); ++j) {
            EXPECT_NEAR(got.out.at(i, j), expected.at(i, j), 1e-3);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, SystolicDimTest,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace arch
}  // namespace mugi
