#include "arch/tech_model.h"

#include <gtest/gtest.h>

namespace mugi {
namespace arch {
namespace {

TEST(TechModel, VlpPeIsFarSmallerThanMacPe)
{
    // The premise of the iso-area studies: a subscription PE is
    // 20x+ smaller and cheaper than a BF16 MAC.
    EXPECT_LT(component_area(Component::kVlpPe) * 20.0,
              component_area(Component::kBf16Mac));
    EXPECT_LT(component_energy(Component::kVlpPe) * 20.0,
              component_energy(Component::kBf16Mac));
}

TEST(TechModel, ComponentOrdering)
{
    // INT4 < BF16 adder < BF16 MAC <= FIGNA MAC (area).
    EXPECT_LT(component_area(Component::kInt4Mult),
              component_area(Component::kBf16Adder));
    EXPECT_LT(component_area(Component::kBf16Adder),
              component_area(Component::kBf16Mac));
    EXPECT_LT(component_area(Component::kBf16Mac),
              component_area(Component::kFignaMac));
    // FIGNA trades area for slightly lower FP-INT energy.
    EXPECT_LT(component_energy(Component::kFignaMac),
              component_energy(Component::kBf16Mac));
}

TEST(TechModel, AllComponentsPositive)
{
    for (const Component c :
         {Component::kVlpPe, Component::kTemporalConverter,
          Component::kCounter, Component::kBf16Adder,
          Component::kFp32Adder, Component::kBf16Mac,
          Component::kFignaMac, Component::kInt4Mult,
          Component::kFifoByte, Component::kLutByte,
          Component::kComparator, Component::kPostProc,
          Component::kSignConvert, Component::kWindowSelect,
          Component::kRouter}) {
        EXPECT_GT(component_area(c), 0.0);
        EXPECT_GT(component_energy(c), 0.0);
    }
}

TEST(TechModel, SramScalesWithSize)
{
    SramMacro small{64 * 1024, true};
    SramMacro big{256 * 1024, true};
    EXPECT_GT(big.area_um2(), small.area_um2() * 3.0);
    EXPECT_LT(big.area_um2(), small.area_um2() * 4.5);
    SramMacro single{64 * 1024, false};
    EXPECT_NEAR(small.area_um2(), 2.0 * single.area_um2(), 1.0);
}

TEST(TechModel, SixtyFourKbMacroInPaperBallpark)
{
    // A double-buffered 64 KB macro should land near the ~0.55 mm^2
    // per-SRAM share implied by Table 3 / Fig. 13.
    SramMacro macro{64 * 1024, true};
    const double mm2 = macro.area_um2() * 1e-6;
    EXPECT_GT(mm2, 0.4);
    EXPECT_LT(mm2, 0.75);
}

TEST(TechModel, OffChipBandwidthAt400Mhz)
{
    OffChipMemory hbm;
    // 256 GB/s at 400 MHz = 640 bytes per cycle (Sec. 5.2.3).
    EXPECT_NEAR(hbm.bytes_per_cycle(), 640.0, 1e-9);
    EXPECT_GT(hbm.energy_per_byte(), 10.0);  // Off-chip >> on-chip.
}

TEST(TechModel, ClockConstants)
{
    EXPECT_NEAR(kCycleNs, 2.5, 1e-12);  // 400 MHz.
}

}  // namespace
}  // namespace arch
}  // namespace mugi
