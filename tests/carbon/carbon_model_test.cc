#include "carbon/carbon_model.h"

#include <gtest/gtest.h>

#include "model/workload.h"

namespace mugi {
namespace carbon {
namespace {

sim::PerfReport
run(const sim::DesignConfig& d)
{
    const model::Workload w =
        model::build_decode_workload(model::llama2_70b(), 8, 4096);
    return sim::run_workload(d, w);
}

TEST(CarbonModel, OperationalProportionalToEnergy)
{
    const sim::DesignConfig mugi = sim::make_mugi(256);
    const sim::PerfReport perf = run(mugi);
    CarbonParams params;
    const CarbonReport a = assess(mugi, perf, params);
    params.carbon_intensity_g_per_kwh *= 2.0;
    const CarbonReport b = assess(mugi, perf, params);
    EXPECT_NEAR(b.operational_g_per_token,
                2.0 * a.operational_g_per_token,
                1e-12 + 1e-9 * a.operational_g_per_token);
}

TEST(CarbonModel, EmbodiedProportionalToArea)
{
    // Eq. 7: embodied = Area * CPA.  Same throughput, double area
    // (hypothetically) -> double embodied per token.
    const sim::DesignConfig mugi = sim::make_mugi(256);
    const sim::PerfReport perf = run(mugi);
    CarbonParams params;
    const CarbonReport a = assess(mugi, perf, params);
    params.manufacturing_kwh_per_mm2 *= 3.0;
    const CarbonReport b = assess(mugi, perf, params);
    EXPECT_NEAR(b.embodied_g_per_token, 3.0 * a.embodied_g_per_token,
                1e-9 * a.embodied_g_per_token + 1e-15);
    // CI scaling also scales embodied (CPA derives from CI).
}

TEST(CarbonModel, MugiBeatsSystolicOnBoth)
{
    // Sec. 6.3.2: Mugi improves operational carbon ~1.45x and
    // embodied ~1.48x over the baseline.
    const sim::DesignConfig mugi = sim::make_mugi(256);
    const sim::DesignConfig sa = sim::make_systolic(16);
    const CarbonReport cm = assess(mugi, run(mugi));
    const CarbonReport cs = assess(sa, run(sa));
    const double op_gain =
        cs.operational_g_per_token / cm.operational_g_per_token;
    const double em_gain =
        cs.embodied_g_per_token / cm.embodied_g_per_token;
    EXPECT_GT(op_gain, 1.1);
    EXPECT_LT(op_gain, 2.2);
    EXPECT_GT(em_gain, 1.1);
    EXPECT_LT(em_gain, 2.6);
}

TEST(CarbonModel, PositiveAndFinite)
{
    for (const sim::DesignConfig& d :
         {sim::make_mugi(128), sim::make_carat(256),
          sim::make_systolic(16), sim::make_tensor()}) {
        const CarbonReport c = assess(d, run(d));
        EXPECT_GT(c.operational_g_per_token, 0.0) << d.name;
        EXPECT_GT(c.embodied_g_per_token, 0.0) << d.name;
        EXPECT_GT(c.total_g_per_token(), c.operational_g_per_token)
            << d.name;
    }
}

TEST(CarbonModel, CpaConversion)
{
    CarbonParams params;
    params.carbon_intensity_g_per_kwh = 500.0;
    params.manufacturing_kwh_per_mm2 = 0.4;
    EXPECT_NEAR(carbon_per_area_g_per_mm2(params), 200.0, 1e-9);
}

}  // namespace
}  // namespace carbon
}  // namespace mugi
