/**
 * @file
 * Multithreaded stress over quant::BlockPool -- the first code in
 * the repo to actually *race* the documented "all member functions
 * are internally locked" contract instead of quoting it.  Run under
 * TSan in CI (the gcc-tsan matrix entry): removing any lock_guard
 * from BlockPool makes these tests fail there.  Every test ends
 * with a from-scratch accounting check (BlockPool::check_invariants)
 * so a lost update surfaces even without a sanitizer.
 */

#include "quant/block_allocator.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace quant {
namespace {

/** Spawn @p n threads over @p body(thread index) and join them. */
void
run_threads(std::size_t n, const std::function<void(std::size_t)>& body)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back(body, t);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

TEST(BlockPoolStress, ConcurrentAllocateReleaseChurnBalances)
{
    BlockPool pool;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 400;
    // Two block byte-sizes so the per-size free lists see concurrent
    // traffic too (reuse races against fresh-slot creation).
    constexpr std::size_t kSizes[] = {64, 192};

    run_threads(kThreads, [&](std::size_t t) {
        std::vector<BlockId> held;
        for (std::size_t i = 0; i < kIters; ++i) {
            const std::size_t bytes = kSizes[(t + i) % 2];
            held.push_back(pool.allocate(units::Bytes(bytes)));
            // Deterministic churn (no std::rand -- tools/lint.py
            // bans it): release every other iteration's block early,
            // keep the rest until the end.
            if (i % 2 == 1) {
                pool.release(held.back());
                held.pop_back();
            }
            // Exercise the locked readers against the writers.
            (void)pool.bytes_in_use();
            (void)pool.blocks_in_use();
        }
        for (const BlockId id : held) {
            pool.release(id);
        }
    });

    // Everything released: the pool must balance back to zero, and a
    // from-scratch recount must agree with every counter.
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(0));
    EXPECT_EQ(pool.ref_total(), 0u);
    EXPECT_EQ(pool.check_invariants(), "");
}

TEST(BlockPoolStress, ConcurrentRetainReleaseKeepsRefcountExact)
{
    BlockPool pool;
    const BlockId block = pool.allocate(units::Bytes(128));
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 1000;

    run_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            pool.retain(block);
            (void)pool.ref_count(block);
            pool.release(block);
        }
    });

    // All transient sharers drained: exactly the allocation's own
    // reference remains and the block is no longer "shared".
    EXPECT_EQ(pool.ref_count(block), 1u);
    EXPECT_EQ(pool.shared_blocks(), units::Blocks(0));
    EXPECT_EQ(pool.check_invariants(), "");
    pool.release(block);
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
}

TEST(BlockPoolStress, ConcurrentTryAllocateNeverOvercommits)
{
    constexpr std::size_t kBytes = 256;
    constexpr std::size_t kCapacityBlocks = 13;
    BlockPool pool(units::Bytes(kCapacityBlocks * kBytes));
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 8;

    std::atomic<std::size_t> admitted{0};
    run_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
            if (pool.try_allocate(units::Bytes(kBytes)) !=
                kInvalidBlock) {
                // Counts successes only; relaxed is fine, the join
                // below orders the final read.
                admitted.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });

    // The check-and-commit is one critical section: with 64 racing
    // attempts against capacity for 13, exactly 13 must win.
    EXPECT_EQ(admitted.load(), kCapacityBlocks);
    EXPECT_EQ(pool.blocks_in_use(),
              units::Blocks(kCapacityBlocks));
    EXPECT_EQ(pool.bytes_in_use(),
              units::Bytes(kCapacityBlocks * kBytes));
    EXPECT_EQ(pool.check_invariants(), "");
}

TEST(BlockPoolStress, ConcurrentReserveUnreserveBalances)
{
    BlockPool pool;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 500;
    constexpr std::size_t kBytes = 96;

    run_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            pool.reserve(units::Bytes(kBytes));
            (void)pool.fits(units::Bytes(kBytes));
            pool.unreserve(units::Bytes(kBytes));
        }
    });

    EXPECT_EQ(pool.reserved_bytes(), units::Bytes(0));
    EXPECT_EQ(pool.bytes_in_use(), units::Bytes(0));
    EXPECT_EQ(pool.check_invariants(), "");
}

}  // namespace
}  // namespace quant
}  // namespace mugi
