/**
 * @file
 * Multithreaded stress over support::Channel -- the MPSC seam the
 * push-based serve::Server hangs off.  Run under TSan in CI (the
 * gcc-tsan matrix entry); the single-threaded tests pin the close /
 * drain / bounded-blocking contract the server's shutdown path
 * depends on.
 */

#include "support/channel.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace support {
namespace {

/** Spawn @p n threads over @p body(thread index) and join them. */
void
run_threads(std::size_t n, const std::function<void(std::size_t)>& body)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back(body, t);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

TEST(Channel, FifoSingleThread)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_TRUE(ch.push(3));
    EXPECT_EQ(ch.size(), 3u);
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_EQ(ch.pop(), 2);
    EXPECT_EQ(ch.pop(), 3);
    EXPECT_EQ(ch.try_pop(), std::nullopt);
}

TEST(Channel, TryPushRespectsCapacity)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.try_push(1));
    EXPECT_TRUE(ch.try_push(2));
    EXPECT_FALSE(ch.try_push(3));  // Full.
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_TRUE(ch.try_push(3));  // Space again.
}

TEST(Channel, CloseDrainsQueuedValuesThenReportsClosed)
{
    Channel<int> ch(8);
    EXPECT_TRUE(ch.push(10));
    EXPECT_TRUE(ch.push(11));
    ch.close();
    // Close refuses new values but never drops queued ones.
    EXPECT_FALSE(ch.push(12));
    EXPECT_FALSE(ch.try_push(12));
    EXPECT_EQ(ch.pop(), 10);
    EXPECT_EQ(ch.pop(), 11);
    EXPECT_EQ(ch.pop(), std::nullopt);
    EXPECT_EQ(ch.pop(), std::nullopt);  // Terminal state is sticky.
    EXPECT_TRUE(ch.closed());
}

TEST(Channel, CloseWakesBlockedConsumer)
{
    Channel<int> ch(1);
    std::thread consumer([&ch] {
        // Blocks: the channel is empty and open.
        EXPECT_EQ(ch.pop(), std::nullopt);
    });
    ch.close();
    consumer.join();
}

TEST(Channel, CloseWakesBlockedProducer)
{
    Channel<int> ch(1);
    ASSERT_TRUE(ch.push(1));  // Fill to capacity.
    std::thread producer([&ch] {
        // Blocks on the full channel until close refuses it.
        EXPECT_FALSE(ch.push(2));
    });
    ch.close();
    producer.join();
    EXPECT_EQ(ch.pop(), 1);  // The queued value still drains.
    EXPECT_EQ(ch.pop(), std::nullopt);
}

TEST(Channel, BoundedPushBlocksUntilPopMakesSpace)
{
    Channel<int> ch(1);
    ASSERT_TRUE(ch.push(1));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(ch.push(2));  // Blocks until the pop below.
        second_pushed.store(true);
    });
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_EQ(ch.pop(), 2);  // Blocks until the producer lands it.
    producer.join();
    EXPECT_TRUE(second_pushed.load());
}

TEST(ChannelStress, MpscDeliversEveryValueExactlyOnce)
{
    // Small capacity so producers genuinely block (the bounded path
    // races against pop's not_full_ wakeups, not just the lock).
    Channel<int> ch(4);
    constexpr std::size_t kProducers = 4;
    constexpr int kPerProducer = 500;

    std::vector<int> seen;
    std::thread consumer([&] {
        while (auto v = ch.pop()) {
            seen.push_back(*v);
        }
    });
    run_threads(kProducers, [&](std::size_t t) {
        for (int i = 0; i < kPerProducer; ++i) {
            ASSERT_TRUE(ch.push(
                static_cast<int>(t) * kPerProducer + i));
        }
    });
    ch.close();
    consumer.join();

    // Exactly-once delivery: every (producer, i) value arrives once.
    ASSERT_EQ(seen.size(), kProducers * kPerProducer);
    std::vector<int> sorted = seen;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        EXPECT_EQ(sorted[i], static_cast<int>(i));
    }
    // Per-producer FIFO: each producer's values arrive in its
    // submission order even when interleaved with the others'.
    std::vector<int> last(kProducers, -1);
    for (const int v : seen) {
        const std::size_t producer =
            static_cast<std::size_t>(v) / kPerProducer;
        EXPECT_LT(last[producer], v % kPerProducer);
        last[producer] = v % kPerProducer;
    }
}

TEST(ChannelStress, ConcurrentCloseDuringTrafficNeverDropsAccepted)
{
    // Producers race close(): pushes may be refused, but any push
    // that returned true must be delivered before pop() goes null.
    Channel<int> ch(8);
    constexpr std::size_t kProducers = 4;
    constexpr int kPerProducer = 300;
    std::atomic<std::size_t> accepted{0};

    std::atomic<std::size_t> consumed{0};
    std::thread consumer([&] {
        while (ch.pop()) {
            consumed.fetch_add(1);
        }
    });
    std::thread closer([&ch] { ch.close(); });
    run_threads(kProducers, [&](std::size_t) {
        for (int i = 0; i < kPerProducer; ++i) {
            if (ch.try_push(i)) {
                accepted.fetch_add(1);
            }
        }
    });
    closer.join();
    consumer.join();
    EXPECT_EQ(consumed.load(), accepted.load());
}

}  // namespace
}  // namespace support
}  // namespace mugi
