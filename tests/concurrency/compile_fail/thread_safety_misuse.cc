/**
 * @file
 * Deliberately mis-locked code: MUST FAIL to compile under Clang
 * with -DMUGI_THREAD_SAFETY_ANALYSIS=ON (-Werror=thread-safety).
 *
 * This file is NOT part of any test binary (tests/CMakeLists.txt
 * globs only tests/<dir>/*.cc, not subdirectories).  The
 * clang-thread-safety CI job builds the mugi_thread_safety_misuse
 * target and asserts the build fails -- proving the capability
 * annotations on support::Mutex actually reject unguarded access,
 * not just decorate it.  If this file ever compiles under the
 * analysis, the annotations have rotted.
 */

#include <cstddef>

#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace {

class Counter {
  public:
    void
    increment()
    {
        mugi::support::MutexLock lock(mu_);
        ++value_;
    }

    std::size_t
    unguarded_read() const
    {
        // BAD: reads a GUARDED_BY field without acquiring mu_.
        // -Wthread-safety: "reading variable 'value_' requires
        // holding mutex 'mu_'".
        return value_;
    }

  private:
    mutable mugi::support::Mutex mu_;
    std::size_t value_ MUGI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int
main()
{
    Counter counter;
    counter.increment();
    return static_cast<int>(counter.unguarded_read());
}
