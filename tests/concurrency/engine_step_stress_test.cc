/**
 * @file
 * Multithreaded stress over the Engine's documented concurrent-const
 * contract (engine.h): N threads drive Engine::step over *disjoint*
 * session sets through ONE shared engine -- one KernelRegistry
 * (racing lazy kernel builds), one functional TransformerModel, one
 * shared quant::BlockPool behind every session's KV caches, and one
 * shared PreparedWeights handle raced through run_woq_gemm.  Each
 * thread's logits must be bit-identical to a single-threaded
 * reference run: concurrency may reorder work between sessions,
 * never change any session's numerics.  Run under TSan in CI (the
 * gcc-tsan matrix entry) -- these are the first tests to execute the
 * serving stack on more than one thread.
 */

#include "serve/engine.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "quant/block_allocator.h"

namespace mugi {
namespace serve {
namespace {

void
run_threads(std::size_t n, const std::function<void(std::size_t)>& body)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back(body, t);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

TEST(EngineStepStress, DisjointSessionsAcrossThreadsMatchReference)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    const auto transformer =
        std::make_shared<model::TransformerModel>(config, 1234);
    const Engine engine(sim::make_mugi(64), transformer);
    quant::BlockPool pool;  // Shared by every thread's KV caches.

    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kSteps = 6;
    const std::size_t prompt_lens[kThreads] = {3, 5, 7, 9};

    std::vector<std::vector<int>> prompts;
    for (std::size_t t = 0; t < kThreads; ++t) {
        prompts.push_back(model::synthetic_tokens(
            prompt_lens[t], config.vocab,
            static_cast<std::uint32_t>(100 + t)));
    }

    // Reference: the same prompts decoded greedily one thread at a
    // time (separate engine so no state is shared with the race).
    const Engine reference(sim::make_mugi(64), transformer);
    std::vector<std::vector<float>> expected_logits(kThreads);
    std::vector<std::vector<int>> expected_tokens(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        Session session = reference.create_session();
        std::vector<float> logits =
            reference.prefill(session, prompts[t]);
        int token = static_cast<int>(t + 1);
        for (std::size_t s = 0; s < kSteps; ++s) {
            const StepResult r = reference.step(session, token);
            token = r.outputs[0].next_token;
            expected_tokens[t].push_back(token);
            expected_logits[t] = r.outputs[0].logits;
        }
    }

    // Race: each thread owns its session exclusively; everything
    // else -- engine, registry, model, pool -- is shared.
    std::vector<std::vector<float>> got_logits(kThreads);
    std::vector<std::vector<int>> got_tokens(kThreads);
    run_threads(kThreads, [&](std::size_t t) {
        SessionOptions options;
        options.kv_pool = &pool;
        Session session = engine.create_session(options);
        engine.prefill(session, prompts[t]);
        int token = static_cast<int>(t + 1);
        for (std::size_t s = 0; s < kSteps; ++s) {
            const StepResult r = engine.step(session, token);
            token = r.outputs[0].next_token;
            got_tokens[t].push_back(token);
            got_logits[t] = r.outputs[0].logits;
        }
        // The session dies with the lambda, releasing its blocks
        // back to the shared pool before the joins below.
    });

    for (std::size_t t = 0; t < kThreads; ++t) {
        EXPECT_EQ(got_tokens[t], expected_tokens[t]) << "thread " << t;
        ASSERT_EQ(got_logits[t].size(), expected_logits[t].size());
        for (std::size_t v = 0; v < expected_logits[t].size(); ++v) {
            // Bit-identical: same numerical path per session, no
            // matter how the threads interleaved.
            EXPECT_EQ(got_logits[t][v], expected_logits[t][v])
                << "thread " << t << " vocab " << v;
        }
    }
    // Every session destroyed: the shared pool must drain to zero,
    // and its from-scratch recount must hold after the race.
    EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
    EXPECT_EQ(pool.check_invariants(), "");
    // The racing threads' lazy kernel builds collapsed per key.
    EXPECT_EQ(engine.kernels().size(), 2u);
}

TEST(EngineStepStress, SharedPreparedWeightsGemmIsBitIdentical)
{
    const Engine engine(sim::make_mugi(64));
    constexpr std::size_t kRows = 48, kCols = 32, kGroup = 16;
    support::MatrixF weights(kRows, kCols);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        weights.data()[i] =
            0.01f * static_cast<float>((i * 37) % 101) - 0.5f;
    }
    support::MatrixF activations(kCols, 4);
    for (std::size_t i = 0; i < activations.size(); ++i) {
        activations.data()[i] =
            0.02f * static_cast<float>((i * 53) % 89) - 0.9f;
    }

    // One quantization, one handle, shared by every thread.
    const PreparedWeights prepared =
        engine.prepare_weights(weights, kGroup);
    const GemmRun reference =
        engine.run_woq_gemm(prepared, activations);

    constexpr std::size_t kThreads = 8;
    run_threads(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < 20; ++i) {
            const GemmRun run =
                engine.run_woq_gemm(prepared, activations);
            ASSERT_EQ(run.cycles, reference.cycles);
            ASSERT_EQ(run.sweeps, reference.sweeps);
            ASSERT_EQ(run.subscriptions, reference.subscriptions);
            ASSERT_EQ(run.out.rows(), reference.out.rows());
            ASSERT_EQ(run.out.cols(), reference.out.cols());
            for (std::size_t k = 0; k < run.out.size(); ++k) {
                ASSERT_EQ(run.out.data()[k], reference.out.data()[k]);
            }
        }
    });
}

}  // namespace
}  // namespace serve
}  // namespace mugi
