/**
 * @file
 * The auditors must actually *fire*: a checker that never reports
 * anything is indistinguishable from one that checks nothing.  A
 * test-only hook (BlockPool::corrupt_refs_for_test) injects exactly
 * the refcount drift PRs 3-4 made safety-critical and asserts the
 * auditor reports it -- as a death through the abort-on-drift
 * audit() entry point in assert-enabled builds, and as an
 * error-return from check_invariants() in every build type (NDEBUG
 * included, where the scheduler's automatic audits are compiled
 * out).  Positive cases pin that honest schedulers and pools audit
 * clean end to end.
 */

#include <cstddef>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "model/config.h"
#include "quant/block_allocator.h"
#include "serve/engine.h"
#include "serve/scheduler.h"
#include "support/audit.h"

namespace mugi {
namespace {

TEST(InvariantAuditor, CleanPoolAuditsClean)
{
    quant::BlockPool pool;
    EXPECT_EQ(pool.check_invariants(), "");
    const quant::BlockId a = pool.allocate(units::Bytes(64));
    const quant::BlockId b = pool.allocate(units::Bytes(128));
    pool.retain(a);
    EXPECT_EQ(pool.check_invariants(), "");
    pool.release(a);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.check_invariants(), "");
    // Free-list reuse keeps the recount exact too.
    const quant::BlockId c = pool.allocate(units::Bytes(64));
    EXPECT_EQ(pool.check_invariants(), "");
    pool.release(c);
}

TEST(InvariantAuditor, CorruptedRefcountIsReported)
{
    quant::BlockPool pool;
    const quant::BlockId block = pool.allocate(units::Bytes(64));

    // Forge a second reference without the shared-block accounting:
    // exactly the drift a retain/release imbalance would leave.
    pool.corrupt_refs_for_test(block, 2);
    EXPECT_NE(pool.check_invariants(), "");

    // Zeroing the refcount of a live block is the double-release
    // signature; it must be reported as well.
    pool.corrupt_refs_for_test(block, 0);
    EXPECT_NE(pool.check_invariants(), "");

    // Repair and confirm the auditor goes quiet again.
    pool.corrupt_refs_for_test(block, 1);
    EXPECT_EQ(pool.check_invariants(), "");
    pool.release(block);
    EXPECT_EQ(pool.check_invariants(), "");
}

#if !defined(NDEBUG)
TEST(InvariantAuditorDeathTest, CorruptedPoolAuditAborts)
{
    // Debug builds: the abort-on-drift entry point (the one the
    // scheduler's automatic per-step audit uses) must die loudly.
    quant::BlockPool pool;
    const quant::BlockId block = pool.allocate(units::Bytes(64));
    pool.corrupt_refs_for_test(block, 5);
    EXPECT_DEATH_IF_SUPPORTED(pool.audit("test"),
                              "invariant audit failed");
}
#endif

TEST(InvariantAuditor, AnalyticSchedulerStepsAuditClean)
{
    // Analytic serving with prefix sharing and a tight budget: every
    // step's automatic audit (MUGI_AUDIT_INVARIANTS builds) plus the
    // explicit end-state check below cover reservation accounting,
    // refcounted shared groups, and retire-time cleanup.
    const model::ModelConfig model =
        model::llama2_7b().scaled_for_eval(2, 64, 128);
    const serve::Engine engine(sim::make_mugi(64), model);
    serve::SchedulerConfig config;
    config.kv_budget_bytes = units::Bytes(1u << 20);
    config.max_batch = 4;
    serve::Scheduler scheduler(engine, config);

    for (std::size_t i = 0; i < 6; ++i) {
        serve::Request request;
        request.analytic_prompt_tokens = units::Tokens(40 + 8 * i);
        request.max_new_tokens = units::Tokens(6);
        request.prefix_group = 1;  // All share a system prompt.
        request.prefix_tokens = units::Tokens(32);
        scheduler.submit(std::move(request));
        EXPECT_EQ(scheduler.check_invariants(), "");
    }
    while (scheduler.step()) {
        EXPECT_EQ(scheduler.check_invariants(), "");
    }
    EXPECT_EQ(scheduler.check_invariants(), "");
    EXPECT_EQ(scheduler.pool().bytes_in_use(), units::Bytes(0));
}

TEST(InvariantAuditor, FunctionalSchedulerStepsAuditClean)
{
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(2, 32, 64);
    const auto transformer =
        std::make_shared<model::TransformerModel>(config, 77);
    const serve::Engine engine(sim::make_mugi(64), transformer);
    serve::SchedulerConfig sched_config;
    sched_config.max_batch = 3;
    serve::Scheduler scheduler(engine, sched_config);

    for (std::size_t i = 0; i < 4; ++i) {
        serve::Request request;
        request.prompt = model::synthetic_tokens(
            24, config.vocab, static_cast<std::uint32_t>(7 + i));
        request.max_new_tokens = units::Tokens(4);
        scheduler.submit(std::move(request));
    }
    while (scheduler.step()) {
        EXPECT_EQ(scheduler.check_invariants(), "");
    }
    EXPECT_EQ(scheduler.check_invariants(), "");
    // All sessions retired: no block-table references remain.
    EXPECT_EQ(scheduler.pool().blocks_in_use(), units::Blocks(0));
    EXPECT_EQ(scheduler.pool().ref_total(), 0u);
}

}  // namespace
}  // namespace mugi
