/**
 * @file
 * Multithreaded stress over serve::KernelRegistry's lazy get():
 * N threads hammering the same key must all receive the *same*
 * kernel instance with the LUT built exactly once -- the
 * "built lazily, exactly once, shared const references" contract of
 * kernel_registry.h, exercised for the first time with real threads.
 * Run under TSan in CI (gcc-tsan matrix entry).
 */

#include "serve/kernel_registry.h"

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace serve {
namespace {

void
run_threads(std::size_t n, const std::function<void(std::size_t)>& body)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        threads.emplace_back(body, t);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
}

TEST(KernelRegistryStress, ConcurrentGetSameKeyBuildsOnce)
{
    const KernelRegistry registry(64);
    const vlp::VlpConfig config =
        default_vlp_config(nonlinear::NonlinearOp::kExp, 64);

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 50;
    std::vector<std::shared_ptr<const vlp::VlpApproximator>> first(
        kThreads);

    run_threads(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kIters; ++i) {
            auto kernel = registry.get(config);
            ASSERT_NE(kernel, nullptr);
            if (i == 0) {
                first[t] = kernel;
            } else {
                // Same key -> same instance, every call, every
                // thread.
                ASSERT_EQ(kernel.get(), first[t].get());
            }
        }
    });

    for (std::size_t t = 1; t < kThreads; ++t) {
        EXPECT_EQ(first[t].get(), first[0].get());
    }
    // The racing builders collapsed to exactly one cached kernel.
    EXPECT_EQ(registry.size(), 1u);
}

TEST(KernelRegistryStress, ConcurrentDistinctKeysBuildEachOnce)
{
    const KernelRegistry registry(64);
    const nonlinear::NonlinearOp ops[] = {
        nonlinear::NonlinearOp::kExp, nonlinear::NonlinearOp::kSilu,
        nonlinear::NonlinearOp::kGelu};

    constexpr std::size_t kThreads = 6;
    run_threads(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < 30; ++i) {
            // Each thread walks the ops in a different phase so every
            // key sees first-build races from several threads.
            const auto kernel =
                registry.get_default(ops[(t + i) % 3]);
            ASSERT_NE(kernel, nullptr);
        }
    });

    EXPECT_EQ(registry.size(), 3u);
    // Sequential re-gets return the instances the race built.
    for (const nonlinear::NonlinearOp op : ops) {
        EXPECT_EQ(registry.get_default(op).get(),
                  registry.get_default(op).get());
    }
    EXPECT_EQ(registry.size(), 3u);
}

}  // namespace
}  // namespace serve
}  // namespace mugi
