/**
 * @file
 * Bit-identity of the pooled Engine::step (StepPlan::threads > 0)
 * against the pinned serial fallback (threads == 0): mixed
 * prefill-and-decode plans, mixed KV precisions (INT4 + float),
 * ragged contexts, fused and sequential decode, across 1/2/4-worker
 * pools -- every logit and token must match the serial run exactly,
 * since pooled partitioning only reorders *when* disjoint outputs are
 * computed, never what is computed (thread_pool.h's determinism
 * contract).  Run under TSan in CI: the per-projection row-range
 * tasks, per-chunk prefill tasks and the shared worker pool are
 * exactly the interleavings the sanitizer should see.
 */

#include "serve/engine.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/accuracy.h"
#include "quant/block_allocator.h"

namespace mugi {
namespace serve {
namespace {

struct PlanOutputs {
    std::vector<std::vector<float>> logits;  ///< Decode then prefill.
    std::vector<int> tokens;
};

/**
 * Run @p steps mixed iterations at @p threads: 4 decode lanes with
 * alternating KV precision and ragged prompts, plus 2 prefill chunks
 * per iteration feeding two more sessions chunk by chunk.
 */
PlanOutputs
run_mixed(const Engine& engine, const model::ModelConfig& config,
          std::size_t threads, std::size_t steps,
          quant::BlockPool* pool)
{
    constexpr std::size_t kDecode = 4;
    std::vector<Session> decoders;
    std::vector<int> feed(kDecode);
    for (std::size_t i = 0; i < kDecode; ++i) {
        SessionOptions options;
        options.kv_pool = pool;
        options.kv_precision = i % 2 == 0 ? quant::KvPrecision::kInt4
                                          : quant::KvPrecision::kFloat;
        decoders.push_back(engine.create_session(options));
        engine.prefill(decoders.back(),
                       model::synthetic_tokens(
                           3 + 2 * i, config.vocab,
                           static_cast<std::uint32_t>(50 + i)));
        feed[i] = static_cast<int>(i + 1);
    }

    // Two prefill sessions fed one chunk per iteration.
    constexpr std::size_t kPrefill = 2;
    std::vector<Session> prefillers;
    std::vector<std::vector<int>> prompts;
    std::vector<std::size_t> fed(kPrefill, 0);
    for (std::size_t i = 0; i < kPrefill; ++i) {
        SessionOptions options;
        options.kv_pool = pool;
        options.kv_precision = i % 2 == 0
                                   ? quant::KvPrecision::kFloat
                                   : quant::KvPrecision::kInt4;
        prefillers.push_back(engine.create_session(options));
        prompts.push_back(model::synthetic_tokens(
            static_cast<std::size_t>(4 * steps),  // Chunks of 4.
            config.vocab, static_cast<std::uint32_t>(80 + i)));
    }

    PlanOutputs out;
    for (std::size_t step = 0; step < steps; ++step) {
        StepPlan plan;
        plan.threads = threads;
        // Alternate fused and sequential decode so both paths see
        // the pool.
        plan.fused_decode = step % 2 == 0;
        for (std::size_t i = 0; i < kDecode; ++i) {
            plan.decode_sessions.push_back(&decoders[i]);
            plan.decode_tokens.push_back(feed[i]);
        }
        for (std::size_t i = 0; i < kPrefill; ++i) {
            StepPlan::PrefillEntry entry;
            entry.session = &prefillers[i];
            entry.tokens =
                std::span<const int>(prompts[i]).subspan(fed[i], 4);
            plan.prefills.push_back(entry);
            fed[i] += 4;
        }
        const StepResult r = engine.step(plan);
        for (std::size_t i = 0; i < kDecode; ++i) {
            feed[i] = r.outputs[i].next_token;
            out.tokens.push_back(r.outputs[i].next_token);
            out.logits.push_back(r.outputs[i].logits);
        }
        for (const StepResult::SessionOutput& o : r.prefill_outputs) {
            out.tokens.push_back(o.next_token);
            out.logits.push_back(o.logits);
        }
    }
    return out;
}

TEST(PooledStep, MixedPlanBitIdenticalToSerialAcrossThreadCounts)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    const auto transformer =
        std::make_shared<model::TransformerModel>(config, 321);
    const Engine engine(sim::make_mugi(64), transformer);

    constexpr std::size_t kSteps = 4;
    quant::BlockPool serial_pool;
    const PlanOutputs serial =
        run_mixed(engine, config, 0, kSteps, &serial_pool);
    ASSERT_FALSE(serial.tokens.empty());

    for (const std::size_t threads : {1u, 2u, 4u}) {
        quant::BlockPool pool;
        const PlanOutputs pooled =
            run_mixed(engine, config, threads, kSteps, &pool);
        EXPECT_EQ(pooled.tokens, serial.tokens)
            << threads << " threads";
        ASSERT_EQ(pooled.logits.size(), serial.logits.size());
        for (std::size_t i = 0; i < serial.logits.size(); ++i) {
            ASSERT_EQ(pooled.logits[i].size(),
                      serial.logits[i].size());
            for (std::size_t v = 0; v < serial.logits[i].size();
                 ++v) {
                // Bit-identical: pooled partitioning must never
                // change a single float.
                ASSERT_EQ(pooled.logits[i][v], serial.logits[i][v])
                    << threads << " threads, output " << i
                    << ", vocab " << v;
            }
        }
        EXPECT_EQ(pool.blocks_in_use(), units::Blocks(0));
        EXPECT_EQ(pool.check_invariants(), "");
    }
    EXPECT_EQ(serial_pool.blocks_in_use(), units::Blocks(0));
    EXPECT_EQ(serial_pool.check_invariants(), "");
}

TEST(PooledStep, WorkerStatsReportedOnlyForPooledSteps)
{
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    const auto transformer =
        std::make_shared<model::TransformerModel>(config, 99);
    const Engine engine(sim::make_mugi(64), transformer);

    const auto one_step = [&](std::size_t threads) {
        std::vector<Session> sessions;
        for (std::size_t i = 0; i < 3; ++i) {
            sessions.push_back(engine.create_session());
            engine.prefill(sessions.back(),
                           model::synthetic_tokens(
                               4, config.vocab,
                               static_cast<std::uint32_t>(7 + i)));
        }
        StepPlan plan;
        plan.threads = threads;
        for (std::size_t i = 0; i < sessions.size(); ++i) {
            plan.decode_sessions.push_back(&sessions[i]);
            plan.decode_tokens.push_back(static_cast<int>(i + 1));
        }
        return engine.step(plan);
    };

    const StepResult serial = one_step(0);
    EXPECT_EQ(serial.workers.threads, 0u);
    EXPECT_EQ(serial.workers.tasks, 0u);
    EXPECT_EQ(serial.workers.busy_fraction, 0.0);

    const StepResult pooled = one_step(2);
    EXPECT_EQ(pooled.workers.threads, 2u);
    EXPECT_GT(pooled.workers.tasks, 0u);
    EXPECT_GE(pooled.workers.busy_fraction, 0.0);
    EXPECT_LE(pooled.workers.busy_fraction, 1.0);
    EXPECT_NEAR(
        pooled.workers.busy_fraction + pooled.workers.idle_fraction,
        1.0, 1e-9);
    // The pooled and serial steps still agree on the numerics.
    ASSERT_EQ(pooled.outputs.size(), serial.outputs.size());
    for (std::size_t i = 0; i < serial.outputs.size(); ++i) {
        EXPECT_EQ(pooled.outputs[i].next_token,
                  serial.outputs[i].next_token);
        EXPECT_EQ(pooled.outputs[i].logits, serial.outputs[i].logits);
    }
}

}  // namespace
}  // namespace serve
}  // namespace mugi
