/**
 * @file
 * Unit tests over support::ThreadPool's documented contract
 * (thread_pool.h): FIFO ordering observable through a one-worker
 * pool, split_ranges partitioning, lowest-index exception propagation
 * out of parallel_for, drain-on-destruct losing no queued task, and
 * the cumulative busy/task counters.  Run under TSan in CI alongside
 * the serving stress tests.
 */

#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mugi {
namespace support {
namespace {

TEST(SplitRanges, CoversCountWithBalancedNonEmptyRanges)
{
    const struct {
        std::size_t count, parts;
    } cases[] = {{0, 4},  {1, 4},  {4, 4},   {5, 4},
                 {7, 3},  {8, 1},  {100, 7}, {3, 8}};
    for (const auto& c : cases) {
        const auto ranges = split_ranges(c.count, c.parts);
        // Never more parts than items, never an empty range.
        EXPECT_LE(ranges.size(), c.parts);
        std::size_t expect_begin = 0;
        std::size_t min_len = c.count, max_len = 0;
        for (const auto& [begin, end] : ranges) {
            EXPECT_EQ(begin, expect_begin);
            EXPECT_LT(begin, end);
            min_len = std::min(min_len, end - begin);
            max_len = std::max(max_len, end - begin);
            expect_begin = end;
        }
        EXPECT_EQ(expect_begin, c.count)
            << c.count << " over " << c.parts;
        if (!ranges.empty()) {
            EXPECT_LE(max_len - min_len, 1u);
        }
    }
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    // One worker serializes the queue, so FIFO pop order becomes
    // observable execution order.
    std::vector<int> order;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 64; ++i) {
            pool.run([&order, i] { order.push_back(i); });
        }
        // Destructor drains before joining.
    }
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 300;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    // parallel_for returned => every task completed (the barrier).
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1)
            << "index " << i;
    }
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException)
{
    ThreadPool pool(4);
    // Indices 3, 11 and 40 throw; whatever the interleaving, the
    // caller must see index 3's message, and every non-throwing task
    // must still have run (the join happens before the rethrow).
    std::vector<std::atomic<int>> hits(64);
    try {
        pool.parallel_for(64, [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            if (i == 3 || i == 11 || i == 40) {
                throw std::runtime_error("task " + std::to_string(i));
            }
        });
        FAIL() << "parallel_for swallowed the task exceptions";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task 3");
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1)
            << "index " << i;
    }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    // Queue far more tasks than workers and destroy immediately: the
    // drain-on-destruct contract says every task still runs.
    auto counter = std::make_shared<std::atomic<int>>(0);
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i) {
            pool.run([counter] {
                counter->fetch_add(1, std::memory_order_relaxed);
            });
        }
    }
    EXPECT_EQ(counter->load(std::memory_order_relaxed), 200);
}

TEST(ThreadPool, CountersAdvanceAcrossParallelFor)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.num_threads(), 2u);
    EXPECT_EQ(pool.tasks_completed(), 0u);
    // The counters tick *after* each task body returns -- which is
    // after the barrier inside the body released parallel_for -- so
    // reads here must wait for them to settle.
    const auto settled = [&pool](std::uint64_t n) {
        while (pool.tasks_completed() < n) {
            std::this_thread::yield();
        }
        return pool.tasks_completed();
    };
    pool.parallel_for(10, [](std::size_t) {});
    EXPECT_EQ(settled(10), 10u);
    const std::uint64_t busy_before = pool.busy_ns();
    pool.parallel_for(4, [](std::size_t) {
        // Do enough work for the steady clock to tick.
        volatile std::size_t sink = 0;
        for (std::size_t i = 0; i < 100000; ++i) sink = sink + i;
    });
    EXPECT_EQ(settled(14), 14u);
    EXPECT_GT(pool.busy_ns(), busy_before);
}

}  // namespace
}  // namespace support
}  // namespace mugi
