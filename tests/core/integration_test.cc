/**
 * @file
 * Cross-module integration tests exercising the full pipeline the
 * paper describes: profile a workload's nonlinear inputs (Sec. 3.3),
 * derive the LUT window from the profile (Fig. 4 -> Fig. 5), deploy
 * the VLP approximator with that window, and verify both model
 * quality and the architecture models end to end.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "arch/mugi_node.h"
#include "model/accuracy.h"
#include "model/profiler.h"
#include "model/transformer.h"
#include "serve/engine.h"
#include "sim/event_sim.h"
#include "sim/performance_model.h"
#include "vlp/vlp_approximator.h"

namespace mugi {
namespace core {
namespace {

TEST(Integration, ProfileDrivenWindowBeatsBlindWindow)
{
    // 1. Profile the softmax inputs of a model (Fig. 4).
    const model::ModelConfig config =
        model::llama2_7b().scaled_for_eval(2, 48, 128);
    model::TransformerModel m(config, 881);
    model::NonlinearProfiler profiler;
    m.set_capture(profiler.capture());
    const auto tokens = model::synthetic_tokens(24, config.vocab, 883);
    m.forward_tokens(tokens);
    m.set_capture({});

    // 2. Derive the LUT window from the merged profile (Fig. 5).
    const model::SiteProfile merged =
        profiler.merged(nonlinear::NonlinearOp::kExp);
    const auto [lo, hi] = merged.dominant_exponent_window(8);
    ASSERT_GE(merged.exponent_coverage(lo, hi), 0.9)
        << "profiled exponents must cluster (the Sec. 3.3 insight)";

    // 3. Deploy VLP with the profiled window vs a blind window far
    //    outside the cluster.
    const auto profiled = vlp::make_vlp(nonlinear::NonlinearOp::kExp,
                                        hi - lo + 1, hi);
    const auto blind = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8,
                                     lo - 10);
    model::EvalOptions options;
    options.num_sequences = 2;
    options.seq_len = 12;
    model::NonlinearHooks hooks;
    hooks.softmax_exp = profiled.get();
    const double ppl_profiled =
        model::evaluate_against_exact(m, hooks, options).perplexity;
    hooks.softmax_exp = blind.get();
    const double ppl_blind =
        model::evaluate_against_exact(m, hooks, options).perplexity;
    const double base =
        model::evaluate_base(m, options).perplexity;

    EXPECT_LT(ppl_profiled, ppl_blind);
    EXPECT_LT(ppl_profiled - base, 0.05 * base)
        << "profiled window must land near the exact baseline";
}

TEST(Integration, NodeModelAndPerfModelAgreeOnNonlinearThroughput)
{
    // The cycle-accurate node and the analytic model must agree on
    // nonlinear throughput (elements per cycle).
    vlp::VlpConfig config;
    config.op = nonlinear::NonlinearOp::kExp;
    config.lut_min_exp = -3;
    config.lut_max_exp = 4;
    const std::size_t rows = 64;
    const arch::MugiNode node(config, rows);
    std::vector<float> inputs(rows * 10);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = -0.2f - 0.01f * static_cast<float>(i % 97);
    }
    const arch::MugiNonlinearRun run = node.run_nonlinear(inputs);

    model::NonlinearWork work;
    work.op = nonlinear::NonlinearOp::kExp;
    work.elements = inputs.size();
    const sim::OpCost cost =
        sim::nonlinear_cost(sim::make_mugi(rows), work);
    // Steady-state analytic cycles vs simulated (one drain apart).
    EXPECT_NEAR(static_cast<double>(run.cycles), cost.compute_cycles,
                static_cast<double>(config.window_size) + 1.0);
}

TEST(Integration, FullSystemEvaluationEndToEnd)
{
    // serve::Engine over every Table 1 Llama model: reports must be
    // internally consistent and ordered sensibly.
    double prev_runtime = 0.0;
    for (const model::ModelConfig& m : model::llama_family()) {
        const serve::Engine engine(sim::make_mugi(256));
        const serve::SystemReport report =
            engine.evaluate_decode(m, 8, 2048);
        // Bigger models take longer per step.
        EXPECT_GT(report.perf.runtime_s, prev_runtime) << m.name;
        prev_runtime = report.perf.runtime_s;
        // Event sim validates the analytic total.
        EXPECT_NEAR(report.event_sim.makespan_cycles,
                    report.perf.total_cycles,
                    0.4 * report.perf.total_cycles)
            << m.name;
        // Carbon components positive and operational-dominated at
        // 45 nm (Sec. 6.3.2).
        EXPECT_GT(report.carbon.operational_g_per_token,
                  report.carbon.embodied_g_per_token)
            << m.name;
    }
}

TEST(Integration, WoqKvqVlpComposeWithoutCollapse)
{
    // The full numerical stack at once: WOQ weights + KVQ cache +
    // VLP softmax/SiLU on the decode path must stay aligned with the
    // clean FP model's next-token ranking on a short horizon.
    const model::ModelConfig config =
        model::llama2_70b().scaled_for_eval(2, 32, 64);
    model::TransformerModel clean(config, 907);
    model::TransformerModel lossy(config, 907);
    lossy.apply_woq(16);
    const auto vlp_exp =
        vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    vlp::VlpConfig silu_cfg;
    silu_cfg.op = nonlinear::NonlinearOp::kSilu;
    silu_cfg.lut_min_exp = -6;
    silu_cfg.lut_max_exp = 1;
    const vlp::VlpApproximator vlp_silu(silu_cfg);
    model::NonlinearHooks hooks;
    hooks.softmax_exp = vlp_exp.get();
    hooks.activation = &vlp_silu;
    lossy.set_hooks(hooks);

    model::DecodeSession clean_session(clean,
                                       quant::KvPrecision::kFloat);
    model::DecodeSession lossy_session(lossy,
                                       quant::KvPrecision::kInt4);
    const auto tokens = model::synthetic_tokens(10, config.vocab, 911);
    double cosine_sum = 0.0;
    for (const int t : tokens) {
        const auto lc = clean_session.step(t);
        const auto ll = lossy_session.step(t);
        double dot = 0.0, nc = 0.0, nl = 0.0;
        for (std::size_t v = 0; v < lc.size(); ++v) {
            dot += lc[v] * ll[v];
            nc += lc[v] * lc[v];
            nl += ll[v] * ll[v];
        }
        cosine_sum += dot / std::sqrt(nc * nl);
    }
    EXPECT_GT(cosine_sum / static_cast<double>(tokens.size()), 0.9);
}

}  // namespace
}  // namespace core
}  // namespace mugi
