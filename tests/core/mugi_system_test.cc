// This suite tests the deprecated MugiSystem shim on purpose.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/mugi_system.h"

#include <cmath>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace core {
namespace {

TEST(MugiSystem, EvaluateDecodeProducesFullReport)
{
    const MugiSystem system = MugiSystem::default_mugi();
    const SystemReport report =
        system.evaluate_decode(model::llama2_7b(), 8, 2048);
    EXPECT_GT(report.perf.throughput_tokens_per_s, 0.0);
    EXPECT_GT(report.area.total(), 0.0);
    EXPECT_GT(report.carbon.total_g_per_token(), 0.0);
    EXPECT_GT(report.event_sim.makespan_cycles, 0.0);
}

TEST(MugiSystem, WoqGemmMatchesDequantizedReference)
{
    // The full BF16-INT4 path: group quantization -> temporal VLP
    // GEMM -> vector-array dequantization must equal a plain float
    // GEMM against the dequantized weights.
    const MugiSystem system(sim::make_mugi(32));
    std::mt19937 rng(511);
    support::MatrixF weights(24, 64);
    support::MatrixF acts(64, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);

    const MugiSystem::GemmRun run =
        system.run_woq_gemm(weights, acts, 16);
    const quant::QuantizedMatrix q = quant::quantize_int4(weights, 16);
    const support::MatrixF deq = quant::dequantize(q);
    const support::MatrixF expected = support::matmul(deq, acts);
    for (std::size_t r = 0; r < expected.rows(); ++r) {
        for (std::size_t c = 0; c < expected.cols(); ++c) {
            EXPECT_NEAR(run.out.at(r, c), expected.at(r, c), 2e-3)
                << r << "," << c;
        }
    }
    EXPECT_GT(run.cycles, 0u);
}

TEST(MugiSystem, WoqGemmApproximatesFloatGemm)
{
    const MugiSystem system(sim::make_mugi(64));
    std::mt19937 rng(521);
    support::MatrixF weights(16, 128);
    support::MatrixF acts(128, 8);
    support::fill_gaussian(weights, rng, 0.0f, 0.5f);
    support::fill_gaussian(acts, rng, 0.0f, 1.0f);
    const MugiSystem::GemmRun run =
        system.run_woq_gemm(weights, acts, 32);
    const support::MatrixF exact = support::matmul(weights, acts);
    // INT4 group quantization: small relative error at GEMM scale.
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double d = run.out.data()[i] - exact.data()[i];
        err += d * d;
        norm += exact.data()[i] * exact.data()[i];
    }
    // Group-32 INT4 on Gaussian weights: ~9-10% relative GEMM error
    // at k = 128 (per-weight half-step errors partially cancel).
    EXPECT_LT(std::sqrt(err / norm), 0.13);
}

TEST(MugiSystem, SoftmaxKernelNormalizes)
{
    const MugiSystem system = MugiSystem::default_mugi();
    std::mt19937 rng(523);
    std::normal_distribution<float> dist(0.0f, 2.0f);
    std::vector<float> logits(512);
    for (float& v : logits) v = dist(rng);
    const std::vector<float> probs = system.run_softmax(logits);
    const double sum =
        std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    // Order preserved for well-separated logits.
    const auto max_logit =
        std::max_element(logits.begin(), logits.end());
    const auto max_prob = std::max_element(probs.begin(), probs.end());
    EXPECT_EQ(std::distance(logits.begin(), max_logit),
              std::distance(probs.begin(), max_prob));
}

TEST(MugiSystem, ActivationKernelsTrackReference)
{
    const MugiSystem system = MugiSystem::default_mugi();
    std::vector<float> values;
    for (float x = -4.0f; x <= 4.0f; x += 0.0625f) {
        values.push_back(x);
    }
    const std::vector<float> silu =
        system.run_activation(nonlinear::NonlinearOp::kSilu, values);
    const std::vector<float> gelu =
        system.run_activation(nonlinear::NonlinearOp::kGelu, values);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_NEAR(silu[i], nonlinear::silu_ref(values[i]),
                    0.07 * std::fabs(values[i]) + 0.04)
            << values[i];
        EXPECT_NEAR(gelu[i], nonlinear::gelu_ref(values[i]),
                    0.07 * std::fabs(values[i]) + 0.04)
            << values[i];
    }
}

TEST(MugiSystem, DecodeVsPrefillShapes)
{
    const MugiSystem system = MugiSystem::default_mugi();
    const SystemReport decode =
        system.evaluate_decode(model::llama2_7b(), 8, 1024);
    const SystemReport prefill =
        system.evaluate_prefill(model::llama2_7b(), 1, 1024);
    // Prefill crunches far more tokens per pass.
    EXPECT_GT(prefill.perf.tokens, decode.perf.tokens);
    // Mugi is compute-bound on both phases (Sec. 6.3.1), so prefill
    // token throughput is at least as high as decode (weights
    // amortize; attention cost grows), and the pass takes longer.
    EXPECT_GE(prefill.perf.throughput_tokens_per_s,
              decode.perf.throughput_tokens_per_s * 0.9);
    EXPECT_GT(prefill.perf.runtime_s, decode.perf.runtime_s);
}

}  // namespace
}  // namespace core
}  // namespace mugi
