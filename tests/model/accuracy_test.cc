#include "model/accuracy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nonlinear/pwl.h"
#include "nonlinear/taylor.h"
#include "vlp/vlp_approximator.h"

namespace mugi {
namespace model {
namespace {

ModelConfig
eval_config()
{
    return llama2_7b().scaled_for_eval(2, 32, 64);
}

EvalOptions
fast_options()
{
    EvalOptions options;
    options.num_sequences = 2;
    options.seq_len = 12;
    return options;
}

TEST(Accuracy, SyntheticTokensDeterministicAndInRange)
{
    const auto a = synthetic_tokens(100, 64, 9);
    const auto b = synthetic_tokens(100, 64, 9);
    EXPECT_EQ(a, b);
    const auto c = synthetic_tokens(100, 64, 10);
    EXPECT_NE(a, c);
    for (const int t : a) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, 64);
    }
}

TEST(Accuracy, BaseEqualsEntropyAndKlZero)
{
    TransformerModel model(eval_config(), 53);
    const EvalResult base = evaluate_base(model, fast_options());
    EXPECT_GT(base.perplexity, 1.0);
    EXPECT_NEAR(base.kl, 0.0, 1e-9);
    EXPECT_NEAR(base.perplexity, std::exp(base.cross_entropy), 1e-9);
}

TEST(Accuracy, ApproximationNeverBeatsExact)
{
    // Cross-entropy against the exact model's distribution is
    // minimized by the exact model itself (Gibbs' inequality).
    TransformerModel model(eval_config(), 59);
    const EvalOptions options = fast_options();
    const EvalResult base = evaluate_base(model, options);

    const auto vlp = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    NonlinearHooks hooks;
    hooks.softmax_exp = vlp.get();
    const EvalResult approx =
        evaluate_against_exact(model, hooks, options);
    EXPECT_GE(approx.cross_entropy, base.cross_entropy - 1e-9);
    EXPECT_GE(approx.kl, 0.0);
}

TEST(Accuracy, GoodVlpWindowBeatsBadWindow)
{
    TransformerModel model(eval_config(), 61);
    const EvalOptions options = fast_options();

    const auto good = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 3);
    const auto bad = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, -9);
    NonlinearHooks hooks_good, hooks_bad;
    hooks_good.softmax_exp = good.get();
    hooks_bad.softmax_exp = bad.get();

    const double ppl_good =
        evaluate_against_exact(model, hooks_good, options).perplexity;
    const double ppl_bad =
        evaluate_against_exact(model, hooks_bad, options).perplexity;
    EXPECT_LT(ppl_good, ppl_bad);
}

TEST(Accuracy, VlpCompetitiveWithBaselinesOnActivation)
{
    // Fig. 6 bottom row: VLP S/G within a reasonable band of PWL.
    TransformerModel model(eval_config(), 67);
    const EvalOptions options = fast_options();
    const double base = evaluate_base(model, options).perplexity;

    vlp::VlpConfig vcfg;
    vcfg.op = nonlinear::NonlinearOp::kSilu;
    vcfg.lut_min_exp = -6;
    vcfg.lut_max_exp = 1;
    const vlp::VlpApproximator vlp_silu(vcfg);
    NonlinearHooks hooks;
    hooks.activation = &vlp_silu;
    const double ppl_vlp =
        evaluate_against_exact(model, hooks, options).perplexity;

    nonlinear::PwlConfig pcfg{nonlinear::NonlinearOp::kSilu, 22, 7.0};
    const nonlinear::PwlApproximator pwl(pcfg);
    hooks.activation = &pwl;
    const double ppl_pwl =
        evaluate_against_exact(model, hooks, options).perplexity;

    // Both land close to base; VLP within 2x of PWL's delta + slack.
    EXPECT_LT(ppl_vlp - base, 2.0 * (ppl_pwl - base) + 0.25);
}

TEST(Accuracy, PerLayerTuningImproves)
{
    TransformerModel model(eval_config(), 71);
    EvalOptions options = fast_options();
    options.num_sequences = 1;
    options.seq_len = 10;

    // Deliberately start from a bad anchor; tuning must escape it.
    const std::vector<int> candidates = {-9, 0, 3};
    const PerLayerTuningResult tuned =
        tune_softmax_per_layer(model, candidates, 8, options);
    ASSERT_EQ(tuned.ppl_after_layer.size(), model.num_layers());
    ASSERT_EQ(tuned.chosen_max_exp.size(), model.num_layers());
    // The greedy trajectory is non-increasing (the starting config is
    // always among the candidates).
    for (std::size_t l = 1; l < tuned.ppl_after_layer.size(); ++l) {
        EXPECT_LE(tuned.ppl_after_layer[l],
                  tuned.ppl_after_layer[l - 1] + 1e-9);
    }

    // Compare against the uniformly bad anchor.
    const auto bad = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, -9);
    NonlinearHooks hooks;
    hooks.softmax_exp = bad.get();
    const double ppl_bad =
        evaluate_against_exact(model, hooks, options).perplexity;
    EXPECT_LE(tuned.final_ppl, ppl_bad + 1e-9);
    for (const int e : tuned.chosen_max_exp) {
        EXPECT_NE(e, -9);  // The pathological anchor is never chosen.
    }
}

}  // namespace
}  // namespace model
}  // namespace mugi
