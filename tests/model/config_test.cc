#include "model/config.h"

#include <gtest/gtest.h>

namespace mugi {
namespace model {
namespace {

TEST(Config, TableOneShapes)
{
    const ModelConfig m7 = llama2_7b();
    EXPECT_EQ(m7.num_layers, 32u);
    EXPECT_EQ(m7.num_heads, 32u);
    EXPECT_EQ(m7.d_model, 4096u);
    EXPECT_EQ(m7.d_ff, 11008u);
    EXPECT_EQ(m7.gqa_group(), 1u);
    EXPECT_EQ(m7.head_dim(), 128u);

    const ModelConfig m13 = llama2_13b();
    EXPECT_EQ(m13.num_layers, 40u);
    EXPECT_EQ(m13.d_model, 5120u);

    const ModelConfig m70 = llama2_70b();
    EXPECT_EQ(m70.num_layers, 80u);
    EXPECT_EQ(m70.num_heads, 64u);
    EXPECT_EQ(m70.num_kv_heads, 8u);
    EXPECT_EQ(m70.gqa_group(), 8u);  // Table 1: GQA group size 8.
    EXPECT_EQ(m70.d_ff, 28672u);
}

TEST(Config, ParameterCountsMatchModelNames)
{
    // Weight params (no embeddings): ~6.5e9 / 13e9 / 68e9.
    EXPECT_NEAR(static_cast<double>(llama2_7b().weight_params()), 6.5e9,
                0.5e9);
    EXPECT_NEAR(static_cast<double>(llama2_13b().weight_params()),
                12.7e9, 0.8e9);
    EXPECT_NEAR(static_cast<double>(llama2_70b().weight_params()),
                68.0e9, 3.0e9);
}

TEST(Config, FamilyProperties)
{
    EXPECT_TRUE(llama2_7b().causal());
    EXPECT_TRUE(llama2_7b().gated_ffn());
    EXPECT_TRUE(llama2_7b().uses_rope());
    EXPECT_TRUE(llama2_7b().uses_rmsnorm());
    EXPECT_EQ(llama2_7b().activation(), nonlinear::NonlinearOp::kSilu);

    EXPECT_FALSE(whisper_tiny().causal());
    EXPECT_FALSE(whisper_tiny().gated_ffn());
    EXPECT_EQ(whisper_tiny().activation(),
              nonlinear::NonlinearOp::kGelu);
    EXPECT_EQ(swinv2_large().activation(),
              nonlinear::NonlinearOp::kGelu);
    EXPECT_EQ(vivit_base().activation(), nonlinear::NonlinearOp::kGelu);
}

TEST(Config, ScaledEvalPreservesStructure)
{
    const ModelConfig eval = llama2_70b().scaled_for_eval(4, 64, 256);
    EXPECT_EQ(eval.family, ModelFamily::kLlama);
    EXPECT_EQ(eval.num_layers, 4u);
    EXPECT_EQ(eval.d_model, 64u);
    EXPECT_EQ(eval.vocab, 256u);
    // GQA ratio preserved: group of 8 -> 4 heads / 1 kv head (group 4
    // capped by head count).
    EXPECT_GT(eval.gqa_group(), 1u);
    EXPECT_EQ(eval.d_model % eval.num_heads, 0u);
}

TEST(Config, AllModelsEnumerated)
{
    const auto models = all_models();
    EXPECT_EQ(models.size(), 8u);
    EXPECT_EQ(llama_family().size(), 3u);
    for (const auto& m : models) {
        EXPECT_GT(m.num_layers, 0u);
        EXPECT_EQ(m.d_model % m.num_heads, 0u);
        EXPECT_EQ(m.num_heads % m.num_kv_heads, 0u);
    }
}

}  // namespace
}  // namespace model
}  // namespace mugi
