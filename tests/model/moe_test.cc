#include "model/moe.h"

#include <cmath>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"
#include "vlp/vlp_approximator.h"

namespace mugi {
namespace model {
namespace {

MoeConfig
small_moe()
{
    MoeConfig config;
    config.d_model = 32;
    config.d_ff = 64;
    config.num_experts = 8;
    config.top_k = 2;
    return config;
}

support::MatrixF
random_input(std::size_t t, std::size_t d, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    support::MatrixF x(t, d);
    support::fill_gaussian(x, rng, 0.0f, 1.0f);
    return x;
}

TEST(Moe, ForwardShapeAndFiniteness)
{
    const MoeFfn moe(small_moe(), 701);
    const support::MatrixF x = random_input(6, 32, 703);
    const support::MatrixF y = moe.forward(x);
    EXPECT_EQ(y.rows(), 6u);
    EXPECT_EQ(y.cols(), 32u);
    for (const float v : y.data()) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

TEST(Moe, TopKSelectionCounts)
{
    const MoeFfn moe(small_moe(), 709);
    const support::MatrixF x = random_input(16, 32, 711);
    moe.forward(x);
    const auto& counts = moe.last_selection_counts();
    const std::size_t total =
        std::accumulate(counts.begin(), counts.end(),
                        std::size_t{0});
    // Exactly top_k experts per token.
    EXPECT_EQ(total, 16u * 2u);
    EXPECT_NEAR(moe.active_fraction(), 0.25, 1e-12);
}

TEST(Moe, TopOneEqualsArgmaxExpert)
{
    MoeConfig config = small_moe();
    config.top_k = 1;
    const MoeFfn moe(config, 719);
    const support::MatrixF x = random_input(8, 32, 721);
    moe.forward(x);
    const auto& counts = moe.last_selection_counts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(),
                              std::size_t{0}),
              8u);
}

TEST(Moe, AllExpertsIsDenseMixture)
{
    // top_k == num_experts: the gate weights renormalize to the full
    // softmax, so the output is the dense mixture (sanity bound: no
    // expert starved).
    MoeConfig config = small_moe();
    config.top_k = config.num_experts;
    const MoeFfn moe(config, 727);
    const support::MatrixF x = random_input(12, 32, 729);
    moe.forward(x);
    for (const std::size_t c : moe.last_selection_counts()) {
        EXPECT_EQ(c, 12u);
    }
}

TEST(Moe, VlpGatingStaysCloseToExact)
{
    // Sec. 7.1: the gating softmax runs through the same VLP
    // approximator as attention softmax.  Routing decisions (argmax
    // of a softmax) are order-preserving under monotone-ish input
    // approximation, so outputs stay close.
    const MoeFfn moe(small_moe(), 733);
    const support::MatrixF x = random_input(10, 32, 739);
    const support::MatrixF exact = moe.forward(x);

    const auto vlp = vlp::make_vlp(nonlinear::NonlinearOp::kExp, 8, 4);
    const support::MatrixF approx = moe.forward(x, vlp.get());
    double err = 0.0, norm = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double d = exact.data()[i] - approx.data()[i];
        err += d * d;
        norm += exact.data()[i] * exact.data()[i];
    }
    EXPECT_LT(std::sqrt(err / std::max(norm, 1e-12)), 0.35);
}

TEST(Moe, DeterministicPerSeed)
{
    const MoeFfn a(small_moe(), 743);
    const MoeFfn b(small_moe(), 743);
    const support::MatrixF x = random_input(4, 32, 751);
    EXPECT_EQ(a.forward(x).data(), b.forward(x).data());
}

TEST(Moe, GeluExpertsSupported)
{
    MoeConfig config = small_moe();
    config.activation = nonlinear::NonlinearOp::kGelu;
    const MoeFfn moe(config, 757);
    const support::MatrixF x = random_input(5, 32, 761);
    const support::MatrixF y = moe.forward(x);
    for (const float v : y.data()) {
        EXPECT_TRUE(std::isfinite(v));
    }
}

}  // namespace
}  // namespace model
}  // namespace mugi
