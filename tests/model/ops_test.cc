#include "model/ops.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace mugi {
namespace model {
namespace {

TEST(Ops, RmsNormUnitScale)
{
    support::MatrixF x(2, 4);
    x.at(0, 0) = 1.0f; x.at(0, 1) = -1.0f;
    x.at(0, 2) = 1.0f; x.at(0, 3) = -1.0f;
    x.at(1, 0) = 2.0f; x.at(1, 1) = -2.0f;
    x.at(1, 2) = 2.0f; x.at(1, 3) = -2.0f;
    std::vector<float> gain(4, 1.0f);
    support::MatrixF out;
    rmsnorm(x, gain, out);
    // Both rows normalize to unit RMS regardless of input scale.
    for (std::size_t r = 0; r < 2; ++r) {
        double sum_sq = 0.0;
        for (std::size_t c = 0; c < 4; ++c) {
            sum_sq += out.at(r, c) * out.at(r, c);
        }
        EXPECT_NEAR(std::sqrt(sum_sq / 4.0), 1.0, 1e-4) << r;
    }
}

TEST(Ops, LayerNormZeroMeanUnitVar)
{
    std::mt19937 rng(281);
    support::MatrixF x(4, 64);
    support::fill_gaussian(x, rng, 3.0f, 2.0f);
    std::vector<float> gain(64, 1.0f), bias(64, 0.0f);
    support::MatrixF out;
    layernorm(x, gain, bias, out);
    for (std::size_t r = 0; r < 4; ++r) {
        double mean = 0.0, var = 0.0;
        for (std::size_t c = 0; c < 64; ++c) mean += out.at(r, c);
        mean /= 64.0;
        for (std::size_t c = 0; c < 64; ++c) {
            var += (out.at(r, c) - mean) * (out.at(r, c) - mean);
        }
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Ops, RopePreservesNorm)
{
    std::mt19937 rng(283);
    support::MatrixF x(8, 32);  // 2 heads x head_dim 16.
    support::fill_gaussian(x, rng, 0.0f, 1.0f);
    support::MatrixF before = x;
    apply_rope(x, 2, 16, 5);
    for (std::size_t t = 0; t < 8; ++t) {
        double n_before = 0.0, n_after = 0.0;
        for (std::size_t c = 0; c < 32; ++c) {
            n_before += before.at(t, c) * before.at(t, c);
            n_after += x.at(t, c) * x.at(t, c);
        }
        // Rotations are norm-preserving.
        EXPECT_NEAR(n_after, n_before, 1e-3 * n_before);
    }
}

TEST(Ops, RopeRelativePositionProperty)
{
    // The defining property of RoPE: <rope(q, m), rope(k, n)> depends
    // only on m - n.  Check a single head pair at two offsets.
    const std::size_t hd = 16;
    support::MatrixF q(1, hd), k(1, hd);
    std::mt19937 rng(293);
    support::fill_gaussian(q, rng, 0.0f, 1.0f);
    support::fill_gaussian(k, rng, 0.0f, 1.0f);

    const auto rotated_dot = [&](std::size_t pos_q, std::size_t pos_k) {
        support::MatrixF qq = q, kk = k;
        apply_rope(qq, 1, hd, pos_q);
        apply_rope(kk, 1, hd, pos_k);
        float dot = 0.0f;
        for (std::size_t i = 0; i < hd; ++i) {
            dot += qq.at(0, i) * kk.at(0, i);
        }
        return dot;
    };
    EXPECT_NEAR(rotated_dot(7, 3), rotated_dot(14, 10), 1e-3);
    EXPECT_NEAR(rotated_dot(2, 2), rotated_dot(9, 9), 1e-3);
}

TEST(Ops, RopeAtPositionZeroIsIdentity)
{
    support::MatrixF x(1, 8);
    for (std::size_t i = 0; i < 8; ++i) x.at(0, i) = float(i + 1);
    support::MatrixF before = x;
    apply_rope(x, 1, 8, 0);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(x.at(0, i), before.at(0, i), 1e-6);
    }
}

TEST(Ops, SoftmaxRowsNormalizes)
{
    std::mt19937 rng(307);
    support::MatrixF scores(6, 40);
    support::fill_gaussian(scores, rng, 0.0f, 3.0f);
    softmax_rows(scores, nullptr);
    for (std::size_t r = 0; r < 6; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 40; ++c) sum += scores.at(r, c);
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxRowsCaptureSeesShiftedInputs)
{
    support::MatrixF scores(1, 4);
    scores.at(0, 0) = 1.0f;
    scores.at(0, 1) = 3.0f;
    scores.at(0, 2) = 2.0f;
    scores.at(0, 3) = 0.0f;
    std::vector<float> captured;
    softmax_rows(scores, nullptr, [&](std::span<const float> row) {
        captured.assign(row.begin(), row.end());
    });
    ASSERT_EQ(captured.size(), 4u);
    // Max-subtracted: the maximum becomes 0, others negative.
    EXPECT_EQ(captured[1], 0.0f);
    EXPECT_EQ(captured[0], -2.0f);
    EXPECT_EQ(captured[3], -3.0f);
}

TEST(Ops, SoftmaxRowsHandlesMaskedRow)
{
    support::MatrixF scores(1, 3);
    scores.at(0, 0) = 0.5f;
    scores.at(0, 1) = -INFINITY;  // Causal mask.
    scores.at(0, 2) = -INFINITY;
    softmax_rows(scores, nullptr);
    EXPECT_NEAR(scores.at(0, 0), 1.0f, 1e-6);
    EXPECT_EQ(scores.at(0, 1), 0.0f);
}

TEST(Ops, ApplyActivationExactMatchesReference)
{
    std::mt19937 rng(311);
    support::MatrixF x(3, 16);
    support::fill_gaussian(x, rng, 0.0f, 2.0f);
    support::MatrixF expected = x;
    apply_activation(x, nonlinear::NonlinearOp::kSilu, nullptr);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(
            x.data()[i],
            nonlinear::silu_ref(expected.data()[i]), 1e-6);
    }
}

TEST(Ops, LinearBatchedBitIdenticalToLinear)
{
    // The fused decode projections ride on this: the k-outer loop
    // order must not change a single bit, zero-skips included.
    std::mt19937 rng(321);
    for (const std::size_t rows : {1u, 3u, 16u}) {
        support::MatrixF x(rows, 24);
        support::MatrixF w(24, 40);
        support::fill_gaussian(x, rng, 0.0f, 1.0f);
        support::fill_gaussian(w, rng, 0.0f, 0.5f);
        // Plant exact zeros to exercise the skip path.
        x.at(0, 3) = 0.0f;
        x.at(rows - 1, 20) = 0.0f;
        const support::MatrixF batched = linear_batched(x, w);
        const support::MatrixF reference = linear(x, w);
        EXPECT_TRUE(batched == reference) << rows << " rows";
    }
}

TEST(Ops, RopeRotateRowMatchesApplyRopeAtEveryPosition)
{
    // decode_layer_batch rotates each batch row at its own session's
    // position via rope_rotate_row; it must equal apply_rope on a
    // one-row matrix at the same start position.
    std::mt19937 rng(331);
    for (const std::size_t pos : {0u, 1u, 17u, 100u}) {
        support::MatrixF row(1, 2 * 8);
        support::fill_gaussian(row, rng, 0.0f, 1.0f);
        support::MatrixF expected = row;
        apply_rope(expected, 2, 8, pos);
        rope_rotate_row(row.row_data(0), 2, 8, pos);
        EXPECT_TRUE(row == expected) << "pos " << pos;
    }
}

TEST(Ops, ApplyActivationSpanMatchesMatrixForm)
{
    std::mt19937 rng(341);
    support::MatrixF x(1, 32);
    support::fill_gaussian(x, rng, 0.0f, 2.0f);
    support::MatrixF as_matrix = x;
    std::vector<float> as_span(x.data());
    apply_activation(as_matrix, nonlinear::NonlinearOp::kGelu,
                     nullptr);
    apply_activation_span(as_span, nonlinear::NonlinearOp::kGelu,
                          nullptr);
    for (std::size_t i = 0; i < as_span.size(); ++i) {
        EXPECT_EQ(as_span[i], as_matrix.data()[i]) << i;
    }
}

}  // namespace
}  // namespace model
}  // namespace mugi
