#include "model/profiler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mugi {
namespace model {
namespace {

TEST(Histogram, BinningAndBounds)
{
    Histogram h(-4.0, 4.0, 8);
    h.add(-3.9);  // bin 0
    h.add(0.1);   // bin 4
    h.add(3.9);   // bin 7
    h.add(-5.0);  // underflow
    h.add(4.0);   // overflow (hi is exclusive)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bins()[0], 1u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.bins()[7], 1u);
}

TEST(Histogram, FractionIn)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i) {
        h.add(static_cast<double>(i) + 0.5);
    }
    EXPECT_NEAR(h.fraction_in(0.0, 4.99), 0.5, 1e-9);
    EXPECT_NEAR(h.fraction_in(0.0, 10.0), 1.0, 1e-9);
}

TEST(Profiler, ExponentClusteringDetected)
{
    // Values spread over [0.75, 1.5) -> exponents in {-1, 0} only:
    // the "clustered exponents despite spread values" insight of
    // Sec. 3.3.
    NonlinearProfiler profiler;
    const CaptureFn capture = profiler.capture();
    std::vector<float> values;
    for (float v = 0.75f; v < 1.5f; v += 0.01f) {
        values.push_back(v);
    }
    capture(nonlinear::NonlinearOp::kSilu, 0, values);
    const SiteProfile& site =
        profiler.site(nonlinear::NonlinearOp::kSilu, 0);
    EXPECT_NEAR(site.exponent_coverage(-1, 0), 1.0, 1e-9);
    const auto window = site.dominant_exponent_window(8);
    EXPECT_LE(window.first, -1);
    EXPECT_GE(window.second, 0);
}

TEST(Profiler, ZeroTracking)
{
    NonlinearProfiler profiler;
    const CaptureFn capture = profiler.capture();
    const std::vector<float> values = {0.0f, 0.0f, 1.0f};
    capture(nonlinear::NonlinearOp::kExp, 2, values);
    const SiteProfile& site =
        profiler.site(nonlinear::NonlinearOp::kExp, 2);
    EXPECT_EQ(site.zero_count, 2u);
    EXPECT_EQ(site.exponents.total(), 1u);
}

TEST(Profiler, MergedAcrossLayers)
{
    NonlinearProfiler profiler;
    const CaptureFn capture = profiler.capture();
    const std::vector<float> a = {0.5f, 0.5f};
    const std::vector<float> b = {2.0f};
    capture(nonlinear::NonlinearOp::kGelu, 0, a);
    capture(nonlinear::NonlinearOp::kGelu, 3, b);
    const SiteProfile merged =
        profiler.merged(nonlinear::NonlinearOp::kGelu);
    EXPECT_EQ(merged.exponents.total(), 3u);
    EXPECT_NEAR(merged.exponent_coverage(-1, -1), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(merged.exponent_coverage(1, 1), 1.0 / 3.0, 1e-9);
}

TEST(Profiler, MissingSiteThrows)
{
    NonlinearProfiler profiler;
    EXPECT_FALSE(profiler.has_site(nonlinear::NonlinearOp::kExp, 0));
    EXPECT_THROW(profiler.site(nonlinear::NonlinearOp::kExp, 0),
                 std::out_of_range);
}

TEST(Profiler, NonFiniteInputsIgnored)
{
    NonlinearProfiler profiler;
    const CaptureFn capture = profiler.capture();
    const std::vector<float> values = {-INFINITY, 1.0f,
                                       std::nanf("")};
    capture(nonlinear::NonlinearOp::kExp, 0, values);
    const SiteProfile& site =
        profiler.site(nonlinear::NonlinearOp::kExp, 0);
    EXPECT_EQ(site.values.total(), 1u);
}

}  // namespace
}  // namespace model
}  // namespace mugi
